//! Property-based tests (proptest) over the core data structures and
//! invariants of the reproduction.

use distfft::boxes::Box3;
use distfft::plan::{CommBackend, FftOptions, FftPlan};
use distfft::procgrid::{closest_factor_pair, min_surface_grid, Distribution};
use distfft::reshape::ReshapeSpec;
use fftkern::complex::max_abs_diff;
use fftkern::plan::{Direction, Plan1d};
use fftkern::{C64, Plan3d};
use mpisim::Subarray;
use proptest::prelude::*;

fn arb_c64() -> impl Strategy<Value = C64> {
    (-10.0f64..10.0, -10.0f64..10.0).prop_map(|(re, im)| C64::new(re, im))
}

fn signal(n: usize) -> impl Strategy<Value = Vec<C64>> {
    proptest::collection::vec(arb_c64(), n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // ---------------- FFT engine properties ----------------

    /// Forward+inverse round trip scales by N for any size 1..=96.
    #[test]
    fn fft_roundtrip_any_size(n in 1usize..=96, seed in 0u64..1000) {
        let x: Vec<C64> = (0..n)
            .map(|i| C64::new(((i as u64 + seed) % 17) as f64, ((i as u64 * seed) % 13) as f64))
            .collect();
        let plan = Plan1d::contiguous(n, 1);
        let mut y = x.clone();
        plan.execute_inplace(&mut y, Direction::Forward);
        plan.execute_inplace(&mut y, Direction::Inverse);
        let expect: Vec<C64> = x.iter().map(|v| v.scale(n as f64)).collect();
        prop_assert!(max_abs_diff(&y, &expect) < 1e-7 * (n as f64).max(1.0));
    }

    /// Linearity: FFT(a·x + y) = a·FFT(x) + FFT(y).
    #[test]
    fn fft_linearity(x in signal(32), y in signal(32), a in arb_c64()) {
        let plan = Plan1d::contiguous(32, 1);
        let mut combo: Vec<C64> = x.iter().zip(&y).map(|(u, v)| *u * a + *v).collect();
        plan.execute_inplace(&mut combo, Direction::Forward);
        let mut fx = x;
        plan.execute_inplace(&mut fx, Direction::Forward);
        let mut fy = y;
        plan.execute_inplace(&mut fy, Direction::Forward);
        let expect: Vec<C64> = fx.iter().zip(&fy).map(|(u, v)| *u * a + *v).collect();
        prop_assert!(max_abs_diff(&combo, &expect) < 1e-6);
    }

    /// Parseval: time-domain and (normalized) frequency-domain energy agree.
    #[test]
    fn fft_parseval(x in signal(48)) {
        let te: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let plan = Plan1d::contiguous(48, 1);
        let mut spec = x;
        plan.execute_inplace(&mut spec, Direction::Forward);
        let fe: f64 = spec.iter().map(|v| v.norm_sqr()).sum::<f64>() / 48.0;
        prop_assert!((te - fe).abs() < 1e-6 * te.max(1.0));
    }

    /// Convolution theorem: FFT(x ⊛ y) = FFT(x)·FFT(y) (circular).
    #[test]
    fn fft_convolution_theorem(x in signal(16), y in signal(16)) {
        let n = 16;
        // Direct circular convolution.
        let mut conv = vec![C64::ZERO; n];
        for (k, c) in conv.iter_mut().enumerate() {
            for j in 0..n {
                *c += x[j] * y[(k + n - j) % n];
            }
        }
        let plan = Plan1d::contiguous(n, 1);
        let mut fc = conv;
        plan.execute_inplace(&mut fc, Direction::Forward);
        let mut fx = x;
        plan.execute_inplace(&mut fx, Direction::Forward);
        let mut fy = y;
        plan.execute_inplace(&mut fy, Direction::Forward);
        let prod: Vec<C64> = fx.iter().zip(&fy).map(|(u, v)| *u * *v).collect();
        prop_assert!(max_abs_diff(&fc, &prod) < 1e-5);
    }

    /// 3-D transform equals three sequential 1-D passes in any axis order
    /// (separability) — checked via the 3-D plan against per-axis plans.
    #[test]
    fn fft3d_separable(n0 in 2usize..=6, n1 in 2usize..=6, n2 in 2usize..=6, seed in 0u64..100) {
        let total = n0 * n1 * n2;
        let x: Vec<C64> = (0..total)
            .map(|i| C64::new(((i as u64 ^ seed) % 11) as f64, (i % 7) as f64))
            .collect();
        let mut a = x.clone();
        Plan3d::new(n0, n1, n2).execute(&mut a, Direction::Forward);
        let slow = fftkern::dft::dft_nd(&x, &[n0, n1, n2], Direction::Forward);
        prop_assert!(max_abs_diff(&a, &slow) < 1e-7 * total as f64);
    }

    // ---------------- Box and distribution properties ----------------

    /// Axis chunking partitions [0, n) exactly.
    #[test]
    fn chunks_partition(n in 0usize..500, parts in 1usize..20) {
        let mut cursor = 0;
        for idx in 0..parts {
            let (lo, hi) = Box3::chunk(n, parts, idx);
            prop_assert_eq!(lo, cursor);
            prop_assert!(hi >= lo);
            cursor = hi;
        }
        prop_assert_eq!(cursor, n);
    }

    /// Any processor grid yields a disjoint exact cover of the domain.
    #[test]
    fn distribution_partitions(
        n0 in 1usize..24, n1 in 1usize..24, n2 in 1usize..24,
        g0 in 1usize..4, g1 in 1usize..4, g2 in 1usize..4,
    ) {
        let nranks = g0 * g1 * g2;
        let d = Distribution::new([n0, n1, n2], [g0, g1, g2], nranks);
        prop_assert_eq!(d.total_volume(), n0 * n1 * n2);
        for i in 0..nranks {
            for j in (i + 1)..nranks {
                prop_assert!(d.boxes[i].intersect(&d.boxes[j]).is_empty());
            }
        }
    }

    /// A reshape between any two grids conserves every element: per-rank
    /// receive volumes rebuild the target boxes exactly, and flows balance.
    #[test]
    fn reshape_conserves_volume(
        n0 in 2usize..16, n1 in 2usize..16, n2 in 2usize..16,
        ga in 1usize..4, gb in 1usize..4, gc in 1usize..4,
        ha in 1usize..4, hb in 1usize..4, hc in 1usize..4,
    ) {
        let nranks = (ga * gb * gc).max(ha * hb * hc);
        let from = Distribution::new([n0, n1, n2], [ga, gb, gc], nranks);
        let to = Distribution::new([n0, n1, n2], [ha, hb, hc], nranks);
        let rs = ReshapeSpec::build(&from, &to);
        let sent: usize = rs.sends.iter().flatten().map(|(_, b)| b.volume()).sum();
        prop_assert_eq!(sent, n0 * n1 * n2);
        for r in 0..nranks {
            let recv: usize = rs.recvs[r].iter().map(|(_, b)| b.volume()).sum();
            prop_assert_eq!(recv, to.boxes[r].volume());
        }
    }

    /// The closest factor pair multiplies back and is optimal.
    #[test]
    fn factor_pair_optimal(n in 1usize..5000) {
        let (p, q) = closest_factor_pair(n);
        prop_assert_eq!(p * q, n);
        prop_assert!(p <= q);
        // No factor pair strictly between p and q exists.
        for cand in (p + 1)..=((n as f64).sqrt() as usize) {
            prop_assert!(n % cand != 0 || cand == p, "better pair {cand} x {}", n / cand);
        }
    }

    /// Minimum-surface grids multiply to the rank count and never beat a
    /// brute-force check on small counts.
    #[test]
    fn min_surface_is_minimal(n in 1usize..200) {
        let dims = [64usize, 64, 64];
        let g = min_surface_grid(n, dims);
        prop_assert_eq!(g.iter().product::<usize>(), n);
        let surf = |grid: [usize; 3]| {
            let l = [
                dims[0] as f64 / grid[0] as f64,
                dims[1] as f64 / grid[1] as f64,
                dims[2] as f64 / grid[2] as f64,
            ];
            l[0] * l[1] + l[1] * l[2] + l[0] * l[2]
        };
        let best = surf(g);
        for a in 1..=n {
            if n % a != 0 { continue; }
            for b in 1..=(n / a) {
                if (n / a) % b != 0 { continue; }
                let c = n / a / b;
                prop_assert!(best <= surf([a, b, c]) + 1e-9);
            }
        }
    }

    // ---------------- Datatype properties ----------------

    /// Subarray pack/unpack is the identity on the selected block.
    #[test]
    fn subarray_roundtrip(
        s0 in 1usize..6, s1 in 1usize..6, s2 in 1usize..6,
        f0 in 1usize..6, f1 in 1usize..6, f2 in 1usize..6,
    ) {
        let sizes = [s0 + f0, s1 + f1, s2 + f2];
        let dt = Subarray::new(sizes, [s0, s1, s2], [f0.min(sizes[0] - s0), f1.min(sizes[1] - s1), f2.min(sizes[2] - s2)]);
        let parent: Vec<u64> = (0..sizes.iter().product::<usize>() as u64).collect();
        let packed = dt.pack(&parent);
        prop_assert_eq!(packed.len(), dt.elem_count());
        let mut target = vec![u64::MAX; parent.len()];
        dt.unpack(&packed, &mut target);
        prop_assert_eq!(dt.pack(&target), packed);
    }

    // ---------------- Plan invariants ----------------

    /// Every plan transforms each axis exactly once, its reshapes chain the
    /// distribution sequence, and the exchange count matches the
    /// decomposition arithmetic.
    #[test]
    fn plan_structure_invariants(
        // ranks capped at n1*n2's minimum (16) so every pencil grid fits.
        ranks in 1usize..=16,
        n0 in 4usize..16, n1 in 4usize..16, n2 in 4usize..16,
        backend_sel in 0usize..4,
    ) {
        let backend = [
            CommBackend::AllToAll,
            CommBackend::AllToAllV,
            CommBackend::P2p,
            CommBackend::P2pBlocking,
        ][backend_sel];
        let plan = FftPlan::build([n0, n1, n2], ranks, FftOptions {
            backend,
            ..FftOptions::default()
        });
        // Axes covered exactly once.
        let mut axes: Vec<usize> = plan.steps.iter().filter_map(|s| match s {
            distfft::plan::Step::LocalFft { axis, .. } => Some(*axis),
            _ => None,
        }).collect();
        axes.sort_unstable();
        prop_assert_eq!(axes, vec![0, 1, 2]);
        // Each distribution covers the domain.
        for d in &plan.dists {
            prop_assert_eq!(d.total_volume(), n0 * n1 * n2);
        }
        // Reshape count = dists - 1.
        prop_assert_eq!(plan.reshapes.len(), plan.dists.len() - 1);
        prop_assert_eq!(plan.reshapes_rev.len(), plan.reshapes.len());
    }
}

// ---------------- Cost-model monotonicity (plain tests over ranges) -------

#[test]
fn model_times_monotone_in_problem_size() {
    use fftmodels::bandwidth::{t_pencils, t_slabs, ModelParams};
    let p = ModelParams::summit();
    let mut prev_s = 0.0;
    let mut prev_p = 0.0;
    for k in 1..=20 {
        let n = (k * k * k * 1000) as f64;
        let ts = t_slabs(n, 96, &p);
        let tp = t_pencils(n, 8, 12, &p);
        assert!(ts > prev_s && tp > prev_p, "model not monotone at n={n}");
        prev_s = ts;
        prev_p = tp;
    }
}

#[test]
fn message_time_monotone_in_bytes_and_flows() {
    use simgrid::link::{message_time_ns, TransferCtx};
    use simgrid::MachineSpec;
    let s = MachineSpec::summit();
    let mut prev = 0;
    for k in 1..=30 {
        let ctx = TransferCtx {
            gpu_aware: true,
            offnode_flows_per_nic: 3,
            nodes_involved: 8,
        };
        let t = message_time_ns(&s, k * 100_000, 0, 6, &ctx);
        assert!(t >= prev);
        prev = t;
    }
    // More flows never make a message faster.
    for flows in 1..=6 {
        let ctx = TransferCtx {
            gpu_aware: true,
            offnode_flows_per_nic: flows,
            nodes_involved: 8,
        };
        let t = message_time_ns(&s, 1 << 20, 0, 6, &ctx);
        assert!(t >= prev || flows == 1);
        if flows == 1 {
            prev = t;
        } else {
            assert!(t >= prev);
            prev = t;
        }
    }
}
