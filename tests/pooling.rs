//! Pooled-scratch executor identity: the hot-path machinery added by the
//! execution overhaul (global 1-D plan cache, interned twiddle tables,
//! per-rank reshape-buffer pool) is a pure optimisation. Re-running a
//! transform through a *warmed* `ExecCtx` — pool populated, every 1-D plan
//! a cache hit — must produce output bit-identical to the first, cold run,
//! for every decomposition × communication backend.

use distfft::boxes::Box3;
use distfft::exec::{bind, execute, ExecCtx, PoolStats};
use distfft::plan::{CommBackend, FftOptions, FftPlan, IoLayout};
use distfft::Decomp;
use fftkern::{Direction, C64};
use mpisim::comm::{Comm, World, WorldOpts};
use simgrid::MachineSpec;

/// Forward+inverse round trip, run `reps` times through the same `ExecCtx`.
/// Returns per-run output bits, the number of buffers left in the pool, and
/// the pool's hit/miss/eviction statistics.
fn repeated_roundtrips(
    opts: FftOptions,
    n: [usize; 3],
    ranks: usize,
    reps: usize,
) -> Vec<(Vec<Vec<u64>>, usize, PoolStats)> {
    let plan = FftPlan::build(n, ranks, opts);
    let world = World::new(MachineSpec::testbox(2), ranks, WorldOpts::default());
    let whole = Box3::whole(n);
    let global: Vec<C64> = (0..n[0] * n[1] * n[2])
        .map(|i| C64::new((i as f64 * 0.37).sin(), (i as f64 * 0.61).cos()))
        .collect();
    world.run(|rank| {
        let comm = Comm::world(rank);
        let bound = bind(&plan, rank, &comm);
        let mut ctx = ExecCtx::new();
        let b = plan.dists[0].rank_box(rank.rank());
        let orig = whole.extract(&global, b);
        let mut runs = Vec::new();
        for _ in 0..reps {
            let mut data = vec![orig.clone()];
            execute(
                &plan,
                &bound,
                &mut ctx,
                rank,
                &comm,
                &mut data,
                Direction::Forward,
            );
            execute(
                &plan,
                &bound,
                &mut ctx,
                rank,
                &comm,
                &mut data,
                Direction::Inverse,
            );
            let bits: Vec<u64> = data
                .remove(0)
                .iter()
                .flat_map(|c| [c.re.to_bits(), c.im.to_bits()])
                .collect();
            runs.push(bits);
        }
        (runs, ctx.pooled_buffers(), ctx.pool_stats())
    })
}

#[test]
fn warm_pool_bit_identical_to_cold_for_every_decomp_and_backend() {
    let n = [8usize, 12, 10];
    let ranks = 4;
    for decomp in [Decomp::Slabs, Decomp::Pencils, Decomp::Bricks] {
        for backend in [
            CommBackend::AllToAll,
            CommBackend::AllToAllV,
            CommBackend::P2p,
            CommBackend::P2pBlocking,
        ] {
            let opts = FftOptions {
                decomp,
                backend,
                ..FftOptions::default()
            };
            for (r, (runs, _, _)) in repeated_roundtrips(opts, n, ranks, 3)
                .into_iter()
                .enumerate()
            {
                for (rep, bits) in runs.iter().enumerate().skip(1) {
                    assert_eq!(
                        &runs[0], bits,
                        "{decomp:?}+{backend:?} rank {r}: warm rep {rep} diverged from cold run"
                    );
                }
            }
        }
    }
}

#[test]
fn warm_pool_bit_identical_with_subarray_datatypes() {
    // Alltoallw + brick I/O exercises the no-pack path and both boundary
    // reshapes — the most reshape-heavy plan shape.
    let opts = FftOptions {
        decomp: Decomp::Pencils,
        backend: CommBackend::AllToAllW,
        io: IoLayout::Brick,
        ..FftOptions::default()
    };
    for (r, (runs, pooled, _)) in repeated_roundtrips(opts, [8, 12, 10], 4, 3)
        .into_iter()
        .enumerate()
    {
        assert_eq!(runs[0], runs[1], "rank {r}: rep 1 diverged");
        assert_eq!(runs[0], runs[2], "rank {r}: rep 2 diverged");
        assert!(pooled > 0, "rank {r}: reshape pool never retained a buffer");
    }
}

#[test]
fn plan_cache_serves_repeated_executions() {
    // After any distributed run, every 1-D plan the executor needs is in the
    // global cache; a second run must not miss.
    let _ = repeated_roundtrips(FftOptions::default(), [8, 8, 8], 4, 1);
    let cache = fftkern::plan_cache();
    let misses_before = cache.misses();
    let hits_before = cache.hits();
    let _ = repeated_roundtrips(FftOptions::default(), [8, 8, 8], 4, 1);
    assert_eq!(
        cache.misses(),
        misses_before,
        "warm re-execution should not build new 1-D plans"
    );
    assert!(
        cache.hits() > hits_before,
        "warm re-execution should hit the cache"
    );
}

#[test]
fn steady_state_pool_never_evicts_and_mostly_hits() {
    // Eviction regression guard: a single-plan steady state must cycle
    // entirely through recycled buffers. Any eviction means the executor
    // holds more live buffers than POOL_CAP and is silently deallocating on
    // the hot path; a sub-90% steady-state hit rate means the pool is not
    // actually serving the traffic.
    let opts = FftOptions::default();
    let n = [8usize, 12, 10];
    let ranks = 4;

    // Execution is deterministic, so a 1-rep run reproduces exactly the
    // first (cold) rep of the longer run; the difference is the steady state.
    let cold = repeated_roundtrips(opts.clone(), n, ranks, 1);
    let warm = repeated_roundtrips(opts, n, ranks, 6);
    for (r, ((_, _, cold_stats), (_, _, warm_stats))) in cold.into_iter().zip(warm).enumerate() {
        assert_eq!(
            warm_stats.evictions, 0,
            "rank {r}: steady-state execution evicted pooled buffers"
        );
        let hits = warm_stats.hits - cold_stats.hits;
        let misses = warm_stats.misses - cold_stats.misses;
        let total = hits + misses;
        assert!(total > 0, "rank {r}: steady state never touched the pool");
        let rate = hits as f64 / total as f64;
        assert!(
            rate >= 0.9,
            "rank {r}: steady-state pool hit rate {rate:.3} ({hits}/{total}) below 90%"
        );
    }
}
