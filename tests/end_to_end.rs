//! Cross-crate integration tests: the full stack from tuner to functional
//! execution, and the paper's headline claims as assertions.

use distfft::dryrun::{DryRunOpts, DryRunner};
use distfft::exec::{bind, execute, ExecCtx};
use distfft::plan::{CommBackend, FftOptions, FftPlan, IoLayout};
use distfft::Decomp;
use fftkern::{Direction, C64};
use fftmodels::bandwidth::ModelParams;
use fftmodels::phase::crossover_ranks;
use fftmodels::tuner::tune;
use miniapps::md::{run_rhodopsin, RhodopsinConfig};
use miniapps::poisson::{solve_poisson_distributed, test_density};
use miniapps::spectral::batching_comparison;
use mpisim::comm::{Comm, World, WorldOpts};
use simgrid::MachineSpec;

const N512: [usize; 3] = [512, 512, 512];

#[test]
fn tuned_configuration_executes_functionally() {
    // Tune at a small scale, then actually run the tuned plan with real data.
    let machine = MachineSpec::summit();
    let n = [16usize, 16, 16];
    let ranks = 12;
    let choice = tune(&machine, n, ranks);
    let plan = FftPlan::build(n, ranks, choice.opts.clone());

    let world = World::new(
        machine,
        ranks,
        WorldOpts {
            gpu_aware: choice.gpu_aware,
            ..WorldOpts::default()
        },
    );
    let errs = world.run(|rank| {
        let comm = Comm::world(rank);
        let bound = bind(&plan, rank, &comm);
        let mut ctx = ExecCtx::new();
        let vol = plan.dists[0].rank_box(rank.rank()).volume();
        let orig: Vec<C64> = (0..vol).map(|i| C64::new(i as f64, -1.0)).collect();
        let mut data = vec![orig.clone()];
        execute(
            &plan,
            &bound,
            &mut ctx,
            rank,
            &comm,
            &mut data,
            Direction::Forward,
        );
        execute(
            &plan,
            &bound,
            &mut ctx,
            rank,
            &comm,
            &mut data,
            Direction::Inverse,
        );
        let scale = 1.0 / plan.total_elems() as f64;
        data[0]
            .iter()
            .zip(&orig)
            .map(|(g, w)| (g.scale(scale) - *w).abs())
            .fold(0.0, f64::max)
    });
    for (r, e) in errs.iter().enumerate() {
        assert!(*e < 1e-9, "rank {r} round-trip error {e}");
    }
}

#[test]
fn headline_total_time_at_24_gpus_matches_paper_ballpark() {
    // §IV-B: the 512³ c2c FFT on 24 V100s takes ≈0.09 s with either backend.
    let machine = MachineSpec::summit();
    for backend in [CommBackend::AllToAllV, CommBackend::P2p] {
        let plan = FftPlan::build(
            N512,
            24,
            FftOptions {
                backend,
                ..FftOptions::default()
            },
        );
        let mut runner = DryRunner::new(&plan, &machine, DryRunOpts::default());
        let avg = runner.timed_average(2, 4);
        assert!(
            (0.05..0.20).contains(&avg.as_secs()),
            "{backend:?}: {avg} out of the paper's ≈0.09 s ballpark"
        );
    }
}

#[test]
fn communication_dominates_at_24_gpus() {
    // §II: "communication for this problem [512³ on 24 GPUs] over 90% of
    // runtime".
    let machine = MachineSpec::summit();
    let plan = FftPlan::build(N512, 24, FftOptions::default());
    let mut runner = DryRunner::new(&plan, &machine, DryRunOpts::default());
    let _ = runner.run(Direction::Forward);
    let rep = runner.run(Direction::Forward);
    let comm = rep.comm_max().as_secs();
    let total = rep.makespan().as_secs();
    assert!(
        comm / total > 0.9,
        "comm share {:.1}% should exceed 90%",
        100.0 * comm / total
    );
}

#[test]
fn model_crossover_matches_dryrun_crossover() {
    // §IV-A: the bandwidth model predicts slabs < 64 nodes; the simulated
    // machine must agree with its own closed-form abstraction.
    let machine = MachineSpec::summit();
    let counts = [96usize, 192, 384, 768];
    let model_cross = crossover_ranks(N512, &counts, &ModelParams::summit());
    assert_eq!(model_cross, Some(384));

    // Dry-run comparison at 32 nodes (slabs should win) and 64 (pencils).
    let avg = |decomp: Decomp, ranks: usize| {
        let plan = FftPlan::build(
            N512,
            ranks,
            FftOptions {
                decomp,
                ..FftOptions::default()
            },
        );
        DryRunner::new(&plan, &machine, DryRunOpts::default()).timed_average(2, 2)
    };
    assert!(avg(Decomp::Slabs, 192) < avg(Decomp::Pencils, 192));
    assert!(avg(Decomp::Pencils, 384) <= avg(Decomp::Slabs, 384));
}

#[test]
fn gpu_aware_p2p_fails_at_scale_but_alltoall_does_not() {
    // Figs. 8/9 jointly.
    let machine = MachineSpec::summit();
    let comm_time = |backend: CommBackend, ranks: usize, aware: bool| {
        let plan = FftPlan::build(
            N512,
            ranks,
            FftOptions {
                backend,
                ..FftOptions::default()
            },
        );
        let mut r = DryRunner::new(
            &plan,
            &machine,
            DryRunOpts {
                gpu_aware: aware,
                ..DryRunOpts::default()
            },
        );
        // Average over forward+inverse pairs, like the paper's protocol —
        // forward and inverse reshapes have different peer structures.
        let _ = r.run(Direction::Forward);
        let _ = r.run(Direction::Inverse);
        let a = r.run(Direction::Forward).comm_max();
        let b = r.run(Direction::Inverse).comm_max();
        a + b
    };
    // A2A keeps scaling 96 -> 768 with GPU-awareness.
    assert!(
        comm_time(CommBackend::AllToAllV, 768, true) < comm_time(CommBackend::AllToAllV, 96, true)
    );
    // GPU-aware P2P bottoms around 64 nodes and gets *slower* toward 768
    // ranks (the Fig. 9 cliff); staged P2P keeps scaling all the way.
    assert!(comm_time(CommBackend::P2p, 768, true) > comm_time(CommBackend::P2p, 384, true));
    assert!(comm_time(CommBackend::P2p, 768, false) < comm_time(CommBackend::P2p, 96, false));
}

#[test]
fn rhodopsin_kspace_cut_and_poisson_and_batching() {
    let machine = MachineSpec::summit();

    // Fig. 12: KSPACE ~40% faster with tuned settings.
    let d = run_rhodopsin(&machine, &RhodopsinConfig::fftmpi_default(2));
    let t = run_rhodopsin(&machine, &RhodopsinConfig::heffte_tuned(2));
    let cut = 1.0 - t.kspace.as_ns() as f64 / d.kspace.as_ns() as f64;
    assert!((0.25..0.55).contains(&cut), "KSPACE cut {:.2}", cut);

    // HACC-style Poisson solve is numerically exact vs the serial solver.
    let rho = test_density([16, 16, 16]);
    let res = solve_poisson_distributed(
        &MachineSpec::testbox(2),
        4,
        [16, 16, 16],
        FftOptions::default(),
        &rho,
    );
    assert!(res.rel_error < 1e-12);

    // Fig. 13: batching a 64³ transform gives a substantial speedup.
    let (batched, isolated) =
        batching_comparison(&machine, [64, 64, 64], 24, 16, &FftOptions::default());
    let speedup = isolated.as_ns() as f64 / batched.as_ns() as f64;
    assert!(speedup > 1.8, "batching speedup {speedup:.2} too small");
}

#[test]
fn grid_shrinking_helps_small_transforms_on_many_ranks() {
    // DESIGN.md ablation / Algorithm 1 line 2: a 64³ transform on 768 ranks
    // is overhead-bound (tiny per-pair messages, 767 posted pairs per
    // collective); shrinking the FFT grid to 96 ranks must win. Shrinking
    // too far (to 24) funnels all data through too few NICs and loses —
    // the trade-off the paper's "controlling an amount of memory and
    // resources enough for the computation" phrasing implies.
    let machine = MachineSpec::summit();
    let avg = |shrink: Option<usize>| {
        let plan = FftPlan::build(
            [64, 64, 64],
            768,
            FftOptions {
                shrink_to: shrink,
                ..FftOptions::default()
            },
        );
        DryRunner::new(&plan, &machine, DryRunOpts::default()).timed_average(2, 2)
    };
    let full = avg(None);
    let shrunk = avg(Some(96));
    let too_far = avg(Some(24));
    assert!(
        (shrunk.as_ns() as f64) < full.as_ns() as f64 * 0.8,
        "shrinking to 96 should win >20%: shrunk {shrunk} vs full {full}"
    );
    assert!(too_far > shrunk, "over-shrinking should backfire");
}

#[test]
fn alltoallw_loses_on_gpu_arrays_despite_saving_pack() {
    // §II: Algorithm 2 eliminates pack/unpack (<10% of runtime) but the
    // unoptimized Alltoallw more than eats the savings on GPU arrays.
    let machine = MachineSpec::summit();
    let avg = |backend| {
        let plan = FftPlan::build(
            [128, 128, 128],
            24,
            FftOptions {
                backend,
                io: IoLayout::Brick,
                ..FftOptions::default()
            },
        );
        DryRunner::new(&plan, &machine, DryRunOpts::default()).timed_average(2, 2)
    };
    assert!(avg(CommBackend::AllToAllW) > avg(CommBackend::AllToAllV));
}

#[test]
fn two_dimensional_transforms_via_degenerate_axis() {
    // Batched 2-D support (paper contribution): an n0 x n1 x 1 domain is a
    // 2-D transform; verify distributed == local.
    let n = [16usize, 12, 1];
    let ranks = 4;
    let plan = FftPlan::build(n, ranks, FftOptions::default());
    let world = World::new(MachineSpec::testbox(2), ranks, WorldOpts::default());
    let total = n[0] * n[1];
    let global: Vec<C64> = (0..total)
        .map(|i| C64::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
        .collect();
    let whole = distfft::Box3::whole(n);

    let locals = world.run(|rank| {
        let comm = Comm::world(rank);
        let bound = bind(&plan, rank, &comm);
        let mut ctx = ExecCtx::new();
        let b = plan.dists[0].rank_box(rank.rank());
        let mut data = vec![whole.extract(&global, b)];
        execute(
            &plan,
            &bound,
            &mut ctx,
            rank,
            &comm,
            &mut data,
            Direction::Forward,
        );
        data.remove(0)
    });

    let out_idx = plan.dists.len() - 1;
    let mut got = vec![C64::ZERO; total];
    for (r, local) in locals.iter().enumerate() {
        let b = plan.dists[out_idx].rank_box(r);
        if !b.is_empty() {
            whole.deposit(&mut got, b, local);
        }
    }
    let mut want = global;
    fftkern::nd::fft_2d(&mut want, n[0], n[1], Direction::Forward);
    let err = fftkern::complex::max_abs_diff(&got, &want);
    assert!(err < 1e-9 * total as f64, "2-D mismatch: {err}");
}

#[test]
fn straggler_drags_every_rank() {
    // Failure injection: one throttled GPU (3x slower compute) delays the
    // whole machine — collectives wait for the straggler.
    let machine = MachineSpec::summit();
    let plan = FftPlan::build([64, 64, 64], 12, FftOptions::default());
    let mut healthy = DryRunner::new(&plan, &machine, DryRunOpts::default());
    let t_healthy = healthy.timed_average(1, 2);
    let mut degraded = DryRunner::new(
        &plan,
        &machine,
        DryRunOpts {
            compute_slowdown: vec![(5, 3.0)],
            ..DryRunOpts::default()
        },
    );
    let t_degraded = degraded.timed_average(1, 2);
    assert!(
        t_degraded > t_healthy,
        "straggler should slow the whole FFT: {t_degraded} vs {t_healthy}"
    );
    // The network part is unaffected, so the hit is bounded by the extra
    // compute time, not a 3x blowup of the whole transform.
    assert!(t_degraded.as_ns() < 3 * t_healthy.as_ns());
}
