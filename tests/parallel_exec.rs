//! Parallel distributed executor properties (ISSUE 4 satellite).
//!
//! The executor can fan local FFT and pack/unpack work across per-rank
//! worker threads (`ExecCtx::with_threads`). Parallelism must be a pure
//! wall-clock optimisation: for a seeded sweep of grids × decompositions ×
//! rank counts × batches, the output must be **bit-identical** to the
//! serial executor, and — because work unit `i` is statically pinned to
//! worker `i % threads` — the per-worker `PoolStats` must be deterministic
//! run to run.

use distfft::boxes::Box3;
use distfft::exec::{bind, execute, ExecCtx, PoolStats};
use distfft::plan::{CommBackend, FftOptions, FftPlan};
use distfft::Decomp;
use fftkern::{Direction, C64};
use mpisim::comm::{Comm, World, WorldOpts};
use simgrid::MachineSpec;

/// One run: `reps` forward+inverse round trips per rank through one
/// `ExecCtx` with the given worker count. Returns, per rank, the output
/// bits of every rep, the per-worker pool statistics, and the pooled
/// buffer count.
fn run_config(
    opts: FftOptions,
    n: [usize; 3],
    ranks: usize,
    threads: usize,
    reps: usize,
) -> Vec<(Vec<Vec<u64>>, Vec<PoolStats>, usize)> {
    let batch = opts.batch;
    let plan = FftPlan::build(n, ranks, opts);
    let world = World::new(MachineSpec::testbox(2), ranks, WorldOpts::default());
    let whole = Box3::whole(n);
    let global: Vec<C64> = (0..n[0] * n[1] * n[2])
        .map(|i| C64::new((i as f64 * 0.37).sin(), (i as f64 * 0.61).cos()))
        .collect();
    world.run(|rank| {
        let comm = Comm::world(rank);
        let bound = bind(&plan, rank, &comm);
        let mut ctx = ExecCtx::with_threads(threads);
        assert_eq!(ctx.threads(), threads.max(1));
        let b = plan.dists[0].rank_box(rank.rank());
        let orig = whole.extract(&global, b);
        let mut runs = Vec::new();
        for rep in 0..reps {
            // Distinct data per batch item (scaled copies keep layouts easy).
            let mut data: Vec<Vec<C64>> = (0..batch)
                .map(|bi| orig.iter().map(|v| v.scale(1.0 + bi as f64)).collect())
                .collect();
            execute(
                &plan,
                &bound,
                &mut ctx,
                rank,
                &comm,
                &mut data,
                Direction::Forward,
            );
            execute(
                &plan,
                &bound,
                &mut ctx,
                rank,
                &comm,
                &mut data,
                Direction::Inverse,
            );
            let bits: Vec<u64> = data
                .iter()
                .flat_map(|item| item.iter())
                .flat_map(|c| [c.re.to_bits(), c.im.to_bits()])
                .collect();
            runs.push(bits);
            let _ = rep;
        }
        (runs, ctx.pool_stats_per_worker(), ctx.pooled_buffers())
    })
}

/// Tiny deterministic generator for the seeded configuration sweep.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

#[test]
fn parallel_output_bit_identical_to_serial_seeded_sweep() {
    // Mix of grids above and below the executor's parallel grain threshold
    // (8192 elements per rank), so the sweep covers both the fanned-out
    // path and the small-problem inline fallback — and the boundary.
    let grids = [[32usize, 32, 32], [8, 12, 10], [32, 16, 16], [16, 32, 8]];
    let decomps = [Decomp::Slabs, Decomp::Pencils, Decomp::Bricks];
    let backends = [
        CommBackend::AllToAll,
        CommBackend::AllToAllV,
        CommBackend::P2p,
    ];
    let rank_counts = [2usize, 4, 8];
    let batches = [1usize, 3];

    let mut seed = 0x5eed_f00d_u64;
    for _ in 0..8 {
        let n = grids[lcg(&mut seed) as usize % grids.len()];
        let decomp = decomps[lcg(&mut seed) as usize % decomps.len()];
        let backend = backends[lcg(&mut seed) as usize % backends.len()];
        let ranks = rank_counts[lcg(&mut seed) as usize % rank_counts.len()];
        let batch = batches[lcg(&mut seed) as usize % batches.len()];
        let threads = 2 + (lcg(&mut seed) as usize % 3); // 2..=4
        let opts = FftOptions {
            decomp,
            backend,
            batch,
            ..FftOptions::default()
        };

        let serial = run_config(opts.clone(), n, ranks, 1, 2);
        let parallel = run_config(opts, n, ranks, threads, 2);
        for (r, ((s_runs, _, _), (p_runs, _, _))) in serial.into_iter().zip(parallel).enumerate() {
            assert_eq!(
                s_runs, p_runs,
                "{decomp:?}+{backend:?} n={n:?} ranks={ranks} batch={batch} \
                 threads={threads}: rank {r} parallel output diverged from serial"
            );
        }
    }
}

#[test]
fn per_worker_pool_stats_deterministic() {
    let opts = FftOptions {
        decomp: Decomp::Pencils,
        backend: CommBackend::AllToAllV,
        batch: 3,
        ..FftOptions::default()
    };
    // 32³ over 4 ranks = 8192 elements per rank: at the parallel grain
    // threshold, so pack/unpack genuinely fans out across the workers.
    let a = run_config(opts.clone(), [32, 32, 32], 4, 3, 4);
    let b = run_config(opts, [32, 32, 32], 4, 3, 4);
    for (r, ((_, sa, pa), (_, sb, pb))) in a.into_iter().zip(b).enumerate() {
        assert_eq!(sa.len(), 3, "rank {r}: expected one PoolStats per worker");
        assert_eq!(
            sa, sb,
            "rank {r}: per-worker pool statistics changed between identical runs"
        );
        assert_eq!(pa, pb, "rank {r}: pooled buffer count nondeterministic");
        // The parallel steady state must actually use the pool.
        let agg: u64 = sa.iter().map(|s| s.hits).sum();
        assert!(agg > 0, "rank {r}: parallel arenas never hit the pool");
        // And the fan-out must be real: worker 1's arena saw pool traffic.
        let w1 = sa[1].hits + sa[1].misses;
        assert!(
            w1 > 0,
            "rank {r}: worker 1 arena idle — fan-out never engaged"
        );
    }
}

#[test]
fn parallel_steady_state_never_evicts() {
    // Round-robin recycling must keep every arena's free list balanced: a
    // long warm run may not evict from any worker arena.
    let opts = FftOptions {
        decomp: Decomp::Bricks,
        backend: CommBackend::P2p,
        ..FftOptions::default()
    };
    // 32³ over 4 ranks keeps every rank above the parallel grain threshold.
    for (r, (_, stats, _)) in run_config(opts, [32, 32, 32], 4, 4, 6)
        .into_iter()
        .enumerate()
    {
        for (w, s) in stats.iter().enumerate() {
            assert_eq!(
                s.evictions, 0,
                "rank {r} worker {w}: steady-state eviction (pool churn)"
            );
        }
    }
}
