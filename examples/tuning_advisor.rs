//! Tuning advisor: the paper's §IV-A methodology as a tool.
//!
//! Given an FFT size, prints (a) the closed-form phase diagram from the
//! bandwidth model (equations (2)–(5) with Summit's 23.5 GB/s and 1 µs), and
//! (b) the dry-run-tuned best configuration per node count — decomposition,
//! exchange backend, GPU-awareness — like Fig. 5's region labels.
//!
//! Run with: `cargo run --release --example tuning_advisor [n]`
//! (default n = 512 for the paper's 512³ transform).

use fftmodels::bandwidth::ModelParams;
use fftmodels::phase::phase_diagram;
use fftmodels::tuner::tune;
use simgrid::MachineSpec;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let size = [n, n, n];
    let machine = MachineSpec::summit();
    let params = ModelParams::summit();

    println!("=== phase diagram (model, eqs. 2-3): {n}^3 c2c on Summit ===");
    let rank_counts: Vec<usize> = [1usize, 2, 4, 8, 16, 32, 64, 128]
        .iter()
        .map(|nodes| nodes * machine.gpus_per_node)
        .collect();
    println!(
        "{:>6} {:>7} {:>12} {:>12} {:>8}",
        "nodes", "ranks", "T_slabs", "T_pencils", "winner"
    );
    for pt in phase_diagram(size, &rank_counts, &params) {
        let ts = pt
            .t_slabs
            .map(|t| format!("{:.3e} s", t))
            .unwrap_or_else(|| "infeasible".into());
        println!(
            "{:>6} {:>7} {:>12} {:>9.3e} s {:>8}",
            pt.ranks / machine.gpus_per_node,
            pt.ranks,
            ts,
            pt.t_pencils,
            pt.best.name()
        );
    }

    println!();
    println!("=== dry-run tuner: best full configuration per node count ===");
    println!(
        "{:>6} {:>7} {:>10} {:>15} {:>10} {:>12}",
        "nodes", "ranks", "decomp", "backend", "gpu-aware", "time"
    );
    for nodes in [1usize, 4, 16, 64] {
        let ranks = nodes * machine.gpus_per_node;
        if size[1].checked_sub(ranks).is_none() && nodes > 1 {
            // slabs infeasible is handled inside tune(); nothing to skip here
        }
        let choice = tune(&machine, size, ranks);
        println!(
            "{:>6} {:>7} {:>10} {:>15} {:>10} {:>12}",
            nodes,
            ranks,
            choice.opts.decomp.name(),
            choice.opts.backend.routine(),
            if choice.gpu_aware { "yes" } else { "no" },
            format!("{}", choice.time),
        );
    }
    println!();
    println!(
        "interpretation: the model picks slabs below the crossover and\n\
         pencils above it; the tuner additionally selects the exchange\n\
         backend and GPU-awareness, like the region labels of Fig. 5."
    );
}
