//! General (irregular) input grids + the heFFTe-style facade + timeline.
//!
//! Real simulations hand the FFT whatever domain partition their load
//! balancer produced — §III: "the only libraries allowing general
//! input/output grids are fftMPI, heFFTe and SWFFT". This example feeds an
//! L-shaped, non-grid partition through the transform via
//! `Distribution::from_boxes`, uses the high-level `Fft3d` facade, and
//! prints the per-rank execution timeline.
//!
//! Run with: `cargo run --release --example irregular_grids`

use distfft::api::{Fft3d, Scale};
use distfft::plan::{FftOptions, FftPlan};
use distfft::procgrid::Distribution;
use distfft::{timeline, Box3};
use fftkern::C64;
use mpisim::comm::{Comm, World, WorldOpts};
use simgrid::MachineSpec;

fn main() {
    let n = [32usize, 32, 32];
    let ranks = 4;

    // An irregular partition no processor grid can express: a thick front
    // slab plus an L-shaped split of the back.
    let boxes = vec![
        Box3::new([0, 0, 0], [32, 32, 12]),
        Box3::new([0, 0, 12], [20, 32, 32]),
        Box3::new([20, 0, 12], [32, 16, 32]),
        Box3::new([20, 16, 12], [32, 32, 32]),
    ];
    println!("input boxes:");
    for (r, b) in boxes.iter().enumerate() {
        println!(
            "  rank {r}: {:?} -> {:?}  ({} elements)",
            b.lo,
            b.hi,
            b.volume()
        );
    }

    let input = Distribution::from_boxes(n, boxes.clone());
    let output = Distribution::from_boxes(n, boxes);
    let plan = FftPlan::build_with_io(n, ranks, FftOptions::default(), input, output);
    println!(
        "plan: {} exchanges per transform (irregular I/O adds boundary reshapes)",
        plan.exchange_count()
    );

    let world = World::new(MachineSpec::summit(), ranks, WorldOpts::default());
    let results = world.run(|rank| {
        let comm = Comm::world(rank);
        let mut fft = Fft3d::from_plan(plan.clone(), rank, &comm);

        let orig: Vec<C64> = (0..fft.input_len())
            .map(|i| C64::new((0.05 * i as f64).sin(), 0.0))
            .collect();
        let mut data = vec![orig.clone()];
        fft.forward(rank, &comm, &mut data, Scale::None);
        fft.backward(rank, &comm, &mut data, Scale::Full);

        let err = data[0]
            .iter()
            .zip(&orig)
            .map(|(g, w)| (*g - *w).abs())
            .fold(0.0, f64::max);
        (err, fft.last_trace.clone())
    });

    let mut traces = Vec::new();
    for (r, (err, trace)) in results.into_iter().enumerate() {
        assert!(err < 1e-10, "rank {r} round-trip error {err}");
        traces.push(trace);
    }
    println!("round trip through the irregular layout: OK");
    println!();
    println!("inverse-transform timeline (one row per rank):");
    print!("{}", timeline::render(&traces, 100));
}
