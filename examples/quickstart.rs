//! Quickstart: a distributed 3-D FFT on one simulated Summit node.
//!
//! Builds a 64³ complex-to-complex plan over 6 simulated V100 GPUs (1 MPI
//! rank per GPU), runs it functionally — real data, real transforms, real
//! reshapes — checks the forward+inverse round trip against the input, and
//! prints the simulated timing.
//!
//! Run with: `cargo run --release --example quickstart`

use distfft::exec::{bind, execute, ExecCtx};
use distfft::plan::{FftOptions, FftPlan};
use distfft::Box3;
use fftkern::{Direction, C64};
use mpisim::comm::{Comm, World, WorldOpts};
use simgrid::MachineSpec;

fn main() {
    let n = [64usize, 64, 64];
    let ranks = 6; // one Summit node, 1 MPI rank per V100
    let machine = MachineSpec::summit();

    // A plan with heFFTe-like defaults: pencil decomposition, MPI_Alltoallv
    // exchanges, brick-shaped input/output (what a real simulation hands us).
    let plan = FftPlan::build(n, ranks, FftOptions::default());
    print!("{plan}");
    println!(
        "({} non-identity exchanges per transform)",
        plan.exchange_count()
    );

    // A smooth global field.
    let total = n[0] * n[1] * n[2];
    let global: Vec<C64> = (0..total)
        .map(|i| {
            let x = i as f64;
            C64::new((0.001 * x).sin(), (0.0007 * x).cos())
        })
        .collect();
    let whole = Box3::whole(n);

    // Spin up the simulated world and run forward + inverse on every rank.
    let world = World::new(machine, ranks, WorldOpts::default());
    let results = world.run(|rank| {
        let comm = Comm::world(rank);
        let bound = bind(&plan, rank, &comm);
        let mut ctx = ExecCtx::new();

        // Scatter my box of the global field.
        let my_box = plan.dists[0].rank_box(rank.rank());
        let mut data = vec![whole.extract(&global, my_box)];

        let fwd = execute(
            &plan,
            &bound,
            &mut ctx,
            rank,
            &comm,
            &mut data,
            Direction::Forward,
        );
        let inv = execute(
            &plan,
            &bound,
            &mut ctx,
            rank,
            &comm,
            &mut data,
            Direction::Inverse,
        );

        // Unnormalized transforms: forward+inverse scales by N.
        let scale = 1.0 / total as f64;
        let max_err = data[0]
            .iter()
            .zip(whole.extract(&global, my_box))
            .map(|(got, want)| (got.scale(scale) - want).abs())
            .fold(0.0, f64::max);

        (fwd.total, inv.total, fwd.trace.comm_total(), max_err)
    });

    let mut worst_err: f64 = 0.0;
    for (r, (fwd, inv, comm, err)) in results.iter().enumerate() {
        println!(
            "rank {r}: forward done at {fwd}, inverse at {inv}, comm {comm}, max err {err:.2e}"
        );
        worst_err = worst_err.max(*err);
    }
    assert!(worst_err < 1e-10, "round-trip error too large: {worst_err}");
    println!("round trip OK (max error {worst_err:.2e} after 1/N normalization)");
}
