//! LAMMPS-style KSPACE tuning: the Fig. 12 experiment as an example.
//!
//! Runs the Rhodopsin-like MD benchmark (32 K atoms, 512³ PPPM grid, 32
//! simulated Summit nodes) twice — once with the default fftMPI-style FFT
//! configuration (pencils, blocking point-to-point, host-staged MPI) and
//! once with tuned heFFTe settings (slabs + Alltoallv + GPU-aware, per the
//! phase diagram) — and prints both LAMMPS-style breakdowns.
//!
//! Run with: `cargo run --release --example lammps_kspace [steps]`

use miniapps::md::{run_rhodopsin, RhodopsinConfig};
use simgrid::MachineSpec;

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let machine = MachineSpec::summit();

    println!("Rhodopsin-like benchmark: 32K atoms, 512^3 PPPM grid, 32 nodes, {steps} steps");
    println!();

    let default_cfg = RhodopsinConfig::fftmpi_default(steps);
    let tuned_cfg = RhodopsinConfig::heffte_tuned(steps);
    println!(
        "default FFT: {} + {} (gpu-aware: {})",
        default_cfg.fft.decomp.name(),
        default_cfg.fft.backend.routine(),
        default_cfg.gpu_aware
    );
    println!(
        "tuned FFT:   {} + {} (gpu-aware: {})",
        tuned_cfg.fft.decomp.name(),
        tuned_cfg.fft.backend.routine(),
        tuned_cfg.gpu_aware
    );
    println!();

    let default_bd = run_rhodopsin(&machine, &default_cfg);
    let tuned_bd = run_rhodopsin(&machine, &tuned_cfg);

    println!(
        "{:>8} {:>16} {:>16}",
        "phase", "fftMPI default", "heFFTe tuned"
    );
    for ((label, a), (_, b)) in default_bd.rows().into_iter().zip(tuned_bd.rows()) {
        println!("{label:>8} {:>14.4} s {:>14.4} s", a.as_secs(), b.as_secs());
    }
    println!(
        "{:>8} {:>14.4} s {:>14.4} s",
        "TOTAL",
        default_bd.total().as_secs(),
        tuned_bd.total().as_secs()
    );
    println!();
    let kspace_cut =
        100.0 * (1.0 - tuned_bd.kspace.as_ns() as f64 / default_bd.kspace.as_ns() as f64);
    println!("KSPACE reduction from FFT tuning: {kspace_cut:.1}% (paper Fig. 12: ~40%)");
}
