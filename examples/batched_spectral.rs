//! Batched pseudo-spectral step: the Fig. 13 feature in application form.
//!
//! Differentiates the three velocity components of a periodic field with
//! one *batched* distributed transform (batch = 3), verifies the derivative
//! against the analytic answer, and compares per-transform cost against
//! isolated transforms — the >2× batching win of the paper.
//!
//! Run with: `cargo run --release --example batched_spectral`

use distfft::plan::FftOptions;
use fftkern::C64;
use miniapps::spectral::{batching_comparison, spectral_step, SpectralConfig};
use simgrid::MachineSpec;

fn main() {
    let n = [32usize, 8, 8];
    let ranks = 4;
    let machine = MachineSpec::summit();
    let tau = 2.0 * std::f64::consts::PI;

    // Three "velocity components": sin(kx) with k = 1, 2, 3.
    let total = n[0] * n[1] * n[2];
    let fields: Vec<Vec<C64>> = (1..=3)
        .map(|k| {
            (0..total)
                .map(|i| {
                    let x = (i / (n[1] * n[2])) as f64 / n[0] as f64;
                    C64::real((tau * k as f64 * x).sin())
                })
                .collect()
        })
        .collect();

    let cfg = SpectralConfig {
        n,
        ranks,
        fft: FftOptions {
            batch: 3,
            pipeline_chunks: 3,
            ..FftOptions::default()
        },
    };
    let (ddx, time) = spectral_step(&machine, &cfg, &fields);

    // d/dx sin(k·2πx) = k·2π·cos(k·2πx).
    let mut worst: f64 = 0.0;
    for (k, comp) in ddx.iter().enumerate() {
        let kf = (k + 1) as f64;
        for (i, v) in comp.iter().enumerate() {
            let x = (i / (n[1] * n[2])) as f64 / n[0] as f64;
            let want = kf * tau * (tau * kf * x).cos();
            worst = worst.max((v.re - want).abs().max(v.im.abs()));
        }
    }
    println!("batched spectral derivative: max error {worst:.2e}, simulated time {time}");
    assert!(worst < 1e-8);

    // The Fig. 13 measurement at application scale: 64^3, batch of 16.
    println!();
    println!("batching win on a 64^3 transform (2 Summit nodes, batch 16):");
    let (batched, isolated) =
        batching_comparison(&machine, [64, 64, 64], 12, 16, &FftOptions::default());
    println!(
        "  per transform: batched {batched}, isolated {isolated}  ->  speedup {:.2}x",
        isolated.as_ns() as f64 / batched.as_ns() as f64
    );
}
