//! HACC-style spectral Poisson solve on the simulated cluster.
//!
//! Solves `∇²φ = ρ` on a 32³ periodic grid over 8 simulated ranks: forward
//! distributed *real-to-complex* FFT (half-spectrum `Real3dPlan`), Green's-
//! function multiply (`−1/|k|²`) over the non-redundant bins, inverse
//! complex-to-real FFT. The result is verified against the serial solver
//! and against an analytic single-mode solution.
//!
//! Run with: `cargo run --release --example poisson_solver`

use distfft::plan::FftOptions;
use miniapps::poisson::{solve_poisson_distributed, test_density};
use simgrid::MachineSpec;

fn main() {
    let n = [32usize, 32, 32];
    let ranks = 8;
    let machine = MachineSpec::summit();

    // A multi-mode zero-mean density.
    let rho = test_density(n);
    let res = solve_poisson_distributed(&machine, ranks, n, FftOptions::default(), &rho);
    println!(
        "multi-mode density: rel. L2 error vs serial solver = {:.2e}, simulated time {}",
        res.rel_error, res.time
    );
    assert!(res.rel_error < 1e-12);

    // Analytic check: rho = sin(2*pi*x) => phi = -sin(2*pi*x)/(2*pi)^2.
    let tau = 2.0 * std::f64::consts::PI;
    let mut rho1 = Vec::with_capacity(n[0] * n[1] * n[2]);
    let mut phi_exact = Vec::with_capacity(n[0] * n[1] * n[2]);
    for i0 in 0..n[0] {
        for _ in 0..n[1] * n[2] {
            let x = i0 as f64 / n[0] as f64;
            rho1.push((tau * x).sin());
            phi_exact.push(-(tau * x).sin() / (tau * tau));
        }
    }
    let res1 = solve_poisson_distributed(&machine, ranks, n, FftOptions::default(), &rho1);
    let max_err = res1
        .phi
        .iter()
        .zip(&phi_exact)
        .map(|(got, want)| (got - want).abs())
        .fold(0.0, f64::max);
    println!("single-mode density: max error vs analytic solution = {max_err:.2e}");
    assert!(max_err < 1e-12);

    println!("Poisson solve verified on {ranks} simulated ranks.");
}
