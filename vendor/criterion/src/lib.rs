//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal wall-clock benchmark harness exposing the
//! criterion API surface its benches use: `criterion_group!`/
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups with
//! `sample_size`/`throughput`/`bench_with_input`, `Bencher::iter`, and
//! `black_box`.
//!
//! Measurement strategy: each benchmark is calibrated so one sample takes
//! roughly [`TARGET_SAMPLE`], then `sample_size` samples are collected and
//! the minimum / median / mean per-iteration times are reported. Command
//! line arguments that are not flags act as substring filters on benchmark
//! ids, like real criterion.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock duration of one measurement sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(25);

/// Default number of samples per benchmark.
const DEFAULT_SAMPLES: usize = 10;

/// Throughput annotation (recorded for API compatibility; the stub reports
/// elements/bytes per second when one is set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the harness-chosen number of iterations, timing the
    /// whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Picks up a substring filter from the command line (any argument not
    /// starting with `-`), mirroring criterion's CLI behaviour.
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    /// Benchmarks a single function under `id`.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&self.filter, id, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLES,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of measurement samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `group_name/id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one_sampled(
            &self.criterion.filter,
            &full,
            self.throughput,
            self.sample_size,
            f,
        );
        self
    }

    /// Benchmarks `f` with an input value under `group_name/id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finishes the group (report output is per-benchmark; this is a
    /// no-op kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one(
    filter: &Option<String>,
    id: &str,
    throughput: Option<Throughput>,
    f: impl FnMut(&mut Bencher),
) {
    run_one_sampled(filter, id, throughput, DEFAULT_SAMPLES, f)
}

fn run_one_sampled(
    filter: &Option<String>,
    id: &str,
    throughput: Option<Throughput>,
    samples: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    if let Some(pat) = filter {
        if !id.contains(pat.as_str()) {
            return;
        }
    }

    // Calibrate: grow the iteration count until one sample is long enough
    // to time reliably.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE || iters >= 1 << 30 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            16
        } else {
            // Aim straight for the target with 20% headroom, at least 2x.
            ((TARGET_SAMPLE.as_nanos() as f64 / b.elapsed.as_nanos() as f64) * 1.2).ceil() as u64
        };
        iters = iters.saturating_mul(grow.clamp(2, 1 << 20));
    }

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let best = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {}/s", si(n as f64 / (median * 1e-9))),
        Throughput::Bytes(n) => format!("  {}B/s", si(n as f64 / (median * 1e-9))),
    });
    println!(
        "{id:<48} time: [{} {} {}]{}",
        fmt_ns(best),
        fmt_ns(median),
        fmt_ns(mean),
        rate.unwrap_or_default()
    );
}

/// Formats a duration in nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.4} s", ns / 1e9)
    }
}

fn si(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2} G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2} M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2} K", x / 1e3)
    } else {
        format!("{x:.1} ")
    }
}

/// Declares a benchmark group function calling each target in order.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Declares `main` running each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        c.bench_function("spin", |b| b.iter(|| black_box(3u64).pow(7)));
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.throughput(Throughput::Elements(8));
        g.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let filter = Some("nomatch".to_string());
        // Would spin forever on a match; returning immediately proves the skip.
        run_one(&filter, "other", None, |_b| panic!("must not run"));
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(12.0), "12.00 ns");
        assert!(fmt_ns(1.2e4).ends_with("µs"));
        assert!(fmt_ns(1.2e7).ends_with("ms"));
        assert!(fmt_ns(1.2e10).ends_with('s'));
    }
}
