//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the tiny slice of the `parking_lot` API it actually
//! uses, implemented on top of `std::sync`. Semantics match parking_lot
//! where they differ from std: locks are not poisoned by panics (a
//! poisoned std lock is transparently recovered), and `lock()` returns the
//! guard directly rather than a `Result`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};

/// A mutual exclusion primitive (non-poisoning `lock()` like parking_lot).
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex wrapping `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Internally holds an `Option` so [`Condvar::wait`] can move the std guard
/// out and back in through a `&mut` reference.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A condition variable with parking_lot's `wait(&mut guard)` signature.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks the current thread until the condvar is notified, atomically
    /// releasing and re-acquiring the mutex behind `guard`.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

/// A reader-writer lock (non-poisoning, parking_lot-style API).
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock wrapping `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
