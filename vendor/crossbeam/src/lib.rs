//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of `crossbeam::thread` it actually uses —
//! `scope`, `Scope::spawn`, and the named/stack-sized `builder()` path —
//! implemented on top of `std::thread::scope` (stable since Rust 1.63).
//!
//! Differences from real crossbeam are confined to unjoined-panicking-
//! thread handling (std aborts the scope with a panic instead of returning
//! `Err`); every caller in this workspace joins all handles explicitly, so
//! the observable behaviour is identical.

/// Scoped threads (the `crossbeam::thread` module surface).
pub mod thread {
    use std::io;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The result type of [`scope`] and [`ScopedJoinHandle::join`].
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle passed to the [`scope`] closure and to each spawned
    /// thread's closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope so it
        /// can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let me = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&me)),
            }
        }

        /// Returns a builder for configuring a scoped thread's name and
        /// stack size before spawning it.
        pub fn builder<'s>(&'s self) -> ScopedThreadBuilder<'s, 'scope, 'env> {
            ScopedThreadBuilder {
                scope: self,
                builder: std::thread::Builder::new(),
            }
        }
    }

    /// Builder for a named / custom-stack scoped thread.
    pub struct ScopedThreadBuilder<'s, 'scope, 'env> {
        scope: &'s Scope<'scope, 'env>,
        builder: std::thread::Builder,
    }

    impl<'s, 'scope, 'env> ScopedThreadBuilder<'s, 'scope, 'env> {
        /// Names the thread-to-be.
        pub fn name(mut self, name: String) -> Self {
            self.builder = self.builder.name(name);
            self
        }

        /// Sets the thread's stack size in bytes.
        pub fn stack_size(mut self, size: usize) -> Self {
            self.builder = self.builder.stack_size(size);
            self
        }

        /// Spawns the configured thread.
        pub fn spawn<F, T>(self, f: F) -> io::Result<ScopedJoinHandle<'scope, T>>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let me = *self.scope;
            let inner = self
                .builder
                .spawn_scoped(self.scope.inner, move || f(&me))?;
            Ok(ScopedJoinHandle { inner })
        }
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload if it panicked).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Creates a scope in which threads borrowing the environment can be
    /// spawned; all spawned threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::thread::scope(|s| {
            let wrapper = Scope { inner: s };
            catch_unwind(AssertUnwindSafe(|| f(&wrapper)))
        })
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .iter()
                .map(|&x| {
                    scope
                        .builder()
                        .name(format!("worker-{x}"))
                        .stack_size(1 << 20)
                        .spawn(move |_| x * 10)
                        .expect("spawn")
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .expect("scope");
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let r = crate::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .expect("scope");
        assert_eq!(r, 7);
    }
}
