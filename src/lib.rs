//! # parallel-fft-repro
//!
//! Umbrella crate of the reproduction of *"Performance Analysis of Parallel
//! FFT on Large Multi-GPU Systems"* (Ayala, Tomov, Stoyanov, Haidar,
//! Dongarra — IPDPSW 2022). Re-exports the workspace crates so examples and
//! downstream users can depend on one package:
//!
//! * [`fftkern`] — the local FFT engine (cuFFT/rocFFT/FFTW substitute);
//! * [`simgrid`] — the simulated Summit/Spock cluster;
//! * [`mpisim`] — the simulated MPI layer (SpectrumMPI/MVAPICH profiles);
//! * [`distfft`] — the distributed FFT library (the paper's contribution);
//! * [`fftmodels`] — the bandwidth model, phase diagram and tuner;
//! * [`miniapps`] — LAMMPS/HACC/pseudo-spectral style workloads.
//!
//! See `README.md` for a guided tour and `DESIGN.md` for the experiment
//! index mapping every table and figure of the paper to a harness binary.

#![forbid(unsafe_code)]

pub use distfft;
pub use fftkern;
pub use fftmodels;
pub use miniapps;
pub use mpisim;
pub use simgrid;
