//! Criterion benches, one per table/figure of the paper: each measures the
//! headline experiment of that figure (on the simulated machine) so
//! `cargo bench` exercises every reproduction path end to end. The full
//! printed tables/series come from the `src/bin/figN` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use distfft::plan::{CommBackend, FftOptions};
use distfft::procgrid::table3_sequence;
use distfft::Decomp;
use fft_bench::{timed_average, timed_average_with_comm, N512, N64};
use fftmodels::bandwidth::{b_pencils, t_pencils, t_slabs, ModelParams};
use fftmodels::phase::predict_decomp;
use miniapps::md::{run_rhodopsin, RhodopsinConfig};
use miniapps::spectral::batching_comparison;
use simgrid::MachineSpec;

fn small(c: &mut Criterion, name: &str, mut f: impl FnMut()) {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    g.bench_function("run", |b| b.iter(&mut f));
    g.finish();
}

fn table1_backends(c: &mut Criterion) {
    // Every Table I routine exists and plans/executes.
    let m = MachineSpec::summit();
    small(c, "table1_all_backends_24ranks", || {
        for backend in [
            CommBackend::AllToAll,
            CommBackend::AllToAllV,
            CommBackend::AllToAllW,
            CommBackend::P2p,
            CommBackend::P2pBlocking,
        ] {
            let _ = timed_average(
                &m,
                N64,
                24,
                FftOptions {
                    backend,
                    ..FftOptions::default()
                },
                true,
            );
        }
    });
}

fn fig2_3_alltoall_vs_p2p(c: &mut Criterion) {
    let m = MachineSpec::summit();
    small(c, "fig2_alltoallv_512cubed_24gpus", || {
        let _ = timed_average(&m, N512, 24, FftOptions::default(), true);
    });
    small(c, "fig3_p2p_512cubed_24gpus", || {
        let _ = timed_average(
            &m,
            N512,
            24,
            FftOptions {
                backend: CommBackend::P2p,
                ..FftOptions::default()
            },
            true,
        );
    });
}

fn fig4_bandwidth_model(c: &mut Criterion) {
    let m = MachineSpec::summit();
    small(c, "fig4_bandwidth_sweep", || {
        for ranks in [6usize, 96, 768] {
            let (_, comm) = timed_average_with_comm(&m, N512, ranks, FftOptions::default(), true);
            let _ = b_pencils(
                (N512[0] * N512[1] * N512[2]) as f64,
                24,
                32,
                comm.as_secs(),
                1e-6,
            );
        }
    });
}

fn fig5_phase_diagram(c: &mut Criterion) {
    small(c, "fig5_model_phase_diagram", || {
        let p = ModelParams::summit();
        for ranks in [6usize, 96, 384, 3072] {
            let _ = predict_decomp(N512, ranks, &p);
            let _ = t_slabs((N512[0] * N512[1] * N512[2]) as f64, ranks.min(512), &p);
            let _ = t_pencils((N512[0] * N512[1] * N512[2]) as f64, 24, 32, &p);
        }
    });
}

fn fig6_7_breakdowns(c: &mut Criterion) {
    let m = MachineSpec::summit();
    small(c, "fig6_padded_alltoall_24gpus", || {
        let _ = timed_average(
            &m,
            N512,
            24,
            FftOptions {
                backend: CommBackend::AllToAll,
                contiguous_fft: true,
                ..FftOptions::default()
            },
            true,
        );
    });
    small(c, "fig7_blocking_p2p_24gpus", || {
        let _ = timed_average(
            &m,
            N512,
            24,
            FftOptions {
                backend: CommBackend::P2pBlocking,
                ..FftOptions::default()
            },
            true,
        );
    });
}

fn fig8_9_gpu_aware_scaling(c: &mut Criterion) {
    let m = MachineSpec::summit();
    small(c, "fig8_alltoall_scaling_aware_vs_staged", || {
        for aware in [true, false] {
            let _ = timed_average_with_comm(&m, N512, 192, FftOptions::default(), aware);
        }
    });
    small(c, "fig9_p2p_scaling_aware_vs_staged", || {
        for aware in [true, false] {
            let _ = timed_average_with_comm(
                &m,
                N512,
                192,
                FftOptions {
                    backend: CommBackend::P2p,
                    ..FftOptions::default()
                },
                aware,
            );
        }
    });
}

fn fig10_strided_kernels(c: &mut Criterion) {
    let m = MachineSpec::summit();
    let km = m.kernel_model();
    small(c, "fig10_kernel_model_calls", || {
        for first in [true, false] {
            let _ = km.batched_fft_1d_ns(512, 512, fftkern::LayoutKind::Strided, first);
            let _ = km.batched_fft_1d_ns(512, 512, fftkern::LayoutKind::Contiguous, false);
        }
    });
}

fn fig11_gpu_aware_16nodes(c: &mut Criterion) {
    let m = MachineSpec::summit();
    small(c, "fig11_alltoallv_96gpus_aware_toggle", || {
        for aware in [true, false] {
            let _ = timed_average_with_comm(&m, N512, 96, FftOptions::default(), aware);
        }
    });
}

fn fig12_rhodopsin(c: &mut Criterion) {
    let m = MachineSpec::summit();
    small(c, "fig12_rhodopsin_breakdown", || {
        let _ = run_rhodopsin(&m, &RhodopsinConfig::fftmpi_default(1));
        let _ = run_rhodopsin(&m, &RhodopsinConfig::heffte_tuned(1));
    });
}

fn fig13_batching(c: &mut Criterion) {
    small(c, "fig13_batched_64cubed", || {
        let _ = batching_comparison(&MachineSpec::summit(), N64, 24, 16, &FftOptions::default());
        let _ = batching_comparison(&MachineSpec::spock(), N64, 16, 16, &FftOptions::default());
    });
}

fn table3_grids(c: &mut Criterion) {
    small(c, "table3_grid_sequences", || {
        for ranks in [6usize, 24, 768, 3072] {
            let _ = table3_sequence(ranks, N512);
        }
    });
}

fn ablation_grid_shrinking(c: &mut Criterion) {
    // DESIGN.md ablation: grid shrinking for a small transform on many ranks.
    let m = MachineSpec::summit();
    small(c, "ablation_shrink_64cubed_192ranks", || {
        for shrink in [None, Some(24)] {
            let _ = timed_average(
                &m,
                N64,
                192,
                FftOptions {
                    shrink_to: shrink,
                    ..FftOptions::default()
                },
                true,
            );
        }
    });
}

fn ablation_decomp(c: &mut Criterion) {
    let m = MachineSpec::summit();
    small(c, "ablation_slabs_vs_pencils_192ranks", || {
        for decomp in [Decomp::Slabs, Decomp::Pencils] {
            let _ = timed_average(
                &m,
                N512,
                192,
                FftOptions {
                    decomp,
                    ..FftOptions::default()
                },
                true,
            );
        }
    });
}

criterion_group!(
    benches,
    table1_backends,
    fig2_3_alltoall_vs_p2p,
    fig4_bandwidth_model,
    fig5_phase_diagram,
    fig6_7_breakdowns,
    fig8_9_gpu_aware_scaling,
    fig10_strided_kernels,
    fig11_gpu_aware_16nodes,
    fig12_rhodopsin,
    fig13_batching,
    table3_grids,
    ablation_grid_shrinking,
    ablation_decomp
);
criterion_main!(benches);
