//! Criterion benchmarks of the simulation engine itself: plan construction,
//! analytic execution, schedule walkers, and the functional executor. These
//! measure the *reproduction infrastructure* (host-side cost of simulating),
//! complementing the per-figure harnesses in `src/bin` which regenerate the
//! paper's numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distfft::dryrun::{DryRunOpts, DryRunner};
use distfft::exec::{bind, execute, ExecCtx};
use distfft::plan::{FftOptions, FftPlan};
use fftkern::{Direction, C64};
use mpisim::comm::{Comm, World, WorldOpts};
use mpisim::pattern::{self, NetParams, PhaseEnv};
use simgrid::{MachineSpec, SimTime};

fn bench_plan_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_build_512cubed");
    for ranks in [24usize, 192, 768] {
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &r| {
            b.iter(|| FftPlan::build([512, 512, 512], r, FftOptions::default()));
        });
    }
    group.finish();
}

fn bench_dryrun(c: &mut Criterion) {
    let machine = MachineSpec::summit();
    let mut group = c.benchmark_group("dryrun_forward_512cubed");
    group.sample_size(20);
    for ranks in [24usize, 768] {
        let plan = FftPlan::build([512, 512, 512], ranks, FftOptions::default());
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, _| {
            b.iter(|| {
                let mut runner = DryRunner::new(&plan, &machine, DryRunOpts::default());
                runner.run(Direction::Forward)
            });
        });
    }
    group.finish();
}

fn bench_walkers(c: &mut Criterion) {
    let machine = MachineSpec::summit();
    let np = NetParams::exact(&machine);
    let env = PhaseEnv::machine_wide(&machine, 768, 23, true, 1);
    let group_ranks: Vec<usize> = (0..768).collect();
    let entries = vec![SimTime::ZERO; 768];

    let mut g = c.benchmark_group("walkers_768ranks");
    g.bench_function("pairwise", |b| {
        b.iter(|| pattern::pairwise_times(&np, &env, &group_ranks, &entries, &|_, _| 4096, 0))
    });
    g.bench_function("scatter", |b| {
        b.iter(|| {
            pattern::scatter_times(
                &np,
                &env,
                &group_ranks,
                &entries,
                &|_, _| 4096,
                pattern::P2pFlavor::NonBlocking,
                true,
                &|_, _| 0,
                &|_, _| 0,
            )
        })
    });
    g.bench_function("bruck", |b| {
        let totals = vec![4096usize * 768; 768];
        b.iter(|| pattern::bruck_times(&np, &env, &group_ranks, &entries, &totals))
    });
    g.finish();
}

fn bench_functional_executor(c: &mut Criterion) {
    let machine = MachineSpec::testbox(2);
    let plan = FftPlan::build([16, 16, 16], 8, FftOptions::default());
    let mut group = c.benchmark_group("functional_16cubed_8ranks");
    group.sample_size(20);
    group.bench_function("forward", |b| {
        b.iter(|| {
            let world = World::new(machine.clone(), 8, WorldOpts::default());
            world.run(|rank| {
                let comm = Comm::world(rank);
                let bound = bind(&plan, rank, &comm);
                let mut ctx = ExecCtx::new();
                let vol = plan.dists[0].rank_box(rank.rank()).volume();
                let mut data = vec![vec![C64::ONE; vol]];
                execute(
                    &plan,
                    &bound,
                    &mut ctx,
                    rank,
                    &comm,
                    &mut data,
                    Direction::Forward,
                )
                .total
            })
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_plan_build,
    bench_dryrun,
    bench_walkers,
    bench_functional_executor
);
criterion_main!(benches);
