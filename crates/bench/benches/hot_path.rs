//! Criterion benchmarks for the hot-path execution overhaul: cached 1-D
//! plans + pooled scratch vs the old build-per-call path (`plan_reuse`),
//! the per-rank reshape-buffer pool in the functional executor
//! (`reshape_pool`), and the parallel analytic sweeps (`sweep_parallel`).
//!
//! `cargo bench -p fft-bench --bench hot_path`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distfft::exec::{bind, execute, ExecCtx};
use distfft::plan::{FftOptions, FftPlan};
use fftkern::plan::{Engine, Layout, Plan1d};
use fftkern::{plan_cache, Direction, C64};
use mpisim::comm::{Comm, World, WorldOpts};
use simgrid::MachineSpec;

fn signal(n: usize) -> Vec<C64> {
    (0..n)
        .map(|i| C64::new((0.1 * i as f64).sin(), (0.3 * i as f64).cos()))
        .collect()
}

/// Cold path (pre-overhaul engine): build a legacy radix-2 plan on every
/// call and let `execute_inplace` allocate its own scratch. Warm path: fetch
/// the Stockham plan from the global cache and run through a caller-held
/// scratch buffer — the same A/B protocol as `bench_snapshot`.
fn bench_plan_reuse(c: &mut Criterion) {
    // (n, batch): a pow2 production size and an awkward Bluestein size —
    // the plan-build cost the cache removes is largest for the latter.
    for (n, batch) in [(512usize, 16usize), (499, 1)] {
        let mut group = c.benchmark_group(format!("plan_reuse_{n}x{batch}"));
        let mut data = signal(n * batch);
        group.bench_function("cold_build_per_call", |b| {
            b.iter(|| {
                let plan = Plan1d::with_engine(
                    n,
                    batch,
                    Layout::contiguous(n),
                    Layout::contiguous(n),
                    Engine::Legacy,
                );
                plan.execute_inplace(&mut data, Direction::Forward);
            });
        });
        let mut scratch = Vec::new();
        group.bench_function("warm_cache_pooled_scratch", |b| {
            b.iter(|| {
                let plan =
                    plan_cache().plan1d(n, batch, Layout::contiguous(n), Layout::contiguous(n));
                if scratch.len() < plan.scratch_elems() {
                    scratch.resize(plan.scratch_elems(), C64::ZERO);
                }
                plan.execute_inplace_scratch(&mut data, Direction::Forward, &mut scratch);
            });
        });
        group.finish();
    }
}

/// Strided-axis batch (the mid-axis of a pencil decomposition): 64
/// interleaved lines of 512 points at stride 64. Cold = legacy per-line
/// gather/scatter radix-2, built per call; warm = cached Stockham plan with
/// cache-blocked tile gather/scatter.
fn bench_strided_axis(c: &mut Criterion) {
    let (n, stride) = (512usize, 64usize);
    let mut group = c.benchmark_group("strided_axis_512x64");
    group.sample_size(20);
    let mut data = signal(n * stride);
    group.bench_function("cold_legacy_per_line", |b| {
        b.iter(|| {
            let plan = Plan1d::with_engine(
                n,
                stride,
                Layout::strided(stride),
                Layout::strided(stride),
                Engine::Legacy,
            );
            plan.execute_inplace(&mut data, Direction::Forward);
        });
    });
    let mut scratch = Vec::new();
    group.bench_function("warm_blocked_tiles", |b| {
        b.iter(|| {
            let plan =
                plan_cache().plan1d(n, stride, Layout::strided(stride), Layout::strided(stride));
            if scratch.len() < plan.scratch_elems() {
                scratch.resize(plan.scratch_elems(), C64::ZERO);
            }
            plan.execute_inplace_scratch(&mut data, Direction::Forward, &mut scratch);
        });
    });
    group.finish();
}

/// Functional distributed execute, pre-overhaul vs overhauled — the same
/// A/B as `bench_snapshot`'s functional row: fresh legacy-baseline contexts
/// on an unfused, unmemoized world vs a long-lived multi-worker context on
/// a default world.
fn bench_reshape_pool(c: &mut Criterion) {
    let machine = MachineSpec::testbox(2);
    let plan = FftPlan::build([16, 16, 16], 8, FftOptions::default());
    let mut group = c.benchmark_group("reshape_pool_16cubed_8ranks");
    group.sample_size(10);
    for (label, reuse) in [("legacy_baseline", false), ("pooled_ctx", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &reuse, |b, &reuse| {
            b.iter(|| {
                let opts = WorldOpts {
                    sched_memo: reuse,
                    fused_meta: reuse,
                    ..WorldOpts::default()
                };
                let world = World::new(machine.clone(), 8, opts);
                world.run(|rank| {
                    let comm = Comm::world(rank);
                    let bound = bind(&plan, rank, &comm);
                    let fresh = || {
                        if reuse {
                            ExecCtx::with_threads(2)
                        } else {
                            ExecCtx::legacy_baseline()
                        }
                    };
                    let mut ctx = fresh();
                    let vol = plan.dists[0].rank_box(rank.rank()).volume();
                    for _ in 0..8 {
                        if !reuse {
                            ctx = fresh(); // drop pools + plans every rep
                        }
                        let mut data = vec![vec![C64::ONE; vol]];
                        execute(
                            &plan,
                            &bound,
                            &mut ctx,
                            rank,
                            &comm,
                            &mut data,
                            Direction::Forward,
                        );
                    }
                })
            });
        });
    }
    group.finish();
}

/// Analytic sweep over a ladder of rank counts, serial vs `par_map`.
fn bench_sweep_parallel(c: &mut Criterion) {
    let m = MachineSpec::summit();
    let ladder = [6usize, 12, 24, 48, 96, 192];
    let mut group = c.benchmark_group("sweep_parallel_fig4_ladder");
    group.sample_size(10);
    let run = |threads: usize| {
        fftmodels::par::par_map_with(threads, &ladder, |&ranks| {
            fft_bench::timed_average(&m, [64, 64, 64], ranks, FftOptions::default(), true)
        })
    };
    group.bench_function("serial", |b| b.iter(|| run(1)));
    group.bench_function("par_map", |b| b.iter(|| run(fftmodels::sweep_threads())));
    group.finish();
}

criterion_group!(
    benches,
    bench_plan_reuse,
    bench_strided_axis,
    bench_reshape_pool,
    bench_sweep_parallel
);
criterion_main!(benches);
