//! Observability acceptance tests: the Chrome-trace export of a real
//! protocol run must round-trip through the JSON reader with per-rank
//! pids and the paper's phase names, and enabling metrics must not perturb
//! the simulated timeline at all.

use distfft::plan::FftOptions;
use distfft::trace::{export_chrome_trace, phase_summary};
use fft_bench::protocol_traces;
use fftobs::json::{self, Json};
use simgrid::MachineSpec;

fn run_traces() -> Vec<distfft::Trace> {
    protocol_traces(
        &MachineSpec::summit(),
        [32, 32, 32],
        12,
        FftOptions::default(),
        true,
        0.0,
    )
}

#[test]
fn chrome_export_roundtrips_with_phases_and_ranks() {
    let traces = run_traces();
    let text = export_chrome_trace(&traces);
    let doc = json::parse(&text).expect("export must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");

    let mut pids = std::collections::BTreeSet::new();
    let mut names = std::collections::BTreeSet::new();
    let mut tids = std::collections::BTreeSet::new();
    let mut n_complete = 0;
    for e in events {
        if e.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        n_complete += 1;
        for field in ["name", "pid", "tid", "ts", "dur"] {
            assert!(e.get(field).is_some(), "X event missing {field}");
        }
        pids.insert(e.get("pid").and_then(Json::as_f64).unwrap() as i64);
        tids.insert(e.get("tid").and_then(Json::as_f64).unwrap() as i64);
        names.insert(e.get("name").and_then(Json::as_str).unwrap().to_string());
    }
    assert!(n_complete > 0, "no complete events exported");
    // One pid per rank.
    assert_eq!(
        pids.into_iter().collect::<Vec<_>>(),
        (0..12).collect::<Vec<i64>>()
    );
    // Both resource lanes appear.
    assert_eq!(tids.into_iter().collect::<Vec<_>>(), vec![0, 1]);
    // The paper's phases: local kernels + the MPI routine.
    for want in ["FFT", "pack", "unpack"] {
        assert!(names.contains(want), "missing phase {want}: {names:?}");
    }
    assert!(
        names.iter().any(|n| n.starts_with("MPI_")),
        "missing MPI phase: {names:?}"
    );

    // The summary table covers the same phases.
    let summary = phase_summary(&traces);
    assert!(
        summary.contains("FFT") && summary.contains("pack"),
        "{summary}"
    );
}

#[test]
fn enabling_metrics_does_not_change_the_timeline() {
    // Instrumentation observes — it must never steer. The event streams of
    // an instrumented and an uninstrumented run must be identical.
    fftobs::set_enabled(false);
    let quiet = run_traces();
    fftobs::set_enabled(true);
    let observed = run_traces();
    fftobs::set_enabled(false);
    assert_eq!(quiet.len(), observed.len());
    for (r, (a, b)) in quiet.iter().zip(observed.iter()).enumerate() {
        assert_eq!(a.events, b.events, "rank {r} timeline perturbed by metrics");
    }
    // And the metrics actually recorded something while enabled.
    let snap = fftobs::registry().snapshot();
    assert!(
        snap.counter("distfft.events.mpi").unwrap_or(0) > 0,
        "instrumented run recorded no MPI events"
    );
}
