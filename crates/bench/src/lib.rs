//! Shared support for the per-figure benchmark harnesses.
//!
//! Each binary in `src/bin` regenerates one table or figure of the paper
//! (see DESIGN.md §3 for the index). The helpers here cover the shared
//! experimental protocol — the paper's measurement convention (§IV: "the
//! average runtime of 8 FFTs (4 forward and 4 backward), preceded by 2 FFTs
//! to warm up"), Table III's rank ladder, and plain-text table output.

#![forbid(unsafe_code)]

use distfft::dryrun::{DryRunOpts, DryRunner};
use distfft::plan::{FftOptions, FftPlan};
use distfft::trace::Trace;
use fftkern::Direction;
use simgrid::{MachineSpec, SimTime};

/// The Table III rank ladder: 1…512 Summit nodes at 6 GPUs per node.
pub fn table3_ranks() -> Vec<usize> {
    vec![6, 12, 24, 48, 96, 192, 384, 768, 1536, 3072]
}

/// The paper's headline transform.
pub const N512: [usize; 3] = [512, 512, 512];

/// The paper's application/batched transform.
pub const N64: [usize; 3] = [64, 64, 64];

/// Warm-up transforms before timing (paper protocol).
pub const WARMUPS: usize = 2;
/// Timed forward+backward pairs (paper protocol: 8 FFTs).
pub const PAIRS: usize = 4;

/// Runs the paper protocol and returns the average per-transform time.
pub fn timed_average(
    machine: &MachineSpec,
    n: [usize; 3],
    ranks: usize,
    opts: FftOptions,
    gpu_aware: bool,
) -> SimTime {
    timed_average_memo(machine, n, ranks, opts, gpu_aware, true)
}

/// [`timed_average`] with explicit control over the dry runner's
/// collective-schedule memo. Memoization is exact (memo on/off agree to the
/// nanosecond — asserted by `sched_memo_is_time_exact`), so this knob only
/// exists for honest A/B wall-clock benches of the memo itself.
pub fn timed_average_memo(
    machine: &MachineSpec,
    n: [usize; 3],
    ranks: usize,
    opts: FftOptions,
    gpu_aware: bool,
    sched_memo: bool,
) -> SimTime {
    let plan = FftPlan::build(n, ranks, opts);
    let mut runner = DryRunner::new(
        &plan,
        machine,
        DryRunOpts {
            gpu_aware,
            sched_memo,
            ..DryRunOpts::default()
        },
    );
    runner.timed_average(WARMUPS, PAIRS)
}

/// Runs the paper protocol and additionally returns the average per-transform
/// communication time (max over ranks of summed MPI-call durations).
pub fn timed_average_with_comm(
    machine: &MachineSpec,
    n: [usize; 3],
    ranks: usize,
    opts: FftOptions,
    gpu_aware: bool,
) -> (SimTime, SimTime) {
    let plan = FftPlan::build(n, ranks, opts);
    let mut runner = DryRunner::new(
        &plan,
        machine,
        DryRunOpts {
            gpu_aware,
            ..DryRunOpts::default()
        },
    );
    for i in 0..WARMUPS {
        let dir = if i % 2 == 0 {
            Direction::Forward
        } else {
            Direction::Inverse
        };
        let _ = runner.run(dir);
    }
    let mut total = SimTime::ZERO;
    let mut comm = SimTime::ZERO;
    for _ in 0..PAIRS {
        for dir in [Direction::Forward, Direction::Inverse] {
            let rep = runner.run(dir);
            total += rep.makespan();
            comm += rep.comm_max();
        }
    }
    let k = (2 * PAIRS) as u64;
    (
        SimTime::from_ns(total.as_ns() / k),
        SimTime::from_ns(comm.as_ns() / k),
    )
}

/// Collects per-rank traces of the full 10-transform protocol (2 warm-up +
/// 8 timed), concatenated in execution order per rank — the raw material of
/// the per-call figures (Figs. 2, 3, 10).
pub fn protocol_traces(
    machine: &MachineSpec,
    n: [usize; 3],
    ranks: usize,
    opts: FftOptions,
    gpu_aware: bool,
    noise: f64,
) -> Vec<Trace> {
    let plan = FftPlan::build(n, ranks, opts);
    let mut runner = DryRunner::new(
        &plan,
        machine,
        DryRunOpts {
            gpu_aware,
            noise_amplitude: noise,
            ..DryRunOpts::default()
        },
    );
    let mut merged: Vec<Trace> = vec![Trace::new(); ranks];
    for i in 0..(WARMUPS + 2 * PAIRS) {
        let dir = if i % 2 == 0 {
            Direction::Forward
        } else {
            Direction::Inverse
        };
        let rep = runner.run(dir);
        for (m, t) in merged.iter_mut().zip(rep.traces) {
            m.events.extend(t.events);
        }
    }
    merged
}

/// Per-category runtime breakdown over the full protocol, max across ranks:
/// the MPI routine total plus each kernel label (the Figs. 6/7 stacked bars).
pub fn protocol_breakdown(
    machine: &MachineSpec,
    n: [usize; 3],
    ranks: usize,
    opts: distfft::plan::FftOptions,
    gpu_aware: bool,
    noise: f64,
) -> Vec<(String, SimTime)> {
    let routine = opts.backend.routine();
    let traces = protocol_traces(machine, n, ranks, opts, gpu_aware, noise);
    let mut rows: Vec<(String, SimTime)> = Vec::new();
    let comm = traces
        .iter()
        .map(|t| t.comm_total())
        .fold(SimTime::ZERO, SimTime::max);
    rows.push((routine.to_string(), comm));
    let mut labels: Vec<&'static str> = traces
        .iter()
        .flat_map(|t| t.kernel_breakdown().into_keys())
        .collect();
    labels.sort_unstable();
    labels.dedup();
    for label in labels {
        let v = traces
            .iter()
            .map(|t| {
                t.kernel_breakdown()
                    .get(label)
                    .copied()
                    .unwrap_or(SimTime::ZERO)
            })
            .fold(SimTime::ZERO, SimTime::max);
        rows.push((label.to_string(), v));
    }
    rows
}

/// Prints one breakdown side (Figs. 6/7) and returns its total in seconds.
pub fn print_breakdown_side(title: &str, rows: &[(String, SimTime)]) -> f64 {
    println!("--- {title}");
    let mut t = TextTable::new(&["kernel", "total (s)", "share"]);
    let total: f64 = rows.iter().map(|(_, v)| v.as_secs()).sum();
    for (label, v) in rows {
        t.row(vec![
            label.clone(),
            format!("{:.4}", v.as_secs()),
            format!("{:5.1}%", 100.0 * v.as_secs() / total),
        ]);
    }
    t.row(vec!["TOTAL".into(), format!("{total:.4}"), "100.0%".into()]);
    println!("{}", t.render());
    total
}

/// Formats a duration in the unit the paper's figures use (seconds with
/// millisecond precision for totals, µs for kernels).
pub fn fmt_s(t: SimTime) -> String {
    format!("{:9.4}", t.as_secs())
}

/// Formats a duration in milliseconds.
pub fn fmt_ms(t: SimTime) -> String {
    format!("{:10.3}", t.as_ms())
}

/// Observability options of a figure harness, parsed from the command line.
///
/// * `--trace-out <file>` — export the harness's per-rank timeline as
///   Chrome-trace JSON (load in `chrome://tracing` / <https://ui.perfetto.dev>).
/// * `--metrics` (or env `FFT_METRICS=1`) — print the span summary and the
///   global metrics snapshot.
/// * `--profile-out <file>` — write the harness's [`fftprof::Profile`]
///   (phase attribution, critical path, contention, model residual) as JSON
///   to `<file>` and collapsed stacks to `<file>.folded`.
///
/// Any flag enables the [`fftobs`] registry for the run. All output goes
/// to **stderr** or the named file — never stdout — so the figure's stdout
/// stays byte-identical whether or not observability is on (the simulation
/// itself never reads a metric back, and the profiler only analyses traces
/// after the fact).
#[derive(Debug, Default)]
pub struct Obs {
    trace_out: Option<std::path::PathBuf>,
    profile_out: Option<std::path::PathBuf>,
    ledger_out: Option<std::path::PathBuf>,
    metrics: bool,
}

impl Obs {
    /// Parses `--trace-out <file>` / `--profile-out <file>` /
    /// `--ledger <file>` / `--metrics` from `std::env::args` and enables
    /// metric recording when any is requested. `FFT_LEDGER=<file>` is the
    /// env-var spelling of `--ledger` for harnesses driven by scripts.
    pub fn from_env() -> Obs {
        let mut obs = Obs::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--trace-out" => {
                    let file = args
                        .next()
                        .unwrap_or_else(|| panic!("--trace-out requires a file argument"));
                    obs.trace_out = Some(std::path::PathBuf::from(file));
                }
                "--profile-out" => {
                    let file = args
                        .next()
                        .unwrap_or_else(|| panic!("--profile-out requires a file argument"));
                    obs.profile_out = Some(std::path::PathBuf::from(file));
                }
                "--ledger" => {
                    let file = args
                        .next()
                        .unwrap_or_else(|| panic!("--ledger requires a file argument"));
                    obs.ledger_out = Some(std::path::PathBuf::from(file));
                }
                "--metrics" => obs.metrics = true,
                _ => {}
            }
        }
        if obs.ledger_out.is_none() {
            if let Some(path) = fftobs::env::raw_var("FFT_LEDGER") {
                if !path.trim().is_empty() {
                    obs.ledger_out = Some(std::path::PathBuf::from(path));
                }
            }
        }
        if fftobs::env::raw_var("FFT_METRICS").is_some_and(|v| v == "1") {
            obs.metrics = true;
        }
        if obs.active() {
            fftobs::set_enabled(true);
        }
        obs
    }

    /// True when any observability output was requested.
    pub fn active(&self) -> bool {
        self.trace_out.is_some()
            || self.profile_out.is_some()
            || self.ledger_out.is_some()
            || self.metrics
    }

    /// True when `--profile-out` or `--ledger` was requested — both need
    /// the harness to run the profiler.
    pub fn profiling(&self) -> bool {
        self.profile_out.is_some() || self.ledger_out.is_some()
    }

    /// Writes a profile to the `--profile-out` file (JSON) and its
    /// collapsed stacks next to it (`<file>.folded`). No-op when
    /// profiling was not requested.
    pub fn emit_profile(&self, profile: &fftprof::Profile) {
        let Some(path) = &self.profile_out else {
            return;
        };
        let write = |p: std::path::PathBuf, body: String, what: &str| match std::fs::write(&p, body)
        {
            Ok(()) => eprintln!("{what} written to {}", p.display()),
            Err(e) => {
                eprintln!("error: failed to write {what} to {}: {e}", p.display());
                std::process::exit(1);
            }
        };
        write(path.clone(), profile.to_json(), "profile");
        let mut folded = path.clone().into_os_string();
        folded.push(".folded");
        write(folded.into(), profile.to_collapsed(), "collapsed stacks");
    }

    /// Appends one ledger record for `profile` to the `--ledger` file:
    /// the profile's phase/contention/residual data, the current metrics
    /// snapshot, an environment stamp, and a config fingerprint extended
    /// with the runtime knobs that shape timing (SIMD tier, executor
    /// threads, parallel grain, reshape chunking). No-op when no ledger
    /// was requested; writes only to the ledger file and stderr, so the
    /// harness's stdout stays byte-identical either way.
    pub fn emit_ledger(&self, profile: &fftprof::Profile) {
        let Some(path) = &self.ledger_out else {
            return;
        };
        // Wall-clock is fine here: the bench harness is host-side tooling,
        // not part of the simulation (fftledger itself never reads a clock).
        let ts_ns = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let env = fftledger::EnvStamp {
            rustc: run_stamp("rustc", &["-V"]),
            git_rev: run_stamp("git", &["rev-parse", "--short", "HEAD"]),
            cpu: fftkern::simd::detected_features(),
            threads: fftmodels::sweep_threads() as u64,
        };
        let snapshot = fftobs::registry().snapshot();
        let mut record =
            fftledger::LedgerRecord::from_profile(ts_ns, &profile.label, env, profile, &snapshot);
        record
            .fingerprint
            .set("simd", fftkern::simd::active_tier().name())
            .set("exec_threads", distfft::exec::exec_threads())
            .set("exec_grain", distfft::exec::par_min_elems())
            .set("reshape_chunks", distfft::exec::reshape_chunks_setting(1));
        match fftledger::Ledger::append(path, &record) {
            Ok(()) => eprintln!(
                "ledger record {} appended to {}",
                record.fingerprint.digest(),
                path.display()
            ),
            Err(e) => {
                eprintln!("error: failed to append ledger to {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    /// Emits the requested artifacts for the harness's per-rank traces:
    /// Chrome-trace JSON to the `--trace-out` file, span summary plus
    /// metrics snapshot to stderr under `--metrics`.
    pub fn emit(&self, traces: &[Trace]) {
        if let Some(path) = &self.trace_out {
            let json = distfft::trace::export_chrome_trace(traces);
            match std::fs::write(path, json) {
                Ok(()) => eprintln!("trace written to {}", path.display()),
                Err(e) => {
                    eprintln!("error: failed to write trace to {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
        if self.metrics {
            eprintln!("--- phase summary (all ranks)");
            eprint!("{}", distfft::trace::phase_summary(traces));
            eprintln!("--- metrics");
            eprint!("{}", fftobs::registry().snapshot().render_text());
        }
    }
}

/// Runs a command and returns its trimmed stdout, or `"unknown"` — used
/// for `rustc -V` / `git rev-parse` environment stamps on snapshots and
/// ledger records.
pub fn run_stamp(cmd: &str, args: &[&str]) -> String {
    std::process::Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// A minimal aligned text table.
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> TextTable {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(c, cell)| format!("{:>width$}", cell, width = widths[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Prints the standard experiment banner.
pub fn banner(fig: &str, desc: &str) {
    println!("==============================================================");
    println!("{fig}: {desc}");
    println!("(simulated Summit/Spock; paper protocol: 2 warm-up + 8 timed FFTs)");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfft::plan::FftOptions;

    #[test]
    fn text_table_aligns() {
        let mut t = TextTable::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("333"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn protocol_helpers_are_consistent() {
        // Forced chunking overlaps MPI-call spans, so summed call time can
        // legitimately exceed the makespan; this pins the monolithic
        // protocol only (the CI chunking legs set the override).
        if fftobs::env::is_set("FFT_RESHAPE_CHUNKS") {
            return;
        }
        let m = MachineSpec::summit();
        let avg = timed_average(&m, [32, 32, 32], 12, FftOptions::default(), true);
        let (avg2, comm) =
            timed_average_with_comm(&m, [32, 32, 32], 12, FftOptions::default(), true);
        assert!(avg.as_ns() > 0);
        // The two protocols measure slightly differently (global span vs
        // per-transform makespans) but must be within a few percent.
        let ratio = avg.as_ns() as f64 / avg2.as_ns() as f64;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
        assert!(comm <= avg2);
    }

    #[test]
    fn parallel_sweep_byte_identical_to_serial() {
        // The figure harnesses fan the configuration grid out with
        // `fftmodels::par_map`; the rows they emit must not depend on the
        // worker count. Evaluate the same grid serially and with several
        // threads and require exact `SimTime` equality.
        let m = MachineSpec::summit();
        let grid: Vec<(usize, bool)> = vec![(6, true), (12, false), (24, true), (48, false)];
        let eval = |cfg: &(usize, bool)| {
            timed_average(&m, [32, 32, 32], cfg.0, FftOptions::default(), cfg.1)
        };
        let serial = fftmodels::par::par_map_with(1, &grid, eval);
        for threads in [2, 4] {
            let parallel = fftmodels::par::par_map_with(threads, &grid, eval);
            assert_eq!(
                serial, parallel,
                "{threads}-thread sweep diverged from serial"
            );
        }
    }

    #[test]
    fn sched_memo_is_time_exact() {
        // The dry runner's schedule memo replays relative exits; the
        // walkers are time-shift invariant, so memo on/off must agree to
        // the nanosecond — the memoized warm bench leg measures the same
        // simulation as the cold one, just faster.
        let m = MachineSpec::summit();
        let plan = FftPlan::build([32, 32, 32], 24, FftOptions::default());
        let t = |memo: bool| {
            let mut r = DryRunner::new(
                &plan,
                &m,
                DryRunOpts {
                    sched_memo: memo,
                    ..DryRunOpts::default()
                },
            );
            r.timed_average(WARMUPS, PAIRS)
        };
        assert_eq!(t(true), t(false));
    }

    #[test]
    fn traces_cover_all_protocol_calls() {
        // The 40-call count is the Fig. 2 protocol fact for monolithic
        // exchanges; forced per-peer chunking multiplies it, so skip under
        // the override (the CI chunking legs set it).
        if fftobs::env::is_set("FFT_RESHAPE_CHUNKS") {
            return;
        }
        let m = MachineSpec::summit();
        let traces = protocol_traces(&m, [32, 32, 32], 12, FftOptions::default(), true, 0.0);
        assert_eq!(traces.len(), 12);
        // 10 transforms × 4 reshapes = 40 MPI calls (the Fig. 2 x-axis).
        assert_eq!(traces[0].mpi_call_durations().len(), 40);
    }
}
