//! Self-timed snapshot of the hot-path microbenchmarks, emitted as JSON so
//! the speedup of the kernel-engine overhaul is recorded in-tree
//! (`BENCH_engine.json`) and checkable by CI without the Criterion harness.
//!
//! Usage: `cargo run --release -p fft-bench --bin bench_snapshot [out.json]`
//! (or `scripts/bench_snapshot`). Exits non-zero if the headline
//! repeated-transform microbench falls below the 2x acceptance threshold.
//!
//! Cold vs warm: **cold** is the faithful pre-overhaul path — the seed's
//! `Engine::Legacy` scalar radix-2 kernels (bit-reversal pass, per-line
//! gather/scatter), a fresh plan built per call, allocating execution,
//! butterfly dispatch pinned to the scalar tier (`FFT_SIMD=off`
//! equivalent), and for the distributed row a fresh serial `ExecCtx` per
//! transform. **Warm** is the overhauled path — Stockham autosort kernels
//! under auto SIMD dispatch (widest of scalar/AVX2/AVX-512 the host has),
//! the global plan cache, caller-held scratch, and for the distributed row
//! a long-lived context with pooled buffers and `> 1` executor workers.
//! The tier pinning uses `fftkern::simd::force_tier`, the in-process
//! equivalent of the `FFT_SIMD` env knob (which is read only once).

use std::time::Instant;

use distfft::dryrun::{DryRunOpts, DryRunner};
use distfft::exec::{bind, execute, ExecCtx};
use distfft::plan::{FftOptions, FftPlan};
use fftkern::plan::{Engine, Layout, Plan1d};
use fftkern::simd::{self, SimdTier};
use fftkern::{plan_cache, Direction, C64};
use mpisim::comm::{Comm, World, WorldOpts};
use simgrid::MachineSpec;

/// Executor worker count used for the warm distributed row.
const WARM_EXEC_THREADS: usize = 2;

fn median_ns(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// Median-of-samples wall time per call for a cold/warm pair, in
/// nanoseconds. Samples are *interleaved* (cold, warm, cold, warm, …) so a
/// sustained clock-speed drift — thermal throttling after minutes of
/// full-load CI — hits both legs equally instead of landing entirely on
/// whichever leg happens to be measured last.
fn time_pair_ns(
    mut cold: impl FnMut(),
    mut warm: impl FnMut(),
    iters: u32,
    samples: u32,
) -> (f64, f64) {
    // One untimed warm-up sample per leg absorbs lazy init (twiddle
    // interning, page faults) so both variants start from the same global
    // state.
    for _ in 0..iters {
        cold();
    }
    for _ in 0..iters {
        warm();
    }
    let mut cold_samples = Vec::with_capacity(samples as usize);
    let mut warm_samples = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            cold();
        }
        cold_samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        let start = Instant::now();
        for _ in 0..iters {
            warm();
        }
        warm_samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    (median_ns(cold_samples), median_ns(warm_samples))
}

fn signal(n: usize) -> Vec<C64> {
    (0..n)
        .map(|i| C64::new((0.1 * i as f64).sin(), (0.3 * i as f64).cos()))
        .collect()
}

struct Row {
    name: &'static str,
    cold_ns: f64,
    warm_ns: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.cold_ns / self.warm_ns
    }
}

/// Cold = the pre-overhaul inner loop: a fresh legacy-engine `Plan1d` per
/// call, scratch allocated inside `execute_inplace`. Warm = overhauled
/// engine via the global plan cache + caller-held scratch. Same transform,
/// same data; the engines agree within FFT round-off
/// (`tests/equivalence.rs` asserts it exhaustively).
fn plan_reuse_row(name: &'static str, n: usize, batch: usize, layout: Layout, iters: u32) -> Row {
    // Strided layouts interleave lines; the buffer is batch*n either way.
    // Two data buffers so the legs don't hand each other warmed caches in
    // lockstep; both start from the same signal.
    let mut cold_data = signal(n * batch);
    let mut warm_data = cold_data.clone();
    let mut scratch = Vec::new();
    let (cold_ns, warm_ns) = time_pair_ns(
        || {
            // Pinned scalar butterflies: the legacy engine never dispatches
            // SIMD, but the pin makes the pre-overhaul baseline explicit
            // (and keeps it honest if the legacy path ever learns to).
            simd::force_tier(Some(SimdTier::Scalar));
            let plan = Plan1d::with_engine(n, batch, layout, layout, Engine::Legacy);
            plan.execute_inplace(&mut cold_data, Direction::Forward);
        },
        || {
            simd::force_tier(None); // auto: widest detected tier
            let plan = plan_cache().plan1d(n, batch, layout, layout);
            if scratch.len() < plan.scratch_elems() {
                scratch.resize(plan.scratch_elems(), C64::ZERO);
            }
            plan.execute_inplace_scratch(&mut warm_data, Direction::Forward, &mut scratch);
        },
        iters,
        7,
    );
    simd::force_tier(None);
    Row {
        name,
        cold_ns,
        warm_ns,
    }
}

/// Functional distributed transform. Cold = the pre-overhaul executor: a
/// fresh serial [`ExecCtx::legacy_baseline`] per transform (legacy radix-2
/// kernels, fresh 1-D plans, empty reshape pool) on a world without the
/// collective-schedule memo. Warm = the overhauled executor: a long-lived
/// context with [`WARM_EXEC_THREADS`] workers whose pool and kernel
/// scratch stay warm across calls, on a memoizing world.
fn reshape_pool_row(iters: u32) -> Row {
    let machine = MachineSpec::testbox(2);
    let plan = FftPlan::build([16, 16, 16], 8, FftOptions::default());
    let run = |reuse_ctx: bool, iters: u32| {
        // Tier pinning mirrors the plan-reuse rows: cold = scalar
        // butterflies, warm = auto dispatch. Set before the world spawns
        // its rank threads (the force is process-global).
        simd::force_tier(if reuse_ctx {
            None
        } else {
            Some(SimdTier::Scalar)
        });
        let opts = WorldOpts {
            sched_memo: reuse_ctx,
            fused_meta: reuse_ctx,
            ..WorldOpts::default()
        };
        let world = World::new(machine.clone(), 8, opts);
        let plan = &plan;
        let times = world.run(move |rank| {
            let comm = Comm::world(rank);
            let bound = bind(plan, rank, &comm);
            let fresh_ctx = || {
                if reuse_ctx {
                    ExecCtx::with_threads(WARM_EXEC_THREADS)
                } else {
                    ExecCtx::legacy_baseline()
                }
            };
            let mut ctx = fresh_ctx();
            let vol = plan.dists[0].rank_box(rank.rank()).volume();
            let mut data = vec![vec![C64::ONE; vol]];
            // Warm-up pass (also fills the pool for the reuse variant).
            execute(
                plan,
                &bound,
                &mut ctx,
                rank,
                &comm,
                &mut data,
                Direction::Forward,
            );
            let start = Instant::now();
            for _ in 0..iters {
                if !reuse_ctx {
                    ctx = fresh_ctx(); // drop pools + plans every rep
                }
                let mut data = vec![vec![C64::ONE; vol]];
                execute(
                    plan,
                    &bound,
                    &mut ctx,
                    rank,
                    &comm,
                    &mut data,
                    Direction::Forward,
                );
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        });
        times.iter().copied().fold(0.0, f64::max)
    };
    // Median over a few repetitions of the whole world run, with the
    // cold/warm runs interleaved so sustained clock drift cancels out of
    // the ratio (same rationale as `time_pair_ns`).
    let (mut cold_samples, mut warm_samples) = (Vec::new(), Vec::new());
    for _ in 0..5 {
        cold_samples.push(run(false, iters));
        warm_samples.push(run(true, iters));
    }
    simd::force_tier(None);
    Row {
        name: "functional_exec_16cubed_8ranks",
        cold_ns: median_ns(cold_samples),
        warm_ns: median_ns(warm_samples),
    }
}

/// Analytic figure-style sweep. Cold = the pre-overhaul analytic path:
/// serial grid evaluation with the dry runner's collective-schedule memo
/// off, so every transform re-walks its O(p²) exit schedules. Warm = the
/// overhauled path: `par_map` fan-out (thread count from the host — 1 on a
/// single-core CI box) over memoizing runners. Samples are interleaved for
/// the same drift-cancellation reason as `time_pair_ns` — the previous
/// cold-all-then-warm-all shape of this row put all of the clock drift on
/// one leg, which is how an identical-work pair once recorded 0.98×.
fn sweep_parallel_row() -> Row {
    let m = MachineSpec::summit();
    let ladder = [6usize, 12, 24, 48, 96, 192];
    let sweep = |threads: usize, memo: bool| {
        fftmodels::par::par_map_with(threads, &ladder, |&ranks| {
            fft_bench::timed_average_memo(
                &m,
                [64, 64, 64],
                ranks,
                FftOptions::default(),
                true,
                memo,
            )
        })
    };
    let time = |threads: usize, memo: bool| {
        let start = Instant::now();
        let _ = sweep(threads, memo);
        start.elapsed().as_nanos() as f64
    };
    // One untimed pass per leg (lazy init), then interleaved samples.
    let _ = time(1, false);
    let _ = time(fftmodels::sweep_threads(), true);
    let (mut cold_samples, mut warm_samples) = (Vec::new(), Vec::new());
    for _ in 0..3 {
        cold_samples.push(time(1, false));
        warm_samples.push(time(fftmodels::sweep_threads(), true));
    }
    Row {
        name: "analytic_sweep_6pt_ladder",
        cold_ns: median_ns(cold_samples),
        warm_ns: median_ns(warm_samples),
    }
}

/// Pipelined-reshape A/B (DESIGN.md §14): *simulated* average transform
/// time of the 8-rank pencil workload under the paper's measurement
/// protocol, monolithic reshapes (cold, `reshape_chunks = 1`) vs per-peer
/// chunked reshapes (warm, `reshape_chunks = 8`, clamped per group). Both
/// legs are exact schedule-walker outputs, so this row is deterministic —
/// its speedup moves only when the overlap model or the walkers change,
/// and the >25% `bench_compare` floor catches the overlap path turning
/// into a slowdown. The margin itself is structurally thin: chunking hides
/// pack/unpack kernels behind the wire, and on every modeled machine the
/// wire dominates — testbox's GPU-to-NIC ratio shows the largest win.
/// (`FFT_RESHAPE_CHUNKS` would override both legs; CI keeps it unset for
/// the snapshot run.)
fn reshape_overlap_row() -> Row {
    let m = MachineSpec::testbox(2);
    let sim_ns = |chunks: usize| {
        let opts = FftOptions {
            reshape_chunks: chunks,
            ..FftOptions::default()
        };
        let plan = FftPlan::build([64, 64, 64], 8, opts);
        let mut runner = DryRunner::new(&plan, &m, DryRunOpts::default());
        runner.timed_average(2, 4).as_ns() as f64
    };
    Row {
        name: "chunked_reshape_overlap_8ranks",
        cold_ns: sim_ns(1),
        warm_ns: sim_ns(8),
    }
}

/// Transform-ahead A/B (DESIGN.md §16): the 8-rank pencil protocol at
/// 128³, monolithic exchanges (cold, `reshape_chunks = 1`) vs the full
/// transform-ahead path (warm, `reshape_chunks = 0` — model-driven
/// auto-k with next-axis butterflies running as chunks land). Unlike the
/// §14 row the warm win comes from *compute* hidden under the wire, not
/// just pack/unpack; testbox again, whose GPU-to-NIC ratio leaves enough
/// butterfly time to hide (on the Summit model the wire so dominates that
/// auto correctly stays at k = 1 and the row would be flat). At this size
/// auto's pick ties the best fixed k, so the row also gates the selection
/// model. Deterministic schedule-walker output on both legs.
/// (`FFT_RESHAPE_CHUNKS` would override both legs; CI keeps it unset for
/// the snapshot run.)
fn transform_ahead_row() -> Row {
    let m = MachineSpec::testbox(2);
    let sim_ns = |chunks: usize| {
        let opts = FftOptions {
            reshape_chunks: chunks,
            ..FftOptions::default()
        };
        let plan = FftPlan::build([128, 128, 128], 8, opts);
        let mut runner = DryRunner::new(&plan, &m, DryRunOpts::default());
        runner.timed_average(2, 4).as_ns() as f64
    };
    Row {
        name: "transform_ahead_8ranks",
        cold_ns: sim_ns(1),
        warm_ns: sim_ns(0),
    }
}

/// Deterministic cache/pool efficiency numbers for the snapshot: a fresh
/// 8-rank functional run's scratch-pool stats (per-ctx, so parallel noise
/// can't skew them) plus the process-wide plan-cache totals.
fn efficiency_metrics() -> (distfft::PoolStats, u64, u64) {
    let machine = MachineSpec::testbox(2);
    let plan = FftPlan::build([16, 16, 16], 8, FftOptions::default());
    let world = World::new(machine, 8, WorldOpts::default());
    let plan_ref = &plan;
    let stats = world.run(move |rank| {
        let comm = Comm::world(rank);
        let bound = bind(plan_ref, rank, &comm);
        let mut ctx = ExecCtx::new();
        let vol = plan_ref.dists[0].rank_box(rank.rank()).volume();
        for _ in 0..6 {
            let mut data = vec![vec![C64::ONE; vol]];
            execute(
                plan_ref,
                &bound,
                &mut ctx,
                rank,
                &comm,
                &mut data,
                Direction::Forward,
            );
        }
        ctx.pool_stats()
    });
    let pool = stats
        .iter()
        .fold(distfft::PoolStats::default(), |a, s| distfft::PoolStats {
            hits: a.hits + s.hits,
            misses: a.misses + s.misses,
            evictions: a.evictions + s.evictions,
        });
    (pool, plan_cache().hits(), plan_cache().misses())
}

/// Span-duration percentiles (ns) over one deterministic protocol run of
/// the headline distributed configuration, estimated from a log₂
/// histogram — the same estimator the live metrics registry uses.
fn span_percentiles() -> (u64, u64, u64, u64) {
    let traces = fft_bench::protocol_traces(
        &MachineSpec::summit(),
        fft_bench::N64,
        24,
        FftOptions::default(),
        true,
        0.0,
    );
    let h = fftobs::Registry::new().histogram("span.dur_ns");
    let mut count = 0u64;
    for (rank, t) in traces.iter().enumerate() {
        for s in t.to_spans(rank as u32) {
            h.record(s.dur_ns);
            count += 1;
        }
    }
    (count, h.quantile(0.50), h.quantile(0.90), h.quantile(0.99))
}

fn main() {
    let obs = fft_bench::Obs::from_env();
    let mut out_path = String::from("BENCH_engine.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace-out" | "--profile-out" | "--ledger" => {
                let _ = args.next();
            }
            "--metrics" => {}
            other => out_path = other.to_string(),
        }
    }

    let rows = vec![
        // Headline acceptance microbench: repeated single transform of an
        // awkward (Bluestein) length, where per-call plan construction —
        // chirp tables plus two kernel FFTs — rivals the transform itself.
        plan_reuse_row(
            "repeated_transform_bluestein_499",
            499,
            1,
            Layout::contiguous(499),
            400,
        ),
        plan_reuse_row(
            "repeated_transform_pow2_512x16",
            512,
            16,
            Layout::contiguous(512),
            200,
        ),
        // Strided-axis tile path: interleaved lines (stride = batch), the
        // layout the distributed executor uses for axes 0/1. Cold runs the
        // legacy per-line gather/scatter; warm the cache-blocked tiles.
        plan_reuse_row("strided_axis_512x64", 512, 64, Layout::strided(64), 40),
        reshape_pool_row(64),
        sweep_parallel_row(),
        reshape_overlap_row(),
        transform_ahead_row(),
    ];

    let headline = rows[0].speedup();
    let threshold = 2.0;
    let (pool, pc_hits, pc_misses) = efficiency_metrics();

    let mut json = String::from("{\n");
    json.push_str("  \"suite\": \"kernel engine overhaul\",\n");
    json.push_str(
        "  \"protocol\": \"median of interleaved cold/warm samples, per-call ns; cold = pre-overhaul path (Engine::Legacy radix-2, scalar butterflies pinned, fresh plan per call, allocating execute, fresh serial ExecCtx, schedule memo off), warm = overhauled path (Stockham autosort, auto SIMD dispatch, PlanCache, pooled scratch, long-lived multi-worker ExecCtx, schedule memo on)\",\n",
    );
    json.push_str("  \"threads\": ");
    json.push_str(&fftmodels::sweep_threads().to_string());
    json.push_str(",\n  \"exec_threads\": ");
    json.push_str(&WARM_EXEC_THREADS.to_string());
    // Environment stamps: enough to interpret a regression report without
    // the machine it came from. `simd` is the tier the warm legs actually
    // dispatched; `cpu` the detected feature set — a 1.7× pow2 row from an
    // AVX-512 box and a scalar box are not comparable numbers. The
    // executor knobs (`reshape_chunks`, `exec_grain`) ride along because
    // they change the overlap schedule and the parallel split, two of the
    // biggest levers on the distributed rows.
    json.push_str(&format!(
        ",\n  \"env\": {{\"rustc\": \"{}\", \"git_rev\": \"{}\", \"threads\": {}, \"simd\": \"{}\", \"cpu\": \"{}\", \"reshape_chunks\": \"{}\", \"exec_grain\": {}}},\n",
        fft_bench::run_stamp("rustc", &["-V"]),
        fft_bench::run_stamp("git", &["rev-parse", "--short", "HEAD"]),
        fftmodels::sweep_threads(),
        simd::active_tier().name(),
        simd::detected_features(),
        distfft::exec::reshape_chunks_setting(1),
        distfft::exec::par_min_elems()
    ));
    json.push_str("  \"benches\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"cold_ns\": {:.1}, \"warm_ns\": {:.1}, \"speedup\": {:.2}}}{}\n",
            r.name,
            r.cold_ns,
            r.warm_ns,
            r.speedup(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    let pc_total = pc_hits + pc_misses;
    let pc_rate = if pc_total == 0 {
        0.0
    } else {
        pc_hits as f64 / pc_total as f64
    };
    let (span_count, p50, p90, p99) = span_percentiles();
    json.push_str(&format!(
        "  \"metrics\": {{\n    \"plan_cache\": {{\"hits\": {pc_hits}, \"misses\": {pc_misses}, \"hit_rate\": {pc_rate:.4}}},\n    \"exec_pool\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_rate\": {:.4}}},\n    \"span_dur_ns\": {{\"count\": {span_count}, \"p50\": {p50}, \"p90\": {p90}, \"p99\": {p99}}}\n  }},\n",
        pool.hits,
        pool.misses,
        pool.evictions,
        pool.hit_rate()
    ));
    json.push_str(&format!(
        "  \"acceptance\": {{\"metric\": \"{}\", \"speedup\": {:.2}, \"threshold\": {threshold}, \"pass\": {}}}\n",
        rows[0].name,
        headline,
        headline >= threshold
    ));
    json.push_str("}\n");

    // --trace-out on the snapshot exports the timeline of one protocol run
    // of the headline distributed configuration.
    if obs.active() {
        let traces = fft_bench::protocol_traces(
            &MachineSpec::summit(),
            [64, 64, 64],
            24,
            FftOptions::default(),
            true,
            0.0,
        );
        obs.emit(&traces);
    }
    // --profile-out / --ledger profile the same configuration; the ledger
    // additionally appends a fingerprinted record for regression history.
    if obs.profiling() {
        let profile = fftprof::profile_config(
            "bench_snapshot_64cubed_24r",
            &MachineSpec::summit(),
            [64, 64, 64],
            24,
            FftOptions::default(),
            true,
        );
        obs.emit_profile(&profile);
        obs.emit_ledger(&profile);
    }

    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("{json}");
    println!("wrote {out_path}");
    for r in &rows {
        println!(
            "{:<40} cold {:>12.0} ns  warm {:>12.0} ns  speedup {:>5.2}x",
            r.name,
            r.cold_ns,
            r.warm_ns,
            r.speedup()
        );
    }
    if headline < threshold {
        eprintln!("FAIL: headline speedup {headline:.2}x below {threshold}x");
        std::process::exit(1);
    }
}
