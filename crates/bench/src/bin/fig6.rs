//! Figure 6 — runtime breakdown for a 512³ c2c FFT on 24 V100s with
//! All-to-All communication (pencils): left, `MPI_Alltoall` with contiguous
//! (transposed) local FFTs; right, `MPI_Alltoallv` with strided data.
//!
//! Paper observations: the padded `Alltoall` shows higher runtime and
//! variability than `Alltoallv`; the gap comes from the brick↔pencil
//! reshapes where padding is large, while on the intermediate (pencil)
//! grids the difference is negligible; the contiguous FFT kernels are
//! faster but the transposing unpack is costlier.

use distfft::plan::{CommBackend, FftOptions};
use fft_bench::{banner, print_breakdown_side, protocol_breakdown, N512};
use simgrid::MachineSpec;

fn main() {
    banner(
        "Fig. 6",
        "runtime breakdown, 512^3 on 24 V100, All-to-All backends (10 FFTs)",
    );
    let m = MachineSpec::summit();
    let left = protocol_breakdown(
        &m,
        N512,
        24,
        FftOptions {
            backend: CommBackend::AllToAll,
            contiguous_fft: true,
            ..FftOptions::default()
        },
        true,
        0.04,
    );
    let right = protocol_breakdown(
        &m,
        N512,
        24,
        FftOptions {
            backend: CommBackend::AllToAllV,
            ..FftOptions::default()
        },
        true,
        0.04,
    );
    let lt = print_breakdown_side("MPI_Alltoall + contiguous (transposed) local FFTs", &left);
    let rt = print_breakdown_side("MPI_Alltoallv + strided local FFTs", &right);
    println!(
        "Alltoall/Alltoallv total ratio = {:.2}  (paper: padding makes Alltoall slower)",
        lt / rt
    );
}
