//! Figure 11 — `MPI_Alltoallv` with and without GPU-aware MPI at 16 Summit
//! nodes (96 V100): disabling GPU-awareness increases communication cost by
//! ≈30 %, because every message stages device → host → host → device.

use distfft::plan::{CommBackend, FftOptions};
use fft_bench::{banner, timed_average_with_comm, TextTable, N512};
use simgrid::MachineSpec;

fn main() {
    banner(
        "Fig. 11",
        "Alltoallv comm cost, GPU-aware vs not, 512^3 on 16 nodes (96 V100)",
    );
    let m = MachineSpec::summit();
    let opts = FftOptions {
        backend: CommBackend::AllToAllV,
        ..FftOptions::default()
    };
    let (tot_a, comm_a) = timed_average_with_comm(&m, N512, 96, opts.clone(), true);
    let (tot_s, comm_s) = timed_average_with_comm(&m, N512, 96, opts, false);

    let mut t = TextTable::new(&["setting", "comm (s)", "total (s)"]);
    t.row(vec![
        "GPU-aware".into(),
        format!("{:.4}", comm_a.as_secs()),
        format!("{:.4}", tot_a.as_secs()),
    ]);
    t.row(vec![
        "-no-gpu-aware".into(),
        format!("{:.4}", comm_s.as_secs()),
        format!("{:.4}", tot_s.as_secs()),
    ]);
    println!("{}", t.render());
    println!(
        "comm increase without GPU-awareness: {:.1}%  (paper: ~30%)",
        100.0 * (comm_s.as_ns() as f64 / comm_a.as_ns() as f64 - 1.0)
    );
}
