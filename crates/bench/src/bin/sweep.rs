//! Configuration sweep utility: the full (ranks × decomposition × backend ×
//! GPU-awareness) timing landscape for a given transform size — the raw
//! data behind Figs. 5, 8 and 9, in one table.
//!
//! Usage: `cargo run --release -p fft-bench --bin sweep [n] [machine]`
//! with `n` the cubic transform extent (default 512) and `machine` one of
//! `summit` (default) or `spock`.

use distfft::plan::{CommBackend, FftOptions};
use distfft::Decomp;
use fft_bench::{banner, timed_average, TextTable};
use simgrid::MachineSpec;

fn main() {
    let obs = fft_bench::Obs::from_env();
    // Positional args, skipping the observability flags and their values.
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace-out" | "--profile-out" | "--ledger" => {
                let _ = args.next();
            }
            "--metrics" => {}
            other => positional.push(other.to_string()),
        }
    }
    let n: usize = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let machine = match positional.get(1).map(|s| s.as_str()) {
        Some("spock") => MachineSpec::spock(),
        Some("summit") | None => MachineSpec::summit(),
        Some(other) => {
            eprintln!("unknown machine '{other}': expected 'summit' or 'spock'");
            std::process::exit(2);
        }
    };
    let size = [n, n, n];
    banner(
        "sweep",
        &format!("{n}^3 c2c configuration landscape on {}", machine.name),
    );

    let node_counts: Vec<usize> = [1usize, 2, 4, 8, 16, 32, 64, 128]
        .iter()
        .copied()
        .filter(|nodes| nodes * machine.gpus_per_node <= 4096)
        .collect();

    let mut t = TextTable::new(&[
        "nodes",
        "ranks",
        "decomp",
        "backend",
        "gpu-aware",
        "time/FFT (ms)",
    ]);
    // Flatten the whole configuration grid, dry-run every cell in parallel,
    // and emit rows in grid order — byte-identical to the serial sweep.
    let mut grid: Vec<(usize, usize, Decomp, CommBackend, bool)> = Vec::new();
    for &nodes in &node_counts {
        let ranks = nodes * machine.gpus_per_node;
        for decomp in [Decomp::Slabs, Decomp::Pencils] {
            if decomp == Decomp::Slabs && ranks > size[0].min(size[1]) {
                continue;
            }
            for backend in [
                CommBackend::AllToAll,
                CommBackend::AllToAllV,
                CommBackend::P2p,
            ] {
                for aware in [true, false] {
                    grid.push((nodes, ranks, decomp, backend, aware));
                }
            }
        }
    }
    let times = fftmodels::par_map(&grid, |&(_, ranks, decomp, backend, aware)| {
        timed_average(
            &machine,
            size,
            ranks,
            FftOptions {
                decomp,
                backend,
                ..FftOptions::default()
            },
            aware,
        )
    });
    for (&(nodes, ranks, decomp, backend, aware), time) in grid.iter().zip(times) {
        t.row(vec![
            format!("{nodes}"),
            format!("{ranks}"),
            decomp.name().to_string(),
            backend.routine().to_string(),
            if aware { "yes" } else { "no" }.to_string(),
            format!("{:.3}", time.as_ms()),
        ]);
    }
    println!("{}", t.render());

    // --profile-out: tune the largest swept configuration, print the
    // tuner's one-paragraph "why this decomposition" to stderr, and write
    // the winner's profile (JSON + collapsed stacks).
    if obs.profiling() {
        let ranks = *node_counts.last().expect("non-empty ladder") * machine.gpus_per_node;
        let choice = fftmodels::tuner::tune(&machine, size, ranks);
        eprintln!(
            "why this decomposition: {}",
            fftprof::why_decomposition(&machine, size, ranks, &choice)
        );
        let profile = fftprof::profile_config(
            &format!("sweep_{n}cubed_{ranks}r_tuned"),
            &machine,
            size,
            ranks,
            choice.opts.clone(),
            choice.gpu_aware,
        );
        obs.emit_profile(&profile);
        obs.emit_ledger(&profile);
    }
}
