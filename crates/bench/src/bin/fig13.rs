//! Figure 13 — batched computation of a 3-D FFT of size 64³ on NVIDIA
//! (Summit, 6 MPI/node) and AMD (Spock, 4 MPI/node) GPUs, 1 MPI per GPU:
//! per-transform cost inside a batch versus an isolated (non-batched)
//! transform. Paper: "we observe speedups of over 2× with respect to the
//! not batched version", from communication/computation overlap; Spock was
//! limited to 4 nodes at publication time.

use distfft::plan::FftOptions;
use fft_bench::{banner, TextTable, N64};
use miniapps::spectral::batching_comparison;
use simgrid::MachineSpec;

fn side(m: &MachineSpec, node_counts: &[usize], batch: usize) {
    println!(
        "--- {} ({} MPI ranks per node), batch = {batch}",
        m.name, m.gpus_per_node
    );
    let mut t = TextTable::new(&[
        "nodes",
        "ranks",
        "batched (ms/FFT)",
        "isolated (ms/FFT)",
        "speedup",
    ]);
    for &nodes in node_counts {
        let ranks = nodes * m.gpus_per_node;
        let (batched, single) = batching_comparison(m, N64, ranks, batch, &FftOptions::default());
        t.row(vec![
            format!("{nodes}"),
            format!("{ranks}"),
            format!("{:.3}", batched.as_ms()),
            format!("{:.3}", single.as_ms()),
            format!("{:.2}x", single.as_ns() as f64 / batched.as_ns() as f64),
        ]);
    }
    println!("{}", t.render());
}

fn main() {
    banner(
        "Fig. 13",
        "batched 64^3 c2c FFT: per-transform cost, batched vs isolated",
    );
    let batch = 16;
    side(&MachineSpec::summit(), &[1, 2, 4, 8], batch);
    // Spock was a prototype: the paper could not use more than 4 nodes.
    side(&MachineSpec::spock(), &[1, 2, 4], batch);
    println!("paper shape: >2x speedup per transform from batching on both vendors.");
}
