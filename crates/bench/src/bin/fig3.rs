//! Figure 3 — per-call communication runtime of the GPU-aware
//! Point-to-Point backends: blocking `MPI_Send`+`MPI_Irecv` versus
//! non-blocking `MPI_Isend`+`MPI_Irecv` (SpectrumMPI), computing a 512³
//! complex-to-complex FFT on 24 V100s. The paper's observation: "there is
//! not much difference when using blocking and non-blocking approaches".

use distfft::plan::{CommBackend, FftOptions};
use distfft::trace::Trace;
use fft_bench::{banner, protocol_traces, Obs, TextTable, N512};
use simgrid::MachineSpec;

fn main() {
    let obs = Obs::from_env();
    banner(
        "Fig. 3",
        "GPU-aware Point-to-Point per-call comm runtime, 512^3 c2c on 24 V100",
    );
    let m = MachineSpec::summit();
    let series = |backend| {
        protocol_traces(
            &m,
            N512,
            24,
            FftOptions {
                backend,
                ..FftOptions::default()
            },
            true,
            0.04,
        )
    };
    // The non-blocking run is the timeline exported under --trace-out.
    let nb_traces = series(CommBackend::P2p);
    let nonblocking = Trace::max_mpi_calls(&nb_traces);
    let blocking = Trace::max_mpi_calls(&series(CommBackend::P2pBlocking));
    obs.emit(&nb_traces);

    let mut t = TextTable::new(&["call", "Isend/Irecv (s)", "Send/Irecv (s)"]);
    for i in 0..nonblocking.len().min(blocking.len()) {
        t.row(vec![
            format!("{}", i + 1),
            format!("{:.4}", nonblocking[i].as_secs()),
            format!("{:.4}", blocking[i].as_secs()),
        ]);
    }
    println!("{}", t.render());

    let nb_total: f64 = nonblocking.iter().map(|t| t.as_secs()).sum();
    let b_total: f64 = blocking.iter().map(|t| t.as_secs()).sum();
    println!("totals: non-blocking {nb_total:.3} s, blocking {b_total:.3} s");
    println!(
        "ratio blocking/non-blocking = {:.3}  (paper: 'not much difference')",
        b_total / nb_total
    );
}
