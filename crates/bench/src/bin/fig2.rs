//! Figure 2 — per-call communication runtime of the GPU-aware All-to-All
//! family: `MPI_Alltoall` and `MPI_Alltoallv` (SpectrumMPI) versus
//! `MPI_Alltoallw` (MVAPICH-GDR, Algorithm 2), computing a 512³
//! complex-to-complex FFT on 24 V100s (4 Summit nodes). 10 transforms ×
//! 4 reshapes = 40 MPI calls.

use distfft::dryrun::{DryRunOpts, DryRunner};
use distfft::plan::{CommBackend, FftOptions, FftPlan, IoLayout};
use distfft::trace::Trace;
use fft_bench::{banner, Obs, TextTable, N512, PAIRS, WARMUPS};
use fftkern::Direction;
use mpisim::MpiDistro;
use simgrid::{MachineSpec, SimTime};

fn backend_traces(machine: &MachineSpec, backend: CommBackend, distro: MpiDistro) -> Vec<Trace> {
    let opts = FftOptions {
        backend,
        io: IoLayout::Brick,
        ..FftOptions::default()
    };
    let plan = FftPlan::build(N512, 24, opts);
    let mut runner = DryRunner::new(
        &plan,
        machine,
        DryRunOpts {
            distro,
            noise_amplitude: 0.04,
            ..DryRunOpts::default()
        },
    );
    let mut traces: Vec<Trace> = vec![Trace::new(); 24];
    for i in 0..(WARMUPS + 2 * PAIRS) {
        let dir = if i % 2 == 0 {
            Direction::Forward
        } else {
            Direction::Inverse
        };
        let rep = runner.run(dir);
        for (m, t) in traces.iter_mut().zip(rep.traces) {
            m.events.extend(t.events);
        }
    }
    traces
}

fn main() {
    let obs = Obs::from_env();
    banner(
        "Fig. 2",
        "GPU-aware All-to-All per-call comm runtime, 512^3 c2c on 24 V100 (4 nodes)",
    );
    let m = MachineSpec::summit();
    let a2a = Trace::max_mpi_calls(&backend_traces(
        &m,
        CommBackend::AllToAll,
        MpiDistro::SpectrumMpi,
    ));
    // The Alltoallv run is the paper's winning configuration — it is the
    // timeline exported under --trace-out.
    let a2av_traces = backend_traces(&m, CommBackend::AllToAllV, MpiDistro::SpectrumMpi);
    let a2av = Trace::max_mpi_calls(&a2av_traces);
    let a2aw = Trace::max_mpi_calls(&backend_traces(
        &m,
        CommBackend::AllToAllW,
        MpiDistro::MvapichGdr,
    ));
    obs.emit(&a2av_traces);

    let mut t = TextTable::new(&["call", "Alltoall (s)", "Alltoallv (s)", "Alltoallw (s)"]);
    let ncalls = a2a.len().min(a2av.len()).min(a2aw.len());
    for i in 0..ncalls {
        t.row(vec![
            format!("{}", i + 1),
            format!("{:.4}", a2a[i].as_secs()),
            format!("{:.4}", a2av[i].as_secs()),
            format!("{:.4}", a2aw[i].as_secs()),
        ]);
    }
    println!("{}", t.render());

    let sum = |v: &[SimTime]| -> f64 { v.iter().map(|t| t.as_secs()).sum() };
    println!("totals over {ncalls} calls:");
    println!("  MPI_Alltoall  (SpectrumMPI) : {:8.3} s", sum(&a2a));
    println!("  MPI_Alltoallv (SpectrumMPI) : {:8.3} s", sum(&a2av));
    println!("  MPI_Alltoallw (MVAPICH-GDR) : {:8.3} s", sum(&a2aw));
    println!();
    println!(
        "paper shape: Alltoallv fastest; padded Alltoall suffers on the\n\
         brick<->pencil reshape calls; unoptimized Alltoallw is worst."
    );
}
