//! §III model survey — the paper lists three literature models for FFT
//! communication cost and then builds its own (equations (2)/(3)). This
//! harness tabulates all four against the simulated machine's measured
//! communication time for a 512³ transform.

use distfft::plan::FftOptions;
use distfft::procgrid::closest_factor_pair;
use fft_bench::{banner, table3_ranks, timed_average_with_comm, TextTable, N512};
use fftmodels::bandwidth::{t_pencils, ModelParams};
use fftmodels::literature::{
    bisection_model, fat_tree_bisection_bps, fit_power_law, power_law, torus_lower_bound,
};
use simgrid::MachineSpec;

fn main() {
    banner(
        "models",
        "measured 512^3 comm time vs the Section III cost models",
    );
    let machine = MachineSpec::summit();
    let params = ModelParams::summit();
    let n_total = (N512[0] * N512[1] * N512[2]) as f64;

    // Measure.
    let measured: Vec<(usize, f64)> = table3_ranks()
        .into_iter()
        .filter(|&r| r <= 1536)
        .map(|ranks| {
            let (_, comm) =
                timed_average_with_comm(&machine, N512, ranks, FftOptions::default(), true);
            (ranks, comm.as_secs())
        })
        .collect();

    // Fit the Chatterjee-style regression T = c·nodes^-gamma on the data.
    let samples: Vec<(f64, f64)> = measured
        .iter()
        .map(|(r, t)| ((*r / 6) as f64, *t))
        .collect();
    let (c, gamma) = fit_power_law(&samples);

    let mut t = TextTable::new(&[
        "nodes",
        "measured (s)",
        "eq.(3) pencils (s)",
        "bisection N/sigma (s)",
        "regression c*n^-g (s)",
        "torus lower bound (s)",
    ]);
    for (ranks, meas) in &measured {
        let nodes = ranks / 6;
        let (p, q) = closest_factor_pair(*ranks);
        t.row(vec![
            format!("{nodes}"),
            format!("{meas:.4}"),
            format!("{:.4}", t_pencils(n_total, p, q, &params)),
            format!(
                "{:.4}",
                bisection_model(n_total, fat_tree_bisection_bps(nodes, 23.5e9))
            ),
            format!("{:.4}", power_law(c, gamma, nodes as f64)),
            format!("{:.4}", torus_lower_bound(n_total, *ranks, 23.5e9)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "fitted regression exponent gamma = {gamma:.2} (Chatterjee et al. style);\n\
         eq.(3) uses B = 23.5 GB/s, L = 1 us as in the paper's Section IV-A."
    );
}
