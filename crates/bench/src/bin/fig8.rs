//! Figure 8 — All-to-All communication with and without GPU-aware MPI for a
//! 512³ c2c FFT, 6 V100 per node: communication cost (left) and total time
//! (right) versus node count.
//!
//! Paper shape: both curves scale to 768 GPUs; disabling GPU-awareness
//! costs a roughly constant factor (≈30 % at 16 nodes, Fig. 11).

use distfft::plan::{CommBackend, FftOptions};
use fft_bench::{banner, table3_ranks, timed_average_with_comm, TextTable, N512};
use simgrid::MachineSpec;

fn main() {
    banner(
        "Fig. 8",
        "All-to-All comm and total time vs nodes, GPU-aware on/off, 512^3",
    );
    let m = MachineSpec::summit();
    let mut t = TextTable::new(&[
        "nodes",
        "ranks",
        "comm aware (s)",
        "comm staged (s)",
        "total aware (s)",
        "total staged (s)",
        "staged/aware",
    ]);
    let ladder: Vec<usize> = table3_ranks().into_iter().filter(|&r| r <= 768).collect();
    let rows = fftmodels::par_map(&ladder, |&ranks| {
        let opts = FftOptions {
            backend: CommBackend::AllToAllV,
            ..FftOptions::default()
        };
        let (tot_a, comm_a) = timed_average_with_comm(&m, N512, ranks, opts.clone(), true);
        let (tot_s, comm_s) = timed_average_with_comm(&m, N512, ranks, opts, false);
        (ranks, tot_a, comm_a, tot_s, comm_s)
    });
    for (ranks, tot_a, comm_a, tot_s, comm_s) in rows {
        t.row(vec![
            format!("{}", ranks / 6),
            format!("{ranks}"),
            format!("{:.4}", comm_a.as_secs()),
            format!("{:.4}", comm_s.as_secs()),
            format!("{:.4}", tot_a.as_secs()),
            format!("{:.4}", tot_s.as_secs()),
            format!("{:.2}", comm_s.as_ns() as f64 / comm_a.as_ns() as f64),
        ]);
    }
    println!("{}", t.render());
    println!("paper shape: both A2A variants keep scaling to 768 GPUs; the\nstaged (non-GPU-aware) path pays a constant ~1.2-1.4x factor.");
}
