//! Feature-detection smoke: prints what the SIMD dispatcher sees and which
//! tier each engine path would run, then proves the dispatch is live by
//! transforming once per available tier and cross-checking bit-identity.
//!
//! Usage: `cargo run -q -p fft-bench --bin simd_probe`. Exits non-zero if
//! any available tier's output diverges from scalar — a one-second version
//! of the full `simd_equivalence` suite, cheap enough for every CI run.
//! Respects `FFT_SIMD`, so CI can probe each setting's resolved tier.

use fftkern::plan::{Layout, Plan1d};
use fftkern::simd::{self, SimdTier};
use fftkern::{Direction, C64};

fn main() {
    println!("cpu features : {}", simd::detected_features());
    println!("detected tier: {}", simd::detected_tier().name());
    println!(
        "FFT_SIMD     : {}",
        fftobs::env::raw_var("FFT_SIMD").unwrap_or_else(|| "(unset)".into())
    );
    println!("active tier  : {}", simd::active_tier().name());

    let n = 512;
    let plan = Plan1d::with_layout(n, 4, Layout::contiguous(n), Layout::contiguous(n));
    println!("kernel (512×4): {}", plan.kernel_desc());

    let x: Vec<C64> = (0..plan.required_input_len())
        .map(|i| C64::new((0.3 * i as f64).sin(), (0.7 * i as f64).cos()))
        .collect();
    let run = |tier: SimdTier| {
        simd::force_tier(Some(tier));
        let mut d = x.clone();
        plan.execute_inplace(&mut d, Direction::Forward);
        simd::force_tier(None);
        d
    };
    let reference = run(SimdTier::Scalar);
    let mut ok = true;
    for tier in [SimdTier::Avx2, SimdTier::Avx512] {
        if !simd::tier_available(tier) {
            println!("tier {:<7}: not available on this host", tier.name());
            continue;
        }
        let got = run(tier);
        let identical = got
            .iter()
            .zip(&reference)
            .all(|(a, b)| a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits());
        println!(
            "tier {:<7}: {}",
            tier.name(),
            if identical {
                "bit-identical to scalar"
            } else {
                "DIVERGES from scalar"
            }
        );
        ok &= identical;
    }
    if !ok {
        eprintln!("FAIL: SIMD tier output diverges from scalar");
        std::process::exit(1);
    }
}
