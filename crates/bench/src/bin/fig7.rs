//! Figure 7 — runtime breakdown for a 512³ c2c FFT on 24 V100s with
//! Point-to-Point communication (pencils): left, non-blocking
//! `MPI_Isend`/`MPI_Irecv` with contiguous (transposed) local FFTs; right,
//! blocking `MPI_Send`/`MPI_Irecv` with strided data.
//!
//! Paper observations: the two flavors are nearly identical; the P2P
//! communication sum is slightly below the All-to-All one at this scale,
//! and the total 3-D FFT time is "pretty much the same (~0.09 s)".

use distfft::plan::{CommBackend, FftOptions};
use fft_bench::{banner, print_breakdown_side, protocol_breakdown, N512};
use simgrid::MachineSpec;

fn main() {
    banner(
        "Fig. 7",
        "runtime breakdown, 512^3 on 24 V100, Point-to-Point backends (10 FFTs)",
    );
    let m = MachineSpec::summit();
    let left = protocol_breakdown(
        &m,
        N512,
        24,
        FftOptions {
            backend: CommBackend::P2p,
            contiguous_fft: true,
            ..FftOptions::default()
        },
        true,
        0.04,
    );
    let right = protocol_breakdown(
        &m,
        N512,
        24,
        FftOptions {
            backend: CommBackend::P2pBlocking,
            ..FftOptions::default()
        },
        true,
        0.04,
    );
    let lt = print_breakdown_side("MPI_Isend/Irecv + contiguous local FFTs", &left);
    let rt = print_breakdown_side("MPI_Send/Irecv + strided local FFTs", &right);
    println!(
        "non-blocking vs blocking total ratio = {:.3}  (paper: 'pretty much the same')",
        lt / rt
    );
    println!(
        "per-FFT total: {:.4} s (paper at 24 GPUs: ~0.09 s)",
        rt / 10.0
    );
}
