//! Validates observability exports (CI smoke check).
//!
//! Usage:
//! * `trace_check <trace.json>` — a `--trace-out` Chrome-trace export:
//!   valid JSON in the trace-event format with per-rank `pid`/`tid` lanes
//!   and the expected FFT phase names.
//! * `trace_check --profile <profile.json>` — a `--profile-out` fftprof
//!   document: `fftprof-profile-v1` schema, per-rank phase rows that sum
//!   exactly to the makespan, a critical path, a contention account, and
//!   the model-residual block.
//! * `trace_check --sarif <report.sarif>` — an `fftlint --sarif` export:
//!   SARIF 2.1.0 with the fftlint driver, a populated rule registry, and
//!   every result carrying a known `ruleId` plus a physical location with
//!   a positive line/column. This is an *independent* parser
//!   (`fftobs::json`) cross-checking fftlint's hand-written emitter.
//!
//! Exits non-zero with a message on stderr on the first violation.

use fftobs::json::{self, Json};

fn fail(msg: &str) -> ! {
    eprintln!("trace_check: {msg}");
    std::process::exit(1);
}

fn check_trace(path: &str, doc: &Json) {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .unwrap_or_else(|| fail("missing traceEvents array"));

    let mut phase_names = std::collections::BTreeSet::new();
    let mut pids = std::collections::BTreeSet::new();
    let mut n_complete = 0usize;
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).unwrap_or_default();
        if ph != "X" {
            continue;
        }
        n_complete += 1;
        for field in ["name", "pid", "tid", "ts", "dur"] {
            if e.get(field).is_none() {
                fail(&format!("complete event missing field '{field}'"));
            }
        }
        let pid = e.get("pid").and_then(Json::as_f64).unwrap_or(-1.0);
        if pid < 0.0 {
            fail("complete event has a non-numeric pid");
        }
        pids.insert(pid as i64);
        phase_names.insert(e.get("name").and_then(Json::as_str).unwrap().to_string());
    }
    if n_complete == 0 {
        fail("no complete ('X') events in trace");
    }
    if pids.len() < 2 {
        fail(&format!("expected multiple ranks (pids), found {pids:?}"));
    }
    for want in ["FFT", "pack", "unpack"] {
        if !phase_names.contains(want) {
            fail(&format!(
                "missing expected phase '{want}'; found {phase_names:?}"
            ));
        }
    }
    if !phase_names.iter().any(|n| n.starts_with("MPI_")) {
        fail(&format!("no MPI_* phase in trace; found {phase_names:?}"));
    }
    let _ = path;
    println!(
        "ok: {} events, {} ranks, phases: {}",
        n_complete,
        pids.len(),
        phase_names.into_iter().collect::<Vec<_>>().join(", ")
    );
}

fn num(doc: &Json, key: &str) -> f64 {
    doc.get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| fail(&format!("missing numeric field '{key}'")))
}

fn check_profile(doc: &Json) {
    if doc.get("schema").and_then(Json::as_str) != Some("fftprof-profile-v1") {
        fail("not an fftprof-profile-v1 document");
    }
    let makespan = num(doc, "makespan_ns");
    let nranks = num(doc, "nranks") as usize;

    // Per-rank phase rows must tile the makespan exactly.
    let phases = doc
        .get("phases")
        .and_then(Json::as_array)
        .unwrap_or_else(|| fail("missing phases array"));
    if phases.len() != nranks {
        fail(&format!(
            "phases has {} rows for {nranks} ranks",
            phases.len()
        ));
    }
    let labels = [
        "compute",
        "pack",
        "unpack",
        "self-copy",
        "send",
        "recv-wait",
        "idle",
    ];
    for row in phases {
        let rank = num(row, "rank") as usize;
        let sum: f64 = labels.iter().map(|l| num(row, l)).sum();
        if sum != makespan {
            fail(&format!(
                "rank {rank} phases sum to {sum}, expected makespan {makespan}"
            ));
        }
        if num(row, "total_ns") != makespan {
            fail(&format!("rank {rank} total_ns disagrees with makespan"));
        }
    }

    // The critical path must exist and fit in the window.
    let cp = doc
        .get("critical_path")
        .unwrap_or_else(|| fail("missing critical_path block"));
    let busy = num(cp, "busy_ns");
    let idle = num(cp, "idle_ns");
    if busy <= 0.0 {
        fail("critical path has no busy time");
    }
    if busy + idle > makespan {
        fail(&format!(
            "critical path ({}) exceeds makespan ({makespan})",
            busy + idle
        ));
    }
    if cp.get("segments").and_then(Json::as_array).is_none() {
        fail("critical_path.segments missing");
    }

    // Contention and model blocks must be present and well-formed.
    let cont = doc
        .get("contention")
        .unwrap_or_else(|| fail("missing contention block"));
    let by_reshape = cont
        .get("by_reshape")
        .and_then(Json::as_array)
        .unwrap_or_else(|| fail("contention.by_reshape missing"));
    for c in by_reshape {
        let actual = num(c, "actual_ns");
        let ideal = num(c, "ideal_ns");
        let queue = num(c, "queue_ns");
        if actual != ideal + queue {
            fail(&format!(
                "contention row inconsistent: actual {actual} != ideal {ideal} + queue {queue}"
            ));
        }
    }
    let model = doc
        .get("model")
        .unwrap_or_else(|| fail("missing model block"));
    let predicted = num(model, "predicted_comm_ns");
    let measured = num(model, "measured_comm_ns");
    if num(model, "residual_ns") != measured - predicted {
        fail("model residual_ns disagrees with measured - predicted");
    }

    println!(
        "ok: profile of {nranks} ranks, makespan {makespan} ns, critical path busy {busy} ns \
         ({} contention rows)",
        by_reshape.len()
    );
}

fn check_sarif(doc: &Json) {
    if doc.get("version").and_then(Json::as_str) != Some("2.1.0") {
        fail("not a SARIF 2.1.0 document");
    }
    let runs = doc
        .get("runs")
        .and_then(Json::as_array)
        .unwrap_or_else(|| fail("missing runs array"));
    if runs.len() != 1 {
        fail(&format!("expected exactly one run, found {}", runs.len()));
    }
    let run = &runs[0];
    let driver = run
        .get("tool")
        .and_then(|t| t.get("driver"))
        .unwrap_or_else(|| fail("missing tool.driver"));
    if driver.get("name").and_then(Json::as_str) != Some("fftlint") {
        fail("tool.driver.name is not fftlint");
    }
    let rules = driver
        .get("rules")
        .and_then(Json::as_array)
        .unwrap_or_else(|| fail("missing tool.driver.rules"));
    let mut rule_ids = std::collections::BTreeSet::new();
    for r in rules {
        let id = r
            .get("id")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail("rule without an id"));
        if r.get("shortDescription")
            .and_then(|d| d.get("text"))
            .and_then(Json::as_str)
            .is_none_or(str::is_empty)
        {
            fail(&format!("rule '{id}' has no shortDescription text"));
        }
        rule_ids.insert(id.to_string());
    }
    if rule_ids.is_empty() {
        fail("rule registry is empty");
    }

    let results = run
        .get("results")
        .and_then(Json::as_array)
        .unwrap_or_else(|| fail("missing results array"));
    let mut by_state = std::collections::BTreeMap::new();
    for res in results {
        let rule_id = res
            .get("ruleId")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail("result without a ruleId"));
        if !rule_ids.contains(rule_id) {
            fail(&format!("result rule '{rule_id}' not in the registry"));
        }
        if res
            .get("message")
            .and_then(|m| m.get("text"))
            .and_then(Json::as_str)
            .is_none_or(str::is_empty)
        {
            fail(&format!("'{rule_id}' result has no message text"));
        }
        let region = res
            .get("locations")
            .and_then(Json::as_array)
            .and_then(|l| l.first())
            .and_then(|l| l.get("physicalLocation"))
            .unwrap_or_else(|| fail(&format!("'{rule_id}' result has no physicalLocation")));
        if region
            .get("artifactLocation")
            .and_then(|a| a.get("uri"))
            .and_then(Json::as_str)
            .is_none_or(str::is_empty)
        {
            fail(&format!("'{rule_id}' result has no artifact uri"));
        }
        for field in ["startLine", "startColumn"] {
            let v = region
                .get("region")
                .and_then(|r| r.get(field))
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            if v < 1.0 || v.fract() != 0.0 {
                fail(&format!("'{rule_id}' result has a bad {field}: {v}"));
            }
        }
        let state = res
            .get("baselineState")
            .and_then(Json::as_str)
            .unwrap_or("(none)")
            .to_string();
        if !matches!(state.as_str(), "new" | "unchanged" | "(none)") {
            fail(&format!("unknown baselineState '{state}'"));
        }
        *by_state.entry(state).or_insert(0usize) += 1;
    }
    let states: Vec<String> = by_state.iter().map(|(s, n)| format!("{n} {s}")).collect();
    println!(
        "ok: SARIF run with {} rules, {} results ({})",
        rule_ids.len(),
        results.len(),
        if states.is_empty() {
            "empty".to_string()
        } else {
            states.join(", ")
        }
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, path) = match args.as_slice() {
        [p] => ("trace", p.clone()),
        [flag, p] if flag == "--profile" => ("profile", p.clone()),
        [flag, p] if flag == "--sarif" => ("sarif", p.clone()),
        _ => fail("usage: trace_check [--profile | --sarif] <file.json>"),
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let doc =
        json::parse(&text).unwrap_or_else(|e| fail(&format!("{path} is not valid JSON: {e}")));
    match mode {
        "profile" => check_profile(&doc),
        "sarif" => check_sarif(&doc),
        _ => check_trace(&path, &doc),
    }
}
