//! Validates a `--trace-out` Chrome-trace export (CI smoke check).
//!
//! Usage: `trace_check <trace.json>`. Exits non-zero (with a message on
//! stderr) unless the file is valid JSON in the trace-event format with
//! per-rank `pid`/`tid` lanes and the expected FFT phase names.

use fftobs::json::{self, Json};

fn fail(msg: &str) -> ! {
    eprintln!("trace_check: {msg}");
    std::process::exit(1);
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| fail("usage: trace_check <trace.json>"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let doc =
        json::parse(&text).unwrap_or_else(|e| fail(&format!("{path} is not valid JSON: {e}")));

    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .unwrap_or_else(|| fail("missing traceEvents array"));

    let mut phase_names = std::collections::BTreeSet::new();
    let mut pids = std::collections::BTreeSet::new();
    let mut n_complete = 0usize;
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).unwrap_or_default();
        if ph != "X" {
            continue;
        }
        n_complete += 1;
        for field in ["name", "pid", "tid", "ts", "dur"] {
            if e.get(field).is_none() {
                fail(&format!("complete event missing field '{field}'"));
            }
        }
        let pid = e.get("pid").and_then(Json::as_f64).unwrap_or(-1.0);
        if pid < 0.0 {
            fail("complete event has a non-numeric pid");
        }
        pids.insert(pid as i64);
        phase_names.insert(e.get("name").and_then(Json::as_str).unwrap().to_string());
    }
    if n_complete == 0 {
        fail("no complete ('X') events in trace");
    }
    if pids.len() < 2 {
        fail(&format!("expected multiple ranks (pids), found {pids:?}"));
    }
    for want in ["FFT", "pack", "unpack"] {
        if !phase_names.contains(want) {
            fail(&format!(
                "missing expected phase '{want}'; found {phase_names:?}"
            ));
        }
    }
    if !phase_names.iter().any(|n| n.starts_with("MPI_")) {
        fail(&format!("no MPI_* phase in trace; found {phase_names:?}"));
    }
    println!(
        "ok: {} events, {} ranks, phases: {}",
        n_complete,
        pids.len(),
        phase_names.into_iter().collect::<Vec<_>>().join(", ")
    );
}
