use distfft::dryrun::{DryRunOpts, DryRunner};
use distfft::plan::{FftOptions, FftPlan};
use simgrid::MachineSpec;

fn main() {
    let m = MachineSpec::summit();
    for (batch, chunks) in [(1usize, 1usize), (16, 4), (16, 2), (32, 4)] {
        let plan = FftPlan::build(
            [64, 64, 64],
            24,
            FftOptions {
                batch,
                pipeline_chunks: chunks,
                ..FftOptions::default()
            },
        );
        let mut r = DryRunner::new(&plan, &m, DryRunOpts::default());
        let _ = r.run(fftkern::Direction::Forward);
        let rep = r.run(fftkern::Direction::Forward);
        println!(
            "=== batch {batch} chunks {chunks}: makespan {} -> per-FFT {:.1} us",
            rep.makespan(),
            rep.makespan().as_us() / batch as f64
        );
        if batch == 1 {
            for e in &rep.traces[0].events {
                match e {
                    distfft::TraceEvent::MpiCall {
                        reshape,
                        dur,
                        bytes,
                        ..
                    } => println!("  reshape {reshape}: {dur} ({bytes} B)"),
                    distfft::TraceEvent::Kernel { kind, dur, .. } => {
                        println!("  {:?}: {dur}", kind)
                    }
                }
            }
        }
    }
}
