//! Figure 5 — best-setting regions for a 512³ c2c FFT on an increasing
//! number of Summit nodes (6 V100/node, 1 MPI rank per GPU): the strong-
//! scaling curve of the fastest configuration, labeled with the winning
//! (decomposition, exchange) pair, plus the closed-form model's prediction.
//!
//! Paper shape: slabs + point-to-point at the smallest node counts, slabs +
//! all-to-all in the middle, pencils + all-to-all from 64 nodes on; the
//! fastest runtimes use GPU-aware SpectrumMPI.

use distfft::plan::{CommBackend, FftOptions};
use distfft::Decomp;
use fft_bench::{banner, table3_ranks, timed_average, TextTable, N512};
use fftmodels::bandwidth::ModelParams;
use fftmodels::phase::predict_decomp;
use fftprof::DiffReport;
use simgrid::MachineSpec;

fn main() {
    let obs = fft_bench::Obs::from_env();
    banner(
        "Fig. 5",
        "best-setting regions, 512^3 c2c strong scaling on Summit",
    );
    let m = MachineSpec::summit();
    let params = ModelParams::summit();

    let mut t = TextTable::new(&[
        "nodes",
        "ranks",
        "best time (s)",
        "best setting",
        "model predicts",
    ]);
    // One ladder point per parallel task; within a task the candidate loop
    // stays serial so the first-wins tie-breaking matches the serial sweep.
    // FFT_FIG5_MAX_NODES trims the ladder (the CI smoke test caps it so the
    // three profiling runs stay fast); unset = the paper's full 512 nodes.
    let max_nodes: usize =
        fftobs::env::positive_var("FFT_FIG5_MAX_NODES", "the full ladder").unwrap_or(usize::MAX);
    let ladder: Vec<usize> = table3_ranks()
        .into_iter()
        .filter(|ranks| ranks / 6 <= max_nodes)
        .collect();
    let rows = fftmodels::par_map(&ladder, |&ranks| {
        let mut best: Option<(f64, String)> = None;
        for decomp in [Decomp::Slabs, Decomp::Pencils] {
            if decomp == Decomp::Slabs && ranks > N512[1] {
                continue; // the paper's N2-process slab limit
            }
            for (backend, label) in [
                (CommBackend::AllToAll, "all-to-all"),
                (CommBackend::AllToAllV, "all-to-all"),
                (CommBackend::P2p, "point-to-point"),
            ] {
                let time = timed_average(
                    &m,
                    N512,
                    ranks,
                    FftOptions {
                        decomp,
                        backend,
                        ..FftOptions::default()
                    },
                    true, // fastest runtimes use GPU-aware SpectrumMPI
                )
                .as_secs();
                let name = format!("{} + {}", decomp.name(), label);
                if best.as_ref().map(|(bt, _)| time < *bt).unwrap_or(true) {
                    best = Some((time, name));
                }
            }
        }
        let (time, setting) = best.expect("at least one candidate");
        let predicted = predict_decomp(N512, ranks, &params).best;
        (ranks, time, setting, predicted)
    });
    for (ranks, time, setting, predicted) in rows {
        t.row(vec![
            format!("{}", ranks / 6),
            format!("{ranks}"),
            format!("{time:.4}"),
            setting,
            predicted.name().to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "paper shape: P2P region at the smallest scales, slabs+A2A in the\n\
         middle, pencils+A2A from 64 nodes (384 ranks) onward; the model's\n\
         slab/pencil prediction (last column) crosses at the same point."
    );

    // --profile-out: profile the figure's headline comparison — the 64-node
    // (384-rank) point where pencils+A2A takes over from P2P — and write
    // the winner's profile (JSON + collapsed stacks). The phase-by-phase
    // diff goes to stderr; stdout above stays byte-identical.
    if obs.profiling() {
        let ranks = 384.min(*ladder.last().expect("non-empty ladder"));
        let profile_backend = |backend: CommBackend, label: &str| {
            fftprof::profile_config(
                label,
                &m,
                N512,
                ranks,
                FftOptions {
                    decomp: Decomp::Pencils,
                    backend,
                    ..FftOptions::default()
                },
                true,
            )
        };
        let a2a = profile_backend(
            CommBackend::AllToAllV,
            &format!("pencils+alltoallv_{ranks}r"),
        );
        let p2p = profile_backend(CommBackend::P2p, &format!("pencils+p2p_{ranks}r"));
        let diff = DiffReport::between(&a2a, &p2p);
        eprint!("{}", diff.render_text());
        let winner = if p2p.makespan_ns() < a2a.makespan_ns() {
            p2p
        } else {
            a2a
        };
        obs.emit_profile(&winner);
        obs.emit_ledger(&winner);
    }
}
