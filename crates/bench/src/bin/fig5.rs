//! Figure 5 — best-setting regions for a 512³ c2c FFT on an increasing
//! number of Summit nodes (6 V100/node, 1 MPI rank per GPU): the strong-
//! scaling curve of the fastest configuration, labeled with the winning
//! (decomposition, exchange) pair, plus the closed-form model's prediction.
//!
//! Paper shape: slabs + point-to-point at the smallest node counts, slabs +
//! all-to-all in the middle, pencils + all-to-all from 64 nodes on; the
//! fastest runtimes use GPU-aware SpectrumMPI.

use distfft::plan::{CommBackend, FftOptions};
use distfft::Decomp;
use fft_bench::{banner, table3_ranks, timed_average, TextTable, N512};
use fftmodels::bandwidth::ModelParams;
use fftmodels::phase::predict_decomp;
use simgrid::MachineSpec;

fn main() {
    banner(
        "Fig. 5",
        "best-setting regions, 512^3 c2c strong scaling on Summit",
    );
    let m = MachineSpec::summit();
    let params = ModelParams::summit();

    let mut t = TextTable::new(&[
        "nodes",
        "ranks",
        "best time (s)",
        "best setting",
        "model predicts",
    ]);
    // One ladder point per parallel task; within a task the candidate loop
    // stays serial so the first-wins tie-breaking matches the serial sweep.
    let ladder = table3_ranks();
    let rows = fftmodels::par_map(&ladder, |&ranks| {
        let mut best: Option<(f64, String)> = None;
        for decomp in [Decomp::Slabs, Decomp::Pencils] {
            if decomp == Decomp::Slabs && ranks > N512[1] {
                continue; // the paper's N2-process slab limit
            }
            for (backend, label) in [
                (CommBackend::AllToAll, "all-to-all"),
                (CommBackend::AllToAllV, "all-to-all"),
                (CommBackend::P2p, "point-to-point"),
            ] {
                let time = timed_average(
                    &m,
                    N512,
                    ranks,
                    FftOptions {
                        decomp,
                        backend,
                        ..FftOptions::default()
                    },
                    true, // fastest runtimes use GPU-aware SpectrumMPI
                )
                .as_secs();
                let name = format!("{} + {}", decomp.name(), label);
                if best.as_ref().map(|(bt, _)| time < *bt).unwrap_or(true) {
                    best = Some((time, name));
                }
            }
        }
        let (time, setting) = best.expect("at least one candidate");
        let predicted = predict_decomp(N512, ranks, &params).best;
        (ranks, time, setting, predicted)
    });
    for (ranks, time, setting, predicted) in rows {
        t.row(vec![
            format!("{}", ranks / 6),
            format!("{ranks}"),
            format!("{time:.4}"),
            setting,
            predicted.name().to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "paper shape: P2P region at the smallest scales, slabs+A2A in the\n\
         middle, pencils+A2A from 64 nodes (384 ranks) onward; the model's\n\
         slab/pencil prediction (last column) crosses at the same point."
    );
}
