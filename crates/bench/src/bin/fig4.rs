//! Figure 4 — average bandwidth per process during a 512³ c2c FFT, strong
//! scaling from 1 to 128 Summit nodes (6 V100 per node), with the
//! GPU-awareness feature switched on and off, for both All-to-All and
//! Point-to-Point exchanges.
//!
//! As in the paper, the bandwidth is *inferred* from the measured pencil
//! communication time through equation (5), with `L = 1 µs`. The paper's
//! observation to reproduce: "network saturation causes an exponential
//! decrease in the average bandwidth achieved by each process".

use distfft::dryrun::{DryRunOpts, DryRunner};
use distfft::plan::{CommBackend, FftOptions, FftPlan};
use distfft::procgrid::closest_factor_pair;
use distfft::trace::TraceEvent;
use fft_bench::{banner, table3_ranks, TextTable, N512};
use fftkern::Direction;
use fftmodels::bandwidth::b_pencils;
use simgrid::MachineSpec;

/// Measured pencil-exchange communication time of one forward transform
/// (max across ranks of the two pencil↔pencil reshape calls).
fn pencil_comm_time(machine: &MachineSpec, ranks: usize, backend: CommBackend, aware: bool) -> f64 {
    let plan = FftPlan::build(
        N512,
        ranks,
        FftOptions {
            backend,
            ..FftOptions::default()
        },
    );
    // With brick I/O the plan has 4 reshapes; indices 1 and 2 are the
    // pencil↔pencil exchanges equation (5) models.
    let mut runner = DryRunner::new(
        &plan,
        machine,
        DryRunOpts {
            gpu_aware: aware,
            ..DryRunOpts::default()
        },
    );
    let _ = runner.run(Direction::Forward); // warm up
    let _ = runner.run(Direction::Inverse);
    let rep = runner.run(Direction::Forward);
    let per_rank_max = |reshape_idx: usize| -> f64 {
        rep.traces
            .iter()
            .flat_map(|t| {
                t.events.iter().filter_map(move |e| match e {
                    TraceEvent::MpiCall { reshape, dur, .. } if *reshape == reshape_idx => {
                        Some(dur.as_secs())
                    }
                    _ => None,
                })
            })
            .fold(0.0, f64::max)
    };
    per_rank_max(1) + per_rank_max(2)
}

fn main() {
    let obs = fft_bench::Obs::from_env();
    banner(
        "Fig. 4",
        "average bandwidth per process (eq. 5), 512^3 c2c, 1..128 Summit nodes",
    );
    let m = MachineSpec::summit();
    let n_total = (N512[0] * N512[1] * N512[2]) as f64;
    let latency = 1e-6;

    let mut t = TextTable::new(&[
        "nodes",
        "ranks",
        "PxQ",
        "A2A aware (GB/s)",
        "A2A staged (GB/s)",
        "P2P aware (GB/s)",
        "P2P staged (GB/s)",
    ]);
    // Each row is an independent set of dry runs: evaluate them in
    // parallel, emit in ladder order (identical output to a serial sweep).
    let ladder: Vec<usize> = table3_ranks().into_iter().filter(|&r| r <= 768).collect();
    let rows = fftmodels::par_map(&ladder, |&ranks| {
        let (p, q) = closest_factor_pair(ranks);
        let bw = |backend, aware| {
            let tmeas = pencil_comm_time(&m, ranks, backend, aware);
            b_pencils(n_total, p, q, tmeas, latency) / 1e9
        };
        (
            ranks,
            (p, q),
            bw(CommBackend::AllToAllV, true),
            bw(CommBackend::AllToAllV, false),
            bw(CommBackend::P2p, true),
            bw(CommBackend::P2p, false),
        )
    });
    let mut first_a2a = None;
    let mut last_a2a = None;
    for (ranks, (p, q), a2a_aware, a2a_staged, p2p_aware, p2p_staged) in rows {
        if first_a2a.is_none() {
            first_a2a = Some(a2a_aware);
        }
        last_a2a = Some(a2a_aware);
        t.row(vec![
            format!("{}", ranks / 6),
            format!("{ranks}"),
            format!("{p}x{q}"),
            format!("{a2a_aware:.2}"),
            format!("{a2a_staged:.2}"),
            format!("{p2p_aware:.2}"),
            format!("{p2p_staged:.2}"),
        ]);
    }
    println!("{}", t.render());
    let (hi, lo) = (first_a2a.unwrap(), last_a2a.unwrap());
    println!(
        "A2A GPU-aware bandwidth decays {:.1}x from 1 to 128 nodes\n\
         (paper: exponential decrease from network saturation).",
        hi / lo
    );

    // --profile-out: the figure infers bandwidth from the pencil exchanges;
    // the profile shows the same thing directly — the send/recv-wait split
    // and the per-reshape queue delay behind the saturation decay. Profile
    // the GPU-aware A2A run at the saturated end of the ladder.
    if obs.profiling() {
        let ranks = *ladder.last().expect("non-empty ladder");
        let profile = fftprof::profile_config(
            &format!("fig4_a2a_aware_{ranks}r"),
            &m,
            N512,
            ranks,
            FftOptions {
                backend: CommBackend::AllToAllV,
                ..FftOptions::default()
            },
            true,
        );
        obs.emit_profile(&profile);
        obs.emit_ledger(&profile);
    }
}
