//! Table I — MPI routines available in parallel FFT libraries, mapped to
//! this reproduction's exchange backends. Every routine in the heFFTe row
//! (the library the paper extends) exists as a `CommBackend`.

use distfft::plan::CommBackend;
use fft_bench::{banner, TextTable};

fn main() {
    banner(
        "Table I",
        "MPI routines in FFT libraries vs this reproduction",
    );
    let mut t = TextTable::new(&["library", "All-to-All", "Point-to-Point"]);
    for (lib, a2a, p2p) in [
        (
            "AccFFT",
            "MPI_Alltoall",
            "MPI_Isend/MPI_Irecv, MPI_Sendrecv",
        ),
        ("FFTE", "MPI_Alltoall, MPI_Alltoallv", "-"),
        ("fftMPI", "MPI_Alltoallv", "MPI_Send/MPI_Irecv"),
        (
            "heFFTe",
            "MPI_Alltoall, MPI_Alltoallv",
            "MPI_Send/MPI_Isend, MPI_Irecv",
        ),
        ("Dalcin et al.", "MPI_Alltoallw", "-"),
        ("P3DFFT", "MPI_Alltoallv", "MPI_Send/MPI_Irecv"),
    ] {
        t.row(vec![lib.into(), a2a.into(), p2p.into()]);
    }
    println!("{}", t.render());

    println!("this reproduction's backends:");
    for b in [
        CommBackend::AllToAll,
        CommBackend::AllToAllV,
        CommBackend::AllToAllW,
        CommBackend::P2p,
        CommBackend::P2pBlocking,
    ] {
        println!("  {:?} -> {}", b, b.routine());
    }
}
