//! Figure 10 — time per batched 1-D cuFFT call of size 512 inside the 3-D
//! FFT computation: contiguous input runs at a flat ≈15 µs per call, while
//! strided input shows a considerable spike (and a tall first call from
//! plan setup). "Indeed, this also happens when using FFTW and rocFFT."

use distfft::plan::{CommBackend, FftOptions};
use fft_bench::{banner, protocol_traces, Obs, TextTable, N512};
use simgrid::MachineSpec;

fn main() {
    let obs = Obs::from_env();
    banner(
        "Fig. 10",
        "batched 1-D FFT (n=512) call times inside the 3-D FFT, 24 V100",
    );
    let m = MachineSpec::summit();
    let series = |contiguous: bool| {
        let traces = protocol_traces(
            &m,
            N512,
            24,
            FftOptions {
                backend: if contiguous {
                    CommBackend::AllToAll
                } else {
                    CommBackend::AllToAllV
                },
                contiguous_fft: contiguous,
                ..FftOptions::default()
            },
            true,
            0.03,
        );
        // Per-call kernel durations on rank 0. The dry run prices one
        // kernel launch per axis pass; real cuFFT splits it into chunks of
        // ~512 rows per call — rescale to the paper's per-call granularity.
        let rows_per_pass = (N512[0] * N512[1] * N512[2]) / 24 / 512;
        let calls_per_pass = rows_per_pass / 512;
        let durs = traces[0]
            .fft_call_durations()
            .iter()
            .map(|d| d.as_us() / calls_per_pass as f64)
            .collect::<Vec<f64>>();
        (durs, traces)
    };
    let (contiguous, contiguous_traces) = series(true);
    let (strided, _) = series(false);
    // The contiguous run is the timeline exported under --trace-out.
    obs.emit(&contiguous_traces);

    let mut t = TextTable::new(&["pass", "contiguous (µs/call)", "strided (µs/call)"]);
    for i in 0..contiguous.len().min(strided.len()).min(30) {
        t.row(vec![
            format!("{}", i + 1),
            format!("{:.1}", contiguous[i]),
            format!("{:.1}", strided[i]),
        ]);
    }
    println!("{}", t.render());

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let cavg = avg(&contiguous);
    let smax = strided.iter().cloned().fold(0.0, f64::max);
    println!("contiguous average: {cavg:.1} µs/call (paper: ~15 µs)");
    println!(
        "strided spike: {smax:.1} µs/call = {:.1}x the contiguous average\n\
         (paper: 'the difference is considerable')",
        smax / cavg
    );
}
