//! Figure 12 — runtime breakdown of the LAMMPS Rhodopsin benchmark (32 K
//! atoms, fixed 512³ PPPM grid) on 32 Summit nodes (192 V100, 1 MPI/GPU):
//! default fftMPI (pencils, host-staged MPI) versus tuned heFFTe (settings
//! guided by Fig. 5). Paper: "the runtime for the KSPACE computation is
//! reduced around 40%".

use fft_bench::{banner, TextTable};
use miniapps::md::{run_rhodopsin, RhodopsinConfig};
use simgrid::MachineSpec;

fn main() {
    banner(
        "Fig. 12",
        "LAMMPS Rhodopsin breakdown, 32K atoms, 512^3 grid, 32 nodes",
    );
    let m = MachineSpec::summit();
    let steps = 10;
    let default = run_rhodopsin(&m, &RhodopsinConfig::fftmpi_default(steps));
    let tuned = run_rhodopsin(&m, &RhodopsinConfig::heffte_tuned(steps));

    let mut t = TextTable::new(&["phase", "fftMPI default (s)", "heFFTe tuned (s)"]);
    for ((label, a), (_, b)) in default.rows().into_iter().zip(tuned.rows()) {
        t.row(vec![
            label.to_string(),
            format!("{:.4}", a.as_secs()),
            format!("{:.4}", b.as_secs()),
        ]);
    }
    t.row(vec![
        "TOTAL".into(),
        format!("{:.4}", default.total().as_secs()),
        format!("{:.4}", tuned.total().as_secs()),
    ]);
    println!("{}", t.render());
    println!(
        "KSPACE reduction: {:.1}%  (paper: ~40%)",
        100.0 * (1.0 - tuned.kspace.as_ns() as f64 / default.kspace.as_ns() as f64)
    );
    println!(
        "total reduction:  {:.1}%",
        100.0 * (1.0 - tuned.total().as_ns() as f64 / default.total().as_ns() as f64)
    );
}
