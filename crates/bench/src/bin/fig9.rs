//! Figure 9 — Point-to-Point communication with and without GPU-aware MPI
//! for a 512³ c2c FFT, 6 V100 per node: communication cost (left) and total
//! time (right) versus node count.
//!
//! Paper shape: "for up to 768 GPUs, All-to-All approaches scale quite
//! well, while the Point-to-Point approaches fail when using GPU-aware MPI.
//! If the GPU awareness is disabled, they keep scaling."

use distfft::plan::{CommBackend, FftOptions};
use fft_bench::{banner, table3_ranks, timed_average_with_comm, TextTable, N512};
use simgrid::MachineSpec;

fn main() {
    banner(
        "Fig. 9",
        "Point-to-Point comm and total time vs nodes, GPU-aware on/off, 512^3",
    );
    let m = MachineSpec::summit();
    let mut t = TextTable::new(&[
        "nodes",
        "ranks",
        "comm aware (s)",
        "comm staged (s)",
        "total aware (s)",
        "total staged (s)",
    ]);
    let ladder: Vec<usize> = table3_ranks().into_iter().filter(|&r| r <= 768).collect();
    let rows = fftmodels::par_map(&ladder, |&ranks| {
        let opts = FftOptions {
            backend: CommBackend::P2p,
            ..FftOptions::default()
        };
        let (tot_a, comm_a) = timed_average_with_comm(&m, N512, ranks, opts.clone(), true);
        let (tot_s, comm_s) = timed_average_with_comm(&m, N512, ranks, opts, false);
        (ranks, tot_a, comm_a, tot_s, comm_s)
    });
    let mut aware_series = Vec::new();
    for (ranks, tot_a, comm_a, tot_s, comm_s) in rows {
        aware_series.push((ranks, comm_a));
        t.row(vec![
            format!("{}", ranks / 6),
            format!("{ranks}"),
            format!("{:.4}", comm_a.as_secs()),
            format!("{:.4}", comm_s.as_secs()),
            format!("{:.4}", tot_a.as_secs()),
            format!("{:.4}", tot_s.as_secs()),
        ]);
    }
    println!("{}", t.render());
    // Find the scaling bottom among multi-node points (a single node is
    // all-NVLink and not comparable).
    let min = aware_series
        .iter()
        .filter(|(r, _)| *r > 6)
        .min_by_key(|(_, c)| *c)
        .expect("non-empty");
    let last = aware_series.last().expect("non-empty");
    println!(
        "GPU-aware P2P comm bottoms out at {} ranks ({:.4} s) then grows to\n\
         {:.4} s at {} ranks — the Fig. 9 scalability failure; the staged\n\
         path keeps scaling.",
        min.0,
        min.1.as_secs(),
        last.1.as_secs(),
        last.0
    );
}
