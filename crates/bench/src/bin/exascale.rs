//! Exascale projection — the paper's closing claim: "the speedups obtained
//! from [batching and tuning] can be extremely helpful … to ensure
//! scalability on the upcoming exascale supercomputers" (§IV-D/§V).
//!
//! Runs the tuned 512³ and a larger 1024³ transform on the
//! Frontier-projection machine model alongside Summit, out to 1024 nodes
//! (8192 effective GPUs), and reports the scaling and the tuned settings.

use distfft::plan::{CommBackend, FftOptions};
use distfft::Decomp;
use fft_bench::{banner, timed_average, TextTable};
use simgrid::MachineSpec;

fn best(machine: &MachineSpec, n: [usize; 3], ranks: usize) -> (f64, String) {
    let mut best: Option<(f64, String)> = None;
    for decomp in [Decomp::Slabs, Decomp::Pencils] {
        if decomp == Decomp::Slabs && ranks > n[0].min(n[1]) {
            continue;
        }
        for backend in [CommBackend::AllToAllV, CommBackend::P2p] {
            let t = timed_average(
                machine,
                n,
                ranks,
                FftOptions {
                    decomp,
                    backend,
                    ..FftOptions::default()
                },
                true,
            )
            .as_secs();
            let label = format!("{}+{}", decomp.name(), backend.routine());
            if best.as_ref().map(|(bt, _)| t < *bt).unwrap_or(true) {
                best = Some((t, label));
            }
        }
    }
    best.expect("at least one configuration")
}

fn main() {
    banner(
        "exascale",
        "tuned FFT scaling projected onto a Frontier-class machine",
    );
    let summit = MachineSpec::summit();
    let frontier = MachineSpec::frontier_projection();

    for n in [[512usize, 512, 512], [1024, 1024, 1024]] {
        println!("--- {}^3 complex-to-complex", n[0]);
        let mut t = TextTable::new(&[
            "nodes",
            "Summit ranks",
            "Summit best (s)",
            "Summit setting",
            "Frontier ranks",
            "Frontier best (s)",
            "Frontier setting",
        ]);
        // Each (node count, machine) cell dry-runs independently.
        let nodes_ladder = [16usize, 64, 256, 1024];
        let rows = fftmodels::par_map(&nodes_ladder, |&nodes| {
            (
                nodes,
                best(&summit, n, nodes * summit.gpus_per_node),
                best(&frontier, n, nodes * frontier.gpus_per_node),
            )
        });
        for (nodes, (ts, ss), (tf, sf)) in rows {
            t.row(vec![
                format!("{nodes}"),
                format!("{}", nodes * summit.gpus_per_node),
                format!("{ts:.4}"),
                ss,
                format!("{}", nodes * frontier.gpus_per_node),
                format!("{tf:.4}"),
                sf,
            ]);
        }
        println!("{}", t.render());
    }
    println!(
        "projection: faster NICs and denser nodes keep the tuned FFT scaling\n\
         at node counts where Summit has flattened — the §V outlook."
    );
}
