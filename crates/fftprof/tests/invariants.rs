//! Property tests over the profiler's structural invariants, swept across
//! decompositions, backends, GPU-awareness and rank counts — the
//! acceptance criteria of the profiler layer:
//!
//! 1. every rank's phase attribution sums *exactly* to the trace makespan;
//! 2. the critical path's busy length never exceeds the makespan, and
//!    equals it for a serial one-rank run;
//! 3. a run diffed against itself is zero everywhere;
//! 4. on a pencil multi-node run the critical path names at least one
//!    communication phase;
//! 5. the alltoall-vs-p2p differential reproduces the sign of the paper's
//!    Fig. 5 winner at both ends of the ladder.

use distfft::dryrun::{DryRunOpts, DryRunner};
use distfft::plan::{CommBackend, FftOptions, FftPlan};
use distfft::Decomp;
use fftkern::Direction;
use fftprof::{profile_config, DiffReport, Phase, Profile};
use simgrid::MachineSpec;

/// Dry-runs one configuration and profiles the measured transform.
fn profiled(
    n: [usize; 3],
    ranks: usize,
    decomp: Decomp,
    backend: CommBackend,
    gpu_aware: bool,
) -> Profile {
    let machine = MachineSpec::summit();
    let opts = FftOptions {
        decomp,
        backend,
        ..FftOptions::default()
    };
    let plan = FftPlan::build(n, ranks, opts);
    let mut runner = DryRunner::new(
        &plan,
        &machine,
        DryRunOpts {
            gpu_aware,
            ..DryRunOpts::default()
        },
    );
    runner.run(Direction::Forward);
    let rep = runner.run(Direction::Forward);
    Profile::build("test", &plan, &machine, gpu_aware, &rep.traces)
}

/// The configuration sweep the invariants are checked over: both
/// decompositions, the three interesting backends, both transfer modes,
/// one to multiple nodes.
fn sweep() -> Vec<Profile> {
    let mut out = Vec::new();
    for &(ranks, decomp) in &[
        (1, Decomp::Pencils),
        (6, Decomp::Slabs),
        (6, Decomp::Pencils),
        (12, Decomp::Pencils),
        (24, Decomp::Slabs),
        (24, Decomp::Pencils),
    ] {
        for &backend in &[
            CommBackend::AllToAll,
            CommBackend::AllToAllV,
            CommBackend::P2p,
        ] {
            for &aware in &[true, false] {
                out.push(profiled([32, 32, 32], ranks, decomp, backend, aware));
            }
        }
    }
    out
}

#[test]
fn phase_sums_equal_makespan_for_every_rank_in_every_config() {
    for p in sweep() {
        let makespan = p.makespan_ns();
        assert!(makespan > 0, "{}/{}", p.decomp, p.routine);
        for (r, bd) in p.phases.per_rank.iter().enumerate() {
            assert_eq!(
                bd.total_ns(),
                makespan,
                "rank {r} of {}/{}/{} aware={} must tile the window",
                p.nranks,
                p.decomp,
                p.routine,
                p.gpu_aware
            );
        }
    }
}

#[test]
fn critical_path_is_bounded_by_the_makespan() {
    for p in sweep() {
        assert!(p.critpath.busy_ns > 0);
        assert!(
            p.critpath.busy_ns + p.critpath.idle_ns <= p.makespan_ns(),
            "path {} + idle {} exceeds makespan {} for {}/{}",
            p.critpath.busy_ns,
            p.critpath.idle_ns,
            p.makespan_ns(),
            p.decomp,
            p.routine
        );
    }
}

#[test]
fn serial_run_is_fully_critical() {
    let p = profiled(
        [32, 32, 32],
        1,
        Decomp::Pencils,
        CommBackend::AllToAllV,
        true,
    );
    assert_eq!(
        p.critpath.busy_ns,
        p.makespan_ns(),
        "a gap-free serial run's critical path is the whole run"
    );
    assert_eq!(p.critpath.idle_ns, 0);
}

#[test]
fn every_config_self_diffs_to_zero() {
    for p in sweep() {
        let d = DiffReport::between(&p, &p);
        assert!(
            d.is_zero(),
            "self-diff must be zero for {}/{}:\n{}",
            p.decomp,
            p.routine,
            d.render_text()
        );
    }
}

#[test]
fn pencil_multinode_critical_path_names_communication() {
    // 4 Summit nodes, pencil decomposition: the exchange-bound regime the
    // paper's breakdown figures dissect.
    let p = profiled(
        [64, 64, 64],
        24,
        Decomp::Pencils,
        CommBackend::AllToAllV,
        true,
    );
    let comm_on_path =
        p.critpath.by_phase[Phase::Send as usize] + p.critpath.by_phase[Phase::RecvWait as usize];
    assert!(
        comm_on_path > 0,
        "multi-node pencil path must include a communication phase: {:?}",
        p.critpath.by_phase
    );
    assert!(
        !p.critpath.comm_by_reshape.is_empty(),
        "communication on the path must be attributed to a reshape"
    );
    // The same run must also show link queuing somewhere (many flows share
    // each NIC).
    assert!(p.contention.total_queue_ns() > 0);
}

#[test]
fn differential_reproduces_fig5_winner_sign_at_both_ladder_ends() {
    let machine = MachineSpec::summit();
    let profile_of = |ranks: usize, backend: CommBackend| {
        profile_config(
            &format!("{ranks}r"),
            &machine,
            [64, 64, 64],
            ranks,
            FftOptions {
                decomp: Decomp::Pencils,
                backend,
                ..FftOptions::default()
            },
            true,
        )
    };
    // Small scale (1 node, 6 ranks): the paper's Fig. 5 P2P region.
    let a2a_small = profile_of(6, CommBackend::AllToAllV);
    let p2p_small = profile_of(6, CommBackend::P2p);
    let small = DiffReport::between(&a2a_small, &p2p_small);
    assert!(
        small.makespan_delta_ns() < 0,
        "at 1 node P2P must win (paper Fig. 5):\n{}",
        small.render_text()
    );
    // Large scale (64 nodes, 384 ranks): the pencils+A2A region.
    let a2a_large = profile_of(384, CommBackend::AllToAllV);
    let p2p_large = profile_of(384, CommBackend::P2p);
    let large = DiffReport::between(&a2a_large, &p2p_large);
    assert!(
        large.makespan_delta_ns() > 0,
        "at 64 nodes A2A must win (paper Fig. 5):\n{}",
        large.render_text()
    );
}

#[test]
fn collapsed_stack_totals_match_the_attribution_table() {
    let p = profiled(
        [64, 64, 64],
        24,
        Decomp::Pencils,
        CommBackend::AllToAllV,
        true,
    );
    let folded = p.to_collapsed();
    let mut rank_total = 0u64;
    let mut path_total = 0u64;
    for line in folded.lines() {
        let (stack, v) = line.rsplit_once(' ').unwrap();
        let v: u64 = v.parse().unwrap();
        if stack.contains(";rank_") {
            rank_total += v;
        } else if stack.contains(";critical-path;") {
            path_total += v;
        }
    }
    assert_eq!(rank_total, p.makespan_ns() * p.nranks as u64);
    assert_eq!(path_total, p.critpath.busy_ns + p.critpath.idle_ns);
}
