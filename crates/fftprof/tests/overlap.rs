//! Chunked-reshape overlap as measured by the profiler (ISSUE 7).
//!
//! The acceptance check of the pipelined reshape path: on an 8-rank
//! pencil workload, attribution must show strictly less recv-wait + idle
//! with chunking on than off — the overlap converts exchange-barrier
//! waiting into useful pack/unpack time — while every rank's phases still
//! tile the window exactly despite the now-overlapping spans.

use distfft::dryrun::{DryRunOpts, DryRunner};
use distfft::plan::{CommBackend, FftOptions, FftPlan};
use fftkern::Direction;
use fftprof::{Phase, Profile};
use simgrid::MachineSpec;

const RANKS: usize = 8;

/// Dry-runs the 8-rank pencil workload at one chunk setting and profiles
/// the second (warm) transform.
fn profiled(chunks: usize) -> Profile {
    let machine = MachineSpec::summit();
    let opts = FftOptions {
        backend: CommBackend::AllToAllV,
        reshape_chunks: chunks,
        ..FftOptions::default()
    };
    let plan = FftPlan::build([32, 32, 32], RANKS, opts);
    let mut runner = DryRunner::new(&plan, &machine, DryRunOpts::default());
    runner.run(Direction::Forward);
    let rep = runner.run(Direction::Forward);
    let label = match chunks {
        0 => "auto",
        1 => "monolithic",
        _ => "chunked",
    };
    Profile::build(label, &plan, &machine, true, &rep.traces)
}

/// Total recv-wait + idle over all ranks: the stall budget the pipelined
/// path exists to shrink.
fn stall_ns(p: &Profile) -> u64 {
    let t = p.phases.totals();
    t.get(Phase::RecvWait) + t.get(Phase::Idle)
}

#[test]
fn chunking_reduces_recv_wait_plus_idle() {
    // The env override collapses both settings to one config; the A/B is
    // meaningless then (the CI chunking legs set it), so skip.
    if fftobs::env::is_set("FFT_RESHAPE_CHUNKS") {
        return;
    }
    let off = profiled(1);
    let on = profiled(8);
    assert!(
        stall_ns(&on) < stall_ns(&off),
        "chunking must reduce recv-wait + idle: on={} ns, off={} ns",
        stall_ns(&on),
        stall_ns(&off)
    );
    assert!(
        on.makespan_ns() <= off.makespan_ns(),
        "chunking must not lengthen this workload: on={} ns, off={} ns",
        on.makespan_ns(),
        off.makespan_ns()
    );
}

#[test]
fn transform_ahead_hides_butterflies_under_the_wire() {
    // ISSUE 9 A/B: with chunking on, the next axis' butterflies start as
    // chunks land, so (a) the profiler books a nonzero compute-under-wire
    // overlap account, (b) recv-wait shrinks — waiting became compute —
    // and (c) the makespan strictly drops vs the monolithic exchange
    // (PR 7's overlap alone was nearly makespan-neutral here).
    if fftobs::env::is_set("FFT_RESHAPE_CHUNKS") {
        return;
    }
    let off = profiled(1);
    let on = profiled(8);
    let t_off = off.phases.totals();
    let t_on = on.phases.totals();
    assert_eq!(
        t_off.overlap_ns, 0,
        "monolithic exchanges have no compute under the wire"
    );
    assert!(
        t_on.overlap_ns > 0,
        "transform-ahead must hide butterflies under in-flight exchanges"
    );
    assert!(
        t_on.get(Phase::RecvWait) < t_off.get(Phase::RecvWait),
        "recv-wait must shrink: on={} ns, off={} ns",
        t_on.get(Phase::RecvWait),
        t_off.get(Phase::RecvWait)
    );
    assert!(
        on.makespan_ns() < off.makespan_ns(),
        "transform-ahead must shorten the makespan: on={} ns, off={} ns",
        on.makespan_ns(),
        off.makespan_ns()
    );
    // The overlap account is a side ledger, never tiling: per rank it is
    // bounded by the compute entry.
    for (r, bd) in on.phases.per_rank.iter().enumerate() {
        assert!(
            bd.overlap_ns <= bd.get(Phase::Compute),
            "rank {r}: overlap {} exceeds compute {}",
            bd.overlap_ns,
            bd.get(Phase::Compute)
        );
    }
}

#[test]
fn auto_chunking_profiles_like_a_tuned_fixed_k() {
    // `reshape_chunks: 0` is the auto sentinel: the model-picked k must
    // land within a whisker of the best fixed setting on this workload.
    if fftobs::env::is_set("FFT_RESHAPE_CHUNKS") {
        return;
    }
    let auto = profiled(0);
    let best = (1..=7)
        .map(|k| profiled(k).makespan_ns())
        .min()
        .unwrap_or(u64::MAX);
    let auto_ns = auto.makespan_ns();
    assert!(
        auto_ns as f64 <= best as f64 * 1.05,
        "auto ({auto_ns} ns) must be within 5% of the best fixed k ({best} ns)"
    );
}

#[test]
fn overlapping_chunk_spans_still_tile_the_window() {
    // The integer-nanosecond sweep must keep the per-rank partition exact
    // even when MPI-call and kernel spans overlap on one rank.
    let p = profiled(8);
    let makespan = p.makespan_ns();
    assert!(makespan > 0);
    for (r, bd) in p.phases.per_rank.iter().enumerate() {
        assert_eq!(
            bd.total_ns(),
            makespan,
            "rank {r} phases must sum to the window under overlap"
        );
    }
}
