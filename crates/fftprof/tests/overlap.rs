//! Chunked-reshape overlap as measured by the profiler (ISSUE 7).
//!
//! The acceptance check of the pipelined reshape path: on an 8-rank
//! pencil workload, attribution must show strictly less recv-wait + idle
//! with chunking on than off — the overlap converts exchange-barrier
//! waiting into useful pack/unpack time — while every rank's phases still
//! tile the window exactly despite the now-overlapping spans.

use distfft::dryrun::{DryRunOpts, DryRunner};
use distfft::plan::{CommBackend, FftOptions, FftPlan};
use fftkern::Direction;
use fftprof::{Phase, Profile};
use simgrid::MachineSpec;

const RANKS: usize = 8;

/// Dry-runs the 8-rank pencil workload at one chunk setting and profiles
/// the second (warm) transform.
fn profiled(chunks: usize) -> Profile {
    let machine = MachineSpec::summit();
    let opts = FftOptions {
        backend: CommBackend::AllToAllV,
        reshape_chunks: chunks,
        ..FftOptions::default()
    };
    let plan = FftPlan::build([32, 32, 32], RANKS, opts);
    let mut runner = DryRunner::new(&plan, &machine, DryRunOpts::default());
    runner.run(Direction::Forward);
    let rep = runner.run(Direction::Forward);
    let label = if chunks > 1 { "chunked" } else { "monolithic" };
    Profile::build(label, &plan, &machine, true, &rep.traces)
}

/// Total recv-wait + idle over all ranks: the stall budget the pipelined
/// path exists to shrink.
fn stall_ns(p: &Profile) -> u64 {
    let t = p.phases.totals();
    t.get(Phase::RecvWait) + t.get(Phase::Idle)
}

#[test]
fn chunking_reduces_recv_wait_plus_idle() {
    // The env override collapses both settings to one config; the A/B is
    // meaningless then (the CI chunking legs set it), so skip.
    if std::env::var("FFT_RESHAPE_CHUNKS").is_ok() {
        return;
    }
    let off = profiled(1);
    let on = profiled(8);
    assert!(
        stall_ns(&on) < stall_ns(&off),
        "chunking must reduce recv-wait + idle: on={} ns, off={} ns",
        stall_ns(&on),
        stall_ns(&off)
    );
    assert!(
        on.makespan_ns() <= off.makespan_ns(),
        "chunking must not lengthen this workload: on={} ns, off={} ns",
        on.makespan_ns(),
        off.makespan_ns()
    );
}

#[test]
fn overlapping_chunk_spans_still_tile_the_window() {
    // The integer-nanosecond sweep must keep the per-rank partition exact
    // even when MPI-call and kernel spans overlap on one rank.
    let p = profiled(8);
    let makespan = p.makespan_ns();
    assert!(makespan > 0);
    for (r, bd) in p.phases.per_rank.iter().enumerate() {
        assert_eq!(
            bd.total_ns(),
            makespan,
            "rank {r} phases must sum to the window under overlap"
        );
    }
}
