//! Per-rank phase attribution in simulated time.
//!
//! Splits the profiled window into seven mutually exclusive phases per
//! rank — compute, pack, unpack, self-copy, send, recv-wait, idle — with
//! the invariant that every rank's phases sum *exactly* to the trace
//! makespan. The attribution is an integer-nanosecond timeline sweep:
//! the window is cut at every event boundary and each elementary segment
//! is owned by the highest-priority phase covering it, so overlapping
//! lanes (pipelined chunks overlap kernels with exchanges) can never be
//! double-counted.
//!
//! ## Attribution rules
//!
//! * Local kernels map directly: FFT and pointwise → *compute*; pack,
//!   unpack and the P2P self block keep their own phases.
//! * An MPI exchange call is split in two: the first
//!   [`ideal_call_ns`] nanoseconds — the quiet-network cost of injecting
//!   this rank's payload — are *send*; the remainder of the call is
//!   *recv-wait* (waiting on peers, receiving, and link queuing).
//! * Time covered by no event is *idle*. Kernels outrank communication
//!   when both cover a segment (GPU progress is real work; the overlapped
//!   exchange is free).

use distfft::plan::FftPlan;
use distfft::trace::{KernelKind, Trace, TraceEvent};
use simgrid::MachineSpec;

/// One attribution phase, in priority order (lower discriminant wins a
/// contested segment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// FFT and pointwise kernels.
    Compute = 0,
    /// Pack kernels (staging send buffers).
    Pack = 1,
    /// Unpack kernels (depositing receive buffers).
    Unpack = 2,
    /// The on-rank self block device copy of a P2P reshape.
    SelfCopy = 3,
    /// The quiet-network share of an MPI call: injecting this rank's
    /// payload.
    Send = 4,
    /// The rest of an MPI call: waiting on peers, receiving, queuing.
    RecvWait = 5,
    /// Time covered by no event.
    Idle = 6,
}

/// All phases, in priority order.
pub const PHASES: [Phase; 7] = [
    Phase::Compute,
    Phase::Pack,
    Phase::Unpack,
    Phase::SelfCopy,
    Phase::Send,
    Phase::RecvWait,
    Phase::Idle,
];

impl Phase {
    /// Stable lower-case label (used in reports and collapsed stacks).
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Compute => "compute",
            Phase::Pack => "pack",
            Phase::Unpack => "unpack",
            Phase::SelfCopy => "self-copy",
            Phase::Send => "send",
            Phase::RecvWait => "recv-wait",
            Phase::Idle => "idle",
        }
    }

    /// True for phases that represent communication (send or recv-wait).
    pub fn is_comm(&self) -> bool {
        matches!(self, Phase::Send | Phase::RecvWait)
    }
}

/// Nanoseconds attributed to each phase (indexed by `Phase as usize`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Per-phase totals, indexed by `Phase as usize`.
    pub ns: [u64; 7],
    /// Compute time that ran *under an in-flight exchange* — the
    /// transform-ahead butterflies (DESIGN.md §16) whose segments a
    /// kernel won by priority while an MPI call also covered them. A side
    /// account, **not** an eighth phase: the seven `ns` entries alone tile
    /// the window, and `overlap_ns` is always ≤ the compute entry.
    pub overlap_ns: u64,
}

impl PhaseBreakdown {
    /// Nanoseconds attributed to `p`.
    pub fn get(&self, p: Phase) -> u64 {
        self.ns[p as usize]
    }

    /// Sum over all phases (equals the window width by construction).
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Communication total: send + recv-wait.
    pub fn comm_ns(&self) -> u64 {
        self.get(Phase::Send) + self.get(Phase::RecvWait)
    }
}

/// The per-rank phase attribution table over a common time window.
#[derive(Debug, Clone, Default)]
pub struct PhaseTable {
    /// Profiled window `[start, end)` in simulated nanoseconds (the union
    /// extent of all events on all ranks).
    pub window: (u64, u64),
    /// One breakdown per rank; each sums exactly to `makespan_ns()`.
    pub per_rank: Vec<PhaseBreakdown>,
}

impl PhaseTable {
    /// Width of the profiled window — the trace makespan.
    pub fn makespan_ns(&self) -> u64 {
        self.window.1 - self.window.0
    }

    /// Element-wise sum over ranks.
    pub fn totals(&self) -> PhaseBreakdown {
        let mut t = PhaseBreakdown::default();
        for r in &self.per_rank {
            for i in 0..7 {
                t.ns[i] += r.ns[i];
            }
            t.overlap_ns += r.overlap_ns;
        }
        t
    }

    /// Per-phase maximum across ranks (the wall-clock-relevant view).
    pub fn max_over_ranks(&self) -> PhaseBreakdown {
        let mut t = PhaseBreakdown::default();
        for r in &self.per_rank {
            for i in 0..7 {
                t.ns[i] = t.ns[i].max(r.ns[i]);
            }
            t.overlap_ns = t.overlap_ns.max(r.overlap_ns);
        }
        t
    }
}

/// Exchange-group topology of a run, precomputed from the plan: which
/// ranks exchange together in each reshape and whether that group spans
/// nodes (its traffic crosses the NIC) or stays on intra-node links.
#[derive(Debug, Clone)]
pub struct RunShape {
    /// `groups[ri]` — the communication groups of reshape `ri`.
    pub groups: Vec<Vec<Vec<usize>>>,
    /// `group_of[ri][rank]` — the group index of `rank` in reshape `ri`.
    pub group_of: Vec<Vec<Option<usize>>>,
    /// `inter[ri][rank]` — true when the rank's group spans >1 node.
    pub inter: Vec<Vec<bool>>,
    /// GPU-aware MPI on/off (staged transfers pay host hops).
    pub gpu_aware: bool,
}

impl RunShape {
    /// Derives the shape from a plan's forward reshapes (reverse reshapes
    /// share the same group structure — `ReshapeSpec::reversed` keeps it).
    pub fn from_plan(plan: &FftPlan, machine: &MachineSpec, gpu_aware: bool) -> RunShape {
        let mut groups = Vec::with_capacity(plan.reshapes.len());
        let mut group_of = Vec::with_capacity(plan.reshapes.len());
        let mut inter = Vec::with_capacity(plan.reshapes.len());
        for spec in &plan.reshapes {
            let spans: Vec<bool> = spec
                .groups
                .iter()
                .map(|g| {
                    let mut nodes = g.iter().map(|&r| machine.node_of(r));
                    let first = nodes.next();
                    nodes.any(|n| Some(n) != first)
                })
                .collect();
            let per_rank_inter: Vec<bool> = spec
                .group_of
                .iter()
                .map(|g| g.map(|gi| spans[gi]).unwrap_or(false))
                .collect();
            groups.push(spec.groups.clone());
            group_of.push(spec.group_of.clone());
            inter.push(per_rank_inter);
        }
        RunShape {
            groups,
            group_of,
            inter,
            gpu_aware,
        }
    }

    /// Whether reshape `ri` crosses nodes for `rank` (false when the
    /// reshape index is unknown — defensive for hand-built traces).
    pub fn is_inter(&self, ri: usize, rank: usize) -> bool {
        self.inter
            .get(ri)
            .and_then(|v| v.get(rank))
            .copied()
            .unwrap_or(true)
    }
}

/// Quiet-network cost (ns) of one exchange call moving `bytes` of this
/// rank's payload: latency + per-message protocol ramp + wire time at the
/// un-contended per-flow bandwidth. Mirrors `simgrid::link::message_time_ns`
/// under [`simgrid::TransferCtx::quiet`] but records no metrics — the
/// profiler observes, it never perturbs counters.
pub fn ideal_call_ns(spec: &MachineSpec, bytes: usize, inter: bool, gpu_aware: bool) -> u64 {
    let staged_hops_ns = |bytes: usize| -> f64 {
        // device → host and host → device at ~40% of the host link.
        2.0 * bytes as f64 / (spec.host_link_gbs / 2.5)
    };
    if inter {
        let proto = if bytes > 0 {
            (spec.proto_ramp_inter_bytes as f64 / spec.nic_gbs).ceil() as u64
        } else {
            0
        };
        let wire = bytes as f64 / (spec.nic_gbs * spec.fabric.efficiency(2));
        if gpu_aware {
            spec.inter_latency_ns + proto + wire.ceil() as u64
        } else {
            spec.inter_latency_ns
                + spec.staging_latency_ns
                + proto
                + (wire + staged_hops_ns(bytes)).ceil() as u64
        }
    } else {
        let proto = if bytes > 0 {
            (spec.proto_ramp_intra_bytes as f64 / spec.intra_link_gbs).ceil() as u64
        } else {
            0
        };
        let wire = bytes as f64 / spec.intra_link_gbs;
        if gpu_aware {
            spec.intra_latency_ns + proto + wire.ceil() as u64
        } else {
            spec.intra_latency_ns
                + spec.staging_latency_ns
                + proto
                + (wire + staged_hops_ns(bytes)).ceil() as u64
        }
    }
}

/// Phase of a kernel event.
pub(crate) fn kernel_phase(kind: &KernelKind) -> Phase {
    match kind {
        KernelKind::Fft1d { .. } | KernelKind::Pointwise => Phase::Compute,
        KernelKind::Pack => Phase::Pack,
        KernelKind::Unpack => Phase::Unpack,
        KernelKind::SelfCopy => Phase::SelfCopy,
    }
}

/// The union time extent of all events across ranks, `(min start, max
/// end)`; `(0, 0)` for an empty trace set.
pub fn window(traces: &[Trace]) -> (u64, u64) {
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    let mut any = false;
    for t in traces {
        for e in &t.events {
            let (s, d) = match e {
                TraceEvent::MpiCall { start, dur, .. } => (start.as_ns(), dur.as_ns()),
                TraceEvent::Kernel { start, dur, .. } => (start.as_ns(), dur.as_ns()),
            };
            lo = lo.min(s);
            hi = hi.max(s + d);
            any = true;
        }
    }
    if any {
        (lo, hi)
    } else {
        (0, 0)
    }
}

/// Phase intervals of one rank's events (an MPI call contributes a send
/// interval followed by a recv-wait interval).
fn intervals(
    rank: usize,
    trace: &Trace,
    shape: &RunShape,
    machine: &MachineSpec,
) -> Vec<(Phase, u64, u64)> {
    let mut out = Vec::with_capacity(trace.events.len() + 8);
    for e in &trace.events {
        match e {
            TraceEvent::Kernel { kind, start, dur } => {
                out.push((
                    kernel_phase(kind),
                    start.as_ns(),
                    start.as_ns() + dur.as_ns(),
                ));
            }
            TraceEvent::MpiCall {
                reshape,
                start,
                dur,
                bytes,
                ..
            } => {
                let s = start.as_ns();
                let f = s + dur.as_ns();
                let inter = shape.is_inter(*reshape, rank);
                let send = ideal_call_ns(machine, *bytes, inter, shape.gpu_aware).min(dur.as_ns());
                out.push((Phase::Send, s, s + send));
                out.push((Phase::RecvWait, s + send, f));
            }
        }
    }
    out
}

/// Priority sweep over one rank's intervals: cuts the window at every
/// boundary and hands each segment to the highest-priority covering phase
/// (idle when none covers it). Exact in integer nanoseconds, so the
/// per-phase totals sum to precisely `w1 - w0`.
fn sweep(ivs: &[(Phase, u64, u64)], w0: u64, w1: u64) -> PhaseBreakdown {
    let mut cuts: Vec<u64> = Vec::with_capacity(ivs.len() * 2 + 2);
    cuts.push(w0);
    cuts.push(w1);
    for &(_, s, f) in ivs {
        cuts.push(s.clamp(w0, w1));
        cuts.push(f.clamp(w0, w1));
    }
    cuts.sort_unstable();
    cuts.dedup();

    let mut bd = PhaseBreakdown::default();
    for pair in cuts.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if b <= a {
            continue;
        }
        // The covering set is constant inside (a, b); probe the midpoint.
        let mid = a + (b - a) / 2;
        let mut owner = Phase::Idle;
        let mut under_wire = false;
        for &(p, s, f) in ivs {
            if s <= mid && mid < f {
                if p < owner {
                    owner = p;
                }
                under_wire |= p.is_comm();
            }
        }
        bd.ns[owner as usize] += b - a;
        // Compute that won a segment an exchange also covers is the
        // transform-ahead overlap: book it on the side so the makespan
        // tiling stays exact while the hidden wire time stays visible.
        if owner == Phase::Compute && under_wire {
            bd.overlap_ns += b - a;
        }
    }
    bd
}

impl PhaseTable {
    /// Builds the attribution table for a set of per-rank traces over
    /// their common window.
    pub fn build(traces: &[Trace], shape: &RunShape, machine: &MachineSpec) -> PhaseTable {
        let (w0, w1) = window(traces);
        let per_rank = traces
            .iter()
            .enumerate()
            .map(|(r, t)| sweep(&intervals(r, t, shape, machine), w0, w1))
            .collect();
        PhaseTable {
            window: (w0, w1),
            per_rank,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfft::plan::{FftOptions, FftPlan};
    use distfft::trace::TraceEvent;
    use simgrid::SimTime;

    fn shape_for(n: usize) -> (RunShape, MachineSpec) {
        let machine = MachineSpec::summit();
        let plan = FftPlan::build([32, 32, 32], n, FftOptions::default());
        (RunShape::from_plan(&plan, &machine, true), machine)
    }

    fn kern(kind: KernelKind, start: u64, dur: u64) -> TraceEvent {
        TraceEvent::Kernel {
            kind,
            start: SimTime::from_ns(start),
            dur: SimTime::from_ns(dur),
        }
    }

    fn mpi(reshape: usize, start: u64, dur: u64, bytes: usize) -> TraceEvent {
        TraceEvent::MpiCall {
            reshape,
            routine: "MPI_Alltoallv",
            start: SimTime::from_ns(start),
            dur: SimTime::from_ns(dur),
            bytes,
        }
    }

    #[test]
    fn phases_partition_the_window_exactly() {
        let (shape, machine) = shape_for(12);
        let mut a = Trace::new();
        a.push(kern(
            KernelKind::Fft1d {
                axis: 2,
                contiguous: true,
            },
            0,
            100,
        ));
        a.push(kern(KernelKind::Pack, 100, 50));
        a.push(mpi(0, 150, 10_000, 1 << 20));
        a.push(kern(KernelKind::Unpack, 10_150, 40));
        let mut b = Trace::new();
        b.push(kern(
            KernelKind::Fft1d {
                axis: 2,
                contiguous: true,
            },
            500,
            2_000,
        ));
        let table = PhaseTable::build(&[a, b], &shape, &machine);
        let makespan = table.makespan_ns();
        assert!(makespan > 0);
        for (r, bd) in table.per_rank.iter().enumerate() {
            assert_eq!(bd.total_ns(), makespan, "rank {r} phases must tile");
        }
        // Rank 1 is idle outside its one kernel.
        assert_eq!(
            table.per_rank[1].get(Phase::Idle),
            makespan - 2_000,
            "{table:?}"
        );
    }

    #[test]
    fn overlapping_kernel_wins_over_the_exchange() {
        let (shape, machine) = shape_for(12);
        let mut t = Trace::new();
        // Pipelined chunk: a 1000 ns kernel fully inside a 4000 ns call.
        t.push(mpi(0, 0, 4_000, 0));
        t.push(kern(
            KernelKind::Fft1d {
                axis: 1,
                contiguous: false,
            },
            1_000,
            1_000,
        ));
        let table = PhaseTable::build(&[t], &shape, &machine);
        let bd = &table.per_rank[0];
        assert_eq!(bd.get(Phase::Compute), 1_000);
        assert_eq!(bd.total_ns(), 4_000);
        // The kernel's 1000 ns came out of the call's budget, not on top.
        assert_eq!(bd.comm_ns(), 3_000);
    }

    #[test]
    fn mpi_call_splits_into_send_then_recv_wait() {
        let (shape, machine) = shape_for(12);
        let bytes = 4 << 20;
        let inter = shape.is_inter(0, 0);
        let ideal = ideal_call_ns(&machine, bytes, inter, true);
        let dur = ideal * 3;
        let mut t = Trace::new();
        t.push(mpi(0, 0, dur, bytes));
        let table = PhaseTable::build(&[t], &shape, &machine);
        let bd = &table.per_rank[0];
        assert_eq!(bd.get(Phase::Send), ideal);
        assert_eq!(bd.get(Phase::RecvWait), dur - ideal);
    }

    #[test]
    fn ideal_cost_orders_sensibly() {
        let m = MachineSpec::summit();
        let b = 1 << 20;
        let intra = ideal_call_ns(&m, b, false, true);
        let inter = ideal_call_ns(&m, b, true, true);
        let staged = ideal_call_ns(&m, b, true, false);
        assert!(intra < inter, "{intra} vs {inter}");
        assert!(inter < staged, "{inter} vs {staged}");
    }
}
