//! "Why this decomposition" — a one-paragraph narrative for a tuned
//! choice.
//!
//! The tuner ranks candidates by dry-run time but leaves the *why* to the
//! reader. This module profiles the winner and the best candidate with
//! the other decomposition, diffs them, and writes the paragraph a
//! performance engineer would: which configuration won, by how much,
//! which phase of the loser's critical path paid for it, and whether the
//! closed-form model (equations (2)/(3)) agrees.

use distfft::plan::FftOptions;
use fftmodels::tuner::TunedChoice;
use simgrid::MachineSpec;

use crate::attr::Phase;
use crate::diff::DiffReport;
use crate::report::{profile_config, Profile};

/// Profiles the tuner's winner (and its best differently-decomposed
/// rival, when one was evaluated) and renders a one-paragraph
/// explanation of why the winning decomposition wins on this machine at
/// this size and rank count.
pub fn why_decomposition(
    machine: &MachineSpec,
    n: [usize; 3],
    nranks: usize,
    choice: &TunedChoice,
) -> String {
    let win_label = config_label(&choice.opts, choice.gpu_aware);
    let winner = profile_config(
        &win_label,
        machine,
        n,
        nranks,
        choice.opts.clone(),
        choice.gpu_aware,
    );

    let rival = choice
        .candidates
        .iter()
        .find(|(opts, _, _)| opts.decomp != choice.opts.decomp)
        .map(|(opts, aware, _)| {
            profile_config(
                &config_label(opts, *aware),
                machine,
                n,
                nranks,
                opts.clone(),
                *aware,
            )
        });

    let mut out = String::with_capacity(512);
    out.push_str(&format!(
        "For a {}×{}×{} transform on {} with {} ranks, the tuner picked {} via {}{}, \
         finishing in {}. ",
        n[0],
        n[1],
        n[2],
        winner.machine,
        nranks,
        winner.decomp,
        winner.routine,
        if winner.gpu_aware {
            " (GPU-aware)"
        } else {
            " (host-staged)"
        },
        fmt_ns(winner.makespan_ns()),
    ));
    out.push_str(&format!(
        "Its critical path is {:.0}% communication ({} of busy time), so the exchange \
         pattern, not FFT throughput, decides the ranking. ",
        winner.critpath.comm_share() * 100.0,
        fmt_ns(
            winner.critpath.by_phase[Phase::Send as usize]
                + winner.critpath.by_phase[Phase::RecvWait as usize]
        ),
    ));

    match rival {
        Some(rival) => {
            let diff = DiffReport::between(&winner, &rival);
            let worst = diff
                .rows
                .iter()
                .max_by_key(|r| r.delta_ns())
                // fftlint:allow(no-panic-in-lib): a differential report always has phase rows
                .expect("seven rows");
            out.push_str(&format!(
                "The best {} candidate is {} slower ({} vs {}); the gap is concentrated in \
                 its {} phase (+{}). ",
                rival.decomp,
                fmt_ns(diff.makespan_delta_ns().max(0) as u64),
                fmt_ns(rival.makespan_ns()),
                fmt_ns(winner.makespan_ns()),
                worst.phase.label(),
                fmt_ns(worst.delta_ns().max(0) as u64),
            ));
        }
        None => {
            out.push_str(
                "No candidate with the alternative decomposition was feasible at this rank count. ",
            );
        }
    }

    out.push_str(&format!(
        "The bandwidth model (eqs. (2)/(3)) predicts {} of communication against {} measured \
         ({:+.0}% residual), {} the measured ranking.",
        fmt_ns(winner.residual.predicted_comm_ns),
        fmt_ns(winner.residual.measured_comm_ns),
        winner.residual.residual_frac() * 100.0,
        if winner.residual.residual_frac().abs() < 0.5 {
            "corroborating"
        } else {
            "loosely tracking"
        },
    ));
    out
}

/// Short label for a candidate configuration.
fn config_label(opts: &FftOptions, gpu_aware: bool) -> String {
    format!(
        "{}/{}/{}",
        opts.decomp.name(),
        opts.backend.routine(),
        if gpu_aware { "gpu-aware" } else { "staged" }
    )
}

/// `Profile`-independent pretty-printer for simulated durations.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Re-exported for benches that want the same label formatting.
pub fn profile_label(p: &Profile) -> String {
    format!("{}/{}", p.decomp, p.routine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fftmodels::tuner::tune;

    #[test]
    fn explanation_names_the_winner_and_the_model() {
        let machine = MachineSpec::summit();
        let n = [32, 32, 32];
        let nranks = 12;
        let choice = tune(&machine, n, nranks);
        let text = why_decomposition(&machine, n, nranks, &choice);
        assert!(text.contains(choice.opts.decomp.name()), "{text}");
        assert!(text.contains("critical path"), "{text}");
        assert!(text.contains("eqs. (2)/(3)"), "{text}");
        // One paragraph: no newlines, a few sentences.
        assert!(!text.contains('\n'));
        assert!(text.matches(". ").count() >= 2);
    }
}
