//! Differential reports between two profiled runs.
//!
//! The paper's figures are comparative: slabs vs pencils, alltoall vs
//! point-to-point, GPU-aware vs staged. A [`DiffReport`] compares two
//! [`Profile`]s phase-by-phase — using the per-phase **maximum across
//! ranks**, the wall-clock-relevant view — and carries both runs'
//! model-vs-measured residuals so a difference can be checked against
//! what equations (2)/(3) predicted it should be.
//!
//! A run diffed against itself is exactly zero everywhere — asserted in
//! the property tests, which makes drift in any of the underlying
//! analyses loud.

use crate::attr::{Phase, PHASES};
use crate::report::{ModelResidual, Profile};

/// One phase's comparison between runs A and B.
#[derive(Debug, Clone, Copy)]
pub struct DiffRow {
    /// Phase compared.
    pub phase: Phase,
    /// Run A: max across ranks, ns.
    pub a_ns: u64,
    /// Run B: max across ranks, ns.
    pub b_ns: u64,
}

impl DiffRow {
    /// Signed difference `B − A`, ns (negative = B faster).
    pub fn delta_ns(&self) -> i64 {
        self.b_ns as i64 - self.a_ns as i64
    }

    /// Difference as a fraction of A (0 when A is 0 and B is 0;
    /// +∞-avoiding: B/0 reports 1.0 per nonzero B).
    pub fn delta_frac(&self) -> f64 {
        if self.a_ns == 0 {
            if self.b_ns == 0 {
                0.0
            } else {
                1.0
            }
        } else {
            self.delta_ns() as f64 / self.a_ns as f64
        }
    }
}

/// A phase-by-phase comparison of two runs.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Label of run A (the baseline).
    pub a_label: String,
    /// Label of run B (the contender).
    pub b_label: String,
    /// One row per phase, in priority order.
    pub rows: Vec<DiffRow>,
    /// Run A makespan, ns.
    pub a_makespan_ns: u64,
    /// Run B makespan, ns.
    pub b_makespan_ns: u64,
    /// Run A model residual.
    pub a_residual: ModelResidual,
    /// Run B model residual.
    pub b_residual: ModelResidual,
}

impl DiffReport {
    /// Compares two profiles (A = baseline, B = contender).
    pub fn between(a: &Profile, b: &Profile) -> DiffReport {
        let am = a.phases.max_over_ranks();
        let bm = b.phases.max_over_ranks();
        let rows = PHASES
            .iter()
            .map(|&phase| DiffRow {
                phase,
                a_ns: am.get(phase),
                b_ns: bm.get(phase),
            })
            .collect();
        DiffReport {
            a_label: a.label.clone(),
            b_label: b.label.clone(),
            rows,
            a_makespan_ns: a.makespan_ns(),
            b_makespan_ns: b.makespan_ns(),
            a_residual: a.residual,
            b_residual: b.residual,
        }
    }

    /// Signed makespan difference `B − A`, ns (negative = B wins).
    pub fn makespan_delta_ns(&self) -> i64 {
        self.b_makespan_ns as i64 - self.a_makespan_ns as i64
    }

    /// Label of the faster run (A on a tie).
    pub fn winner(&self) -> &str {
        if self.b_makespan_ns < self.a_makespan_ns {
            &self.b_label
        } else {
            &self.a_label
        }
    }

    /// True when every phase and the makespan are identical — the
    /// self-diff invariant.
    pub fn is_zero(&self) -> bool {
        self.makespan_delta_ns() == 0 && self.rows.iter().all(|r| r.delta_ns() == 0)
    }

    /// Human-readable table (for stderr reports).
    pub fn render_text(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str(&format!(
            "differential report: A = {} | B = {}\n",
            self.a_label, self.b_label
        ));
        s.push_str(&format!(
            "{:<10} {:>14} {:>14} {:>14} {:>9}\n",
            "phase", "A max (ns)", "B max (ns)", "B-A (ns)", "B-A (%)"
        ));
        for r in &self.rows {
            s.push_str(&format!(
                "{:<10} {:>14} {:>14} {:>14} {:>8.1}%\n",
                r.phase.label(),
                r.a_ns,
                r.b_ns,
                r.delta_ns(),
                r.delta_frac() * 100.0
            ));
        }
        s.push_str(&format!(
            "{:<10} {:>14} {:>14} {:>14}   winner: {}\n",
            "makespan",
            self.a_makespan_ns,
            self.b_makespan_ns,
            self.makespan_delta_ns(),
            self.winner()
        ));
        s.push_str(&format!(
            "model residual (measured-predicted comm): A {:+} ns ({:+.1}%) | B {:+} ns ({:+.1}%)\n",
            self.a_residual.residual_ns(),
            self.a_residual.residual_frac() * 100.0,
            self.b_residual.residual_ns(),
            self.b_residual.residual_frac() * 100.0
        ));
        s
    }

    /// The report as a dependency-free JSON document
    /// (`schema: fftprof-diff-v1`).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n  \"schema\": \"fftprof-diff-v1\",\n");
        s.push_str(&format!("  \"a\": \"{}\",\n", esc(&self.a_label)));
        s.push_str(&format!("  \"b\": \"{}\",\n", esc(&self.b_label)));
        s.push_str(&format!("  \"a_makespan_ns\": {},\n", self.a_makespan_ns));
        s.push_str(&format!("  \"b_makespan_ns\": {},\n", self.b_makespan_ns));
        s.push_str(&format!(
            "  \"makespan_delta_ns\": {},\n",
            self.makespan_delta_ns()
        ));
        s.push_str(&format!("  \"winner\": \"{}\",\n", esc(self.winner())));
        s.push_str("  \"phases\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"phase\": \"{}\", \"a_ns\": {}, \"b_ns\": {}, \"delta_ns\": {}}}",
                r.phase.label(),
                r.a_ns,
                r.b_ns,
                r.delta_ns()
            ));
            s.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"model\": {{\"a_residual_ns\": {}, \"b_residual_ns\": {}}}\n",
            self.a_residual.residual_ns(),
            self.b_residual.residual_ns()
        ));
        s.push_str("}\n");
        s
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfft::plan::FftOptions;
    use simgrid::MachineSpec;

    #[test]
    fn self_diff_is_all_zeros() {
        let machine = MachineSpec::summit();
        let p = crate::report::profile_config(
            "self",
            &machine,
            [32, 32, 32],
            12,
            FftOptions::default(),
            true,
        );
        let d = DiffReport::between(&p, &p);
        assert!(d.is_zero(), "{}", d.render_text());
        assert_eq!(d.winner(), "self");
    }

    #[test]
    fn diff_json_parses() {
        let machine = MachineSpec::summit();
        let p = crate::report::profile_config(
            "a",
            &machine,
            [32, 32, 32],
            6,
            FftOptions::default(),
            true,
        );
        let d = DiffReport::between(&p, &p);
        let doc = fftobs::json::parse(&d.to_json()).expect("diff JSON must parse");
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some("fftprof-diff-v1")
        );
        assert_eq!(
            doc.get("phases")
                .and_then(|p| p.as_array())
                .map(|a| a.len()),
            Some(7)
        );
    }
}
