#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # fftprof — critical-path profiler over `distfft` traces
//!
//! The paper's core analysis (Figs. 4–5, equations (2)–(5)) is an
//! *attribution* exercise: deciding which decomposition wins by splitting
//! total FFT time into kernel, pack/unpack and communication cost per rank.
//! `fftobs` records the raw telemetry; this crate turns a set of per-rank
//! [`distfft::Trace`]s plus the [`simgrid::MachineSpec`] topology into that
//! attribution:
//!
//! * [`attr`] — per-rank **phase attribution** in simulated time
//!   (compute / pack / unpack / self-copy / send / recv-wait / idle), with
//!   the invariant that the phases of every rank sum *exactly* to the trace
//!   makespan (an integer-nanosecond timeline sweep, no floating point).
//! * [`dag`] — **critical-path extraction** over the event DAG
//!   (happens-before edges from reshape exchange groups plus per-rank
//!   program order): which ranks, reshapes and phases sit on the path and
//!   how much each contributes.
//! * [`contention`] — **link-contention accounting**: the queuing delay of
//!   every exchange (measured call duration minus the quiet-network ideal)
//!   attributed back to the reshape step and the node-level link that
//!   caused it.
//! * [`diff`] — **differential reports** between two runs (e.g. slabs vs
//!   pencils, alltoall vs p2p) phase-by-phase, with a model-vs-measured
//!   residual column against the [`fftmodels::bandwidth`] predictions.
//! * [`report`] — the combined [`Profile`] plus its two export formats:
//!   a dependency-free JSON document and a collapsed-stack text file
//!   (flamegraph-compatible).
//! * [`explain`] — a one-paragraph "why this decomposition" narrative for
//!   a tuned choice, derived from the winner's and runner-up's profiles.
//!
//! Profiling is pure analysis: it never records `fftobs` metrics and never
//! feeds back into simulated time, so a profiled run stays byte-identical
//! to an unprofiled one.
//!
//! ```
//! use distfft::dryrun::{DryRunOpts, DryRunner};
//! use distfft::plan::{FftOptions, FftPlan};
//! let machine = simgrid::MachineSpec::summit();
//! let plan = FftPlan::build([32, 32, 32], 12, FftOptions::default());
//! let mut runner = DryRunner::new(&plan, &machine, DryRunOpts::default());
//! let rep = runner.run(fftkern::Direction::Forward);
//! let profile = fftprof::Profile::build("demo", &plan, &machine, true, &rep.traces);
//! assert_eq!(
//!     profile.phases.per_rank[0].total_ns(),
//!     profile.makespan_ns()
//! );
//! ```

pub mod attr;
pub mod contention;
pub mod dag;
pub mod diff;
pub mod explain;
pub mod report;

pub use attr::{Phase, PhaseBreakdown, PhaseTable, PHASES};
pub use contention::{Contention, LinkClass, LinkQueue, ReshapeContention};
pub use dag::{CritPath, CritSeg};
pub use diff::{DiffReport, DiffRow};
pub use explain::why_decomposition;
pub use report::{profile_config, ModelResidual, Profile};
