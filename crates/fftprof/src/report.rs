//! The combined [`Profile`] and its export formats.
//!
//! A profile bundles the four analyses — phase attribution, critical path,
//! contention account, model residual — for one run, and exports them as
//!
//! * a **dependency-free JSON document** (`schema: fftprof-profile-v1`,
//!   parseable by `fftobs::json` — validated by `trace_check --profile`);
//! * a **collapsed-stack text file** in the format flamegraph tooling
//!   consumes: one `frame;frame;frame value` line per leaf, values in
//!   simulated nanoseconds.

use distfft::dryrun::{DryRunOpts, DryRunner};
use distfft::plan::{FftOptions, FftPlan};
use distfft::procgrid::closest_factor_pair;
use distfft::trace::Trace;
use distfft::Decomp;
use fftkern::Direction;
use fftmodels::bandwidth::{t_pencils, t_slabs, ModelParams};
use simgrid::MachineSpec;

use crate::attr::{Phase, PhaseTable, RunShape, PHASES};
use crate::contention::Contention;
use crate::dag::CritPath;

/// Model-vs-measured communication residual for one run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModelResidual {
    /// Equations (2)/(3) prediction for this plan, ns.
    pub predicted_comm_ns: u64,
    /// Measured communication: the per-rank maximum of send + recv-wait, ns.
    pub measured_comm_ns: u64,
}

impl ModelResidual {
    /// Signed residual: measured − predicted, ns.
    pub fn residual_ns(&self) -> i64 {
        self.measured_comm_ns as i64 - self.predicted_comm_ns as i64
    }

    /// Residual as a fraction of the prediction (0 when the model
    /// predicts zero).
    pub fn residual_frac(&self) -> f64 {
        if self.predicted_comm_ns == 0 {
            0.0
        } else {
            self.residual_ns() as f64 / self.predicted_comm_ns as f64
        }
    }

    /// Evaluates equations (2)/(3) with the machine's advertised NIC
    /// parameters against the attribution table's measured communication.
    pub fn build(plan: &FftPlan, machine: &MachineSpec, phases: &PhaseTable) -> ModelResidual {
        let params = ModelParams {
            latency_s: machine.inter_latency_ns as f64 * 1e-9,
            bandwidth_bps: machine.nic_gbs * 1e9,
        };
        let n = (plan.n[0] * plan.n[1] * plan.n[2]) as f64;
        let t_s = match plan.opts.decomp {
            Decomp::Slabs => t_slabs(n, plan.active, &params),
            _ => {
                let (p, q) = closest_factor_pair(plan.active);
                t_pencils(n, p, q, &params)
            }
        };
        let measured = phases
            .per_rank
            .iter()
            .map(|bd| bd.comm_ns())
            .max()
            .unwrap_or(0);
        ModelResidual {
            predicted_comm_ns: (t_s * 1e9).round().max(0.0) as u64,
            measured_comm_ns: measured,
        }
    }
}

/// The full profile of one run.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Run label (used in reports and collapsed-stack frames).
    pub label: String,
    /// Transform size.
    pub n: [usize; 3],
    /// Ranks in the trace set.
    pub nranks: usize,
    /// Decomposition label ("slabs" / "pencils" / ...).
    pub decomp: &'static str,
    /// MPI routine of the exchange backend.
    pub routine: &'static str,
    /// GPU-aware MPI on/off.
    pub gpu_aware: bool,
    /// Machine profiled on.
    pub machine: &'static str,
    /// Per-rank phase attribution.
    pub phases: PhaseTable,
    /// Critical path over the event DAG.
    pub critpath: CritPath,
    /// Link-contention account.
    pub contention: Contention,
    /// Model-vs-measured communication residual.
    pub residual: ModelResidual,
}

impl Profile {
    /// Profiles a finished run: `traces` as produced by either executor
    /// for `plan` on `machine`. Pure analysis — records no metrics.
    pub fn build(
        label: &str,
        plan: &FftPlan,
        machine: &MachineSpec,
        gpu_aware: bool,
        traces: &[Trace],
    ) -> Profile {
        let shape = RunShape::from_plan(plan, machine, gpu_aware);
        let phases = PhaseTable::build(traces, &shape, machine);
        let critpath = CritPath::build(traces, &shape, machine);
        let contention = Contention::build(traces, &shape, machine);
        let residual = ModelResidual::build(plan, machine, &phases);
        Profile {
            label: label.to_string(),
            n: plan.n,
            nranks: traces.len(),
            decomp: plan.opts.decomp.name(),
            routine: plan.opts.backend.routine(),
            gpu_aware,
            machine: machine.name,
            phases,
            critpath,
            contention,
            residual,
        }
    }

    /// The trace makespan, ns.
    pub fn makespan_ns(&self) -> u64 {
        self.phases.makespan_ns()
    }

    /// The profile as a dependency-free JSON document
    /// (`schema: fftprof-profile-v1`).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str("  \"schema\": \"fftprof-profile-v1\",\n");
        s.push_str(&format!("  \"label\": \"{}\",\n", esc(&self.label)));
        s.push_str(&format!(
            "  \"n\": [{}, {}, {}],\n",
            self.n[0], self.n[1], self.n[2]
        ));
        s.push_str(&format!("  \"nranks\": {},\n", self.nranks));
        s.push_str(&format!("  \"decomp\": \"{}\",\n", esc(self.decomp)));
        s.push_str(&format!("  \"routine\": \"{}\",\n", esc(self.routine)));
        s.push_str(&format!("  \"gpu_aware\": {},\n", self.gpu_aware));
        s.push_str(&format!("  \"machine\": \"{}\",\n", esc(self.machine)));
        s.push_str(&format!("  \"makespan_ns\": {},\n", self.makespan_ns()));

        // Phase attribution.
        s.push_str(&format!(
            "  \"window\": [{}, {}],\n",
            self.phases.window.0, self.phases.window.1
        ));
        s.push_str("  \"phases\": [\n");
        for (r, bd) in self.phases.per_rank.iter().enumerate() {
            s.push_str(&format!("    {{\"rank\": {r}"));
            for p in PHASES {
                s.push_str(&format!(", \"{}\": {}", esc(p.label()), bd.get(p)));
            }
            // Side account (not a tiling phase): compute hidden under an
            // in-flight exchange by the transform-ahead schedule.
            s.push_str(&format!(", \"overlap_ns\": {}", bd.overlap_ns));
            s.push_str(&format!(", \"total_ns\": {}}}", bd.total_ns()));
            s.push_str(if r + 1 < self.phases.per_rank.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n");

        // Critical path.
        s.push_str("  \"critical_path\": {\n");
        s.push_str(&format!("    \"busy_ns\": {},\n", self.critpath.busy_ns));
        s.push_str(&format!("    \"idle_ns\": {},\n", self.critpath.idle_ns));
        s.push_str(&format!(
            "    \"comm_share\": {:.6},\n",
            self.critpath.comm_share()
        ));
        s.push_str("    \"by_phase\": {");
        for (i, p) in PHASES.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "\"{}\": {}",
                esc(p.label()),
                self.critpath.by_phase[*p as usize]
            ));
        }
        s.push_str("},\n");
        s.push_str(&format!(
            "    \"ranks_on_path\": {},\n",
            json_usize_arr(&self.critpath.ranks_on_path())
        ));
        s.push_str("    \"comm_by_reshape\": [");
        for (i, (ri, ns)) in self.critpath.comm_by_reshape.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("{{\"reshape\": {ri}, \"ns\": {ns}}}"));
        }
        s.push_str("],\n");
        s.push_str("    \"segments\": [\n");
        for (i, seg) in self.critpath.segments.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"rank\": {}, \"phase\": \"{}\", \"ns\": {}, \"reshape\": {}}}",
                seg.rank,
                esc(seg.phase.label()),
                seg.ns,
                seg.reshape
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| "null".to_string())
            ));
            s.push_str(if i + 1 < self.critpath.segments.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("    ]\n  },\n");

        // Contention.
        s.push_str("  \"contention\": {\n");
        s.push_str(&format!(
            "    \"total_queue_ns\": {},\n",
            self.contention.total_queue_ns()
        ));
        s.push_str("    \"by_reshape\": [\n");
        let n_items = self.contention.by_reshape.len();
        for (i, ((ri, class), c)) in self.contention.by_reshape.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"reshape\": {ri}, \"link\": \"{}\", \"calls\": {}, \"bytes\": {}, \
                 \"actual_ns\": {}, \"ideal_ns\": {}, \"queue_ns\": {}}}",
                esc(class.label()),
                c.calls,
                c.bytes,
                c.actual_ns,
                c.ideal_ns,
                c.queue_ns
            ));
            s.push_str(if i + 1 < n_items { ",\n" } else { "\n" });
        }
        s.push_str("    ],\n");
        s.push_str("    \"by_node\": [\n");
        for (i, l) in self.contention.by_node.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"node\": {}, \"link\": \"{}\", \"queue_ns\": {}, \"calls\": {}}}",
                l.node,
                esc(l.class.label()),
                l.queue_ns,
                l.calls
            ));
            s.push_str(if i + 1 < self.contention.by_node.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("    ]\n  },\n");

        // Model residual.
        s.push_str("  \"model\": {");
        s.push_str(&format!(
            "\"predicted_comm_ns\": {}, \"measured_comm_ns\": {}, \"residual_ns\": {}, \
             \"residual_frac\": {:.6}",
            self.residual.predicted_comm_ns,
            self.residual.measured_comm_ns,
            self.residual.residual_ns(),
            self.residual.residual_frac()
        ));
        s.push_str("}\n}\n");
        s
    }

    /// The profile as collapsed stacks, one `frames value` line per leaf
    /// (the format flamegraph tooling consumes). Two stack families:
    /// `label;rank_R;phase` from the attribution table and
    /// `label;critical-path;phase` from the path walk. Values are
    /// simulated nanoseconds; frames never contain spaces.
    pub fn to_collapsed(&self) -> String {
        let root = frame(&self.label);
        let mut s = String::with_capacity(1024);
        for (r, bd) in self.phases.per_rank.iter().enumerate() {
            for p in PHASES {
                let ns = bd.get(p);
                if ns > 0 {
                    s.push_str(&format!("{root};rank_{r};{} {ns}\n", frame(p.label())));
                }
            }
        }
        for p in PHASES {
            let ns = if p == Phase::Idle {
                self.critpath.idle_ns
            } else {
                self.critpath.by_phase[p as usize]
            };
            if ns > 0 {
                s.push_str(&format!("{root};critical-path;{} {ns}\n", frame(p.label())));
            }
        }
        s
    }
}

/// Runs one configuration end to end on the simulated machine (one
/// warm-up, then the measured forward transform) and profiles it. The
/// standard entry point for benchmarks wiring `--profile-out`.
pub fn profile_config(
    label: &str,
    machine: &MachineSpec,
    n: [usize; 3],
    nranks: usize,
    opts: FftOptions,
    gpu_aware: bool,
) -> Profile {
    let plan = FftPlan::build(n, nranks, opts);
    let mut runner = DryRunner::new(
        &plan,
        machine,
        DryRunOpts {
            gpu_aware,
            ..DryRunOpts::default()
        },
    );
    runner.run(Direction::Forward); // warm-up: plan caches, wisdom
    let rep = runner.run(Direction::Forward);
    Profile::build(label, &plan, machine, gpu_aware, &rep.traces)
}

/// Minimal JSON string escape (quotes, backslashes, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_usize_arr(v: &[usize]) -> String {
    let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    format!("[{}]", items.join(", "))
}

/// A collapsed-stack frame: spaces and semicolons would break the
/// `frames value` grammar, so both are replaced with underscores.
fn frame(s: &str) -> String {
    s.replace([' ', ';'], "_")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_profile() -> Profile {
        let machine = MachineSpec::summit();
        profile_config(
            "demo run",
            &machine,
            [32, 32, 32],
            12,
            FftOptions::default(),
            true,
        )
    }

    #[test]
    fn json_export_parses_and_has_schema() {
        let p = demo_profile();
        let doc = fftobs::json::parse(&p.to_json()).expect("profile JSON must parse");
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some("fftprof-profile-v1")
        );
        let phases = doc.get("phases").and_then(|p| p.as_array()).unwrap();
        assert_eq!(phases.len(), 12);
        let makespan = doc.get("makespan_ns").and_then(|m| m.as_f64()).unwrap();
        for row in phases {
            let total = row.get("total_ns").and_then(|t| t.as_f64()).unwrap();
            assert_eq!(total, makespan, "phase rows must sum to the makespan");
        }
        assert!(doc.get("critical_path").is_some());
        assert!(doc.get("contention").is_some());
        assert!(doc.get("model").is_some());
    }

    #[test]
    fn collapsed_stacks_are_well_formed_and_account_all_time() {
        let p = demo_profile();
        let folded = p.to_collapsed();
        let mut rank_total = 0u64;
        for line in folded.lines() {
            let (stack, value) = line.rsplit_once(' ').expect("frames value");
            assert!(!stack.contains(' '), "frames must not contain spaces");
            assert!(stack.starts_with("demo_run;"));
            let v: u64 = value.parse().expect("integer ns value");
            assert!(v > 0);
            if stack.contains(";rank_") {
                rank_total += v;
            }
        }
        // Per-rank stacks tile every rank's window exactly.
        assert_eq!(rank_total, p.makespan_ns() * p.nranks as u64);
    }
}
