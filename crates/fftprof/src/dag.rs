//! Critical-path extraction over the trace event DAG.
//!
//! The happens-before structure of a run has two edge kinds:
//!
//! * **program order** — on one rank, an event is preceded by the latest
//!   event finishing at or before its start;
//! * **exchange groups** — an MPI call cannot complete before every rank
//!   of its reshape group has *entered* the matching call (the collective
//!   semantics both executors implement), so a call's causal predecessor
//!   may live on the rank whose entry was latest.
//!
//! The path is walked backwards from the globally last-finishing event.
//! At an MPI call the walk jumps to the group's latest entrant and
//! continues from that rank's preceding event; at a kernel it follows
//! program order. Each step attributes a segment of the timeline to a
//! `(rank, phase, reshape)` triple; gaps are attributed as idle. The
//! segments tile a suffix of the window, so the path's **busy** length
//! (everything but idle) can never exceed the makespan — and equals it
//! exactly for a gap-free serial one-rank run.

use std::collections::BTreeMap;

use distfft::trace::{Trace, TraceEvent};
use simgrid::MachineSpec;

use crate::attr::{ideal_call_ns, kernel_phase, window, Phase, RunShape};

/// One segment of the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CritSeg {
    /// Rank the segment runs on.
    pub rank: usize,
    /// Phase attributed to the segment.
    pub phase: Phase,
    /// Segment length, ns.
    pub ns: u64,
    /// Reshape index for communication segments.
    pub reshape: Option<usize>,
}

/// The extracted critical path.
#[derive(Debug, Clone, Default)]
pub struct CritPath {
    /// Path segments in chronological order.
    pub segments: Vec<CritSeg>,
    /// Non-idle path length, ns (≤ makespan; = makespan for a gap-free
    /// serial run).
    pub busy_ns: u64,
    /// Idle/wait gaps crossed by the path, ns.
    pub idle_ns: u64,
    /// Busy contribution per phase, indexed by `Phase as usize`.
    pub by_phase: [u64; 7],
    /// Busy contribution per rank.
    pub by_rank: Vec<u64>,
    /// Communication contribution per reshape index.
    pub comm_by_reshape: BTreeMap<usize, u64>,
}

impl CritPath {
    /// Total path length including idle gaps.
    pub fn total_ns(&self) -> u64 {
        self.busy_ns + self.idle_ns
    }

    /// Share (0..=1) of the busy path spent in communication phases.
    pub fn comm_share(&self) -> f64 {
        if self.busy_ns == 0 {
            return 0.0;
        }
        let comm = self.by_phase[Phase::Send as usize] + self.by_phase[Phase::RecvWait as usize];
        comm as f64 / self.busy_ns as f64
    }

    /// Ranks that contribute at least one busy segment, ascending.
    pub fn ranks_on_path(&self) -> Vec<usize> {
        self.by_rank
            .iter()
            .enumerate()
            .filter(|(_, &ns)| ns > 0)
            .map(|(r, _)| r)
            .collect()
    }
}

/// A normalized trace event.
#[derive(Debug, Clone, Copy)]
struct Ev {
    start: u64,
    end: u64,
    kind: EvKind,
}

#[derive(Debug, Clone, Copy)]
enum EvKind {
    Kernel(distfft::KernelKind),
    Mpi {
        reshape: usize,
        occ: usize,
        bytes: usize,
    },
}

impl CritPath {
    /// Extracts the critical path of a run.
    pub fn build(traces: &[Trace], shape: &RunShape, machine: &MachineSpec) -> CritPath {
        let nranks = traces.len();
        let (w0, _w1) = window(traces);

        // Normalize: per-rank events sorted by (end, start), with a map
        // from (rank, reshape, occurrence) to the sorted index so group
        // peers' matching calls can be located.
        let mut evs: Vec<Vec<Ev>> = Vec::with_capacity(nranks);
        let mut call_idx: BTreeMap<(usize, usize, usize), usize> = BTreeMap::new();
        for (r, t) in traces.iter().enumerate() {
            let mut occ_count: BTreeMap<usize, usize> = BTreeMap::new();
            let mut v: Vec<(Ev, Option<(usize, usize)>)> = Vec::with_capacity(t.events.len());
            for e in &t.events {
                match e {
                    TraceEvent::Kernel { kind, start, dur } => v.push((
                        Ev {
                            start: start.as_ns(),
                            end: start.as_ns() + dur.as_ns(),
                            kind: EvKind::Kernel(*kind),
                        },
                        None,
                    )),
                    TraceEvent::MpiCall {
                        reshape,
                        start,
                        dur,
                        bytes,
                        ..
                    } => {
                        let occ = *occ_count.entry(*reshape).or_insert(0);
                        // fftlint:allow(no-panic-in-lib): key inserted on the previous line
                        *occ_count.get_mut(reshape).unwrap() += 1;
                        v.push((
                            Ev {
                                start: start.as_ns(),
                                end: start.as_ns() + dur.as_ns(),
                                kind: EvKind::Mpi {
                                    reshape: *reshape,
                                    occ,
                                    bytes: *bytes,
                                },
                            },
                            Some((*reshape, occ)),
                        ));
                    }
                }
            }
            v.sort_by_key(|(e, _)| (e.end, e.start));
            for (i, (_, key)) in v.iter().enumerate() {
                if let Some((ri, occ)) = key {
                    call_idx.insert((r, *ri, *occ), i);
                }
            }
            evs.push(v.into_iter().map(|(e, _)| e).collect());
        }

        let mut path = CritPath {
            by_rank: vec![0; nranks],
            ..CritPath::default()
        };

        // Start from the globally last-finishing event.
        let mut cur: Option<(usize, usize)> = None;
        let mut best_end = 0u64;
        for (r, v) in evs.iter().enumerate() {
            if let Some(i) = v.len().checked_sub(1) {
                if cur.is_none() || v[i].end > best_end {
                    best_end = v[i].end;
                    cur = Some((r, i));
                }
            }
        }
        let mut t_cursor = best_end;
        let total_events: usize = evs.iter().map(|v| v.len()).sum();
        let mut steps = 0usize;

        // Latest event on rank `r` at sorted index < `from` finishing at
        // or before `t`.
        let pred = |r: usize, from: usize, t: u64| -> Option<usize> {
            evs[r][..from].iter().rposition(|e| e.end <= t)
        };

        while let Some((r, i)) = cur.take() {
            steps += 1;
            if steps > total_events * 4 + 16 {
                debug_assert!(false, "critical-path walk failed to terminate");
                break;
            }
            let e = evs[r][i];
            // Gap between this event's completion and the path frontier.
            if t_cursor > e.end {
                path.push_seg(CritSeg {
                    rank: r,
                    phase: Phase::Idle,
                    ns: t_cursor - e.end,
                    reshape: None,
                });
                t_cursor = e.end;
            }
            match e.kind {
                EvKind::Kernel(kind) => {
                    let lo = e.start.min(t_cursor);
                    path.push_seg(CritSeg {
                        rank: r,
                        phase: kernel_phase(&kind),
                        ns: t_cursor - lo,
                        reshape: None,
                    });
                    t_cursor = lo;
                    cur = pred(r, i, t_cursor).map(|j| (r, j));
                }
                EvKind::Mpi {
                    reshape,
                    occ,
                    bytes,
                } => {
                    // Latest entrant across the exchange group decides when
                    // the collective could start making progress.
                    let group: &[usize] = shape
                        .group_of
                        .get(reshape)
                        .and_then(|g| g.get(r).copied().flatten())
                        .and_then(|gi| shape.groups[reshape].get(gi))
                        .map(|g| g.as_slice())
                        .unwrap_or(&[]);
                    let mut late_rank = r;
                    let mut late_idx = i;
                    let mut late_entry = e.start;
                    for &p in group {
                        if p == r || p >= nranks {
                            continue;
                        }
                        if let Some(&j) = call_idx.get(&(p, reshape, occ)) {
                            let entry = evs[p][j].start;
                            if entry > late_entry {
                                late_entry = entry;
                                late_rank = p;
                                late_idx = j;
                            }
                        }
                    }
                    let lo = late_entry.min(t_cursor);
                    let len = t_cursor - lo;
                    let inter = shape.is_inter(reshape, r);
                    let send = ideal_call_ns(machine, bytes, inter, shape.gpu_aware).min(len);
                    // Chronologically: injection first, then wait/queue.
                    path.push_seg(CritSeg {
                        rank: r,
                        phase: Phase::RecvWait,
                        ns: len - send,
                        reshape: Some(reshape),
                    });
                    path.push_seg(CritSeg {
                        rank: r,
                        phase: Phase::Send,
                        ns: send,
                        reshape: Some(reshape),
                    });
                    t_cursor = lo;
                    cur = pred(late_rank, late_idx, t_cursor).map(|j| (late_rank, j));
                }
            }
        }
        // Startup gap back to the window origin.
        if t_cursor > w0 {
            let rank = path.segments.last().map(|s| s.rank).unwrap_or(0);
            path.push_seg(CritSeg {
                rank,
                phase: Phase::Idle,
                ns: t_cursor - w0,
                reshape: None,
            });
        }
        path.segments.reverse();
        path
    }

    fn push_seg(&mut self, seg: CritSeg) {
        if seg.ns == 0 {
            return;
        }
        if seg.phase == Phase::Idle {
            self.idle_ns += seg.ns;
        } else {
            self.busy_ns += seg.ns;
            self.by_phase[seg.phase as usize] += seg.ns;
            if let Some(r) = self.by_rank.get_mut(seg.rank) {
                *r += seg.ns;
            }
            if let Some(ri) = seg.reshape {
                if seg.phase.is_comm() {
                    *self.comm_by_reshape.entry(ri).or_insert(0) += seg.ns;
                }
            }
        }
        self.segments.push(seg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfft::dryrun::{DryRunOpts, DryRunner};
    use distfft::plan::{FftOptions, FftPlan};
    use fftkern::Direction;
    use simgrid::MachineSpec;

    fn run(n: [usize; 3], ranks: usize) -> (CritPath, u64) {
        let machine = MachineSpec::summit();
        let plan = FftPlan::build(n, ranks, FftOptions::default());
        let shape = RunShape::from_plan(&plan, &machine, true);
        let mut runner = DryRunner::new(&plan, &machine, DryRunOpts::default());
        let rep = runner.run(Direction::Forward);
        let (w0, w1) = window(&rep.traces);
        (CritPath::build(&rep.traces, &shape, &machine), w1 - w0)
    }

    #[test]
    fn path_tiles_a_window_suffix() {
        let (path, makespan) = run([32, 32, 32], 12);
        assert!(path.busy_ns > 0);
        assert!(
            path.busy_ns <= makespan,
            "busy {} > makespan {makespan}",
            path.busy_ns
        );
        assert!(path.total_ns() <= makespan);
        let seg_sum: u64 = path.segments.iter().map(|s| s.ns).sum();
        assert_eq!(seg_sum, path.total_ns());
    }

    #[test]
    fn multinode_path_contains_communication() {
        let (path, _) = run([64, 64, 64], 24);
        assert!(
            path.comm_share() > 0.0,
            "a 4-node exchange-bound run must put comm on the path: {:?}",
            path.by_phase
        );
        assert!(!path.comm_by_reshape.is_empty());
        assert!(!path.ranks_on_path().is_empty());
    }

    #[test]
    fn serial_one_rank_path_equals_makespan() {
        let (path, makespan) = run([32, 32, 32], 1);
        assert_eq!(
            path.busy_ns, makespan,
            "a serial gap-free run is 100% critical"
        );
        assert_eq!(path.idle_ns, 0);
    }
}
