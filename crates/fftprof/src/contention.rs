//! Link-contention accounting.
//!
//! Every MPI call in a trace took `dur` nanoseconds; on a quiet network
//! the same payload would have taken [`ideal_call_ns`]. The difference is
//! **queuing delay** — time the payload spent waiting behind other flows
//! on a shared link (the node NIC for inter-node groups, the NVLink
//! complex for intra-node ones) plus the peer-synchronization skew folded
//! into the collective. This module attributes that delay back to the
//! reshape step that caused it and the node-level link it queued on.

use std::collections::BTreeMap;

use distfft::trace::{Trace, TraceEvent};
use simgrid::MachineSpec;

use crate::attr::{ideal_call_ns, RunShape};

/// Which shared link class an exchange queues on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LinkClass {
    /// Intra-node GPU interconnect (NVLink complex).
    IntraNode,
    /// The node's network interface (NIC / fabric).
    InterNode,
}

impl LinkClass {
    /// Stable lower-case label.
    pub fn label(&self) -> &'static str {
        match self {
            LinkClass::IntraNode => "intra-node",
            LinkClass::InterNode => "inter-node",
        }
    }
}

/// Aggregated contention for one `(reshape, link class)` pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReshapeContention {
    /// MPI calls aggregated.
    pub calls: u64,
    /// Payload bytes injected by the calling ranks.
    pub bytes: u64,
    /// Measured call time, summed over ranks, ns.
    pub actual_ns: u64,
    /// Quiet-network time for the same payloads, ns.
    pub ideal_ns: u64,
    /// Queuing delay: `actual - ideal`, saturating per call, ns.
    pub queue_ns: u64,
}

impl ReshapeContention {
    /// Queue share of the measured time (0 when nothing was measured).
    pub fn queue_frac(&self) -> f64 {
        if self.actual_ns == 0 {
            0.0
        } else {
            self.queue_ns as f64 / self.actual_ns as f64
        }
    }
}

/// Queuing delay accumulated on one node's shared link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkQueue {
    /// Node index.
    pub node: usize,
    /// Link class the delay accrued on.
    pub class: LinkClass,
    /// Total queuing delay over the node's ranks, ns.
    pub queue_ns: u64,
    /// Calls contributing.
    pub calls: u64,
}

/// The full contention account of a run.
#[derive(Debug, Clone, Default)]
pub struct Contention {
    /// Per `(reshape index, link class)` aggregation.
    pub by_reshape: BTreeMap<(usize, LinkClass), ReshapeContention>,
    /// Per-node shared-link queues, sorted by `queue_ns` descending.
    pub by_node: Vec<LinkQueue>,
}

impl Contention {
    /// Builds the account by replaying every MPI call against the
    /// quiet-network cost model.
    pub fn build(traces: &[Trace], shape: &RunShape, machine: &MachineSpec) -> Contention {
        let mut by_reshape: BTreeMap<(usize, LinkClass), ReshapeContention> = BTreeMap::new();
        let mut by_node: BTreeMap<(usize, LinkClass), (u64, u64)> = BTreeMap::new();
        for (rank, t) in traces.iter().enumerate() {
            for e in &t.events {
                if let TraceEvent::MpiCall {
                    reshape,
                    dur,
                    bytes,
                    ..
                } = e
                {
                    let inter = shape.is_inter(*reshape, rank);
                    let class = if inter {
                        LinkClass::InterNode
                    } else {
                        LinkClass::IntraNode
                    };
                    let ideal = ideal_call_ns(machine, *bytes, inter, shape.gpu_aware);
                    let actual = dur.as_ns();
                    let queue = actual.saturating_sub(ideal);
                    let c = by_reshape.entry((*reshape, class)).or_default();
                    c.calls += 1;
                    c.bytes += *bytes as u64;
                    c.actual_ns += actual;
                    c.ideal_ns += ideal.min(actual);
                    c.queue_ns += queue;
                    let node = machine.node_of(rank);
                    let n = by_node.entry((node, class)).or_insert((0, 0));
                    n.0 += queue;
                    n.1 += 1;
                }
            }
        }
        let mut by_node: Vec<LinkQueue> = by_node
            .into_iter()
            .map(|((node, class), (queue_ns, calls))| LinkQueue {
                node,
                class,
                queue_ns,
                calls,
            })
            .collect();
        by_node.sort_by(|a, b| b.queue_ns.cmp(&a.queue_ns).then(a.node.cmp(&b.node)));
        Contention {
            by_node,
            by_reshape,
        }
    }

    /// Total queuing delay across all reshapes, ns.
    pub fn total_queue_ns(&self) -> u64 {
        self.by_reshape.values().map(|c| c.queue_ns).sum()
    }

    /// The reshape/link pair with the largest queue, if any call queued.
    pub fn hottest(&self) -> Option<(usize, LinkClass, &ReshapeContention)> {
        self.by_reshape
            .iter()
            .max_by_key(|(_, c)| c.queue_ns)
            .map(|(&(ri, class), c)| (ri, class, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfft::dryrun::{DryRunOpts, DryRunner};
    use distfft::plan::{FftOptions, FftPlan};
    use fftkern::Direction;

    #[test]
    fn congested_exchange_shows_queue_delay() {
        let machine = MachineSpec::summit();
        let plan = FftPlan::build([64, 64, 64], 24, FftOptions::default());
        let shape = RunShape::from_plan(&plan, &machine, true);
        let mut runner = DryRunner::new(&plan, &machine, DryRunOpts::default());
        let rep = runner.run(Direction::Forward);
        let c = Contention::build(&rep.traces, &shape, &machine);
        assert!(!c.by_reshape.is_empty());
        // Many flows share each NIC: measured time must exceed the
        // single-flow quiet-network ideal somewhere.
        assert!(c.total_queue_ns() > 0, "{c:?}");
        let (_, _, hot) = c.hottest().expect("at least one exchange");
        assert!(hot.queue_frac() > 0.0 && hot.queue_frac() < 1.0);
        // Every aggregate is internally consistent.
        for c in c.by_reshape.values() {
            assert_eq!(c.actual_ns, c.ideal_ns + c.queue_ns);
        }
    }

    #[test]
    fn by_node_is_sorted_and_complete() {
        let machine = MachineSpec::summit();
        let plan = FftPlan::build([32, 32, 32], 12, FftOptions::default());
        let shape = RunShape::from_plan(&plan, &machine, true);
        let mut runner = DryRunner::new(&plan, &machine, DryRunOpts::default());
        let rep = runner.run(Direction::Forward);
        let c = Contention::build(&rep.traces, &shape, &machine);
        let node_total: u64 = c.by_node.iter().map(|l| l.queue_ns).sum();
        assert_eq!(node_total, c.total_queue_ns());
        for w in c.by_node.windows(2) {
            assert!(w[0].queue_ns >= w[1].queue_ns);
        }
    }
}
