//! Span timelines and their export formats.
//!
//! A [`Span`] is one named interval on one rank's timeline (simulated time,
//! nanoseconds). The `distfft` trace layer lowers its per-rank event logs
//! into spans; this module turns a span set into
//!
//! * **Chrome-trace JSON** ([`chrome_trace_json`]) — the
//!   `chrome://tracing` / Perfetto "trace event" format: one complete
//!   (`"ph": "X"`) event per span with the rank as `pid` and the resource
//!   (GPU stream vs network) as `tid`, plus metadata events naming both;
//! * **a plain-text summary table** ([`span_summary`]) — per span name:
//!   call count, total/mean/max duration and share of the summed time.
//!
//! Both renderings are pure functions of the span list, so a deterministic
//! simulation exports byte-identical artifacts.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One interval on one rank's timeline. Times are simulated nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Event name (e.g. `"MPI_Alltoallv"`, `"FFT"`, `"pack"`).
    pub name: &'static str,
    /// Category (e.g. `"comm"`, `"kernel"`).
    pub cat: &'static str,
    /// Process id in the export — the MPI rank.
    pub pid: u32,
    /// Thread id in the export — the rank-local resource lane.
    pub tid: u32,
    /// Start time in simulated nanoseconds.
    pub start_ns: u64,
    /// Duration in simulated nanoseconds.
    pub dur_ns: u64,
}

/// Formats nanoseconds as the microsecond float Chrome-trace expects,
/// without going through `f64` (exact for the full `u64` range).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders spans as a Chrome-trace JSON document.
///
/// `lanes` names the `tid` values (e.g. `[(0, "gpu"), (1, "net")]`); a
/// `thread_name` metadata event is emitted for every named lane of every
/// rank that appears in `spans`, and a `process_name` event (`"rank N"`)
/// for every rank. Load the result in `chrome://tracing` or
/// <https://ui.perfetto.dev>.
pub fn chrome_trace_json(spans: &[Span], lanes: &[(u32, &str)]) -> String {
    let mut pids: Vec<u32> = spans.iter().map(|s| s.pid).collect();
    pids.sort_unstable();
    pids.dedup();

    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str("\n  ");
    };
    for &pid in &pids {
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"rank {pid}\"}}}}"
        );
        for &(tid, lane) in lanes {
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\""
            );
            push_escaped(&mut out, lane);
            out.push_str("\"}}");
        }
    }
    for s in spans {
        sep(&mut out, &mut first);
        out.push_str("{\"name\":\"");
        push_escaped(&mut out, s.name);
        out.push_str("\",\"cat\":\"");
        push_escaped(&mut out, s.cat);
        let _ = write!(
            out,
            "\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{}}}",
            s.pid,
            s.tid,
            us(s.start_ns),
            us(s.dur_ns)
        );
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

/// Per-name aggregate over a span set.
#[derive(Debug, Clone, PartialEq, Eq)]
struct NameStats {
    cat: &'static str,
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

/// Renders the plain-text summary table: one row per span name with call
/// count, total / mean / max duration (ms / µs) and share of the summed
/// span time across all ranks.
pub fn span_summary(spans: &[Span]) -> String {
    if spans.is_empty() {
        return String::from("(no spans)\n");
    }
    let mut by_name: BTreeMap<&'static str, NameStats> = BTreeMap::new();
    for s in spans {
        let e = by_name.entry(s.name).or_insert(NameStats {
            cat: s.cat,
            count: 0,
            total_ns: 0,
            max_ns: 0,
        });
        e.count += 1;
        e.total_ns += s.dur_ns;
        e.max_ns = e.max_ns.max(s.dur_ns);
    }
    let grand: u64 = by_name.values().map(|e| e.total_ns).sum();
    let name_w = by_name.keys().map(|n| n.len()).max().unwrap_or(4).max(4);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<name_w$}  {:>8}  {:>6}  {:>12}  {:>10}  {:>10}  {:>6}",
        "span", "cat", "calls", "total (ms)", "mean (us)", "max (us)", "share"
    );
    for (name, e) in &by_name {
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>8}  {:>6}  {:>12.3}  {:>10.2}  {:>10.2}  {:>5.1}%",
            name,
            e.cat,
            e.count,
            e.total_ns as f64 / 1e6,
            e.total_ns as f64 / e.count as f64 / 1e3,
            e.max_ns as f64 / 1e3,
            if grand == 0 {
                0.0
            } else {
                100.0 * e.total_ns as f64 / grand as f64
            }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn spans() -> Vec<Span> {
        vec![
            Span {
                name: "FFT",
                cat: "kernel",
                pid: 0,
                tid: 0,
                start_ns: 0,
                dur_ns: 1_500,
            },
            Span {
                name: "MPI_Alltoallv",
                cat: "comm",
                pid: 0,
                tid: 1,
                start_ns: 1_500,
                dur_ns: 2_500,
            },
            Span {
                name: "FFT",
                cat: "kernel",
                pid: 1,
                tid: 0,
                start_ns: 10,
                dur_ns: 500,
            },
        ]
    }

    #[test]
    fn us_formatting_is_exact() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(1), "0.001");
        assert_eq!(us(1_500), "1.500");
        assert_eq!(us(12_345_678), "12345.678");
    }

    #[test]
    fn chrome_trace_parses_and_carries_all_events() {
        let text = chrome_trace_json(&spans(), &[(0, "gpu"), (1, "net")]);
        let doc = json::parse(&text).expect("export must be valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        let xs: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        assert_eq!(xs.len(), 3);
        // Metadata names both ranks and both lanes.
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
            .collect();
        assert_eq!(metas.len(), 2 + 2 * 2);
        // Fields of one complete event.
        let first = xs[0];
        assert_eq!(first.get("name").and_then(|v| v.as_str()), Some("FFT"));
        assert_eq!(first.get("pid").and_then(|v| v.as_f64()), Some(0.0));
        assert_eq!(first.get("dur").and_then(|v| v.as_f64()), Some(1.5));
    }

    #[test]
    fn summary_totals_and_shares() {
        let s = span_summary(&spans());
        // FFT: 2 calls, 2000 ns total; MPI: 1 call, 2500 ns.
        assert!(s.contains("FFT"), "{s}");
        assert!(s.contains("MPI_Alltoallv"), "{s}");
        assert!(s.contains("44.4%"), "{s}"); // 2000 / 4500
        assert!(s.contains("55.6%"), "{s}"); // 2500 / 4500
        assert_eq!(span_summary(&[]), "(no spans)\n");
    }

    #[test]
    fn escaping_never_breaks_the_json() {
        let s = [Span {
            name: "weird\"name\\with\u{1}ctl",
            cat: "k",
            pid: 0,
            tid: 0,
            start_ns: 0,
            dur_ns: 1,
        }];
        let text = chrome_trace_json(&s, &[]);
        let doc = json::parse(&text).expect("escaped export must parse");
        let events = doc.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        let x = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .unwrap();
        assert_eq!(
            x.get("name").and_then(|v| v.as_str()),
            Some("weird\"name\\with\u{1}ctl")
        );
    }
}
