//! A minimal JSON reader for validating exported artifacts.
//!
//! The build environment is offline (no serde), but the trace-export smoke
//! test and the round-trip tests need to *parse* what [`crate::span`]
//! writes. This is a small recursive-descent parser covering the full JSON
//! grammar (objects, arrays, strings with escapes, numbers, literals); it
//! is meant for validation of trusted, tool-generated documents, not as a
//! general-purpose deserializer.

use std::fmt;

/// A parsed JSON value. Object members keep document order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The text when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus a short reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub pos: usize,
    /// Why.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':', "expected ':' after object key")?;
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(members)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require the low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(char::from_u32(code).ok_or(self.err("invalid code point"))?);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(c) => {
                    // Re-assemble multi-byte UTF-8 (input is a &str, so the
                    // bytes are valid; find the char boundary).
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let mut end = self.pos;
                        while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                            end += 1;
                        }
                        out.push_str(
                            std::str::from_utf8(&self.bytes[start..end])
                                .map_err(|_| self.err("invalid UTF-8"))?,
                        );
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a": [1, {"b": "c"}, null], "d": {}}"#).unwrap();
        let arr = doc.get("a").and_then(|v| v.as_array()).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b").and_then(|v| v.as_str()), Some("c"));
        assert_eq!(doc.get("d"), Some(&Json::Obj(vec![])));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn unicode_escapes_and_raw_utf8() {
        assert_eq!(
            parse("\"\\u00e9 caf\u{e9} \\ud83d\\ude00\"").unwrap(),
            Json::Str("é café 😀".into())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":}",
            "\"\\ud800x\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn error_reports_position() {
        let e = parse("[1, x]").unwrap_err();
        assert_eq!(e.pos, 4);
        assert!(e.to_string().contains("byte 4"));
    }
}
