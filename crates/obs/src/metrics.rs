//! Thread-safe metrics registry: named counters and log₂ histograms.
//!
//! All storage is atomic; registration takes a short mutex on a `BTreeMap`
//! (names are interned `&'static str`s, so hot paths that hold on to the
//! returned [`Counter`]/[`Histogram`] handle pay only an atomic add).
//! Snapshots are deterministic: entries come out sorted by name.
//!
//! Metrics observe — they never steer. Nothing in the simulation reads a
//! counter back into a timing decision, which is what keeps instrumented
//! runs byte-identical to uninstrumented ones.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: bucket 0 holds value 0, bucket `i` holds values
/// in `[2^(i-1), 2^i)`, the last bucket saturates.
const BUCKETS: usize = 64;

/// A histogram over `u64` values with power-of-two buckets — enough
/// resolution for span durations and byte counts without configuration.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        let idx = (64 - value.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) from the log₂ buckets.
    ///
    /// The target rank's bucket bounds the true value to one power of two;
    /// the estimate interpolates linearly inside the bucket by rank and is
    /// clamped to the recorded maximum, so `quantile(1.0) == max()`. Exact
    /// for values that land on bucket boundaries (0, 1) and within 2× in
    /// general — enough to rank span durations, not a t-digest.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: the smallest value with cumulative share ≥ q.
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            if seen + n >= target {
                if i == 0 {
                    return 0; // bucket 0 holds exactly the value 0
                }
                let lo = 1u64 << (i - 1);
                // The last bucket saturates: it holds everything ≥ 2^62,
                // including values past 2^63, so its upper bound is the
                // full u64 range — `(1 << i) - 1` would silently cap a
                // single-sample p99 at `i64::MAX` (the old `i < 64` guard
                // was dead code: `i` never exceeds BUCKETS - 1 = 63).
                let hi = if i + 1 < BUCKETS {
                    (1u64 << i) - 1
                } else {
                    u64::MAX
                };
                let hi = hi.min(self.max());
                let pos = (target - seen) as f64 / n as f64;
                let est = lo as f64 + pos * hi.saturating_sub(lo) as f64;
                return (est.round() as u64).clamp(lo.min(hi), hi);
            }
            seen += n;
        }
        self.max()
    }
}

/// One counter in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnap {
    /// Metric name.
    pub name: &'static str,
    /// Value at snapshot time.
    pub value: u64,
}

/// One histogram in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnap {
    /// Metric name.
    pub name: &'static str,
    /// Observation count.
    pub count: u64,
    /// Observation sum.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
    /// Mean observation.
    pub mean: f64,
    /// Estimated median (see [`Histogram::quantile`]).
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<CounterSnap>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnap>,
}

impl MetricsSnapshot {
    /// Value of a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Histogram entry by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnap> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Renders the snapshot as an aligned plain-text block (one metric per
    /// line), suitable for stderr diagnostics.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if self.counters.is_empty() && self.histograms.is_empty() {
            out.push_str("(no metrics recorded)\n");
            return out;
        }
        let width = self
            .counters
            .iter()
            .map(|c| c.name.len())
            .chain(self.histograms.iter().map(|h| h.name.len()))
            .max()
            .unwrap_or(0);
        for c in &self.counters {
            let _ = writeln!(out, "{:<width$}  {}", c.name, c.value);
        }
        for h in &self.histograms {
            let _ = writeln!(
                out,
                "{:<width$}  count {}  sum {}  mean {:.1}  p50 {}  p90 {}  p99 {}  max {}",
                h.name, h.count, h.sum, h.mean, h.p50, h.p90, h.p99, h.max
            );
        }
        out
    }
}

/// A registry of named counters and histograms.
///
/// A process-wide instance is available via [`registry`]; isolated
/// instances ([`Registry::new`]) are useful in tests.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns (registering on first use) the named counter.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(name).or_default())
    }

    /// Returns (registering on first use) the named histogram.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(name).or_default())
    }

    /// A sorted point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, c)| CounterSnap {
                name,
                value: c.get(),
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, h)| HistogramSnap {
                name,
                count: h.count(),
                sum: h.sum(),
                max: h.max(),
                mean: h.mean(),
                p50: h.quantile(0.50),
                p90: h.quantile(0.90),
                p99: h.quantile(0.99),
            })
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
        }
    }

    /// Zeroes every registered metric (registrations are kept, so held
    /// handles stay valid).
    pub fn reset(&self) {
        for c in self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            c.0.store(0, Ordering::Relaxed);
        }
        for h in self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
            h.count.store(0, Ordering::Relaxed);
            h.sum.store(0, Ordering::Relaxed);
            h.max.store(0, Ordering::Relaxed);
        }
    }
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let r = Registry::new();
        r.counter("b.two").add(2);
        r.counter("a.one").inc();
        r.counter("b.two").add(3);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a.one"), Some(1));
        assert_eq!(snap.counter("b.two"), Some(5));
        assert_eq!(snap.counters[0].name, "a.one");
        assert_eq!(snap.counters[1].name, "b.two");
    }

    #[test]
    fn histogram_stats() {
        let r = Registry::new();
        let h = r.histogram("lat");
        for v in [0u64, 1, 2, 1024, 7] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1034);
        assert_eq!(h.max(), 1024);
        assert!((h.mean() - 206.8).abs() < 1e-9);
        let snap = r.snapshot();
        let hs = snap.histogram("lat").unwrap();
        assert_eq!(hs.count, 5);
        assert_eq!(hs.max, 1024);
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.50);
        let p90 = h.quantile(0.90);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert_eq!(h.quantile(1.0), h.max());
        // log₂ buckets bound each estimate to a factor of 2 of the truth.
        assert!((250..=1000).contains(&p50), "median of 1..=1000: {p50}");
        assert!((450..=1000).contains(&p90), "p90 of 1..=1000: {p90}");
    }

    #[test]
    fn quantile_edge_cases() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        h.record(0);
        assert_eq!(h.quantile(0.5), 0, "all-zero observations");
        let h2 = Histogram::default();
        h2.record(42);
        // A single observation is every quantile, within bucket resolution.
        for q in [0.0, 0.5, 0.99, 1.0] {
            let est = h2.quantile(q);
            assert!((32..=42).contains(&est), "q={q}: {est}");
        }
        assert_eq!(h2.quantile(1.0), 42);
    }

    #[test]
    fn snapshot_carries_percentiles() {
        let r = Registry::new();
        let h = r.histogram("lat");
        for v in [1u64, 2, 4, 8, 1024] {
            h.record(v);
        }
        let snap = r.snapshot();
        let hs = snap.histogram("lat").unwrap();
        assert!(hs.p50 <= hs.p90 && hs.p90 <= hs.p99);
        assert!(hs.p99 <= hs.max);
        assert!(snap.render_text().contains("p50"));
    }

    #[test]
    fn histogram_bucket_saturation_does_not_panic() {
        let h = Histogram::default();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn single_sample_quantile_returns_the_samples_bucket_in_every_bucket() {
        // Regression: the saturated last bucket's upper bound was computed
        // with a dead `i < 64` guard, so a lone sample ≥ 2^63 reported
        // p99 = (1 << 63) - 1 instead of the sample itself. A one-sample
        // histogram's every quantile must land in that sample's bucket
        // (and q = 1.0 must be exact), across all buckets including the
        // saturated one.
        for shift in [0u32, 1, 5, 31, 62, 63] {
            let v = 1u64 << shift;
            let h = Histogram::default();
            h.record(v);
            for q in [0.01, 0.5, 0.99, 1.0] {
                let est = h.quantile(q);
                assert!(
                    est >= v / 2 && est <= v,
                    "shift {shift} q {q}: {est} not in [{}, {v}]",
                    v / 2
                );
            }
            assert_eq!(h.quantile(1.0), v, "shift {shift}");
        }
        let h = Histogram::default();
        h.record(u64::MAX);
        assert_eq!(h.quantile(0.99), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let r = Registry::new();
        let c = r.counter("x");
        c.add(9);
        let h = r.histogram("y");
        h.record(3);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        c.inc();
        assert_eq!(r.snapshot().counter("x"), Some(1));
    }

    #[test]
    fn shared_handles_point_at_the_same_counter() {
        let r = Registry::new();
        let a = r.counter("same");
        let b = r.counter("same");
        a.add(1);
        b.add(1);
        assert_eq!(r.snapshot().counter("same"), Some(2));
    }

    #[test]
    fn render_text_is_aligned_and_complete() {
        let r = Registry::new();
        r.counter("metric.long_name").add(7);
        r.histogram("h").record(4);
        let text = r.snapshot().render_text();
        assert!(text.contains("metric.long_name  7"));
        assert!(text.contains("count 1"));
        assert_eq!(
            Registry::new().snapshot().render_text(),
            "(no metrics recorded)\n"
        );
    }
}
