#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # fftobs — lightweight cross-crate observability
//!
//! The paper's entire method is instrumentation: per-call MPI traces,
//! kernel-time breakdowns and bandwidth accounting drive every figure
//! (Figs. 2–13). This crate is the shared observability substrate for the
//! reproduction stack:
//!
//! * [`metrics`] — a thread-safe registry of named counters and log₂
//!   histograms. Recording is **zero-cost when disabled** (one relaxed
//!   atomic load) and never feeds back into simulated time, so an
//!   instrumented run is byte-identical to an uninstrumented one.
//! * [`span`] — per-rank span timelines and their export formats:
//!   Chrome-trace JSON (loadable in `chrome://tracing` / Perfetto) and a
//!   plain-text summary table.
//! * [`json`] — a minimal JSON reader used to validate exported traces in
//!   tests and the CI smoke check (no serde dependency).
//! * [`env`] — warn-once typed parsing for the `FFT_*` runtime tuning
//!   variables, shared by every crate that reads one.
//!
//! Instrumented layers: `fftkern` (plan-cache and twiddle interning),
//! `simgrid` (bytes per link class), `mpisim` (per-collective call counts
//! and bytes), `distfft` (scratch-pool hits/evictions, reshape-memo hits,
//! pack/comm/FFT/unpack spans) and `miniapps` (solver invocations).
//!
//! ## Usage
//!
//! ```
//! fftobs::set_enabled(true);
//! fftobs::count("demo.requests", 1);
//! fftobs::observe("demo.latency_ns", 1234);
//! let snap = fftobs::registry().snapshot();
//! assert_eq!(snap.counter("demo.requests"), Some(1));
//! fftobs::set_enabled(false);
//! ```

pub mod env;
pub mod json;
pub mod metrics;
pub mod span;

pub use metrics::{registry, MetricsSnapshot, Registry};
pub use span::{chrome_trace_json, span_summary, Span};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// True when metric recording is globally enabled.
///
/// A single relaxed load — the entire cost of an instrumentation point in a
/// disabled run.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables metric recording. Disabled by default.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed)
}

/// Adds `n` to the named counter of the global registry (no-op while
/// observability is disabled).
#[inline]
pub fn count(name: &'static str, n: u64) {
    if enabled() {
        registry().counter(name).add(n);
    }
}

/// Records `value` into the named histogram of the global registry (no-op
/// while observability is disabled).
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if enabled() {
        registry().histogram(name).record(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_is_dropped() {
        // The global toggle is shared across the test binary; counters are
        // compared as deltas against uniquely named metrics.
        set_enabled(false);
        count("lib.disabled_counter", 5);
        observe("lib.disabled_hist", 5);
        assert_eq!(registry().snapshot().counter("lib.disabled_counter"), None);

        set_enabled(true);
        count("lib.enabled_counter", 2);
        count("lib.enabled_counter", 3);
        set_enabled(false);
        assert_eq!(
            registry().snapshot().counter("lib.enabled_counter"),
            Some(5)
        );
    }
}
