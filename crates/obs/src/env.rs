//! Warn-once typed parsing of `FFT_*` tuning variables.
//!
//! Every runtime knob in the stack (`FFT_EXEC_THREADS`, `FFT_EXEC_GRAIN`,
//! `FFT_RESHAPE_CHUNKS`, `FFT_SIMD`, …) has the same correctness needs: a
//! typed parse with clamping, and a *loud but not noisy* failure mode — a
//! silently ignored knob is worse than no knob (a typoed
//! `FFT_EXEC_THREADS=fourteen` once quietly ran serial benchmarks), while
//! a warning per read would spam a sweep that reads the knob thousands of
//! times. This module is the single shared implementation: one parse
//! shape, one message format, one warn-once registry keyed by variable
//! name.
//!
//! Warnings go to **stderr** only — stdout byte-stability of the figure
//! harnesses is a repo-wide contract.

use std::collections::BTreeSet;
use std::sync::{Mutex, OnceLock};

/// Per-process set of variables already warned about.
fn warned() -> &'static Mutex<BTreeSet<&'static str>> {
    static WARNED: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// Emits `msg` to stderr the first time `var` warns in this process.
/// Returns true when the message was actually printed (tests hook this).
pub fn warn_ignored_once(var: &'static str, msg: &str) -> bool {
    let mut set = warned().lock().unwrap_or_else(|e| e.into_inner());
    if set.insert(var) {
        eprintln!("{msg}");
        true
    } else {
        false
    }
}

/// Reads and parses the environment variable `var`.
///
/// * unset → `None`, silently (the knob simply isn't in play);
/// * set and `parse` accepts it → `Some(value)`;
/// * set and `parse` rejects it → `None`, after warning **once per
///   process per variable** naming the expected grammar and the fallback
///   the caller will use.
pub fn parse_var<T>(
    var: &'static str,
    expected: &str,
    fallback: &str,
    parse: impl FnOnce(&str) -> Option<T>,
) -> Option<T> {
    let value = std::env::var(var).ok()?;
    match parse(&value) {
        Some(t) => Some(t),
        None => {
            warn_ignored_once(
                var,
                &format!(
                    "fftobs: ignoring invalid {var}={value:?} (expected {expected}); \
                     using {fallback}"
                ),
            );
            None
        }
    }
}

/// The common numeric knob shape: a whitespace-trimmed integer, clamped
/// to ≥ 1 (`0` means "smallest sensible", never "off"). Rejects anything
/// non-numeric, negative, or fractional. Pure, so the accept/reject
/// behavior is unit-testable without touching process-global environment
/// state.
pub fn parse_positive(v: &str) -> Option<usize> {
    v.trim().parse::<usize>().ok().map(|n| n.max(1))
}

/// [`parse_var`] specialized to [`parse_positive`] — the shape of every
/// integer executor knob.
pub fn positive_var(var: &'static str, fallback: &str) -> Option<usize> {
    parse_var(var, "a positive integer", fallback, parse_positive)
}

/// Reads `var` raw, `None` when unset or not valid UTF-8. The sanctioned
/// accessor for knobs with no grammar to enforce (file paths, free-form
/// pass-through values echoed in diagnostics) — anything with a typed
/// shape should go through [`parse_var`] so garbage warns.
pub fn raw_var(var: &str) -> Option<String> {
    std::env::var(var).ok()
}

/// True when `var` is set (to anything, including empty). For presence
/// gates — e.g. tests that skip themselves while a CI sweep forces an
/// override — where the *value* is owned by some other reader.
pub fn is_set(var: &str) -> bool {
    std::env::var_os(var).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_parse_accepts_integers_and_clamps_zero() {
        assert_eq!(parse_positive("4"), Some(4));
        assert_eq!(parse_positive(" 16 "), Some(16));
        assert_eq!(parse_positive("1"), Some(1));
        assert_eq!(parse_positive("0"), Some(1));
    }

    #[test]
    fn positive_parse_rejects_garbage() {
        assert_eq!(parse_positive("fourteen"), None);
        assert_eq!(parse_positive(""), None);
        assert_eq!(parse_positive("-2"), None);
        assert_eq!(parse_positive("4.5"), None);
    }

    #[test]
    fn raw_and_presence_accessors_see_unset_vars() {
        assert_eq!(raw_var("FFT_ENV_TEST_NEVER_SET"), None);
        assert!(!is_set("FFT_ENV_TEST_NEVER_SET"));
    }

    #[test]
    fn unset_var_is_silent_none() {
        assert_eq!(positive_var("FFT_ENV_TEST_NEVER_SET", "the default"), None);
    }

    #[test]
    fn warnings_fire_once_per_var() {
        assert!(warn_ignored_once("FFT_ENV_TEST_WARN_A", "first"));
        assert!(!warn_ignored_once("FFT_ENV_TEST_WARN_A", "second"));
        assert!(warn_ignored_once(
            "FFT_ENV_TEST_WARN_B",
            "other var still warns"
        ));
    }
}
