//! High-level heFFTe-style API.
//!
//! heFFTe's user-facing object is `heffte::fft3d<backend>`: constructed from
//! input/output boxes and a communicator, with `forward`/`backward` methods
//! and a scaling option. [`Fft3d`] is the equivalent here, wrapping plan
//! construction, sub-communicator binding and executor state behind two
//! calls:
//!
//! ```ignore
//! let mut fft = Fft3d::new(&plan_options, rank, &comm);
//! fft.forward(&mut field, Scale::None);
//! fft.backward(&mut field, Scale::Full);   // full round trip == identity
//! ```

use fftkern::{Direction, C64};
use mpisim::comm::{Comm, Rank};
use simgrid::SimTime;

use crate::exec::{bind, execute, BoundPlan, ExecCtx, ExecResult};
use crate::plan::{FftOptions, FftPlan};
use crate::trace::Trace;

/// Spectrum scaling convention, matching heFFTe's `scale::` options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// No scaling (cuFFT/FFTW convention; round trip multiplies by N).
    None,
    /// Multiply by `1/N` (a `Full`-scaled inverse makes the round trip the
    /// identity).
    Full,
    /// Multiply by `1/√N` on both directions (unitary transform).
    Symmetric,
}

impl Scale {
    fn factor(self, n: usize) -> f64 {
        match self {
            Scale::None => 1.0,
            Scale::Full => 1.0 / n as f64,
            Scale::Symmetric => 1.0 / (n as f64).sqrt(),
        }
    }
}

/// A bound, ready-to-execute distributed 3-D FFT for one rank.
///
/// Construction is collective: every rank of `comm` must call [`Fft3d::new`]
/// with the same plan at the same point in its program.
pub struct Fft3d {
    plan: FftPlan,
    bound: BoundPlan,
    ctx: ExecCtx,
    me: usize,
    /// Simulated time of the most recent transform on this rank.
    pub last_time: SimTime,
    /// Event trace of the most recent transform on this rank.
    pub last_trace: Trace,
}

impl Fft3d {
    /// Builds the plan and splits its sub-communicators (collective).
    pub fn new(n: [usize; 3], opts: FftOptions, rank: &mut Rank, comm: &Comm) -> Fft3d {
        let plan = FftPlan::build(n, comm.size(), opts);
        Fft3d::from_plan(plan, rank, comm)
    }

    /// Wraps an existing plan (collective).
    pub fn from_plan(plan: FftPlan, rank: &mut Rank, comm: &Comm) -> Fft3d {
        let bound = bind(&plan, rank, comm);
        Fft3d {
            plan,
            bound,
            ctx: ExecCtx::new(),
            me: rank.rank(),
            last_time: SimTime::ZERO,
            last_trace: Trace::new(),
        }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FftPlan {
        &self.plan
    }

    /// Number of local elements this rank holds on the input side.
    pub fn input_len(&self) -> usize {
        self.plan.dists[0].rank_box(self.me).volume()
    }

    /// Number of local elements this rank holds on the output side.
    pub fn output_len(&self) -> usize {
        self.plan.dists[self.plan.dists.len() - 1]
            .rank_box(self.me)
            .volume()
    }

    /// Forward transform of one batch of local arrays (collective).
    pub fn forward(
        &mut self,
        rank: &mut Rank,
        comm: &Comm,
        data: &mut Vec<Vec<C64>>,
        scale: Scale,
    ) -> &Trace {
        self.run(rank, comm, data, Direction::Forward, scale)
    }

    /// Backward (inverse) transform of one batch of local arrays
    /// (collective).
    pub fn backward(
        &mut self,
        rank: &mut Rank,
        comm: &Comm,
        data: &mut Vec<Vec<C64>>,
        scale: Scale,
    ) -> &Trace {
        self.run(rank, comm, data, Direction::Inverse, scale)
    }

    fn run(
        &mut self,
        rank: &mut Rank,
        comm: &Comm,
        data: &mut Vec<Vec<C64>>,
        dir: Direction,
        scale: Scale,
    ) -> &Trace {
        let ExecResult { trace, total } = execute(
            &self.plan,
            &self.bound,
            &mut self.ctx,
            rank,
            comm,
            data,
            dir,
        );
        let f = scale.factor(self.plan.total_elems());
        if f != 1.0 {
            for item in data.iter_mut() {
                for v in item.iter_mut() {
                    *v = v.scale(f);
                }
            }
            // Scaling is an element-wise kernel on the device.
            let km = rank.world().spec().kernel_model();
            let elems: usize = data.iter().map(|d| d.len()).sum();
            rank.compute_ns(km.pointwise_ns(elems, 2.0));
        }
        self.last_time = total;
        self.last_trace = trace;
        &self.last_trace
    }
}
