//! Analytic (dry-run) executor: walks a plan at any scale without data.
//!
//! Reproduces the exact timing of the functional executor — same kernel
//! model, same schedule walkers, same phase-id sequence — but holds only
//! per-rank clocks, so 512³ on 3072 simulated GPUs costs milliseconds of
//! host time. This is what every large-scale figure harness runs on.

use fftkern::Direction;
use mpisim::coll;
use mpisim::distro::MpiDistro;
use mpisim::pattern::{NetParams, P2pFlavor, PhaseEnv, SchedMemo};
use simgrid::{MachineSpec, SimTime};

use crate::boxes::Box3;
use crate::exec::{chunk_byte_split, pipelined_k, ChunkBytes, ExecCtx};
use crate::plan::{CommBackend, FftPlan, Step};
use crate::trace::{KernelKind, Trace, TraceEvent};

/// The dry-run twin of `mpisim::WorldOpts`.
#[derive(Debug, Clone)]
pub struct DryRunOpts {
    /// GPU-aware MPI on/off.
    pub gpu_aware: bool,
    /// MPI distribution profile.
    pub distro: MpiDistro,
    /// Deterministic per-message jitter amplitude.
    pub noise_amplitude: f64,
    /// Jitter seed.
    pub seed: u64,
    /// Failure injection: per-rank GPU compute slowdown factors (>1 =
    /// slower), mirroring `WorldOpts::compute_slowdown`.
    pub compute_slowdown: Vec<(usize, f64)>,
    /// Memoize collective exit schedules across transforms (on by default,
    /// like the functional world). An iterated dry run — `timed_average`
    /// re-walks the identical O(p²) schedule on every transform — replays
    /// cached relative exits instead. Memoized times are exact (the walkers
    /// are time-shift invariant), so this is a pure speedup; benches turn
    /// it off on their cold leg for an honest A/B.
    pub sched_memo: bool,
}

impl Default for DryRunOpts {
    fn default() -> Self {
        DryRunOpts {
            gpu_aware: true,
            distro: MpiDistro::SpectrumMpi,
            noise_amplitude: 0.0,
            seed: 0xF0F0_1234,
            compute_slowdown: Vec::new(),
            sched_memo: true,
        }
    }
}

/// Timing report of one dry-run transform.
#[derive(Debug, Clone)]
pub struct DryRunReport {
    /// Latest entry time across ranks (the synchronized start).
    pub start: SimTime,
    /// Per-rank completion times.
    pub per_rank_total: Vec<SimTime>,
    /// Per-rank event logs.
    pub traces: Vec<Trace>,
}

impl DryRunReport {
    /// Latest completion across ranks.
    pub fn end(&self) -> SimTime {
        self.per_rank_total
            .iter()
            .copied()
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Wall-clock duration of the transform (synchronized-start convention).
    pub fn makespan(&self) -> SimTime {
        self.end() - self.start
    }

    /// Maximum per-rank communication total (sum of MPI call durations).
    pub fn comm_max(&self) -> SimTime {
        self.traces
            .iter()
            .map(|t| t.comm_total())
            .fold(SimTime::ZERO, SimTime::max)
    }
}

/// Stateful dry runner: clocks persist across transforms exactly like the
/// rank clocks of the functional world.
pub struct DryRunner<'a> {
    plan: &'a FftPlan,
    machine: &'a MachineSpec,
    opts: DryRunOpts,
    ctx: ExecCtx,
    net_clock: Vec<SimTime>,
    gpu_clock: Vec<SimTime>,
    /// Collective-schedule cache, scoped to this runner: one runner means
    /// one machine spec, one seed, one jitter amplitude — exactly the
    /// sharing boundary [`SchedMemo`] requires.
    memo: SchedMemo,
}

impl<'a> DryRunner<'a> {
    /// Creates a runner with all clocks at zero.
    pub fn new(plan: &'a FftPlan, machine: &'a MachineSpec, opts: DryRunOpts) -> DryRunner<'a> {
        DryRunner {
            plan,
            machine,
            opts,
            ctx: ExecCtx::new(),
            net_clock: vec![SimTime::ZERO; plan.nranks],
            gpu_clock: vec![SimTime::ZERO; plan.nranks],
            memo: SchedMemo::default(),
        }
    }

    /// Current completion time of rank `r` (both resources drained).
    pub fn rank_time(&self, r: usize) -> SimTime {
        self.net_clock[r].max(self.gpu_clock[r])
    }

    /// Executes one transform analytically, advancing the persistent clocks.
    pub fn run(&mut self, dir: Direction) -> DryRunReport {
        let plan = self.plan;
        let km = self.machine.kernel_model();
        let np = NetParams {
            spec: self.machine,
            seed: self.opts.seed,
            noise_amp: self.opts.noise_amplitude,
            memo: self.opts.sched_memo.then_some(&self.memo),
        };
        let n = plan.nranks;
        let mut traces = vec![Trace::new(); n];

        let t0: Vec<SimTime> = (0..n).map(|r| self.rank_time(r)).collect();
        let start = t0.iter().copied().fold(SimTime::ZERO, SimTime::max);
        // Align both resource clocks to each rank's own entry.
        #[allow(clippy::needless_range_loop)] // r indexes three parallel arrays
        for r in 0..n {
            self.gpu_clock[r] = self.gpu_clock[r].max(t0[r]);
            self.net_clock[r] = self.net_clock[r].max(t0[r]);
        }

        let (steps, specs) = match dir {
            Direction::Forward => (plan.steps_for(dir), &plan.reshapes),
            Direction::Inverse => (plan.steps_for(dir), &plan.reshapes_rev),
        };

        let chunks = plan.chunks();
        let mut data_ready: Vec<Vec<SimTime>> = (0..chunks).map(|_| t0.clone()).collect();

        #[allow(clippy::needless_range_loop)] // c feeds chunk_items() too
        for c in 0..chunks {
            let (ilo, ihi) = Box3::chunk(plan.opts.batch, chunks, c);
            let items = ihi - ilo;
            let mut si = 0;
            while si < steps.len() {
                match steps[si] {
                    Step::LocalFft { dist, axis } => {
                        let first = self.ctx.first_strided(dist, axis, dir);
                        for r in 0..n {
                            let ns = crate::plan::slowed_ns(
                                &self.opts.compute_slowdown,
                                r,
                                plan.local_fft_ns(&km, dist, axis, r, items, first),
                            );
                            let start_k = self.gpu_clock[r].max(data_ready[c][r]);
                            self.gpu_clock[r] = start_k + SimTime::from_ns(ns);
                            data_ready[c][r] = self.gpu_clock[r];
                            traces[r].push(TraceEvent::Kernel {
                                kind: KernelKind::Fft1d {
                                    axis,
                                    contiguous: plan.fft_layout(axis)
                                        == fftkern::kernel_model::LayoutKind::Contiguous,
                                },
                                start: start_k,
                                dur: SimTime::from_ns(ns),
                            });
                        }
                        si += 1;
                    }
                    Step::Reshape(ri) => {
                        let spec = &specs[ri];
                        let phase_id = self.ctx.next_phase_id();
                        let backend = plan.opts.backend;
                        let to_dist = match dir {
                            Direction::Forward => ri + 1,
                            Direction::Inverse => ri,
                        };
                        // Transform-ahead candidate: the LocalFft step right
                        // behind this reshape (mirrors `execute`'s peek).
                        // When present, this branch books *all* ranks' next
                        // axis transform — per chunk for pipelined ranks,
                        // monolithically for the rest — and the step is
                        // consumed for everyone.
                        let next_fft = match steps.get(si + 1) {
                            Some(Step::LocalFft { dist, axis }) if *dist == to_dist => {
                                Some((*dist, *axis))
                            }
                            _ => None,
                        };
                        // One strided-warmup consumption per step position,
                        // exactly where each functional rank would consume it.
                        let next_first = next_fft.map(|(d, a)| self.ctx.first_strided(d, a, dir));

                        // Per-group pipelining gate, mirroring the functional
                        // executor's per-group decision in `exchange_chunk`:
                        // a rank chunks iff its own group does.
                        let group_k: Vec<Option<usize>> = spec
                            .groups
                            .iter()
                            .map(|g| {
                                pipelined_k(
                                    plan,
                                    spec,
                                    self.machine,
                                    &km,
                                    self.opts.gpu_aware,
                                    g,
                                    items,
                                    next_fft,
                                )
                            })
                            .collect();
                        let pipe_k: Vec<Option<usize>> = (0..n)
                            .map(|r| spec.group_of[r].and_then(|gi| group_k[gi]))
                            .collect();

                        // Local kernels bracketing the exchange, per rank.
                        // Chunked ranks run the per-chunk pack chain of
                        // `exchange_chunk_pipelined` instead, recording when
                        // each chunk's payload is postable.
                        let mut pack_bytes = vec![0usize; n];
                        let mut unpack_bytes = vec![0usize; n];
                        let mut chunk_split: Vec<Option<ChunkBytes>> = vec![None; n];
                        let mut pack_done: Vec<Vec<SimTime>> = vec![Vec::new(); n];
                        for r in 0..n {
                            let (p, u, s) = plan.reshape_local_bytes(spec, r);
                            let self_b = s * items;
                            if let (Some(gi), Some(k_eff)) = (spec.group_of[r], pipe_k[r]) {
                                let group = &spec.groups[gi];
                                let me_sub = group
                                    .iter()
                                    .position(|&g| g == r)
                                    // fftlint:allow(no-panic-in-lib): every rank sits in its group
                                    .expect("rank in its own group");
                                let pad_b = if backend == CommBackend::AllToAll {
                                    spec.padded_block_bytes(group)
                                } else {
                                    0
                                };
                                let split = chunk_byte_split(
                                    spec,
                                    r,
                                    group,
                                    me_sub,
                                    k_eff,
                                    backend.is_p2p(),
                                    pad_b,
                                    items,
                                );
                                let mut pd = vec![SimTime::ZERO; k_eff];
                                for (k, pd_k) in pd.iter_mut().enumerate() {
                                    if backend.needs_pack() && split.0[k] > 0 {
                                        let ns = crate::plan::slowed_ns(
                                            &self.opts.compute_slowdown,
                                            r,
                                            plan.pack_ns(&km, split.0[k]),
                                        );
                                        let st = self.gpu_clock[r].max(data_ready[c][r]);
                                        self.gpu_clock[r] = st + SimTime::from_ns(ns);
                                        data_ready[c][r] = self.gpu_clock[r];
                                        traces[r].push(TraceEvent::Kernel {
                                            kind: KernelKind::Pack,
                                            start: st,
                                            dur: SimTime::from_ns(ns),
                                        });
                                    }
                                    if k == 0 && backend.is_p2p() && self_b > 0 {
                                        let ns = crate::plan::slowed_ns(
                                            &self.opts.compute_slowdown,
                                            r,
                                            plan.selfcopy_ns(self.machine, self_b),
                                        );
                                        let st = self.gpu_clock[r].max(data_ready[c][r]);
                                        self.gpu_clock[r] = st + SimTime::from_ns(ns);
                                        data_ready[c][r] = self.gpu_clock[r];
                                        traces[r].push(TraceEvent::Kernel {
                                            kind: KernelKind::SelfCopy,
                                            start: st,
                                            dur: SimTime::from_ns(ns),
                                        });
                                    }
                                    *pd_k = self.gpu_clock[r].max(data_ready[c][r]);
                                }
                                pack_done[r] = pd;
                                chunk_split[r] = Some(split);
                                continue;
                            }
                            pack_bytes[r] = p * items;
                            unpack_bytes[r] = u * items;
                            if backend.needs_pack() && pack_bytes[r] > 0 {
                                let ns = crate::plan::slowed_ns(
                                    &self.opts.compute_slowdown,
                                    r,
                                    plan.pack_ns(&km, pack_bytes[r]),
                                );
                                let st = self.gpu_clock[r].max(data_ready[c][r]);
                                self.gpu_clock[r] = st + SimTime::from_ns(ns);
                                data_ready[c][r] = self.gpu_clock[r];
                                traces[r].push(TraceEvent::Kernel {
                                    kind: KernelKind::Pack,
                                    start: st,
                                    dur: SimTime::from_ns(ns),
                                });
                            }
                            if backend.is_p2p() && self_b > 0 {
                                let ns = crate::plan::slowed_ns(
                                    &self.opts.compute_slowdown,
                                    r,
                                    plan.selfcopy_ns(self.machine, self_b),
                                );
                                let st = self.gpu_clock[r].max(data_ready[c][r]);
                                self.gpu_clock[r] = st + SimTime::from_ns(ns);
                                data_ready[c][r] = self.gpu_clock[r];
                                traces[r].push(TraceEvent::Kernel {
                                    kind: KernelKind::SelfCopy,
                                    start: st,
                                    dur: SimTime::from_ns(ns),
                                });
                            }
                        }

                        // Exchange per communication group.
                        let env = PhaseEnv {
                            gpu_aware: self.opts.gpu_aware,
                            flows_per_nic: self.machine.gpus_per_node.min(plan.nranks),
                            nodes: self.machine.nodes_for(plan.nranks),
                            p2p_peers: 1, // per-peer overheads derive from the matrix
                            phase_id,
                        };
                        for (gi, group) in spec.groups.iter().enumerate() {
                            let mut matrix = spec.group_byte_matrix(group);
                            for row in matrix.iter_mut() {
                                for b in row.iter_mut() {
                                    *b *= items;
                                }
                            }
                            if let Some(k_eff) = group_k[gi] {
                                // Pipelined group: the same partitioned walker
                                // the functional collectives run, fed the same
                                // per-chunk entries (`call_entry.max(pack_done[k])`
                                // collapses to `net.max(pack_done[k])` because
                                // the chain is monotone).
                                let part_entries: Vec<Vec<SimTime>> = group
                                    .iter()
                                    .map(|&r| {
                                        pack_done[r]
                                            .iter()
                                            .map(|&t| self.net_clock[r].max(t))
                                            .collect()
                                    })
                                    .collect();
                                let times = match backend {
                                    CommBackend::AllToAll => {
                                        let pad = spec.padded_block_bytes(group) * items;
                                        coll::alltoall_partitioned_exit_times(
                                            &np,
                                            &env,
                                            self.opts.distro,
                                            group,
                                            &part_entries,
                                            pad,
                                            k_eff,
                                        )
                                    }
                                    CommBackend::AllToAllV => {
                                        coll::alltoallv_partitioned_exit_times(
                                            &np,
                                            &env,
                                            group,
                                            &part_entries,
                                            &matrix,
                                            k_eff,
                                        )
                                    }
                                    CommBackend::AllToAllW => {
                                        coll::alltoallw_partitioned_exit_times(
                                            &np,
                                            &env,
                                            self.opts.distro,
                                            group,
                                            &part_entries,
                                            &matrix,
                                            k_eff,
                                        )
                                    }
                                    CommBackend::P2p | CommBackend::P2pBlocking => {
                                        for (i, row) in matrix.iter_mut().enumerate() {
                                            row[i] = 0; // self block moved by device copy
                                        }
                                        let flavor = if backend == CommBackend::P2p {
                                            P2pFlavor::NonBlocking
                                        } else {
                                            P2pFlavor::Blocking
                                        };
                                        coll::p2p_exchange_partitioned_exit_times(
                                            &np,
                                            &env,
                                            group,
                                            &part_entries,
                                            &matrix,
                                            k_eff,
                                            flavor,
                                        )
                                    }
                                };
                                for (i, &r) in group.iter().enumerate() {
                                    let exit = times.exits[i];
                                    let ready = &times.part_ready[i];
                                    let Some((_, unpack_split, wire_split)) =
                                        chunk_split[r].as_ref()
                                    else {
                                        unreachable!("chunked member has a byte split")
                                    };
                                    // One MPI-call event per chunk, in chunk
                                    // order — identical to the functional trace.
                                    for k in 0..k_eff {
                                        let start_c = part_entries[i][k];
                                        let end = if k + 1 == k_eff {
                                            exit.max(ready[k]).max(start_c)
                                        } else {
                                            ready[k].max(start_c)
                                        };
                                        traces[r].push(TraceEvent::MpiCall {
                                            reshape: ri,
                                            routine: backend.routine(),
                                            start: start_c,
                                            dur: end - start_c,
                                            bytes: wire_split[k],
                                        });
                                    }
                                    self.net_clock[r] = exit;
                                    // Per-chunk line counts of the consumed
                                    // next-axis transform (same chunk → line
                                    // map as the functional executor).
                                    let line_counts: Option<Vec<usize>> =
                                        next_fft.map(|(to_d, axis)| {
                                            let to_box = plan.dists[to_d].rank_box(r);
                                            spec.recv_line_runs(r, group, i, k_eff, to_box, axis)
                                                .iter()
                                                .map(|runs| {
                                                    runs.iter()
                                                        .map(|&(lo, hi)| hi - lo)
                                                        .sum::<usize>()
                                                })
                                                .collect()
                                        });
                                    let mut first_pending = next_first.unwrap_or(false);
                                    // Per-chunk unpacks, each eligible as its
                                    // chunk's receives land, then that chunk's
                                    // butterflies (transform-ahead).
                                    for k in 0..k_eff {
                                        if backend.needs_pack() && unpack_split[k] > 0 {
                                            let ns = crate::plan::slowed_ns(
                                                &self.opts.compute_slowdown,
                                                r,
                                                plan.unpack_ns(&km, unpack_split[k]),
                                            );
                                            let st = self.gpu_clock[r].max(ready[k]);
                                            self.gpu_clock[r] = st + SimTime::from_ns(ns);
                                            traces[r].push(TraceEvent::Kernel {
                                                kind: KernelKind::Unpack,
                                                start: st,
                                                dur: SimTime::from_ns(ns),
                                            });
                                        }
                                        if let (Some((to_d, axis)), Some(counts)) =
                                            (next_fft, line_counts.as_ref())
                                        {
                                            if counts[k] > 0 {
                                                let first = first_pending;
                                                first_pending = false;
                                                let ns = crate::plan::slowed_ns(
                                                    &self.opts.compute_slowdown,
                                                    r,
                                                    plan.local_fft_lines_ns(
                                                        &km, to_d, axis, r, items, counts[k], first,
                                                    ),
                                                );
                                                let st = self.gpu_clock[r].max(ready[k]);
                                                self.gpu_clock[r] = st + SimTime::from_ns(ns);
                                                traces[r].push(TraceEvent::Kernel {
                                                    kind: KernelKind::Fft1d {
                                                        axis,
                                                        contiguous: plan.fft_layout(axis)
                                                            == fftkern::kernel_model::LayoutKind::Contiguous,
                                                    },
                                                    start: st,
                                                    dur: SimTime::from_ns(ns),
                                                });
                                            }
                                        }
                                    }
                                    data_ready[c][r] = self.gpu_clock[r].max(exit);
                                }
                                continue;
                            }
                            let entries: Vec<SimTime> = group
                                .iter()
                                .map(|&r| self.net_clock[r].max(data_ready[c][r]))
                                .collect();
                            let exits = match backend {
                                CommBackend::AllToAll => {
                                    let pad = spec.padded_block_bytes(group) * items;
                                    coll::alltoall_exit_times(
                                        &np,
                                        &env,
                                        self.opts.distro,
                                        group,
                                        &entries,
                                        pad,
                                    )
                                }
                                CommBackend::AllToAllV => {
                                    coll::alltoallv_exit_times(&np, &env, group, &entries, &matrix)
                                }
                                CommBackend::AllToAllW => coll::alltoallw_exit_times(
                                    &np,
                                    &env,
                                    self.opts.distro,
                                    group,
                                    &entries,
                                    &matrix,
                                ),
                                CommBackend::P2p | CommBackend::P2pBlocking => {
                                    for (i, row) in matrix.iter_mut().enumerate() {
                                        row[i] = 0; // self block moved by device copy
                                    }
                                    let flavor = if backend == CommBackend::P2p {
                                        P2pFlavor::NonBlocking
                                    } else {
                                        P2pFlavor::Blocking
                                    };
                                    coll::p2p_exchange_exit_times(
                                        &np, &env, group, &entries, &matrix, flavor,
                                    )
                                }
                            };
                            for (i, &r) in group.iter().enumerate() {
                                let entry = entries[i];
                                let exit = exits[i];
                                self.net_clock[r] = exit;
                                data_ready[c][r] = exit;
                                traces[r].push(TraceEvent::MpiCall {
                                    reshape: ri,
                                    routine: backend.routine(),
                                    start: entry,
                                    dur: exit - entry,
                                    bytes: spec.offrank_send_bytes(r) * items,
                                });
                            }
                        }

                        // Unpack (non-chunked ranks; chunked ranks already
                        // unpacked per chunk above).
                        for r in 0..n {
                            if backend.needs_pack() && unpack_bytes[r] > 0 {
                                let ns = crate::plan::slowed_ns(
                                    &self.opts.compute_slowdown,
                                    r,
                                    plan.unpack_ns(&km, unpack_bytes[r]),
                                );
                                let st = self.gpu_clock[r].max(data_ready[c][r]);
                                self.gpu_clock[r] = st + SimTime::from_ns(ns);
                                data_ready[c][r] = self.gpu_clock[r];
                                traces[r].push(TraceEvent::Kernel {
                                    kind: KernelKind::Unpack,
                                    start: st,
                                    dur: SimTime::from_ns(ns),
                                });
                            }
                        }

                        // The consumed next-axis transform for every rank
                        // that did *not* run it per chunk — the same event
                        // the standalone LocalFft arm would book.
                        if let Some((to_d, axis)) = next_fft {
                            let first = next_first.unwrap_or(false);
                            for r in 0..n {
                                if chunk_split[r].is_some() {
                                    continue;
                                }
                                let ns = crate::plan::slowed_ns(
                                    &self.opts.compute_slowdown,
                                    r,
                                    plan.local_fft_ns(&km, to_d, axis, r, items, first),
                                );
                                let start_k = self.gpu_clock[r].max(data_ready[c][r]);
                                self.gpu_clock[r] = start_k + SimTime::from_ns(ns);
                                data_ready[c][r] = self.gpu_clock[r];
                                traces[r].push(TraceEvent::Kernel {
                                    kind: KernelKind::Fft1d {
                                        axis,
                                        contiguous: plan.fft_layout(axis)
                                            == fftkern::kernel_model::LayoutKind::Contiguous,
                                    },
                                    start: start_k,
                                    dur: SimTime::from_ns(ns),
                                });
                            }
                        }
                        si += if next_fft.is_some() { 2 } else { 1 };
                    }
                }
            }
        }

        // Drain: completion = max of both resources and all chunks.
        let mut totals = Vec::with_capacity(n);
        for r in 0..n {
            let mut t = self.gpu_clock[r].max(self.net_clock[r]);
            for ready in data_ready.iter() {
                t = t.max(ready[r]);
            }
            self.gpu_clock[r] = t;
            self.net_clock[r] = t;
            totals.push(t);
        }

        DryRunReport {
            start,
            per_rank_total: totals,
            traces,
        }
    }

    /// Runs the paper's measurement protocol: `warmups` transforms, then
    /// `pairs` forward+backward pairs; returns the average time per
    /// transform over the timed pairs (§IV: "the average runtime of 8 FFTs
    /// (4 forward and 4 backward), preceded by 2 FFTs to warm up").
    pub fn timed_average(&mut self, warmups: usize, pairs: usize) -> SimTime {
        for i in 0..warmups {
            let dir = if i % 2 == 0 {
                Direction::Forward
            } else {
                Direction::Inverse
            };
            let _ = self.run(dir);
        }
        let t_begin = (0..self.plan.nranks)
            .map(|r| self.rank_time(r))
            .fold(SimTime::ZERO, SimTime::max);
        for _ in 0..pairs {
            let _ = self.run(Direction::Forward);
            let _ = self.run(Direction::Inverse);
        }
        let t_end = (0..self.plan.nranks)
            .map(|r| self.rank_time(r))
            .fold(SimTime::ZERO, SimTime::max);
        SimTime::from_ns((t_end - t_begin).as_ns() / (2 * pairs as u64))
    }
}
