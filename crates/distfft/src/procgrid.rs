//! Processor grids and distributions.
//!
//! Implements the grid choices behind Table III of the paper:
//!
//! * **pencil grids** `(1,P,Q)`, `(P,1,Q)`, `(P,Q,1)` with `P·Q = Π` and
//!   `P ≤ Q` the closest factor pair (e.g. Π=768 ⇒ 24×32);
//! * **brick grids** from the *minimum-surface splitting* heuristic used by
//!   real-world simulations for load-balanced input/output (blue grids in
//!   Table III, e.g. Π=768 ⇒ 8×8×12);
//! * **slab grids** `(1,Π,1)` / `(Π,1,1)`.

use crate::boxes::Box3;

/// A distribution of the global `n0 × n1 × n2` domain over `Π` ranks via a
/// 3-D processor grid; ranks beyond `active` hold empty boxes (the *grid
/// shrinking* mechanism of Algorithm 1, line 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Distribution {
    /// Processor grid extents per axis (product = number of active ranks).
    pub grid: [usize; 3],
    /// One box per rank (empty for inactive ranks).
    pub boxes: Vec<Box3>,
}

impl Distribution {
    /// Splits `n` over `grid` for `nranks` ranks. `grid` must multiply to at
    /// most `nranks`; ranks past the product are inactive (empty boxes).
    pub fn new(n: [usize; 3], grid: [usize; 3], nranks: usize) -> Distribution {
        let active: usize = grid.iter().product();
        assert!(active > 0, "degenerate processor grid {grid:?}");
        assert!(
            active <= nranks,
            "grid {grid:?} needs {active} ranks but only {nranks} exist"
        );
        let mut boxes = Vec::with_capacity(nranks);
        for r in 0..nranks {
            if r >= active {
                boxes.push(Box3::EMPTY);
                continue;
            }
            // Row-major rank -> grid coordinates.
            let c2 = r % grid[2];
            let c1 = (r / grid[2]) % grid[1];
            let c0 = r / (grid[1] * grid[2]);
            let coords = [c0, c1, c2];
            let mut lo = [0; 3];
            let mut hi = [0; 3];
            for d in 0..3 {
                let (l, h) = Box3::chunk(n[d], grid[d], coords[d]);
                lo[d] = l;
                hi[d] = h;
            }
            boxes.push(Box3::new(lo, hi));
        }
        Distribution { grid, boxes }
    }

    /// Builds a distribution from **user-specified boxes**, one per rank —
    /// the general input/output grids of real-world simulations ("the only
    /// libraries allowing general input/output grids are fftMPI, heFFTe and
    /// SWFFT", §III). The boxes must be pairwise disjoint and exactly cover
    /// the `n` domain; empty boxes mark ranks that hold no data. The `grid`
    /// field is recorded as `[0, 0, 0]` (irregular).
    pub fn from_boxes(n: [usize; 3], boxes: Vec<Box3>) -> Distribution {
        let domain = Box3::whole(n);
        let mut covered = 0usize;
        for (r, b) in boxes.iter().enumerate() {
            if b.is_empty() {
                continue;
            }
            assert_eq!(
                b.intersect(&domain),
                *b,
                "rank {r} box {b:?} leaves the {n:?} domain"
            );
            covered += b.volume();
        }
        assert_eq!(
            covered,
            domain.volume(),
            "boxes cover {covered} of {} domain elements",
            domain.volume()
        );
        for i in 0..boxes.len() {
            for j in (i + 1)..boxes.len() {
                assert!(
                    boxes[i].intersect(&boxes[j]).is_empty(),
                    "rank boxes {i} and {j} overlap"
                );
            }
        }
        Distribution {
            grid: [0, 0, 0],
            boxes,
        }
    }

    /// True when this distribution came from a regular processor grid (the
    /// fast peer-lookup path applies).
    pub fn is_regular(&self) -> bool {
        self.grid.iter().all(|&g| g > 0)
    }

    /// Ranks whose boxes overlap `b`, via direct chunk-index arithmetic for
    /// regular grids (O(peers)) with a linear-scan fallback for irregular
    /// box sets. The returned ranks are sorted ascending.
    pub fn ranks_overlapping(&self, n: [usize; 3], b: &Box3) -> Vec<usize> {
        if b.is_empty() {
            return Vec::new();
        }
        if !self.is_regular() {
            return (0..self.boxes.len())
                .filter(|&r| !self.boxes[r].intersect(b).is_empty())
                .collect();
        }
        let mut lo = [0usize; 3];
        let mut hi = [0usize; 3];
        for d in 0..3 {
            lo[d] = Box3::chunk_of(n[d], self.grid[d], b.lo[d]);
            hi[d] = Box3::chunk_of(n[d], self.grid[d], b.hi[d] - 1);
        }
        let mut out =
            Vec::with_capacity((hi[0] - lo[0] + 1) * (hi[1] - lo[1] + 1) * (hi[2] - lo[2] + 1));
        for c0 in lo[0]..=hi[0] {
            for c1 in lo[1]..=hi[1] {
                for c2 in lo[2]..=hi[2] {
                    out.push((c0 * self.grid[1] + c1) * self.grid[2] + c2);
                }
            }
        }
        out
    }

    /// Number of ranks holding data.
    pub fn active_ranks(&self) -> usize {
        self.boxes.iter().filter(|b| !b.is_empty()).count()
    }

    /// The box of rank `r`.
    pub fn rank_box(&self, r: usize) -> &Box3 {
        &self.boxes[r]
    }

    /// Axes fully local to every active rank (grid extent 1) — the axes a
    /// local FFT can transform in this distribution.
    pub fn local_axes(&self) -> Vec<usize> {
        (0..3).filter(|&d| self.grid[d] == 1).collect()
    }

    /// Total elements across ranks (must equal the domain volume).
    pub fn total_volume(&self) -> usize {
        self.boxes.iter().map(|b| b.volume()).sum()
    }
}

/// Closest factor pair `P ≤ Q` with `P·Q = n` (the paper's pencil grids:
/// Π=768 ⇒ (24, 32)).
pub fn closest_factor_pair(n: usize) -> (usize, usize) {
    assert!(n > 0);
    let mut p = (n as f64).sqrt() as usize;
    while p >= 1 {
        if n.is_multiple_of(p) {
            return (p, n / p);
        }
        p -= 1;
    }
    (1, n)
}

/// Minimum-surface factorization of `n` into three factors `(a, b, c)`:
/// among all factor triples, minimizes the surface of the resulting local
/// brick of an `dims` domain; ties broken toward the most cubic
/// (lexicographically smallest sorted) triple. For cubic domains this
/// reduces to minimizing `a + b + c`, which reproduces every brick grid in
/// Table III.
pub fn min_surface_grid(n: usize, dims: [usize; 3]) -> [usize; 3] {
    assert!(n > 0);
    let mut best: Option<([usize; 3], f64)> = None;
    let mut a = 1;
    while a * a * a <= n {
        if n.is_multiple_of(a) {
            let m = n / a;
            let mut b = a;
            while b * b <= m {
                if m.is_multiple_of(b) {
                    let c = m / b;
                    // Local block shape for this (sorted ascending) triple.
                    let triple = [a, b, c];
                    // Evaluate surface for the best axis assignment: assign
                    // the largest factor to the largest dimension.
                    let mut dsort: Vec<(usize, usize)> = dims.iter().copied().enumerate().collect();
                    dsort.sort_by_key(|&(_, d)| d);
                    let mut assigned = [1usize; 3];
                    for (k, &(axis, _)) in dsort.iter().enumerate() {
                        assigned[axis] = triple[k];
                    }
                    let local = [
                        dims[0] as f64 / assigned[0] as f64,
                        dims[1] as f64 / assigned[1] as f64,
                        dims[2] as f64 / assigned[2] as f64,
                    ];
                    let surf = local[0] * local[1] + local[1] * local[2] + local[0] * local[2];
                    let better = match &best {
                        None => true,
                        Some((prev, ps)) => {
                            surf < *ps - 1e-9 || ((surf - *ps).abs() <= 1e-9 && assigned < *prev)
                        }
                    };
                    if better {
                        best = Some((assigned, surf));
                    }
                }
                b += 1;
            }
        }
        a += 1;
    }
    // fftlint:allow(no-panic-in-lib): the 1 x n factorization always exists
    best.expect("n >= 1 always has the trivial factorization").0
}

/// The paper's Table III grid sequence for `Π` GPUs on an `n³`-like domain:
/// `[input brick, (1,P,Q), (P,1,Q), (P,Q,1), output brick]`.
pub fn table3_sequence(nranks: usize, dims: [usize; 3]) -> Vec<[usize; 3]> {
    let (p, q) = closest_factor_pair(nranks);
    let brick = min_surface_grid(nranks, dims);
    vec![brick, [1, p, q], [p, 1, q], [p, q, 1], brick]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closest_pairs_match_table3() {
        // (Π, P, Q) rows of Table III.
        let rows = [
            (6, 2, 3),
            (12, 3, 4),
            (24, 4, 6),
            (48, 6, 8),
            (96, 8, 12),
            (192, 12, 16),
            (384, 16, 24),
            (768, 24, 32),
            (1536, 32, 48),
            (3072, 48, 64),
        ];
        for (n, p, q) in rows {
            assert_eq!(closest_factor_pair(n), (p, q), "Π={n}");
        }
    }

    #[test]
    fn min_surface_matches_table3_bricks() {
        // Table III brick grids (as unordered factor multisets — the paper
        // lists some rows in non-sorted order, e.g. (16, 8, 12)).
        let rows: [(usize, [usize; 3]); 10] = [
            (6, [1, 2, 3]),
            (12, [2, 2, 3]),
            (24, [2, 3, 4]),
            (48, [3, 4, 4]),
            (96, [4, 4, 6]),
            (192, [4, 6, 8]),
            (384, [6, 8, 8]),
            (768, [8, 8, 12]),
            (1536, [8, 12, 16]),
            (3072, [12, 16, 16]),
        ];
        for (n, expect) in rows {
            let mut got = min_surface_grid(n, [512, 512, 512]);
            got.sort_unstable();
            assert_eq!(got, expect, "Π={n}");
        }
    }

    #[test]
    fn table3_sequence_shape() {
        let seq = table3_sequence(768, [512, 512, 512]);
        assert_eq!(seq.len(), 5);
        assert_eq!(seq[1], [1, 24, 32]);
        assert_eq!(seq[2], [24, 1, 32]);
        assert_eq!(seq[3], [24, 32, 1]);
        assert_eq!(seq[0], seq[4]);
        assert_eq!(seq[0].iter().product::<usize>(), 768);
    }

    #[test]
    fn distribution_partitions_domain() {
        let n = [8, 9, 10];
        let d = Distribution::new(n, [2, 3, 2], 12);
        assert_eq!(d.total_volume(), 720);
        assert_eq!(d.active_ranks(), 12);
        // Boxes are pairwise disjoint.
        for i in 0..12 {
            for j in (i + 1)..12 {
                assert!(
                    d.boxes[i].intersect(&d.boxes[j]).is_empty(),
                    "ranks {i},{j} overlap"
                );
            }
        }
    }

    #[test]
    fn inactive_ranks_hold_empty_boxes() {
        // Grid shrinking: 12-rank world, compute fits in a 2x2x1 grid.
        let d = Distribution::new([16, 16, 16], [2, 2, 1], 12);
        assert_eq!(d.active_ranks(), 4);
        assert_eq!(d.total_volume(), 16 * 16 * 16);
        for r in 4..12 {
            assert!(d.boxes[r].is_empty());
        }
    }

    #[test]
    fn local_axes_reflect_grid() {
        let d = Distribution::new([8, 8, 8], [1, 2, 4], 8);
        assert_eq!(d.local_axes(), vec![0]);
        let s = Distribution::new([8, 8, 8], [1, 8, 1], 8);
        assert_eq!(s.local_axes(), vec![0, 2]);
    }

    #[test]
    fn pencil_grid_boxes_are_full_pencils() {
        let n = [8, 8, 8];
        let d = Distribution::new(n, [1, 2, 4], 8);
        for b in &d.boxes {
            assert_eq!(b.len(0), 8, "axis 0 must be fully local in (1,P,Q)");
        }
    }

    #[test]
    fn min_surface_prefers_splitting_long_axis() {
        // A 512x512x64 slab-ish domain: the grid should avoid cutting the
        // short axis.
        let g = min_surface_grid(16, [512, 512, 64]);
        assert_eq!(g.iter().product::<usize>(), 16);
        assert!(g[2] <= g[0] && g[2] <= g[1], "short axis over-split: {g:?}");
    }

    #[test]
    fn ranks_overlapping_matches_brute_force() {
        let n = [17usize, 9, 23];
        for grid in [[2usize, 3, 4], [1, 5, 2], [4, 1, 1], [3, 3, 3]] {
            let nranks: usize = grid.iter().product();
            let d = Distribution::new(n, grid, nranks);
            for probe in [
                Box3::new([0, 0, 0], [5, 4, 7]),
                Box3::new([3, 2, 10], [17, 9, 23]),
                Box3::new([8, 4, 11], [9, 5, 12]),
                Box3::EMPTY,
            ] {
                let fast = d.ranks_overlapping(n, &probe);
                let brute: Vec<usize> = (0..nranks)
                    .filter(|&r| !d.boxes[r].intersect(&probe).is_empty())
                    .collect();
                assert_eq!(fast, brute, "grid {grid:?} probe {probe:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn grid_larger_than_world_rejected() {
        let _ = Distribution::new([8, 8, 8], [4, 4, 4], 12);
    }
}
