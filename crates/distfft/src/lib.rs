#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # distfft — distributed multi-GPU 3-D FFT
//!
//! The core library of the reproduction: a from-scratch implementation of the
//! parallel FFT algorithm the paper studies (its Algorithm 1, as contributed
//! to heFFTe 2.1), running on the simulated cluster of `simgrid`/`mpisim`.
//!
//! ## What it implements
//!
//! * **Decompositions** (paper Fig. 1): slabs (one exchange), pencils (two
//!   exchanges), and bricks — pencil compute stages with brick-shaped
//!   input/output grids obtained by minimum-surface splitting (two extra
//!   exchanges, four total; Table III's blue grids).
//! * **Exchange backends** (Table I): padded `MPI_Alltoall`,
//!   `MPI_Alltoallv`, `MPI_Alltoallw` with sub-array datatypes (Algorithm 2 /
//!   Dalcin et al.), and point-to-point `MPI_(I)send`/`MPI_Irecv` in blocking
//!   and non-blocking flavors.
//! * **Novel features of the paper**: FFT **grid shrinking** (remap to a
//!   sub-communicator of `l_p < n_p` ranks around the compute; Algorithm 1
//!   line 2) and **batched 2-D/3-D transforms** with communication/computation
//!   pipelining (Fig. 13).
//! * **Tuning knobs**: contiguous ("transposed") vs strided local FFTs
//!   (Figs. 6, 7, 10), GPU-aware MPI on/off (Figs. 8, 9, 11).
//!
//! ## Two executors, one cost model
//!
//! [`exec`] runs the plan *functionally*: real complex data on rank threads,
//! real local FFTs, real reshapes — used for correctness at small sizes.
//! [`dryrun`] walks the same plan *analytically* at any scale (512³ on 3072
//! GPUs takes milliseconds). Both draw every duration from the same kernel
//! and schedule models, so their simulated times agree exactly — a property
//! the test suite enforces.

pub mod api;
pub mod boxes;
pub mod decomp;
pub mod dryrun;
pub mod exec;
pub mod plan;
pub mod procgrid;
pub mod real3d;
pub mod reshape;
#[cfg(feature = "sanitize")]
pub mod sanitize;
pub mod timeline;
pub mod trace;

pub use api::{Fft3d, Scale};
pub use boxes::Box3;
pub use decomp::Decomp;
pub use exec::PoolStats;
pub use plan::{CommBackend, FftOptions, FftPlan, IoLayout, PlanError};
pub use trace::{KernelKind, Trace, TraceEvent};
