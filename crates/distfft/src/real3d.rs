//! Distributed 3-D real-to-complex / complex-to-real transforms.
//!
//! LAMMPS KSPACE "uses 3-D real and complex transforms" (§IV-D), and heFFTe
//! ships an `fft3d_r2c` API; this module is its equivalent. The transform
//! runs at true r2c cost — half the complex work and half the wire bytes of
//! embedding the reals into complex — via the packed-pair trick:
//!
//! 1. locally fold axis-2 pairs of the real brick into packed complex
//!    values (domain `[n0, n1, n2/2]`);
//! 2. reshape to axis-2 pencils and run a length-`n2/2` complex FFT along
//!    axis 2 (plan A);
//! 3. untangle each axis-2 line into the `h = n2/2 + 1` non-redundant bins
//!    (domain `[n0, n1, h]`);
//! 4. transform axes 1 and 0 with ordinary complex reshful stages, ending in
//!    a brick layout of the half-spectrum (plan C).
//!
//! The inverse retraces the steps. Both plans are ordinary [`FftPlan`]s, so
//! the functional and analytic executors (and their exact-consistency
//! guarantee) apply unchanged.

use fftkern::real::{retangle_half_into, untangle_half_into};
use fftkern::{Direction, C64};
use mpisim::comm::{Comm, Rank};
use simgrid::SimTime;

use crate::boxes::Box3;
use crate::exec::{bind, execute, BoundPlan, ExecCtx};
use crate::plan::{FftOptions, FftPlan, PlanError, Step};
use crate::procgrid::{closest_factor_pair, min_surface_grid, Distribution};
use crate::reshape::ReshapeSpec;

/// A distributed r2c/c2r plan over an `n0 × n1 × n2` real domain
/// (`n2` even).
#[derive(Debug, Clone)]
pub struct Real3dPlan {
    /// Real-domain extents.
    pub n: [usize; 3],
    /// Non-redundant axis-2 bins: `n2/2 + 1`.
    pub h: usize,
    /// Stage A: packed domain `[n0, n1, n2/2]` — input reshape + axis-2 FFT.
    pub plan_a: FftPlan,
    /// Stage C: half-spectrum domain `[n0, n1, h]` — axes 1 and 0 + output
    /// reshape.
    pub plan_c: FftPlan,
}

impl Real3dPlan {
    /// Builds the plan. The backend/GPU options of `opts` apply to every
    /// reshape, and `opts.decomp` picks the intermediate layout family
    /// (slabs when requested and within the `min(n0, n1)` rank limit,
    /// pencils otherwise — the same Fig. 1 trade-off as the complex plan);
    /// `opts.io` is fixed by the r2c pipeline (brick I/O), and `opts.batch`
    /// must be 1 — batched r2c is unimplemented and rejected with
    /// [`PlanError::R2cBatched`].
    pub fn try_build(
        n: [usize; 3],
        nranks: usize,
        opts: FftOptions,
    ) -> Result<Real3dPlan, PlanError> {
        if n.contains(&0) || !n[2].is_multiple_of(2) || n[2] < 2 {
            return Err(PlanError::DegenerateTransform(n));
        }
        if nranks == 0 {
            return Err(PlanError::NoRanks);
        }
        // Batched r2c is not implemented: the packed/half-spectrum domains
        // below are sized for one transform, so a `batch > 1` request must
        // fail loudly instead of silently transforming only the first item.
        if opts.batch > 1 {
            return Err(PlanError::R2cBatched { batch: opts.batch });
        }
        let m = n[2] / 2;
        let h = m + 1;
        let mp = [n[0], n[1], m];
        let mh = [n[0], n[1], h];

        let base = FftOptions {
            batch: 1,
            shrink_to: None,
            ..opts
        };

        if base.decomp == crate::Decomp::Slabs && nranks > 1 {
            let limit = mp[0].min(mp[1]);
            if nranks > limit {
                return Err(PlanError::SlabLimit {
                    active: nranks,
                    limit,
                });
            }
            // Slab pipeline (one fewer reshape than pencils): axis-1 slabs
            // keep axes 0 and 2 local, so the half-domain axis-0 transform
            // runs in the same layout the axis-2 stage left behind.
            let d_in = Distribution::new(mp, min_surface_grid(nranks, mp), nranks);
            let d_z = Distribution::new(mp, [1, nranks, 1], nranks);
            let plan_a = hand_rolled(
                mp,
                nranks,
                base.clone(),
                vec![d_in, d_z],
                vec![vec![], vec![2]],
            );
            let c0 = Distribution::new(mh, [1, nranks, 1], nranks);
            let c1 = Distribution::new(mh, [nranks, 1, 1], nranks);
            let c2 = Distribution::new(mh, min_surface_grid(nranks, mh), nranks);
            let plan_c = hand_rolled(
                mh,
                nranks,
                base,
                vec![c0, c1, c2],
                vec![vec![0], vec![1], vec![]],
            );
            return Ok(Real3dPlan {
                n,
                h,
                plan_a,
                plan_c,
            });
        }

        let (p, q) = closest_factor_pair(nranks);

        // Plan A: packed brick -> (P, Q, 1) pencils, FFT along axis 2.
        let d_in = Distribution::new(mp, min_surface_grid(nranks, mp), nranks);
        let d_z = Distribution::new(mp, [p, q, 1], nranks);
        let plan_a = hand_rolled(
            mp,
            nranks,
            base.clone(),
            vec![d_in, d_z],
            vec![vec![], vec![2]],
        );

        // Plan C: (P, Q, 1) over the half domain -> axis 1 -> axis 0 ->
        // output brick.
        let c0 = Distribution::new(mh, [p, q, 1], nranks);
        let c1 = Distribution::new(mh, [p, 1, q], nranks);
        let c2 = Distribution::new(mh, [1, p, q], nranks);
        let c3 = Distribution::new(mh, min_surface_grid(nranks, mh), nranks);
        let plan_c = hand_rolled(
            mh,
            nranks,
            base,
            vec![c0, c1, c2, c3],
            vec![vec![], vec![1], vec![0], vec![]],
        );

        Ok(Real3dPlan {
            n,
            h,
            plan_a,
            plan_c,
        })
    }

    /// Panicking wrapper around [`Real3dPlan::try_build`].
    pub fn build(n: [usize; 3], nranks: usize, opts: FftOptions) -> Real3dPlan {
        Real3dPlan::try_build(n, nranks, opts).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The rank's REAL-domain input box (the packed input box scaled ×2
    /// along axis 2 — always even-aligned by construction).
    pub fn real_input_box(&self, rank: usize) -> Box3 {
        let b = self.plan_a.dists[0].rank_box(rank);
        if b.is_empty() {
            return Box3::EMPTY;
        }
        Box3::new(
            [b.lo[0], b.lo[1], b.lo[2] * 2],
            [b.hi[0], b.hi[1], b.hi[2] * 2],
        )
    }

    /// The rank's half-spectrum output box (brick layout over
    /// `[n0, n1, h]`).
    pub fn spectrum_box(&self, rank: usize) -> Box3 {
        *self.plan_c.dists[self.plan_c.dists.len() - 1].rank_box(rank)
    }

    /// Round-trip normalization: `c2r(r2c(x)) == factor · x`.
    pub fn normalization(&self) -> f64 {
        (self.n[0] * self.n[1] * self.n[2]) as f64
    }

    /// Binds both inner plans (collective over `comm`).
    pub fn bind(&self, rank: &mut Rank, comm: &Comm) -> (BoundPlan, BoundPlan) {
        (
            bind(&self.plan_a, rank, comm),
            bind(&self.plan_c, rank, comm),
        )
    }

    /// Forward r2c: consumes this rank's reals (row-major over
    /// [`real_input_box`]) and returns its half-spectrum block (row-major
    /// over [`spectrum_box`]).
    ///
    /// [`real_input_box`]: Real3dPlan::real_input_box
    /// [`spectrum_box`]: Real3dPlan::spectrum_box
    #[allow(clippy::too_many_arguments)]
    pub fn execute_forward(
        &self,
        bound: &(BoundPlan, BoundPlan),
        ctx: &mut ExecCtx,
        rank: &mut Rank,
        comm: &Comm,
        reals: &[f64],
    ) -> Vec<C64> {
        let me = rank.rank();
        let km = rank.world().spec().kernel_model();
        let in_box = self.real_input_box(me);
        assert_eq!(reals.len(), in_box.volume(), "input does not match layout");

        // 1. Local fold into packed complex (pairs along axis 2), staged in
        // a pooled buffer.
        let mut packed = ctx.take_buffer();
        packed.extend(reals.chunks_exact(2).map(|p| C64::new(p[0], p[1])));
        rank.compute_ns(km.pointwise_ns(packed.len(), 2.0));

        // 2. Reshape + axis-2 FFT on the packed domain.
        let mut data = vec![packed];
        execute(
            &self.plan_a,
            &bound.0,
            ctx,
            rank,
            comm,
            &mut data,
            Direction::Forward,
        );

        // 3. Untangle every axis-2 line: m bins -> h bins.
        let zbox = self.plan_a.dists[1].rank_box(me);
        let m = self.n[2] / 2;
        let untangled = if zbox.is_empty() {
            Vec::new()
        } else {
            let rows = zbox.volume() / m;
            let mut out = ctx.take_buffer();
            out.reserve(rows * self.h);
            for row in data[0].chunks_exact(m) {
                untangle_half_into(row, self.n[2], &mut out);
            }
            rank.compute_ns(km.pointwise_ns(rows * self.h, 12.0));
            out
        };
        if let Some(buf) = data.pop() {
            ctx.recycle(buf);
        }

        // 4. Axes 1 and 0 + output reshape on the half domain.
        let mut data_c = vec![untangled];
        execute(
            &self.plan_c,
            &bound.1,
            ctx,
            rank,
            comm,
            &mut data_c,
            Direction::Forward,
        );
        data_c.remove(0)
    }

    /// Inverse c2r: consumes this rank's half-spectrum block and returns its
    /// reals (unnormalized: scaled by [`normalization`]).
    ///
    /// [`normalization`]: Real3dPlan::normalization
    #[allow(clippy::too_many_arguments)]
    pub fn execute_inverse(
        &self,
        bound: &(BoundPlan, BoundPlan),
        ctx: &mut ExecCtx,
        rank: &mut Rank,
        comm: &Comm,
        spectrum: Vec<C64>,
    ) -> Vec<f64> {
        let me = rank.rank();
        let km = rank.world().spec().kernel_model();

        // Reverse of stage C: back to the (P,Q,1) half-domain pencils.
        let mut data_c = vec![spectrum];
        execute(
            &self.plan_c,
            &bound.1,
            ctx,
            rank,
            comm,
            &mut data_c,
            Direction::Inverse,
        );

        // Re-tangle every axis-2 line: h bins -> m packed bins.
        let zbox = self.plan_a.dists[1].rank_box(me);
        let m = self.n[2] / 2;
        let packed = if zbox.is_empty() {
            Vec::new()
        } else {
            let rows = data_c[0].len() / self.h;
            let mut out = ctx.take_buffer();
            out.reserve(rows * m);
            for row in data_c[0].chunks_exact(self.h) {
                retangle_half_into(row, self.n[2], &mut out);
            }
            rank.compute_ns(km.pointwise_ns(rows * m, 12.0));
            out
        };
        if let Some(buf) = data_c.pop() {
            ctx.recycle(buf);
        }

        // Reverse of stage A: inverse axis-2 FFT + reshape to packed bricks.
        let mut data = vec![packed];
        execute(
            &self.plan_a,
            &bound.0,
            ctx,
            rank,
            comm,
            &mut data,
            Direction::Inverse,
        );

        // Unfold to reals (×2: the half-size transform carries half the
        // normalization, exactly as in the 1-D packed trick).
        let out: Vec<f64> = data[0]
            .iter()
            .flat_map(|z| [z.re * 2.0, z.im * 2.0])
            .collect();
        rank.compute_ns(km.pointwise_ns(out.len() / 2, 2.0));
        if let Some(buf) = data.pop() {
            ctx.recycle(buf);
        }
        out
    }

    /// Busiest-rank packed volume (the fold/unfold pointwise extent).
    fn max_packed(&self) -> usize {
        (0..self.plan_a.nranks)
            .map(|r| self.plan_a.dists[0].rank_box(r).volume())
            .max()
            .unwrap_or(0)
    }

    /// Busiest-rank axis-2 line count in the z-pencil layout (the
    /// untangle/retangle pointwise extent is `rows × h` / `rows × m`).
    fn max_rows(&self) -> usize {
        let m = self.n[2] / 2;
        (0..self.plan_a.nranks)
            .map(|r| self.plan_a.dists[1].rank_box(r).volume() / m.max(1))
            .max()
            .unwrap_or(0)
    }

    /// Pointwise (fold + untangle) cost of a forward transform at the
    /// busiest rank — the r2c-specific kernels outside the two inner plans.
    pub fn pointwise_forward_ns(&self, km: &fftkern::kernel_model::KernelTimeModel) -> u64 {
        km.pointwise_ns(self.max_packed(), 2.0) + km.pointwise_ns(self.max_rows() * self.h, 12.0)
    }

    /// Pointwise (retangle + unfold) cost of an inverse transform at the
    /// busiest rank.
    pub fn pointwise_inverse_ns(&self, km: &fftkern::kernel_model::KernelTimeModel) -> u64 {
        let m = self.n[2] / 2;
        km.pointwise_ns(self.max_rows() * m, 12.0) + km.pointwise_ns(self.max_packed(), 2.0)
    }

    /// Simulated-time cost of one forward transform at any scale via the
    /// analytic executor: the two inner plans dry-run back to back, plus
    /// the fold/untangle pointwise kernels (charged at the busiest rank —
    /// a slight over-estimate relative to the functional executor, which
    /// overlaps them per rank).
    pub fn dryrun_forward(
        &self,
        machine: &simgrid::MachineSpec,
        opts: crate::dryrun::DryRunOpts,
    ) -> SimTime {
        let km = machine.kernel_model();
        let mut a = crate::dryrun::DryRunner::new(&self.plan_a, machine, opts.clone());
        let ra = a.run(Direction::Forward);
        let mut c = crate::dryrun::DryRunner::new(&self.plan_c, machine, opts);
        let rc = c.run(Direction::Forward);
        ra.makespan() + rc.makespan() + SimTime::from_ns(self.pointwise_forward_ns(&km))
    }

    /// Simulated-time cost of one inverse (c2r) transform: the inner plans
    /// retraced in reverse, plus the retangle/unfold pointwise kernels.
    pub fn dryrun_inverse(
        &self,
        machine: &simgrid::MachineSpec,
        opts: crate::dryrun::DryRunOpts,
    ) -> SimTime {
        let km = machine.kernel_model();
        let mut c = crate::dryrun::DryRunner::new(&self.plan_c, machine, opts.clone());
        let rc = c.run(Direction::Inverse);
        let mut a = crate::dryrun::DryRunner::new(&self.plan_a, machine, opts);
        let ra = a.run(Direction::Inverse);
        rc.makespan() + ra.makespan() + SimTime::from_ns(self.pointwise_inverse_ns(&km))
    }
}

/// Builds an [`FftPlan`] directly from an explicit distribution sequence and
/// per-distribution transform axes (the r2c pipeline's stage order differs
/// from the standard c2c plan, so it cannot come from `compute_stages`).
fn hand_rolled(
    n: [usize; 3],
    nranks: usize,
    opts: FftOptions,
    dists: Vec<Distribution>,
    stage_axes: Vec<Vec<usize>>,
) -> FftPlan {
    assert_eq!(dists.len(), stage_axes.len());
    let mut reshapes = Vec::new();
    let mut reshapes_rev = Vec::new();
    for w in dists.windows(2) {
        let fwd = ReshapeSpec::build(&w[0], &w[1]);
        reshapes_rev.push(fwd.reversed());
        reshapes.push(fwd);
    }
    let mut steps = Vec::new();
    for (i, axes) in stage_axes.iter().enumerate() {
        if i > 0 {
            steps.push(Step::Reshape(i - 1));
        }
        for &axis in axes {
            steps.push(Step::LocalFft { dist: i, axis });
        }
    }
    FftPlan {
        n,
        nranks,
        active: nranks,
        opts,
        dists,
        reshapes,
        reshapes_rev,
        steps,
    }
}
