//! Replay digests for the runtime simulation sanitizer (compiled only with
//! `--features sanitize`).
//!
//! A *replay digest* is an order-sensitive FNV-1a hash over everything a
//! simulated run claims happened: per-rank simulated completion times, the
//! full per-rank trace-event stream, and (for the full digest) the
//! buffer-pool statistics. The determinism contract (DESIGN.md §12) is
//! expressed as digest equalities:
//!
//! * **timing digest** — identical across executor thread counts
//!   (`ExecCtx::with_threads(1)` vs `with_threads(4)`), across scheduler
//!   memoization modes (`sched_memo`/`fused_meta` on vs off), across
//!   mailbox harvest-order permutations, and across reruns. Simulated time
//!   is a pure function of the configuration.
//! * **full digest** — additionally folds in pool hit/miss/eviction
//!   counts, so it is identical across reruns *and* memoization modes of
//!   one configuration, but legitimately differs across thread counts
//!   (each worker arena warms its own free list).
//!
//! The digest primitive itself lives in [`mpisim::sanitize`]; this module
//! knows how to fold `distfft`'s run artifacts into it.

use crate::exec::PoolStats;
use crate::trace::{KernelKind, Trace, TraceEvent};
use simgrid::SimTime;

pub use mpisim::sanitize::{set_shuffle_seed, Digest};

/// Folds one rank's trace-event stream into `d`, every field of every
/// event, in execution order.
pub fn fold_trace(d: &mut Digest, trace: &Trace) {
    d.u64(trace.events.len() as u64);
    for e in &trace.events {
        match e {
            TraceEvent::MpiCall {
                reshape,
                routine,
                start,
                dur,
                bytes,
            } => {
                d.u64(1);
                d.u64(*reshape as u64);
                d.bytes(routine.as_bytes());
                d.u64(start.as_ns());
                d.u64(dur.as_ns());
                d.u64(*bytes as u64);
            }
            TraceEvent::Kernel { kind, start, dur } => {
                d.u64(2);
                fold_kind(d, kind);
                d.u64(start.as_ns());
                d.u64(dur.as_ns());
            }
        }
    }
}

fn fold_kind(d: &mut Digest, kind: &KernelKind) {
    match kind {
        KernelKind::Fft1d { axis, contiguous } => {
            d.u64(10);
            d.u64(*axis as u64);
            d.u64(*contiguous as u64);
        }
        KernelKind::Pack => d.u64(11),
        KernelKind::Unpack => d.u64(12),
        KernelKind::SelfCopy => d.u64(13),
        KernelKind::Pointwise => d.u64(14),
    }
}

/// Folds one rank's pool statistics into `d`.
pub fn fold_pool(d: &mut Digest, stats: &PoolStats) {
    d.u64(stats.hits);
    d.u64(stats.misses);
    d.u64(stats.evictions);
}

/// The timing digest of a world run: per-rank (completion time, trace),
/// in rank order. Must be invariant across thread counts, memoization
/// modes, harvest permutations, and reruns.
pub fn timing_digest(ranks: &[(SimTime, Trace)]) -> u64 {
    let mut d = Digest::new();
    d.u64(ranks.len() as u64);
    for (rank, (total, trace)) in ranks.iter().enumerate() {
        d.u64(rank as u64);
        d.u64(total.as_ns());
        fold_trace(&mut d, trace);
    }
    d.finish()
}

/// The full digest: the timing digest plus per-rank pool statistics. Must
/// be invariant across reruns and memoization modes of one configuration.
pub fn full_digest(ranks: &[(SimTime, Trace)], pools: &[PoolStats]) -> u64 {
    let mut d = Digest::new();
    d.u64(timing_digest(ranks));
    d.u64(pools.len() as u64);
    for p in pools {
        fold_pool(&mut d, p);
    }
    d.finish()
}
