//! Decomposition planning: which processor grids the FFT computes through.
//!
//! Paper Fig. 1: slabs (1-D process grid, one exchange), pencils (2-D
//! process grid, two exchanges), bricks (3-D input/output grids around the
//! pencil compute path, four exchanges total).

use crate::procgrid::closest_factor_pair;

/// Algorithmic decomposition of the 3-D FFT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decomp {
    /// 1-D grid: a 2-D local FFT + one exchange + a 1-D local FFT.
    /// Scalability limited to `n1` processes (paper §I).
    Slabs,
    /// 2-D grid `(P, Q)`: three 1-D stages, two exchanges.
    Pencils,
    /// Pencil compute stages with brick-shaped (minimum-surface) I/O grids:
    /// four exchanges. The paper's "bricks" variant (fftMPI / SWFFT).
    Bricks,
}

impl Decomp {
    /// Human-readable name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Decomp::Slabs => "slabs",
            Decomp::Pencils => "pencils",
            Decomp::Bricks => "bricks",
        }
    }
}

/// One compute stage: the grid the data sits in and the axes transformed
/// while it is there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComputeStage {
    /// Processor grid of this stage.
    pub grid: [usize; 3],
    /// Axes (0..3) transformed in this stage.
    pub axes: Vec<usize>,
}

/// Builds the sequence of compute stages for `active` ranks over a domain of
/// extents `n`. Consecutive stages with identical grids are merged (this
/// happens for pencils when `P = 1`).
pub fn compute_stages(decomp: Decomp, active: usize, n: [usize; 3]) -> Vec<ComputeStage> {
    assert!(active > 0, "need at least one active rank");
    if active == 1 {
        return vec![ComputeStage {
            grid: [1, 1, 1],
            axes: vec![0, 1, 2],
        }];
    }
    let raw: Vec<ComputeStage> = match decomp {
        Decomp::Slabs => {
            assert!(
                active <= n[1] && active <= n[0],
                "slabs decomposition of {n:?} supports at most {} ranks, got {active} \
                 (the paper's N₂-process scalability limit)",
                n[1].min(n[0])
            );
            vec![
                ComputeStage {
                    grid: [1, active, 1],
                    axes: vec![0, 2],
                },
                ComputeStage {
                    grid: [active, 1, 1],
                    axes: vec![1],
                },
            ]
        }
        Decomp::Pencils | Decomp::Bricks => {
            let (p, q) = closest_factor_pair(active);
            assert!(
                p <= n[0].max(1) * n[1].max(1) && q <= n[1].max(1) * n[2].max(1),
                "pencil grid ({p},{q}) too large for domain {n:?}"
            );
            vec![
                ComputeStage {
                    grid: [1, p, q],
                    axes: vec![0],
                },
                ComputeStage {
                    grid: [p, 1, q],
                    axes: vec![1],
                },
                ComputeStage {
                    grid: [p, q, 1],
                    axes: vec![2],
                },
            ]
        }
    };

    // Merge consecutive identical grids.
    let mut merged: Vec<ComputeStage> = Vec::with_capacity(raw.len());
    for stage in raw {
        match merged.last_mut() {
            Some(prev) if prev.grid == stage.grid => prev.axes.extend(stage.axes),
            _ => merged.push(stage),
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pencil_stages_cover_all_axes_once() {
        let st = compute_stages(Decomp::Pencils, 24, [64, 64, 64]);
        assert_eq!(st.len(), 3);
        assert_eq!(st[0].grid, [1, 4, 6]);
        assert_eq!(st[1].grid, [4, 1, 6]);
        assert_eq!(st[2].grid, [4, 6, 1]);
        let mut axes: Vec<usize> = st.iter().flat_map(|s| s.axes.clone()).collect();
        axes.sort_unstable();
        assert_eq!(axes, vec![0, 1, 2]);
    }

    #[test]
    fn slab_stages() {
        let st = compute_stages(Decomp::Slabs, 8, [64, 64, 64]);
        assert_eq!(st.len(), 2);
        assert_eq!(st[0].grid, [1, 8, 1]);
        assert_eq!(st[0].axes, vec![0, 2]);
        assert_eq!(st[1].grid, [8, 1, 1]);
        assert_eq!(st[1].axes, vec![1]);
    }

    #[test]
    fn single_rank_collapses_to_local_fft() {
        let st = compute_stages(Decomp::Pencils, 1, [16, 16, 16]);
        assert_eq!(st.len(), 1);
        assert_eq!(st[0].grid, [1, 1, 1]);
        assert_eq!(st[0].axes, vec![0, 1, 2]);
    }

    #[test]
    fn prime_rank_count_merges_degenerate_pencil_stages() {
        // Π = 7 (prime): P = 1, so the first two pencil grids coincide.
        let st = compute_stages(Decomp::Pencils, 7, [16, 16, 16]);
        assert_eq!(st.len(), 2);
        assert_eq!(st[0].grid, [1, 1, 7]);
        assert_eq!(st[0].axes, vec![0, 1]);
        assert_eq!(st[1].grid, [1, 7, 1]);
        assert_eq!(st[1].axes, vec![2]);
    }

    #[test]
    #[should_panic(expected = "scalability limit")]
    fn slabs_enforce_scaling_limit() {
        let _ = compute_stages(Decomp::Slabs, 128, [64, 64, 64]);
    }

    #[test]
    fn bricks_use_pencil_compute_path() {
        let a = compute_stages(Decomp::Pencils, 12, [32, 32, 32]);
        let b = compute_stages(Decomp::Bricks, 12, [32, 32, 32]);
        assert_eq!(a, b);
    }
}
