//! Reshape (a.k.a. remap / transpose) planning.
//!
//! A reshape moves the data from one [`Distribution`] to another: rank `r`
//! sends the intersection of its old box with every rank's new box (paper
//! Algorithm 1, lines 9–13: pack → transfer → unpack). The planner also
//! discovers the *communication groups* — the connected components of the
//! flow graph, which for pencil↔pencil reshapes are exactly the paper's "MPI
//! groups for each direction" (Algorithm 1, line 5) — so each exchange runs
//! on a sub-communicator.

use crate::boxes::Box3;
use crate::procgrid::Distribution;
use fftkern::C64;

/// Bytes per complex element.
pub const ELEM_BYTES: usize = C64::BYTES;

/// A fully-resolved reshape between two distributions.
#[derive(Debug, Clone)]
pub struct ReshapeSpec {
    /// Per rank: `(destination rank, region)` pairs, sorted by destination.
    /// Includes the self block when the old and new boxes overlap.
    pub sends: Vec<Vec<(usize, Box3)>>,
    /// Per rank: `(source rank, region)` pairs, sorted by source.
    pub recvs: Vec<Vec<(usize, Box3)>>,
    /// Communication groups: connected components of the flow graph with at
    /// least one member, each sorted ascending. Ranks with no flows at all
    /// appear in no group.
    pub groups: Vec<Vec<usize>>,
    /// Rank → index into `groups` (None for flow-less ranks).
    pub group_of: Vec<Option<usize>>,
}

impl ReshapeSpec {
    /// Plans the reshape `from → to`. Both distributions must cover the same
    /// domain with the same rank count.
    pub fn build(from: &Distribution, to: &Distribution) -> ReshapeSpec {
        let n = from.boxes.len();
        assert_eq!(n, to.boxes.len(), "distributions disagree on rank count");

        let mut sends: Vec<Vec<(usize, Box3)>> = vec![Vec::new(); n];
        let mut recvs: Vec<Vec<(usize, Box3)>> = vec![Vec::new(); n];
        let mut uf = UnionFind::new(n);
        let mut has_flow = vec![false; n];

        // Domain extents, recovered from the union of boxes (identical in
        // both distributions by construction).
        let mut domain = [0usize; 3];
        for b in from.boxes.iter().chain(to.boxes.iter()) {
            for (d, ext) in domain.iter_mut().enumerate() {
                *ext = (*ext).max(b.hi[d]);
            }
        }

        for r in 0..n {
            let src_box = &from.boxes[r];
            if src_box.is_empty() {
                continue;
            }
            // Fast path: only visit target ranks whose grid cells the source
            // box can touch — O(peers) per rank instead of O(Π).
            for s in to.ranks_overlapping(domain, src_box) {
                let overlap = src_box.intersect(&to.boxes[s]);
                if overlap.is_empty() {
                    continue;
                }
                sends[r].push((s, overlap));
                recvs[s].push((r, overlap));
                has_flow[r] = true;
                has_flow[s] = true;
                if r != s {
                    uf.union(r, s);
                }
            }
        }
        for v in sends.iter_mut() {
            v.sort_unstable_by_key(|(d, _)| *d);
        }
        for v in recvs.iter_mut() {
            v.sort_unstable_by_key(|(s, _)| *s);
        }

        // Connected components over ranks with flows.
        let mut group_map: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        #[allow(clippy::needless_range_loop)] // r is a rank id fed to find()
        for r in 0..n {
            if has_flow[r] {
                group_map.entry(uf.find(r)).or_default().push(r);
            }
        }
        let groups: Vec<Vec<usize>> = group_map.into_values().collect();
        let mut group_of = vec![None; n];
        for (gi, g) in groups.iter().enumerate() {
            for &r in g {
                group_of[r] = Some(gi);
            }
        }
        ReshapeSpec {
            sends,
            recvs,
            groups,
            group_of,
        }
    }

    /// The reverse reshape `to → from`, derived without re-planning: the
    /// flow graph is symmetric, so sends and recvs swap while groups (its
    /// connected components) are unchanged. Equivalent to — and much cheaper
    /// than — `ReshapeSpec::build(to, from)`.
    pub fn reversed(&self) -> ReshapeSpec {
        ReshapeSpec {
            sends: self.recvs.clone(),
            recvs: self.sends.clone(),
            groups: self.groups.clone(),
            group_of: self.group_of.clone(),
        }
    }

    /// True when every rank's only flow is to itself (the reshape is a
    /// no-op permutation and can be skipped).
    pub fn is_identity(&self) -> bool {
        self.sends
            .iter()
            .enumerate()
            .all(|(r, v)| v.iter().all(|(d, _)| *d == r))
    }

    /// Bytes rank `r` sends to rank `s` (0 if no flow).
    pub fn bytes(&self, r: usize, s: usize) -> usize {
        self.sends[r]
            .iter()
            .find(|(d, _)| *d == s)
            .map(|(_, b)| b.volume() * ELEM_BYTES)
            .unwrap_or(0)
    }

    /// Total bytes rank `r` sends to *other* ranks (the MPI payload; the
    /// self block moves by device copy).
    pub fn offrank_send_bytes(&self, r: usize) -> usize {
        self.sends[r]
            .iter()
            .filter(|(d, _)| *d != r)
            .map(|(_, b)| b.volume() * ELEM_BYTES)
            .sum()
    }

    /// Total bytes rank `r` receives from other ranks.
    pub fn offrank_recv_bytes(&self, r: usize) -> usize {
        self.recvs[r]
            .iter()
            .filter(|(s, _)| *s != r)
            .map(|(_, b)| b.volume() * ELEM_BYTES)
            .sum()
    }

    /// Number of off-rank destinations of rank `r`.
    pub fn peer_count(&self, r: usize) -> usize {
        self.sends[r].iter().filter(|(d, _)| *d != r).count()
    }

    /// The largest per-pair block (bytes) within rank `r`'s group — what a
    /// padded `MPI_Alltoall` must size every block to (§IV-B: "the cost
    /// associated with padding").
    pub fn padded_block_bytes(&self, group: &[usize]) -> usize {
        let mut max = 0;
        for &r in group {
            for (_, b) in &self.sends[r] {
                max = max.max(b.volume() * ELEM_BYTES);
            }
        }
        max
    }

    /// Builds the dense per-pair byte matrix of one group (indices are
    /// positions within `group`), for the schedule walkers.
    pub fn group_byte_matrix(&self, group: &[usize]) -> Vec<Vec<usize>> {
        let pos: std::collections::BTreeMap<usize, usize> =
            group.iter().enumerate().map(|(i, &r)| (r, i)).collect();
        let mut m = vec![vec![0usize; group.len()]; group.len()];
        for (i, &r) in group.iter().enumerate() {
            for (d, b) in &self.sends[r] {
                if let Some(&j) = pos.get(d) {
                    m[i][j] = b.volume() * ELEM_BYTES;
                }
            }
        }
        m
    }
}

/// Applies the local (self) part of a reshape: copies the overlap of the
/// rank's old and new boxes with no intermediate staging buffer.
///
/// Like `Box3::extract_into`/`deposit`, runs are coalesced: when the
/// overlap spans the full fastest axis of *both* boxes, whole `j`-planes
/// (and, if it also spans axis 1 of both, the entire overlap) collapse into
/// single bulk copies. Slab self-blocks hit the fully-merged case.
pub fn apply_self_block(old_box: &Box3, old_data: &[C64], new_box: &Box3, new_data: &mut [C64]) {
    let overlap = old_box.intersect(new_box);
    if overlap.is_empty() {
        return;
    }
    let full = |b: &Box3, d: usize| overlap.lo[d] == b.lo[d] && overlap.hi[d] == b.hi[d];
    let run = if full(old_box, 2) && full(new_box, 2) {
        if full(old_box, 1) && full(new_box, 1) {
            overlap.volume()
        } else {
            overlap.len(1) * overlap.len(2)
        }
    } else {
        overlap.len(2)
    };
    let vol = overlap.volume();
    let mut copied = 0;
    for i in overlap.lo[0]..overlap.hi[0] {
        let mut j = overlap.lo[1];
        while j < overlap.hi[1] {
            let src = old_box.local_index([i, j, overlap.lo[2]]);
            let dst = new_box.local_index([i, j, overlap.lo[2]]);
            new_data[dst..dst + run].copy_from_slice(&old_data[src..src + run]);
            copied += run;
            if copied >= vol {
                return;
            }
            j += (run / overlap.len(2)).max(1);
        }
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procgrid::Distribution;

    fn n64() -> [usize; 3] {
        [8, 8, 8]
    }

    #[test]
    fn pencil_to_pencil_groups_follow_fixed_axis() {
        // (1,2,4) -> (2,1,4): flows stay within fixed axis-2 chunks, giving
        // 4 groups of 2 ranks — the paper's per-direction MPI groups.
        let a = Distribution::new(n64(), [1, 2, 4], 8);
        let b = Distribution::new(n64(), [2, 1, 4], 8);
        let rs = ReshapeSpec::build(&a, &b);
        assert_eq!(rs.groups.len(), 4);
        for g in &rs.groups {
            assert_eq!(g.len(), 2);
        }
        assert!(!rs.is_identity());
    }

    #[test]
    fn brick_to_pencil_is_one_big_group() {
        let a = Distribution::new(n64(), [2, 2, 2], 8);
        let b = Distribution::new(n64(), [1, 2, 4], 8);
        let rs = ReshapeSpec::build(&a, &b);
        assert_eq!(rs.groups.len(), 1);
        assert_eq!(rs.groups[0].len(), 8);
    }

    #[test]
    fn identity_reshape_detected() {
        let a = Distribution::new(n64(), [2, 2, 2], 8);
        let rs = ReshapeSpec::build(&a, &a.clone());
        assert!(rs.is_identity());
        // Still has (self) flows for every rank.
        for r in 0..8 {
            assert_eq!(rs.sends[r].len(), 1);
            assert_eq!(rs.sends[r][0].0, r);
        }
    }

    #[test]
    fn flows_conserve_volume() {
        let a = Distribution::new([8, 9, 10], [2, 3, 1], 6);
        let b = Distribution::new([8, 9, 10], [1, 2, 3], 6);
        let rs = ReshapeSpec::build(&a, &b);
        // Total sent volume equals the domain volume.
        let sent: usize = rs
            .sends
            .iter()
            .flat_map(|v| v.iter().map(|(_, b)| b.volume()))
            .sum();
        assert_eq!(sent, 720);
        // Each rank receives exactly its new box volume.
        for r in 0..6 {
            let recv: usize = rs.recvs[r].iter().map(|(_, b)| b.volume()).sum();
            assert_eq!(recv, b.boxes[r].volume(), "rank {r}");
        }
    }

    #[test]
    fn recv_regions_partition_target_box() {
        let a = Distribution::new([8, 8, 8], [4, 1, 2], 8);
        let b = Distribution::new([8, 8, 8], [1, 4, 2], 8);
        let rs = ReshapeSpec::build(&a, &b);
        for r in 0..8 {
            // Pairwise disjoint.
            let regions: Vec<&Box3> = rs.recvs[r].iter().map(|(_, b)| b).collect();
            for i in 0..regions.len() {
                for j in (i + 1)..regions.len() {
                    assert!(regions[i].intersect(regions[j]).is_empty());
                }
            }
        }
    }

    #[test]
    fn bytes_accessors_agree() {
        let a = Distribution::new([8, 8, 8], [1, 2, 4], 8);
        let b = Distribution::new([8, 8, 8], [2, 1, 4], 8);
        let rs = ReshapeSpec::build(&a, &b);
        for r in 0..8 {
            let total: usize = (0..8).filter(|&s| s != r).map(|s| rs.bytes(r, s)).sum();
            assert_eq!(total, rs.offrank_send_bytes(r));
        }
        // Symmetric distributions here: sends == recvs in aggregate.
        let s: usize = (0..8).map(|r| rs.offrank_send_bytes(r)).sum();
        let v: usize = (0..8).map(|r| rs.offrank_recv_bytes(r)).sum();
        assert_eq!(s, v);
    }

    #[test]
    fn padded_block_is_group_max() {
        // Uneven domain so blocks differ.
        let a = Distribution::new([8, 9, 10], [1, 3, 2], 6);
        let b = Distribution::new([8, 9, 10], [3, 1, 2], 6);
        let rs = ReshapeSpec::build(&a, &b);
        for g in &rs.groups {
            let pad = rs.padded_block_bytes(g);
            let m = rs.group_byte_matrix(g);
            let max_in_matrix = m.iter().flatten().copied().max().unwrap();
            // The matrix excludes nothing within the group, so they agree.
            assert_eq!(pad, max_in_matrix);
            assert!(pad > 0);
        }
    }

    #[test]
    fn shrinking_reshape_routes_to_active_subset() {
        // 8 ranks, data shrinks onto the first 2.
        let a = Distribution::new([8, 8, 8], [2, 2, 2], 8);
        let b = Distribution::new([8, 8, 8], [1, 2, 1], 8); // 2 active
        let rs = ReshapeSpec::build(&a, &b);
        // Every rank sends somewhere; only ranks 0..2 receive.
        for r in 0..8 {
            assert!(!rs.sends[r].is_empty(), "rank {r} must send");
        }
        for r in 2..8 {
            assert!(rs.recvs[r].is_empty(), "inactive rank {r} must not receive");
        }
        // One group containing all flowing ranks.
        assert_eq!(rs.groups.len(), 1);
        assert_eq!(rs.groups[0].len(), 8);
    }

    #[test]
    fn reversed_matches_rebuilt_reverse() {
        for (ga, gb) in [
            ([1usize, 2, 4], [2usize, 1, 4]),
            ([2, 2, 2], [1, 2, 4]),
            ([2, 3, 1], [1, 2, 3]),
        ] {
            let a = Distribution::new([8, 9, 10], ga, 8);
            let b = Distribution::new([8, 9, 10], gb, 8);
            let fwd = ReshapeSpec::build(&a, &b);
            let derived = fwd.reversed();
            let rebuilt = ReshapeSpec::build(&b, &a);
            assert_eq!(derived.sends, rebuilt.sends);
            assert_eq!(derived.recvs, rebuilt.recvs);
            // Groups are the same components; ordering may differ, so
            // compare as sorted sets.
            let norm = |spec: &ReshapeSpec| {
                let mut gs = spec.groups.clone();
                gs.sort();
                gs
            };
            assert_eq!(norm(&derived), norm(&rebuilt));
        }
    }

    #[test]
    fn apply_self_block_copies_overlap() {
        let old_box = Box3::new([0, 0, 0], [4, 4, 4]);
        let new_box = Box3::new([2, 0, 0], [6, 4, 4]);
        let old: Vec<C64> = (0..64).map(|i| C64::real(i as f64)).collect();
        let mut new = vec![C64::ZERO; 64];
        apply_self_block(&old_box, &old, &new_box, &mut new);
        // Global point (2,0,0): old index 2*16=32; new index 0.
        assert_eq!(new[0], C64::real(32.0));
        // Global point (3,1,2): old 3*16+1*4+2 = 54; new (1,1,2) = 16+4+2 = 22.
        assert_eq!(new[22], C64::real(54.0));
    }

    #[test]
    fn apply_self_block_coalescing_matches_pointwise_copy() {
        // Exercise every run-coalescing tier: fully merged (slab↔slab),
        // plane-merged (shared fastest axis), and per-row (pencil overlap
        // that spans neither box's fast axis fully).
        let cases = [
            (
                Box3::new([0, 0, 0], [4, 6, 5]),
                Box3::new([2, 0, 0], [7, 6, 5]),
            ),
            (
                Box3::new([0, 0, 0], [4, 6, 5]),
                Box3::new([0, 3, 0], [4, 9, 5]),
            ),
            (
                Box3::new([0, 0, 0], [4, 6, 5]),
                Box3::new([1, 2, 2], [5, 8, 9]),
            ),
        ];
        for (old_box, new_box) in cases {
            let old: Vec<C64> = (0..old_box.volume())
                .map(|i| C64::new(i as f64, -(i as f64)))
                .collect();
            let mut got = vec![C64::ZERO; new_box.volume()];
            apply_self_block(&old_box, &old, &new_box, &mut got);

            // Pointwise reference.
            let mut expect = vec![C64::ZERO; new_box.volume()];
            let overlap = old_box.intersect(&new_box);
            for i in overlap.lo[0]..overlap.hi[0] {
                for j in overlap.lo[1]..overlap.hi[1] {
                    for k in overlap.lo[2]..overlap.hi[2] {
                        expect[new_box.local_index([i, j, k])] =
                            old[old_box.local_index([i, j, k])];
                    }
                }
            }
            assert_eq!(got, expect, "old={old_box:?} new={new_box:?}");
        }
    }
}
