//! Reshape (a.k.a. remap / transpose) planning.
//!
//! A reshape moves the data from one [`Distribution`] to another: rank `r`
//! sends the intersection of its old box with every rank's new box (paper
//! Algorithm 1, lines 9–13: pack → transfer → unpack). The planner also
//! discovers the *communication groups* — the connected components of the
//! flow graph, which for pencil↔pencil reshapes are exactly the paper's "MPI
//! groups for each direction" (Algorithm 1, line 5) — so each exchange runs
//! on a sub-communicator.

use crate::boxes::Box3;
use crate::procgrid::Distribution;
use fftkern::C64;

/// Bytes per complex element.
pub const ELEM_BYTES: usize = C64::BYTES;

/// A structural defect in a [`ReshapeSpec`] — a malformed spec must fail
/// loudly at plan/validate time instead of silently producing an empty
/// exchange (the old behavior mapped a missing peer region to zero bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReshapeError {
    /// `sends[rank]` has no region for `dst` although `recvs[dst]` expects
    /// one from `rank`.
    MissingSendRegion {
        /// Rank whose send list is missing the region.
        rank: usize,
        /// Destination the region should route to.
        dst: usize,
    },
    /// `recvs[rank]` has no region for `src` although `sends[src]` routes
    /// one to `rank`.
    MissingRecvRegion {
        /// Rank whose recv list is missing the region.
        rank: usize,
        /// Source whose send has no matching recv.
        src: usize,
    },
    /// The send region `rank → dst` and the matching recv region disagree.
    RegionMismatch {
        /// Sending rank.
        rank: usize,
        /// Receiving rank.
        dst: usize,
    },
    /// A rank lists the same peer twice on one side.
    DuplicatePeer {
        /// Rank with the duplicated entry.
        rank: usize,
        /// The repeated peer.
        peer: usize,
    },
}

impl std::fmt::Display for ReshapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReshapeError::MissingSendRegion { rank, dst } => {
                write!(f, "reshape spec: rank {rank} has no send region for destination {dst} but rank {dst} expects one")
            }
            ReshapeError::MissingRecvRegion { rank, src } => {
                write!(f, "reshape spec: rank {rank} has no recv region for source {src} but rank {src} sends one")
            }
            ReshapeError::RegionMismatch { rank, dst } => {
                write!(f, "reshape spec: send region {rank} -> {dst} disagrees with the matching recv region")
            }
            ReshapeError::DuplicatePeer { rank, peer } => {
                write!(
                    f,
                    "reshape spec: rank {rank} lists peer {peer} more than once"
                )
            }
        }
    }
}

impl std::error::Error for ReshapeError {}

/// A fully-resolved reshape between two distributions.
#[derive(Debug, Clone)]
pub struct ReshapeSpec {
    /// Per rank: `(destination rank, region)` pairs, sorted by destination.
    /// Includes the self block when the old and new boxes overlap.
    pub sends: Vec<Vec<(usize, Box3)>>,
    /// Per rank: `(source rank, region)` pairs, sorted by source.
    pub recvs: Vec<Vec<(usize, Box3)>>,
    /// Communication groups: connected components of the flow graph with at
    /// least one member, each sorted ascending. Ranks with no flows at all
    /// appear in no group.
    pub groups: Vec<Vec<usize>>,
    /// Rank → index into `groups` (None for flow-less ranks).
    pub group_of: Vec<Option<usize>>,
}

impl ReshapeSpec {
    /// Plans the reshape `from → to`. Both distributions must cover the same
    /// domain with the same rank count.
    pub fn build(from: &Distribution, to: &Distribution) -> ReshapeSpec {
        let n = from.boxes.len();
        assert_eq!(n, to.boxes.len(), "distributions disagree on rank count");

        let mut sends: Vec<Vec<(usize, Box3)>> = vec![Vec::new(); n];
        let mut recvs: Vec<Vec<(usize, Box3)>> = vec![Vec::new(); n];
        let mut uf = UnionFind::new(n);
        let mut has_flow = vec![false; n];

        // Domain extents, recovered from the union of boxes (identical in
        // both distributions by construction).
        let mut domain = [0usize; 3];
        for b in from.boxes.iter().chain(to.boxes.iter()) {
            for (d, ext) in domain.iter_mut().enumerate() {
                *ext = (*ext).max(b.hi[d]);
            }
        }

        for r in 0..n {
            let src_box = &from.boxes[r];
            if src_box.is_empty() {
                continue;
            }
            // Fast path: only visit target ranks whose grid cells the source
            // box can touch — O(peers) per rank instead of O(Π).
            for s in to.ranks_overlapping(domain, src_box) {
                let overlap = src_box.intersect(&to.boxes[s]);
                if overlap.is_empty() {
                    continue;
                }
                sends[r].push((s, overlap));
                recvs[s].push((r, overlap));
                has_flow[r] = true;
                has_flow[s] = true;
                if r != s {
                    uf.union(r, s);
                }
            }
        }
        for v in sends.iter_mut() {
            v.sort_unstable_by_key(|(d, _)| *d);
        }
        for v in recvs.iter_mut() {
            v.sort_unstable_by_key(|(s, _)| *s);
        }

        // Connected components over ranks with flows.
        let mut group_map: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        #[allow(clippy::needless_range_loop)] // r is a rank id fed to find()
        for r in 0..n {
            if has_flow[r] {
                group_map.entry(uf.find(r)).or_default().push(r);
            }
        }
        let groups: Vec<Vec<usize>> = group_map.into_values().collect();
        let mut group_of = vec![None; n];
        for (gi, g) in groups.iter().enumerate() {
            for &r in g {
                group_of[r] = Some(gi);
            }
        }
        let spec = ReshapeSpec {
            sends,
            recvs,
            groups,
            group_of,
        };
        if let Err(e) = spec.validate() {
            panic!("planner produced a malformed reshape: {e}");
        }
        spec
    }

    /// The reverse reshape `to → from`, derived without re-planning: the
    /// flow graph is symmetric, so sends and recvs swap while groups (its
    /// connected components) are unchanged. Equivalent to — and much cheaper
    /// than — `ReshapeSpec::build(to, from)`.
    pub fn reversed(&self) -> ReshapeSpec {
        let spec = ReshapeSpec {
            sends: self.recvs.clone(),
            recvs: self.sends.clone(),
            groups: self.groups.clone(),
            group_of: self.group_of.clone(),
        };
        debug_assert!(spec.validate().is_ok(), "reversed spec must stay valid");
        spec
    }

    /// True when every rank's only flow is to itself (the reshape is a
    /// no-op permutation and can be skipped).
    pub fn is_identity(&self) -> bool {
        self.sends
            .iter()
            .enumerate()
            .all(|(r, v)| v.iter().all(|(d, _)| *d == r))
    }

    /// Checks the spec's structural invariants: each side's peer lists are
    /// duplicate-free, and sends/recvs mirror each other exactly (same
    /// pairs, same regions). [`ReshapeSpec::build`] and
    /// [`ReshapeSpec::reversed`] assert this, so a spec corrupted after
    /// construction fails at the next validation point rather than
    /// producing an empty exchange.
    pub fn validate(&self) -> Result<(), ReshapeError> {
        for (r, v) in self.sends.iter().enumerate() {
            for w in v.windows(2) {
                if w[0].0 == w[1].0 {
                    return Err(ReshapeError::DuplicatePeer {
                        rank: r,
                        peer: w[0].0,
                    });
                }
            }
        }
        for (r, v) in self.recvs.iter().enumerate() {
            for w in v.windows(2) {
                if w[0].0 == w[1].0 {
                    return Err(ReshapeError::DuplicatePeer {
                        rank: r,
                        peer: w[0].0,
                    });
                }
            }
        }
        for (r, v) in self.sends.iter().enumerate() {
            for (d, region) in v {
                match self.recvs[*d].iter().find(|(s, _)| *s == r) {
                    None => return Err(ReshapeError::MissingRecvRegion { rank: *d, src: r }),
                    Some((_, got)) if got != region => {
                        return Err(ReshapeError::RegionMismatch { rank: r, dst: *d })
                    }
                    Some(_) => {}
                }
            }
        }
        for (r, v) in self.recvs.iter().enumerate() {
            for (s, _) in v {
                if !self.sends[*s].iter().any(|(d, _)| *d == r) {
                    return Err(ReshapeError::MissingSendRegion { rank: *s, dst: r });
                }
            }
        }
        Ok(())
    }

    /// The region rank `r` sends to rank `s`, as a typed error when the
    /// flow is absent — for callers that *require* the flow to exist
    /// (deposit paths), unlike [`ReshapeSpec::bytes`] whose 0-for-no-flow
    /// contract serves byte accounting over arbitrary pairs.
    pub fn region_to(&self, r: usize, s: usize) -> Result<&Box3, ReshapeError> {
        self.sends[r]
            .iter()
            .find(|(d, _)| *d == s)
            .map(|(_, b)| b)
            .ok_or(ReshapeError::MissingSendRegion { rank: r, dst: s })
    }

    /// Per-member index of rank `rank`'s send regions: `out[i]` is the
    /// region destined to `members[i]`, `None` when there is no flow.
    /// Built with a two-pointer merge (both sides sorted ascending), so one
    /// O(p + peers) pass replaces the O(peers) `find` per member that made
    /// deposit/pack loops O(peers²).
    pub fn send_region_index<'a>(
        &'a self,
        rank: usize,
        members: &[usize],
    ) -> Vec<Option<&'a Box3>> {
        Self::region_index(&self.sends[rank], members)
    }

    /// Per-member index of rank `rank`'s recv regions (see
    /// [`ReshapeSpec::send_region_index`]).
    pub fn recv_region_index<'a>(
        &'a self,
        rank: usize,
        members: &[usize],
    ) -> Vec<Option<&'a Box3>> {
        Self::region_index(&self.recvs[rank], members)
    }

    fn region_index<'a>(flows: &'a [(usize, Box3)], members: &[usize]) -> Vec<Option<&'a Box3>> {
        debug_assert!(members.windows(2).all(|w| w[0] < w[1]), "members sorted");
        let mut out = vec![None; members.len()]; // fftlint:allow(no-alloc-in-hot-path): O(group) region index, built once per reshape
        let mut f = 0;
        for (i, &m) in members.iter().enumerate() {
            while f < flows.len() && flows[f].0 < m {
                f += 1;
            }
            if f < flows.len() && flows[f].0 == m {
                out[i] = Some(&flows[f].1);
                f += 1;
            }
        }
        out
    }

    /// Bytes rank `r` sends to rank `s` (0 if no flow — callers sum this
    /// over arbitrary pairs; use [`ReshapeSpec::region_to`] when the flow
    /// must exist).
    pub fn bytes(&self, r: usize, s: usize) -> usize {
        self.sends[r]
            .iter()
            .find(|(d, _)| *d == s)
            .map(|(_, b)| b.volume() * ELEM_BYTES)
            .unwrap_or(0)
    }

    /// Total bytes rank `r` sends to *other* ranks (the MPI payload; the
    /// self block moves by device copy).
    pub fn offrank_send_bytes(&self, r: usize) -> usize {
        self.sends[r]
            .iter()
            .filter(|(d, _)| *d != r)
            .map(|(_, b)| b.volume() * ELEM_BYTES)
            .sum()
    }

    /// Total bytes rank `r` receives from other ranks.
    pub fn offrank_recv_bytes(&self, r: usize) -> usize {
        self.recvs[r]
            .iter()
            .filter(|(s, _)| *s != r)
            .map(|(_, b)| b.volume() * ELEM_BYTES)
            .sum()
    }

    /// Number of off-rank destinations of rank `r`.
    pub fn peer_count(&self, r: usize) -> usize {
        self.sends[r].iter().filter(|(d, _)| *d != r).count()
    }

    /// The largest per-pair block (bytes) within rank `r`'s group — what a
    /// padded `MPI_Alltoall` must size every block to (§IV-B: "the cost
    /// associated with padding").
    pub fn padded_block_bytes(&self, group: &[usize]) -> usize {
        let mut max = 0;
        for &r in group {
            for (_, b) in &self.sends[r] {
                max = max.max(b.volume() * ELEM_BYTES);
            }
        }
        max
    }

    /// Builds the dense per-pair byte matrix of one group (indices are
    /// positions within `group`), for the schedule walkers.
    pub fn group_byte_matrix(&self, group: &[usize]) -> Vec<Vec<usize>> {
        let pos: std::collections::BTreeMap<usize, usize> =
            group.iter().enumerate().map(|(i, &r)| (r, i)).collect(); // fftlint:allow(no-alloc-in-hot-path): position map for the dense group matrix
        let mut m = vec![vec![0usize; group.len()]; group.len()]; // fftlint:allow(no-alloc-in-hot-path): dense O(p^2) byte matrix for the schedule walkers
        for (i, &r) in group.iter().enumerate() {
            for (d, b) in &self.sends[r] {
                if let Some(&j) = pos.get(d) {
                    m[i][j] = b.volume() * ELEM_BYTES;
                }
            }
        }
        m
    }

    /// Transform-ahead chunk → complete-line map (DESIGN.md §16).
    ///
    /// When `rank` (group index `me_sub` within sorted `members`) chunks its
    /// reshape exchange into `k_eff` per-peer chunks, each axis line of the
    /// receive box `to_box` is transformable once *every* receive region
    /// touching it has deposited. The region from group index `j` lands
    /// with chunk `partition_of_step((me_sub + p − j) mod p, p, k_eff)`
    /// (the self block is chunk 0), so a line's arrival chunk is the max
    /// over its regions. Returns, per chunk, the maximal `[lo, hi)` runs of
    /// line indices that become complete with that chunk. Line indices are
    /// the batch indices the next-axis FFT kernel sees (axis 2:
    /// `i0·s1 + i1`; axis 1: `i0·s2 + i2`; axis 0: `i1·s2 + i2`); every
    /// line of `to_box` appears in exactly one chunk.
    pub fn recv_line_runs(
        &self,
        rank: usize,
        members: &[usize],
        me_sub: usize,
        k_eff: usize,
        to_box: &Box3,
        axis: usize,
    ) -> Vec<Vec<(usize, usize)>> {
        assert!(k_eff >= 1, "need at least one chunk");
        let p = members.len();
        let total = if to_box.is_empty() {
            0
        } else {
            to_box.volume() / to_box.len(axis)
        };
        let mut arrival = vec![0usize; total]; // fftlint:allow(no-alloc-in-hot-path): O(lines) arrival table, once per pipelined reshape
                                               // The two dims spanning the line grid, and the fast-dim width.
        let (da, db) = match axis {
            2 => (0, 1),
            1 => (0, 2),
            _ => (1, 2),
        };
        let width = to_box.len(db);
        for (j, region) in self.recv_region_index(rank, members).iter().enumerate() {
            let Some(r) = region else { continue };
            let chunk = if j == me_sub {
                0
            } else {
                mpisim::pattern::partition_of_step((me_sub + p - j) % p, p, k_eff)
            };
            for ia in (r.lo[da] - to_box.lo[da])..(r.hi[da] - to_box.lo[da]) {
                for ib in (r.lo[db] - to_box.lo[db])..(r.hi[db] - to_box.lo[db]) {
                    let l = ia * width + ib;
                    arrival[l] = arrival[l].max(chunk);
                }
            }
        }
        let mut runs = vec![Vec::new(); k_eff]; // fftlint:allow(no-alloc-in-hot-path): O(chunks) run lists, once per pipelined reshape
        let mut l = 0;
        while l < total {
            let c = arrival[l];
            let mut hi = l + 1;
            while hi < total && arrival[hi] == c {
                hi += 1;
            }
            runs[c].push((l, hi));
            l = hi;
        }
        runs
    }
}

/// Applies the local (self) part of a reshape: copies the overlap of the
/// rank's old and new boxes with no intermediate staging buffer.
///
/// Like `Box3::extract_into`/`deposit`, runs are coalesced: when the
/// overlap spans the full fastest axis of *both* boxes, whole `j`-planes
/// (and, if it also spans axis 1 of both, the entire overlap) collapse into
/// single bulk copies. Slab self-blocks hit the fully-merged case.
pub fn apply_self_block(old_box: &Box3, old_data: &[C64], new_box: &Box3, new_data: &mut [C64]) {
    let overlap = old_box.intersect(new_box);
    if overlap.is_empty() {
        return;
    }
    let full = |b: &Box3, d: usize| overlap.lo[d] == b.lo[d] && overlap.hi[d] == b.hi[d];
    let run = if full(old_box, 2) && full(new_box, 2) {
        if full(old_box, 1) && full(new_box, 1) {
            overlap.volume()
        } else {
            overlap.len(1) * overlap.len(2)
        }
    } else {
        overlap.len(2)
    };
    let vol = overlap.volume();
    let mut copied = 0;
    for i in overlap.lo[0]..overlap.hi[0] {
        let mut j = overlap.lo[1];
        while j < overlap.hi[1] {
            let src = old_box.local_index([i, j, overlap.lo[2]]);
            let dst = new_box.local_index([i, j, overlap.lo[2]]);
            new_data[dst..dst + run].copy_from_slice(&old_data[src..src + run]);
            copied += run;
            if copied >= vol {
                return;
            }
            j += (run / overlap.len(2)).max(1);
        }
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procgrid::Distribution;

    fn n64() -> [usize; 3] {
        [8, 8, 8]
    }

    #[test]
    fn pencil_to_pencil_groups_follow_fixed_axis() {
        // (1,2,4) -> (2,1,4): flows stay within fixed axis-2 chunks, giving
        // 4 groups of 2 ranks — the paper's per-direction MPI groups.
        let a = Distribution::new(n64(), [1, 2, 4], 8);
        let b = Distribution::new(n64(), [2, 1, 4], 8);
        let rs = ReshapeSpec::build(&a, &b);
        assert_eq!(rs.groups.len(), 4);
        for g in &rs.groups {
            assert_eq!(g.len(), 2);
        }
        assert!(!rs.is_identity());
    }

    #[test]
    fn brick_to_pencil_is_one_big_group() {
        let a = Distribution::new(n64(), [2, 2, 2], 8);
        let b = Distribution::new(n64(), [1, 2, 4], 8);
        let rs = ReshapeSpec::build(&a, &b);
        assert_eq!(rs.groups.len(), 1);
        assert_eq!(rs.groups[0].len(), 8);
    }

    #[test]
    fn identity_reshape_detected() {
        let a = Distribution::new(n64(), [2, 2, 2], 8);
        let rs = ReshapeSpec::build(&a, &a.clone());
        assert!(rs.is_identity());
        // Still has (self) flows for every rank.
        for r in 0..8 {
            assert_eq!(rs.sends[r].len(), 1);
            assert_eq!(rs.sends[r][0].0, r);
        }
    }

    #[test]
    fn flows_conserve_volume() {
        let a = Distribution::new([8, 9, 10], [2, 3, 1], 6);
        let b = Distribution::new([8, 9, 10], [1, 2, 3], 6);
        let rs = ReshapeSpec::build(&a, &b);
        // Total sent volume equals the domain volume.
        let sent: usize = rs
            .sends
            .iter()
            .flat_map(|v| v.iter().map(|(_, b)| b.volume()))
            .sum();
        assert_eq!(sent, 720);
        // Each rank receives exactly its new box volume.
        for r in 0..6 {
            let recv: usize = rs.recvs[r].iter().map(|(_, b)| b.volume()).sum();
            assert_eq!(recv, b.boxes[r].volume(), "rank {r}");
        }
    }

    #[test]
    fn recv_regions_partition_target_box() {
        let a = Distribution::new([8, 8, 8], [4, 1, 2], 8);
        let b = Distribution::new([8, 8, 8], [1, 4, 2], 8);
        let rs = ReshapeSpec::build(&a, &b);
        for r in 0..8 {
            // Pairwise disjoint.
            let regions: Vec<&Box3> = rs.recvs[r].iter().map(|(_, b)| b).collect();
            for i in 0..regions.len() {
                for j in (i + 1)..regions.len() {
                    assert!(regions[i].intersect(regions[j]).is_empty());
                }
            }
        }
    }

    #[test]
    fn bytes_accessors_agree() {
        let a = Distribution::new([8, 8, 8], [1, 2, 4], 8);
        let b = Distribution::new([8, 8, 8], [2, 1, 4], 8);
        let rs = ReshapeSpec::build(&a, &b);
        for r in 0..8 {
            let total: usize = (0..8).filter(|&s| s != r).map(|s| rs.bytes(r, s)).sum();
            assert_eq!(total, rs.offrank_send_bytes(r));
        }
        // Symmetric distributions here: sends == recvs in aggregate.
        let s: usize = (0..8).map(|r| rs.offrank_send_bytes(r)).sum();
        let v: usize = (0..8).map(|r| rs.offrank_recv_bytes(r)).sum();
        assert_eq!(s, v);
    }

    #[test]
    fn padded_block_is_group_max() {
        // Uneven domain so blocks differ.
        let a = Distribution::new([8, 9, 10], [1, 3, 2], 6);
        let b = Distribution::new([8, 9, 10], [3, 1, 2], 6);
        let rs = ReshapeSpec::build(&a, &b);
        for g in &rs.groups {
            let pad = rs.padded_block_bytes(g);
            let m = rs.group_byte_matrix(g);
            let max_in_matrix = m.iter().flatten().copied().max().unwrap();
            // The matrix excludes nothing within the group, so they agree.
            assert_eq!(pad, max_in_matrix);
            assert!(pad > 0);
        }
    }

    #[test]
    fn shrinking_reshape_routes_to_active_subset() {
        // 8 ranks, data shrinks onto the first 2.
        let a = Distribution::new([8, 8, 8], [2, 2, 2], 8);
        let b = Distribution::new([8, 8, 8], [1, 2, 1], 8); // 2 active
        let rs = ReshapeSpec::build(&a, &b);
        // Every rank sends somewhere; only ranks 0..2 receive.
        for r in 0..8 {
            assert!(!rs.sends[r].is_empty(), "rank {r} must send");
        }
        for r in 2..8 {
            assert!(rs.recvs[r].is_empty(), "inactive rank {r} must not receive");
        }
        // One group containing all flowing ranks.
        assert_eq!(rs.groups.len(), 1);
        assert_eq!(rs.groups[0].len(), 8);
    }

    #[test]
    fn reversed_matches_rebuilt_reverse() {
        for (ga, gb) in [
            ([1usize, 2, 4], [2usize, 1, 4]),
            ([2, 2, 2], [1, 2, 4]),
            ([2, 3, 1], [1, 2, 3]),
        ] {
            let a = Distribution::new([8, 9, 10], ga, 8);
            let b = Distribution::new([8, 9, 10], gb, 8);
            let fwd = ReshapeSpec::build(&a, &b);
            let derived = fwd.reversed();
            let rebuilt = ReshapeSpec::build(&b, &a);
            assert_eq!(derived.sends, rebuilt.sends);
            assert_eq!(derived.recvs, rebuilt.recvs);
            // Groups are the same components; ordering may differ, so
            // compare as sorted sets.
            let norm = |spec: &ReshapeSpec| {
                let mut gs = spec.groups.clone();
                gs.sort();
                gs
            };
            assert_eq!(norm(&derived), norm(&rebuilt));
        }
    }

    #[test]
    fn region_index_matches_naive_find() {
        let a = Distribution::new([8, 9, 10], [2, 3, 1], 6);
        let b = Distribution::new([8, 9, 10], [1, 2, 3], 6);
        let rs = ReshapeSpec::build(&a, &b);
        for g in &rs.groups {
            for &r in g {
                let sidx = rs.send_region_index(r, g);
                let ridx = rs.recv_region_index(r, g);
                for (i, &m) in g.iter().enumerate() {
                    let naive_s = rs.sends[r].iter().find(|(d, _)| *d == m).map(|(_, b)| b);
                    let naive_r = rs.recvs[r].iter().find(|(s, _)| *s == m).map(|(_, b)| b);
                    assert_eq!(sidx[i], naive_s, "send index rank {r} member {m}");
                    assert_eq!(ridx[i], naive_r, "recv index rank {r} member {m}");
                }
            }
        }
    }

    #[test]
    fn region_index_skips_non_members() {
        // Pencil groups of 2 out of 8 ranks: the index over a group must
        // not pick up flows to ranks outside it.
        let a = Distribution::new(n64(), [1, 2, 4], 8);
        let b = Distribution::new(n64(), [2, 1, 4], 8);
        let rs = ReshapeSpec::build(&a, &b);
        let g = &rs.groups[0];
        for &r in g {
            let idx = rs.send_region_index(r, g);
            assert_eq!(idx.len(), g.len());
            assert!(idx.iter().all(|o| o.is_some()), "dense within the group");
        }
    }

    #[test]
    fn validate_accepts_planner_output_and_rejects_corruption() {
        let a = Distribution::new(n64(), [2, 2, 2], 8);
        let b = Distribution::new(n64(), [1, 2, 4], 8);
        let rs = ReshapeSpec::build(&a, &b);
        assert_eq!(rs.validate(), Ok(()));

        // Drop one recv region: the matching send must be reported.
        let mut broken = rs.clone();
        let (src, _) = broken.recvs[0].remove(0);
        assert_eq!(
            broken.validate(),
            Err(ReshapeError::MissingRecvRegion { rank: 0, src })
        );

        // Drop one send region: the orphaned recv must be reported.
        let mut broken = rs.clone();
        let (dst, _) = broken.sends[1].remove(0);
        assert_eq!(
            broken.validate(),
            Err(ReshapeError::MissingSendRegion { rank: 1, dst })
        );

        // Disagreeing regions.
        let mut broken = rs.clone();
        let (d, region) = broken.sends[2][0];
        let shrunk = Box3::new(region.lo, [region.hi[0], region.hi[1], region.hi[2] - 1]);
        broken.sends[2][0] = (d, shrunk);
        assert_eq!(
            broken.validate(),
            Err(ReshapeError::RegionMismatch { rank: 2, dst: d })
        );

        // Duplicate peer.
        let mut broken = rs.clone();
        let dup = broken.sends[3][0];
        broken.sends[3].insert(0, dup);
        assert_eq!(
            broken.validate(),
            Err(ReshapeError::DuplicatePeer {
                rank: 3,
                peer: dup.0
            })
        );
    }

    #[test]
    fn region_to_reports_missing_flow() {
        let a = Distribution::new(n64(), [1, 2, 4], 8);
        let b = Distribution::new(n64(), [2, 1, 4], 8);
        let rs = ReshapeSpec::build(&a, &b);
        // Pencil groups of 2: rank 0 sends to exactly the members of its
        // own group and to nobody in the other groups.
        let peer = rs.sends[0]
            .iter()
            .map(|(d, _)| *d)
            .find(|d| *d != 0)
            .unwrap();
        let stranger = (0..8)
            .find(|s| !rs.sends[0].iter().any(|(d, _)| d == s))
            .unwrap();
        assert!(rs.region_to(0, peer).is_ok());
        assert_eq!(
            rs.region_to(0, stranger),
            Err(ReshapeError::MissingSendRegion {
                rank: 0,
                dst: stranger
            })
        );
    }

    #[test]
    fn recv_line_runs_partition_every_line_exactly_once() {
        // Brick → pencil (one group of 8) and pencil → pencil (groups of
        // 2–4): for every rank, axis, and chunk count, the run lists must
        // tile [0, lines) with disjoint, in-order runs — the transform-ahead
        // schedule relies on every next-axis line firing in exactly one
        // chunk.
        let cases = [
            ([2usize, 2, 2], [1usize, 2, 4], 0usize),
            ([1, 2, 4], [2, 1, 4], 1),
            ([2, 1, 4], [2, 4, 1], 2),
        ];
        for (ga, gb, axis) in cases {
            let a = Distribution::new([8, 9, 10], ga, 8);
            let b = Distribution::new([8, 9, 10], gb, 8);
            let rs = ReshapeSpec::build(&a, &b);
            for g in &rs.groups {
                for (me_sub, &r) in g.iter().enumerate() {
                    let to_box = b.boxes[r];
                    let lines = to_box.volume() / to_box.len(axis);
                    for k_eff in [1usize, 2, 3, 7] {
                        let runs = rs.recv_line_runs(r, g, me_sub, k_eff, &to_box, axis);
                        assert_eq!(runs.len(), k_eff);
                        let mut seen = vec![false; lines];
                        for per_chunk in &runs {
                            for &(lo, hi) in per_chunk {
                                assert!(lo < hi && hi <= lines, "run in bounds");
                                for (l, s) in seen.iter_mut().enumerate().take(hi).skip(lo) {
                                    assert!(!*s, "line {l} assigned twice");
                                    *s = true;
                                }
                            }
                        }
                        assert!(seen.iter().all(|&s| s), "every line covered");
                        if k_eff == 1 {
                            assert_eq!(runs[0], vec![(0, lines)], "k=1 is monolithic");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn apply_self_block_copies_overlap() {
        let old_box = Box3::new([0, 0, 0], [4, 4, 4]);
        let new_box = Box3::new([2, 0, 0], [6, 4, 4]);
        let old: Vec<C64> = (0..64).map(|i| C64::real(i as f64)).collect();
        let mut new = vec![C64::ZERO; 64];
        apply_self_block(&old_box, &old, &new_box, &mut new);
        // Global point (2,0,0): old index 2*16=32; new index 0.
        assert_eq!(new[0], C64::real(32.0));
        // Global point (3,1,2): old 3*16+1*4+2 = 54; new (1,1,2) = 16+4+2 = 22.
        assert_eq!(new[22], C64::real(54.0));
    }

    #[test]
    fn apply_self_block_coalescing_matches_pointwise_copy() {
        // Exercise every run-coalescing tier: fully merged (slab↔slab),
        // plane-merged (shared fastest axis), and per-row (pencil overlap
        // that spans neither box's fast axis fully).
        let cases = [
            (
                Box3::new([0, 0, 0], [4, 6, 5]),
                Box3::new([2, 0, 0], [7, 6, 5]),
            ),
            (
                Box3::new([0, 0, 0], [4, 6, 5]),
                Box3::new([0, 3, 0], [4, 9, 5]),
            ),
            (
                Box3::new([0, 0, 0], [4, 6, 5]),
                Box3::new([1, 2, 2], [5, 8, 9]),
            ),
        ];
        for (old_box, new_box) in cases {
            let old: Vec<C64> = (0..old_box.volume())
                .map(|i| C64::new(i as f64, -(i as f64)))
                .collect();
            let mut got = vec![C64::ZERO; new_box.volume()];
            apply_self_block(&old_box, &old, &new_box, &mut got);

            // Pointwise reference.
            let mut expect = vec![C64::ZERO; new_box.volume()];
            let overlap = old_box.intersect(&new_box);
            for i in overlap.lo[0]..overlap.hi[0] {
                for j in overlap.lo[1]..overlap.hi[1] {
                    for k in overlap.lo[2]..overlap.hi[2] {
                        expect[new_box.local_index([i, j, k])] =
                            old[old_box.local_index([i, j, k])];
                    }
                }
            }
            assert_eq!(got, expect, "old={old_box:?} new={new_box:?}");
        }
    }
}
