//! ASCII timeline rendering of execution traces.
//!
//! Turns per-rank [`Trace`]s into a Gantt-style chart — the visual the
//! paper's breakdown figures summarize — so plan behaviour (overlap, waits,
//! stragglers, padding blowups) can be inspected straight from a terminal:
//!
//! ```text
//! rank 0 |PPP#####++++UU~FFF~PPP#####UU.....|
//! rank 1 |PP####+++##UUU~FF~PP######UUU.....|
//!         '#' MPI  'F' FFT  'P' pack  'U' unpack  'S' self-copy  '+' overlap  '~' stall  '.' idle
//! ```
//!
//! Two kinds of empty time are distinguished: `~` marks a **stall** — a
//! gap *between* a rank's events, where the rank has started working but
//! is blocked (waiting on a peer, a link, or a dependency) — while `.`
//! marks **idle** margins before a rank's first event or after its last
//! (the rank simply isn't participating yet / any more).
//!
//! Pipelined reshapes (DESIGN.md §14) emit *overlapping* spans on one
//! rank: a chunk's MPI call is still in flight while the next chunk's
//! pack or an earlier chunk's unpack runs on the GPU — and under
//! transform-ahead (DESIGN.md §16) even the *next axis'* butterflies run
//! beneath the wire as completed lines arrive chunk by chunk. A cell
//! covered by both a kernel span and an MPI span renders as `+` rather
//! than letting one lane silently swallow the other; events may also
//! arrive in the trace out of timestamp order (chunk completions
//! interleave), which the column sweep tolerates by construction.

use simgrid::SimTime;

use crate::trace::{KernelKind, Trace, TraceEvent};

/// Glyph for each event category.
fn glyph(e: &TraceEvent) -> char {
    match e {
        TraceEvent::MpiCall { .. } => '#',
        TraceEvent::Kernel { kind, .. } => match kind {
            KernelKind::Fft1d { .. } => 'F',
            KernelKind::Pack => 'P',
            KernelKind::Unpack => 'U',
            KernelKind::SelfCopy => 'S',
            KernelKind::Pointwise => '*',
        },
    }
}

fn span(e: &TraceEvent) -> (SimTime, SimTime) {
    match e {
        TraceEvent::MpiCall { start, dur, .. } | TraceEvent::Kernel { start, dur, .. } => {
            (*start, *start + *dur)
        }
    }
}

/// Renders per-rank traces into a fixed-width timeline.
///
/// Each row is one rank; each column is a `(t_max - t_min)/width` slice of
/// simulated time. Kernel and MPI lanes are swept separately: within a
/// lane the event covering the most of a slice wins, and a slice covered
/// by *both* lanes renders as `+` (the pipelined-reshape overlap). Gaps
/// between a rank's events render as `~` (stall); time outside the rank's
/// own first/last event renders as `.` (idle).
pub fn render(traces: &[Trace], width: usize) -> String {
    assert!(width > 0, "timeline width must be positive");
    let mut t_min = SimTime(u64::MAX);
    let mut t_max = SimTime::ZERO;
    let mut have_events = false;
    for t in traces {
        for e in &t.events {
            have_events = true;
            let (s, f) = span(e);
            t_min = t_min.min(s);
            t_max = t_max.max(f);
        }
    }
    if !have_events {
        return String::from("(empty trace)\n");
    }
    // A degenerate trace (every event instantaneous at the same t) spans
    // zero time; clamp the slice width so the axis math never divides by
    // zero and the rows still render.
    let total = ((t_max - t_min).as_ns() as f64).max(1.0);
    let slice_ns = total / width as f64;

    let mut out = String::new();
    for (r, trace) in traces.iter().enumerate() {
        // This rank's own active extent decides stall (`~`, between its
        // events) vs idle (`.`, before its first / after its last event).
        let mut r_lo = SimTime(u64::MAX);
        let mut r_hi = SimTime::ZERO;
        for e in &trace.events {
            let (s, f) = span(e);
            r_lo = r_lo.min(s);
            r_hi = r_hi.max(f);
        }
        // Backgrounds (stall/idle, possibly a zero-duration mark) plus the
        // two event lanes, swept independently so concurrent kernel and
        // MPI spans — the pipelined-reshape overlap — are both visible.
        let mut base: Vec<char> = (0..width)
            .map(|c| {
                if trace.events.is_empty() {
                    '.'
                } else {
                    let mid = t_min + SimTime(((c as f64 + 0.5) * slice_ns) as u64);
                    if r_lo <= mid && mid < r_hi {
                        '~'
                    } else {
                        '.'
                    }
                }
            })
            .collect();
        let mut kern: Vec<(f64, char)> = vec![(0.0, ' '); width];
        let mut comm: Vec<(f64, char)> = vec![(0.0, ' '); width];
        for e in &trace.events {
            let (s, f) = span(e);
            let g = glyph(e);
            let s_rel = (s - t_min).as_ns() as f64;
            if f <= s {
                // Zero-duration event: mark its instant with one glyph
                // cell, without outranking any event of real extent.
                let c = ((s_rel / slice_ns).floor() as usize).min(width - 1);
                if matches!(base[c], '.' | '~') {
                    base[c] = g;
                }
                continue;
            }
            let lane = if matches!(e, TraceEvent::MpiCall { .. }) {
                &mut comm
            } else {
                &mut kern
            };
            let f_rel = (f - t_min).as_ns() as f64;
            let first = (s_rel / slice_ns).floor() as usize;
            let last = ((f_rel / slice_ns).ceil() as usize).min(width);
            for (c, slot) in lane.iter_mut().enumerate().take(last).skip(first) {
                let c_lo = c as f64 * slice_ns;
                let c_hi = c_lo + slice_ns;
                let overlap = (f_rel.min(c_hi) - s_rel.max(c_lo)).max(0.0);
                if overlap > slot.0 {
                    *slot = (overlap, g);
                }
            }
        }
        out.push_str(&format!("rank {r:>3} |"));
        for c in 0..width {
            let g = match (kern[c].0 > 0.0, comm[c].0 > 0.0) {
                (true, true) => '+',
                (true, false) => kern[c].1,
                (false, true) => comm[c].1,
                (false, false) => base[c],
            };
            out.push(g);
        }
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "          0 {:>width$}\n",
        format!("{}", t_max - t_min),
        width = width.saturating_sub(1)
    ));
    out.push_str("          '#' MPI  'F' FFT  'P' pack  'U' unpack  'S' self-copy  '*' pointwise  '+' comm+kernel overlap  '~' stall  '.' idle\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mpi(start: u64, dur: u64) -> TraceEvent {
        TraceEvent::MpiCall {
            reshape: 0,
            routine: "MPI_Alltoallv",
            start: SimTime::from_ns(start),
            dur: SimTime::from_ns(dur),
            bytes: 0,
        }
    }

    fn fft(start: u64, dur: u64) -> TraceEvent {
        TraceEvent::Kernel {
            kind: KernelKind::Fft1d {
                axis: 0,
                contiguous: true,
            },
            start: SimTime::from_ns(start),
            dur: SimTime::from_ns(dur),
        }
    }

    #[test]
    fn renders_phases_in_order() {
        let mut t = Trace::new();
        t.push(fft(0, 500));
        t.push(mpi(500, 500));
        let s = render(&[t], 10);
        let row = s.lines().next().unwrap();
        // First half FFT, second half MPI.
        assert!(row.contains("FFFFF#####"), "row was: {row}");
    }

    #[test]
    fn gaps_between_events_render_as_stalls() {
        let mut t = Trace::new();
        t.push(fft(0, 100));
        t.push(mpi(900, 100));
        let s = render(&[t], 10);
        let row = s.lines().next().unwrap();
        // The 800 ns between the rank's own events is a stall, not idle.
        assert!(row.starts_with("rank   0 |F"));
        assert!(row.ends_with("#|"));
        assert!(row.contains("~~~"), "expected stall glyphs in {row}");
        assert!(!row.contains('.'), "no idle margins in {row}");
    }

    #[test]
    fn known_gap_splits_into_stall_and_idle_margins() {
        // Rank 0: busy [0,200), stalled [200,600), busy [600,800), then done
        // — while rank 1 stretches the shared axis to 1000. With width 10
        // (100 ns per cell) rank 0's row is exactly 2×F, 4×~, 2×#, 2×'.'.
        let mut a = Trace::new();
        a.push(fft(0, 200));
        a.push(mpi(600, 200));
        let mut b = Trace::new();
        b.push(fft(0, 1000));
        let s = render(&[a, b.clone()], 10);
        let rows: Vec<&str> = s.lines().collect();
        assert!(rows[0].contains("FF~~~~##.."), "{}", rows[0]);
        assert!(rows[1].contains("FFFFFFFFFF"), "{}", rows[1]);
        // A rank with no events at all stays fully idle, never stalled.
        let s = render(&[Trace::new(), b], 10);
        let rows: Vec<&str> = s.lines().collect();
        assert!(rows[0].contains(".........."), "{}", rows[0]);
        assert!(s.contains("'~' stall"), "legend must explain the glyph");
    }

    #[test]
    fn multiple_ranks_share_the_time_axis() {
        let mut a = Trace::new();
        a.push(fft(0, 1000));
        let mut b = Trace::new();
        b.push(mpi(0, 2000));
        let s = render(&[a, b], 8);
        let rows: Vec<&str> = s.lines().collect();
        // Rank 0 is busy only for the first half of the shared axis.
        assert!(rows[0].contains("FFFF...."), "{}", rows[0]);
        assert!(rows[1].contains("########"), "{}", rows[1]);
    }

    #[test]
    fn empty_trace_is_graceful() {
        assert_eq!(render(&[Trace::new()], 20), "(empty trace)\n");
        assert_eq!(render(&[], 20), "(empty trace)\n");
    }

    #[test]
    fn single_zero_duration_event_renders_a_row() {
        // One instantaneous event used to collapse the axis to zero span
        // and be reported as "(empty trace)"; it must render as a row with
        // its glyph marked.
        let mut t = Trace::new();
        t.push(fft(5, 0));
        let s = render(&[t], 10);
        let row = s.lines().next().unwrap();
        assert!(row.starts_with("rank   0 |"), "row was: {row}");
        assert_eq!(row.matches('F').count(), 1, "row was: {row}");
    }

    #[test]
    fn all_events_at_t0_render_without_divide_by_zero() {
        let mut a = Trace::new();
        a.push(fft(0, 0));
        a.push(mpi(0, 0));
        let mut b = Trace::new();
        b.push(mpi(0, 0));
        let s = render(&[a, b], 16);
        let rows: Vec<&str> = s.lines().collect();
        assert!(rows[0].starts_with("rank   0 |"));
        assert!(rows[1].starts_with("rank   1 |"));
        // First zero-duration event at the instant wins the cell.
        assert!(rows[0].contains('F'), "{}", rows[0]);
        assert!(rows[1].contains('#'), "{}", rows[1]);
        // No NaN/inf artifacts leak into the axis label.
        assert!(!s.contains("NaN") && !s.contains("inf"), "{s}");
    }

    #[test]
    fn zero_duration_marks_do_not_outrank_real_events() {
        let mut t = Trace::new();
        t.push(mpi(0, 1000));
        t.push(fft(500, 0));
        let s = render(&[t], 4);
        let row = s.lines().next().unwrap();
        assert!(
            row.contains("####"),
            "real event must keep its cells: {row}"
        );
    }

    fn unpack(start: u64, dur: u64) -> TraceEvent {
        TraceEvent::Kernel {
            kind: KernelKind::Unpack,
            start: SimTime::from_ns(start),
            dur: SimTime::from_ns(dur),
        }
    }

    #[test]
    fn overlapping_send_and_unpack_render_the_overlap_glyph() {
        // A pipelined reshape: chunk 1's MPI call [0,1000) is still in
        // flight while chunk 0's unpack [400,800) runs. The overlapped
        // cells must show '+', with pure-MPI cells keeping '#' — neither
        // lane may swallow the other.
        let mut t = Trace::new();
        t.push(mpi(0, 1000));
        t.push(unpack(400, 400));
        let s = render(&[t], 10);
        let row = s.lines().next().unwrap();
        assert!(row.contains("####++++##"), "row was: {row}");
        assert!(s.contains("'+' comm+kernel overlap"), "legend: {s}");
    }

    #[test]
    fn transform_ahead_butterflies_under_wire_render_overlap() {
        // Transform-ahead: the next axis' Fft1d runs on lines whose chunks
        // have already landed while the tail chunks' MPI call is still in
        // flight. The butterfly-under-wire cells must render '+', and the
        // post-exchange FFT cells keep 'F'.
        let mut t = Trace::new();
        t.push(mpi(0, 600));
        t.push(fft(300, 500));
        let s = render(&[t], 10);
        let row = s.lines().next().unwrap();
        assert!(row.contains("###+++++FF"), "row was: {row}");
    }

    #[test]
    fn interleaved_chunk_events_keep_both_lanes_visible() {
        // Two chunked MPI calls with a pack and an unpack interleaved, all
        // overlapping somewhere. Every glyph class must survive the sweep.
        let mut t = Trace::new();
        t.push(mpi(0, 400));
        t.push(mpi(200, 600));
        t.push(fft(0, 100));
        t.push(unpack(700, 200));
        let s = render(&[t], 18);
        let row = s.lines().next().unwrap();
        assert!(row.contains('+'), "overlap cells collapsed: {row}");
        assert!(row.contains('#'), "MPI-only cells lost: {row}");
        assert!(row.contains('U'), "unpack-only cells lost: {row}");
    }

    #[test]
    fn out_of_order_timestamps_render_without_panic() {
        // Chunk completions land in the trace out of timestamp order; the
        // column sweep must neither panic nor depend on push order.
        let mut fwd = Trace::new();
        fwd.push(mpi(600, 200));
        fwd.push(unpack(650, 100));
        fwd.push(mpi(0, 300));
        fwd.push(fft(300, 200));
        let mut rev = Trace::new();
        rev.push(fft(300, 200));
        rev.push(mpi(0, 300));
        rev.push(unpack(650, 100));
        rev.push(mpi(600, 200));
        assert_eq!(render(&[fwd], 16), render(&[rev], 16));
    }

    #[test]
    fn zero_duration_overlap_does_not_fabricate_overlap_cells() {
        // Instantaneous events never claim a lane, so they can't turn a
        // cell into '+' on their own.
        let mut t = Trace::new();
        t.push(mpi(0, 1000));
        t.push(unpack(500, 0));
        let s = render(&[t], 10);
        let row = s.lines().next().unwrap();
        assert!(!row.contains('+'), "zero-duration made overlap: {row}");
        assert!(row.contains("##########"), "row was: {row}");
    }

    #[test]
    fn real_plan_timeline_contains_all_phases() {
        use crate::dryrun::{DryRunOpts, DryRunner};
        use crate::plan::{FftOptions, FftPlan};
        let plan = FftPlan::build([32, 32, 32], 12, FftOptions::default());
        let machine = simgrid::MachineSpec::summit();
        let mut runner = DryRunner::new(&plan, &machine, DryRunOpts::default());
        let rep = runner.run(fftkern::Direction::Forward);
        let s = render(&rep.traces, 80);
        assert_eq!(s.lines().count(), 12 + 2);
        assert!(s.contains('#'), "missing MPI spans");
        assert!(s.contains('F') || s.contains('P'), "missing kernel spans");
    }
}
