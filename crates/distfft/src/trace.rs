//! Execution traces: per-call and per-kernel event records.
//!
//! The paper's per-call figures (Figs. 2, 3, 10) and runtime breakdowns
//! (Figs. 6, 7, 12) are regenerated from these traces.

use simgrid::SimTime;
use std::collections::BTreeMap;

/// Category of a local kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KernelKind {
    /// Batched 1-D FFT pass along `axis`, contiguous or strided input.
    Fft1d {
        /// Transform axis (0..3).
        axis: usize,
        /// Whether the kernel read unit-stride data.
        contiguous: bool,
    },
    /// Packing scattered box data into send buffers.
    Pack,
    /// Unpacking receive buffers into the local array.
    Unpack,
    /// The on-rank self block copy of a reshape.
    SelfCopy,
    /// Element-wise spectral kernel (scaling, Green's function, masks).
    Pointwise,
}

impl KernelKind {
    /// Breakdown label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            KernelKind::Fft1d { .. } => "FFT",
            KernelKind::Pack => "pack",
            KernelKind::Unpack => "unpack",
            KernelKind::SelfCopy => "self-copy",
            KernelKind::Pointwise => "pointwise",
        }
    }
}

/// One recorded event on one rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// An MPI exchange call (one reshape on one backend).
    MpiCall {
        /// Reshape index within the plan.
        reshape: usize,
        /// Routine name as the paper labels it ("MPI_Alltoallv", …).
        routine: &'static str,
        /// Entry time on this rank.
        start: SimTime,
        /// Exit − entry on this rank.
        dur: SimTime,
        /// Off-rank payload this rank sent in the call.
        bytes: usize,
    },
    /// A local kernel execution.
    Kernel {
        /// Kernel category.
        kind: KernelKind,
        /// Launch time.
        start: SimTime,
        /// Modeled duration.
        dur: SimTime,
    },
}

/// An append-only per-rank event log.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events in execution order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Records an event.
    ///
    /// Both executors (functional [`crate::exec`] and analytic
    /// [`crate::dryrun`]) funnel every event through here, so this is the
    /// single instrumentation point for phase counters and span-duration
    /// histograms. Metrics never feed back into simulated time.
    pub fn push(&mut self, e: TraceEvent) {
        if fftobs::enabled() {
            match &e {
                TraceEvent::MpiCall { dur, bytes, .. } => {
                    fftobs::count("distfft.events.mpi", 1);
                    fftobs::count("distfft.bytes.mpi_sent", *bytes as u64);
                    fftobs::observe("distfft.span.mpi_ns", dur.as_ns());
                }
                TraceEvent::Kernel { kind, dur, .. } => {
                    let (cnt, hist) = match kind {
                        KernelKind::Fft1d { .. } => ("distfft.events.fft", "distfft.span.fft_ns"),
                        KernelKind::Pack => ("distfft.events.pack", "distfft.span.pack_ns"),
                        KernelKind::Unpack => ("distfft.events.unpack", "distfft.span.unpack_ns"),
                        KernelKind::SelfCopy => {
                            ("distfft.events.self_copy", "distfft.span.self_copy_ns")
                        }
                        KernelKind::Pointwise => {
                            ("distfft.events.pointwise", "distfft.span.pointwise_ns")
                        }
                    };
                    fftobs::count(cnt, 1);
                    fftobs::observe(hist, dur.as_ns());
                }
            }
        }
        self.events.push(e);
    }

    /// All MPI call durations, in call order.
    pub fn mpi_call_durations(&self) -> Vec<SimTime> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::MpiCall { dur, .. } => Some(*dur),
                _ => None,
            })
            .collect()
    }

    /// Sum of all MPI call durations (the "communication cost").
    pub fn comm_total(&self) -> SimTime {
        self.mpi_call_durations().into_iter().sum()
    }

    /// Kernel-time totals by breakdown label (the Figs. 6/7 stacked bars).
    pub fn kernel_breakdown(&self) -> BTreeMap<&'static str, SimTime> {
        let mut m: BTreeMap<&'static str, SimTime> = BTreeMap::new();
        for e in &self.events {
            if let TraceEvent::Kernel { kind, dur, .. } = e {
                *m.entry(kind.label()).or_insert(SimTime::ZERO) += *dur;
            }
        }
        m
    }

    /// Durations of the FFT kernel calls only, in call order (Fig. 10).
    pub fn fft_call_durations(&self) -> Vec<SimTime> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Kernel {
                    kind: KernelKind::Fft1d { .. },
                    dur,
                    ..
                } => Some(*dur),
                _ => None,
            })
            .collect()
    }

    /// Lowers this rank's events into export spans: local kernels on the
    /// GPU lane (`tid` [`LANE_GPU`]), MPI calls on the network lane
    /// (`tid` [`LANE_NET`]). `rank` becomes the Chrome-trace `pid`.
    pub fn to_spans(&self, rank: u32) -> Vec<fftobs::Span> {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::MpiCall {
                    routine,
                    start,
                    dur,
                    ..
                } => fftobs::Span {
                    name: routine,
                    cat: "comm",
                    pid: rank,
                    tid: LANE_NET,
                    start_ns: start.as_ns(),
                    dur_ns: dur.as_ns(),
                },
                TraceEvent::Kernel { kind, start, dur } => fftobs::Span {
                    name: kind.label(),
                    cat: "kernel",
                    pid: rank,
                    tid: LANE_GPU,
                    start_ns: start.as_ns(),
                    dur_ns: dur.as_ns(),
                },
            })
            .collect()
    }

    /// Merges per-rank traces into the per-call *maximum* duration across
    /// ranks — what a wall-clock measurement of a collective reports.
    pub fn max_mpi_calls(traces: &[Trace]) -> Vec<SimTime> {
        let calls = traces
            .iter()
            .map(|t| t.mpi_call_durations())
            .collect::<Vec<_>>();
        let ncalls = calls.iter().map(|c| c.len()).max().unwrap_or(0);
        (0..ncalls)
            .map(|i| {
                calls
                    .iter()
                    .filter_map(|c| c.get(i).copied())
                    .fold(SimTime::ZERO, SimTime::max)
            })
            .collect()
    }
}

/// Chrome-trace thread id of the GPU (local kernel) lane.
pub const LANE_GPU: u32 = 0;
/// Chrome-trace thread id of the network (MPI) lane.
pub const LANE_NET: u32 = 1;

/// The named `tid` lanes of an exported timeline.
pub const LANES: [(u32, &str); 2] = [(LANE_GPU, "gpu"), (LANE_NET, "net")];

/// Renders per-rank traces as a Chrome-trace JSON document (one `pid` per
/// rank, `gpu`/`net` lanes per rank). Load in `chrome://tracing` or
/// <https://ui.perfetto.dev>.
pub fn export_chrome_trace(traces: &[Trace]) -> String {
    let spans: Vec<fftobs::Span> = traces
        .iter()
        .enumerate()
        .flat_map(|(r, t)| t.to_spans(r as u32))
        .collect();
    fftobs::chrome_trace_json(&spans, &LANES)
}

/// Renders the per-phase summary table (calls, total/mean/max duration,
/// share of summed span time) over all ranks.
pub fn phase_summary(traces: &[Trace]) -> String {
    let spans: Vec<fftobs::Span> = traces
        .iter()
        .enumerate()
        .flat_map(|(r, t)| t.to_spans(r as u32))
        .collect();
    fftobs::span_summary(&spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(dur_ns: u64) -> TraceEvent {
        TraceEvent::MpiCall {
            reshape: 0,
            routine: "MPI_Alltoallv",
            start: SimTime::ZERO,
            dur: SimTime::from_ns(dur_ns),
            bytes: 100,
        }
    }

    fn kern(kind: KernelKind, dur_ns: u64) -> TraceEvent {
        TraceEvent::Kernel {
            kind,
            start: SimTime::ZERO,
            dur: SimTime::from_ns(dur_ns),
        }
    }

    #[test]
    fn totals_and_breakdown() {
        let mut t = Trace::new();
        t.push(call(100));
        t.push(kern(KernelKind::Pack, 10));
        t.push(call(200));
        t.push(kern(
            KernelKind::Fft1d {
                axis: 2,
                contiguous: true,
            },
            50,
        ));
        t.push(kern(KernelKind::Unpack, 15));
        assert_eq!(t.comm_total().as_ns(), 300);
        let b = t.kernel_breakdown();
        assert_eq!(b["pack"].as_ns(), 10);
        assert_eq!(b["unpack"].as_ns(), 15);
        assert_eq!(b["FFT"].as_ns(), 50);
        assert_eq!(t.fft_call_durations(), vec![SimTime::from_ns(50)]);
        assert_eq!(t.mpi_call_durations().len(), 2);
    }

    #[test]
    fn spans_use_rank_as_pid_and_resource_as_tid() {
        let mut t = Trace::new();
        t.push(kern(KernelKind::Pack, 10));
        t.push(call(100));
        let spans = t.to_spans(3);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "pack");
        assert_eq!(spans[0].pid, 3);
        assert_eq!(spans[0].tid, LANE_GPU);
        assert_eq!(spans[1].name, "MPI_Alltoallv");
        assert_eq!(spans[1].tid, LANE_NET);
        assert_eq!(spans[1].dur_ns, 100);
    }

    #[test]
    fn chrome_export_roundtrips_through_the_json_reader() {
        let mut a = Trace::new();
        a.push(kern(KernelKind::Pack, 10));
        a.push(call(100));
        let mut b = Trace::new();
        b.push(kern(
            KernelKind::Fft1d {
                axis: 0,
                contiguous: true,
            },
            50,
        ));
        let text = export_chrome_trace(&[a, b]);
        let doc = fftobs::json::parse(&text).expect("export must be valid JSON");
        let events = doc.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        let xs: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        assert_eq!(xs.len(), 3);
        let pids: std::collections::BTreeSet<i64> = xs
            .iter()
            .filter_map(|e| e.get("pid").and_then(|p| p.as_f64()))
            .map(|p| p as i64)
            .collect();
        assert_eq!(pids.into_iter().collect::<Vec<_>>(), vec![0, 1]);
        let summary = phase_summary(&{
            let mut t = Trace::new();
            t.push(kern(KernelKind::Unpack, 30));
            vec![t]
        });
        assert!(summary.contains("unpack"), "{summary}");
    }

    #[test]
    fn max_across_ranks() {
        let mut a = Trace::new();
        a.push(call(100));
        a.push(call(300));
        let mut b = Trace::new();
        b.push(call(150));
        b.push(call(250));
        let m = Trace::max_mpi_calls(&[a, b]);
        assert_eq!(m, vec![SimTime::from_ns(150), SimTime::from_ns(300)]);
    }
}
