//! Execution traces: per-call and per-kernel event records.
//!
//! The paper's per-call figures (Figs. 2, 3, 10) and runtime breakdowns
//! (Figs. 6, 7, 12) are regenerated from these traces.

use simgrid::SimTime;
use std::collections::BTreeMap;

/// Category of a local kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KernelKind {
    /// Batched 1-D FFT pass along `axis`, contiguous or strided input.
    Fft1d {
        /// Transform axis (0..3).
        axis: usize,
        /// Whether the kernel read unit-stride data.
        contiguous: bool,
    },
    /// Packing scattered box data into send buffers.
    Pack,
    /// Unpacking receive buffers into the local array.
    Unpack,
    /// The on-rank self block copy of a reshape.
    SelfCopy,
    /// Element-wise spectral kernel (scaling, Green's function, masks).
    Pointwise,
}

impl KernelKind {
    /// Breakdown label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            KernelKind::Fft1d { .. } => "FFT",
            KernelKind::Pack => "pack",
            KernelKind::Unpack => "unpack",
            KernelKind::SelfCopy => "self-copy",
            KernelKind::Pointwise => "pointwise",
        }
    }
}

/// One recorded event on one rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// An MPI exchange call (one reshape on one backend).
    MpiCall {
        /// Reshape index within the plan.
        reshape: usize,
        /// Routine name as the paper labels it ("MPI_Alltoallv", …).
        routine: &'static str,
        /// Entry time on this rank.
        start: SimTime,
        /// Exit − entry on this rank.
        dur: SimTime,
        /// Off-rank payload this rank sent in the call.
        bytes: usize,
    },
    /// A local kernel execution.
    Kernel {
        /// Kernel category.
        kind: KernelKind,
        /// Launch time.
        start: SimTime,
        /// Modeled duration.
        dur: SimTime,
    },
}

/// An append-only per-rank event log.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events in execution order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Records an event.
    pub fn push(&mut self, e: TraceEvent) {
        self.events.push(e);
    }

    /// All MPI call durations, in call order.
    pub fn mpi_call_durations(&self) -> Vec<SimTime> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::MpiCall { dur, .. } => Some(*dur),
                _ => None,
            })
            .collect()
    }

    /// Sum of all MPI call durations (the "communication cost").
    pub fn comm_total(&self) -> SimTime {
        self.mpi_call_durations().into_iter().sum()
    }

    /// Kernel-time totals by breakdown label (the Figs. 6/7 stacked bars).
    pub fn kernel_breakdown(&self) -> BTreeMap<&'static str, SimTime> {
        let mut m: BTreeMap<&'static str, SimTime> = BTreeMap::new();
        for e in &self.events {
            if let TraceEvent::Kernel { kind, dur, .. } = e {
                *m.entry(kind.label()).or_insert(SimTime::ZERO) += *dur;
            }
        }
        m
    }

    /// Durations of the FFT kernel calls only, in call order (Fig. 10).
    pub fn fft_call_durations(&self) -> Vec<SimTime> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Kernel {
                    kind: KernelKind::Fft1d { .. },
                    dur,
                    ..
                } => Some(*dur),
                _ => None,
            })
            .collect()
    }

    /// Merges per-rank traces into the per-call *maximum* duration across
    /// ranks — what a wall-clock measurement of a collective reports.
    pub fn max_mpi_calls(traces: &[Trace]) -> Vec<SimTime> {
        let calls = traces
            .iter()
            .map(|t| t.mpi_call_durations())
            .collect::<Vec<_>>();
        let ncalls = calls.iter().map(|c| c.len()).max().unwrap_or(0);
        (0..ncalls)
            .map(|i| {
                calls
                    .iter()
                    .filter_map(|c| c.get(i).copied())
                    .fold(SimTime::ZERO, SimTime::max)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(dur_ns: u64) -> TraceEvent {
        TraceEvent::MpiCall {
            reshape: 0,
            routine: "MPI_Alltoallv",
            start: SimTime::ZERO,
            dur: SimTime::from_ns(dur_ns),
            bytes: 100,
        }
    }

    fn kern(kind: KernelKind, dur_ns: u64) -> TraceEvent {
        TraceEvent::Kernel {
            kind,
            start: SimTime::ZERO,
            dur: SimTime::from_ns(dur_ns),
        }
    }

    #[test]
    fn totals_and_breakdown() {
        let mut t = Trace::new();
        t.push(call(100));
        t.push(kern(KernelKind::Pack, 10));
        t.push(call(200));
        t.push(kern(
            KernelKind::Fft1d {
                axis: 2,
                contiguous: true,
            },
            50,
        ));
        t.push(kern(KernelKind::Unpack, 15));
        assert_eq!(t.comm_total().as_ns(), 300);
        let b = t.kernel_breakdown();
        assert_eq!(b["pack"].as_ns(), 10);
        assert_eq!(b["unpack"].as_ns(), 15);
        assert_eq!(b["FFT"].as_ns(), 50);
        assert_eq!(t.fft_call_durations(), vec![SimTime::from_ns(50)]);
        assert_eq!(t.mpi_call_durations().len(), 2);
    }

    #[test]
    fn max_across_ranks() {
        let mut a = Trace::new();
        a.push(call(100));
        a.push(call(300));
        let mut b = Trace::new();
        b.push(call(150));
        b.push(call(250));
        let m = Trace::max_mpi_calls(&[a, b]);
        assert_eq!(m, vec![SimTime::from_ns(150), SimTime::from_ns(300)]);
    }
}
