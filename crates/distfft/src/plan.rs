//! FFT plan construction: the paper's Algorithm 1 as a data structure.
//!
//! A plan is a sequence of [`Distribution`]s — input grid, compute grids,
//! output grid — with a [`ReshapeSpec`] between each pair and a set of axes
//! transformed at each compute stage. Everything the paper tunes is an
//! option here:
//!
//! * decomposition (slabs / pencils / bricks), §IV-A;
//! * exchange backend (Alltoall / Alltoallv / Alltoallw / P2P), §IV-B;
//! * contiguous ("transposed") vs strided local FFTs, Figs. 6, 7, 10;
//! * grid shrinking to `l_p < n_p` ranks, Algorithm 1 line 2;
//! * batched transforms with pipeline chunking, Fig. 13.

use fftkern::kernel_model::{KernelTimeModel, LayoutKind};
use simgrid::MachineSpec;

use crate::decomp::{compute_stages, Decomp};
use crate::procgrid::{min_surface_grid, Distribution};
use crate::reshape::ReshapeSpec;

/// MPI exchange backend for the reshapes (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommBackend {
    /// Padded `MPI_Alltoall`: every block padded to the group maximum.
    AllToAll,
    /// `MPI_Alltoallv` with exact counts.
    AllToAllV,
    /// `MPI_Alltoallw` on sub-array datatypes (Algorithm 2) — no local
    /// pack/unpack at all.
    AllToAllW,
    /// Non-blocking `MPI_Isend`/`MPI_Irecv`/`MPI_Waitany`.
    P2p,
    /// Blocking `MPI_Send` + `MPI_Irecv`.
    P2pBlocking,
}

impl CommBackend {
    /// The MPI routine label used in the paper's figures.
    pub fn routine(&self) -> &'static str {
        match self {
            CommBackend::AllToAll => "MPI_Alltoall",
            CommBackend::AllToAllV => "MPI_Alltoallv",
            CommBackend::AllToAllW => "MPI_Alltoallw",
            CommBackend::P2p => "MPI_Isend/Irecv",
            CommBackend::P2pBlocking => "MPI_Send/Irecv",
        }
    }

    /// True for the two point-to-point flavors.
    pub fn is_p2p(&self) -> bool {
        matches!(self, CommBackend::P2p | CommBackend::P2pBlocking)
    }

    /// True when the backend needs caller-side pack/unpack kernels
    /// (`Alltoallw` handles datatypes inside MPI — the ~10 % the paper says
    /// Algorithm 2 saves).
    pub fn needs_pack(&self) -> bool {
        !matches!(self, CommBackend::AllToAllW)
    }
}

/// Shape of the user-facing input/output distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoLayout {
    /// Brick-shaped grids from minimum-surface splitting — "the type of
    /// input from real-world simulations" (Table III blue grids). Adds the
    /// brick→pencil and pencil→brick reshapes.
    Brick,
    /// Input/output match the first/last compute grids (pencil- or
    /// slab-shaped I/O): no boundary reshapes.
    Matching,
}

/// Everything tunable about a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FftOptions {
    /// Decomposition (paper Fig. 1).
    pub decomp: Decomp,
    /// Exchange backend for every reshape.
    pub backend: CommBackend,
    /// Input/output grid shape.
    pub io: IoLayout,
    /// Contiguous ("transposed") local FFTs — pack into stride-1 layout and
    /// pay more unpack, vs strided FFT kernels straight off the wire.
    pub contiguous_fft: bool,
    /// Grid shrinking: remap onto the first `l_p` ranks for the compute
    /// (Algorithm 1 line 2).
    pub shrink_to: Option<usize>,
    /// Independent transforms per execution (batched 3-D FFT).
    pub batch: usize,
    /// Pipeline chunks the batch is split into for communication/compute
    /// overlap (Fig. 13). Clamped to `batch`.
    pub pipeline_chunks: usize,
    /// Per-peer chunks each reshape exchange is split into so packing,
    /// sends, unpacking, and the *next axis transform* overlap (pipelined
    /// reshapes + transform-ahead; DESIGN.md §14/§16). `1` = the monolithic
    /// pack → exchange → unpack path. `0` = model-driven auto-selection
    /// (argmin of the extended pipeline model; DESIGN.md §16). Clamped per
    /// group to `peers` (= group size − 1); groups of 2 never chunk.
    /// Overridable at runtime via `FFT_RESHAPE_CHUNKS` (a positive integer
    /// or `auto`). All four backends honor it: padded `AllToAll` chunks its
    /// uniform blocks and `AllToAllW` chunks sub-array datatype delivery
    /// (both on the posted-scatter schedule), alongside the `AllToAllV` and
    /// point-to-point paths from DESIGN.md §14.
    pub reshape_chunks: usize,
}

impl Default for FftOptions {
    fn default() -> Self {
        FftOptions {
            decomp: Decomp::Pencils,
            backend: CommBackend::AllToAllV,
            io: IoLayout::Brick,
            contiguous_fft: false,
            shrink_to: None,
            batch: 1,
            pipeline_chunks: 4,
            reshape_chunks: 1,
        }
    }
}

/// Failure-injection lookup: the compute slowdown factor of `rank` in a
/// `(rank, factor)` list (1.0 when absent). Applied to every GPU kernel
/// duration of that rank by both executors; the network is unaffected.
pub fn slowdown_factor(slowdowns: &[(usize, f64)], rank: usize) -> f64 {
    slowdowns
        .iter()
        .find(|(r, _)| *r == rank)
        .map(|(_, f)| *f)
        .unwrap_or(1.0)
}

/// Scales a kernel duration by a rank's slowdown factor.
pub fn slowed_ns(slowdowns: &[(usize, f64)], rank: usize, ns: u64) -> u64 {
    let f = slowdown_factor(slowdowns, rank);
    if f == 1.0 {
        ns
    } else {
        (ns as f64 * f).round() as u64
    }
}

/// Extra cost factor of a "transposing" unpack (contiguous-FFT mode deposits
/// received blocks in transposed order so the next FFT reads stride-1).
pub const TRANSPOSED_UNPACK_NUM: u64 = 23;
/// Denominator of the transposed-unpack factor (23/20 = 1.15×).
pub const TRANSPOSED_UNPACK_DEN: u64 = 20;

/// One step of plan execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Apply reshape `idx` (index into [`FftPlan::reshapes`]), moving from
    /// distribution `idx` to `idx + 1`.
    Reshape(usize),
    /// Batched 1-D FFTs along `axis` while resident in distribution
    /// `dist` (index into [`FftPlan::dists`]).
    LocalFft {
        /// Distribution the data currently lives in.
        dist: usize,
        /// Axis to transform.
        axis: usize,
    },
}

/// A fully-built distributed FFT plan.
#[derive(Debug, Clone)]
pub struct FftPlan {
    /// Global transform extents.
    pub n: [usize; 3],
    /// World size (1 rank per GPU).
    pub nranks: usize,
    /// Ranks actually computing (= `nranks` unless shrunk).
    pub active: usize,
    /// Plan options.
    pub opts: FftOptions,
    /// Distribution sequence: input, compute stages, output.
    pub dists: Vec<Distribution>,
    /// Reshape `i` maps `dists[i]` → `dists[i+1]`.
    pub reshapes: Vec<ReshapeSpec>,
    /// Reverse reshapes (`dists[i+1]` → `dists[i]`) for the inverse
    /// transform.
    pub reshapes_rev: Vec<ReshapeSpec>,
    /// Forward execution steps; the inverse runs them mirrored.
    pub steps: Vec<Step>,
}

impl std::fmt::Display for FftPlan {
    /// heFFTe-style plan summary: the distribution sequence with the axes
    /// transformed at each stage and the exchange backend.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "FFT plan: {}x{}x{} c2c on {} ranks ({} active), {} / {}",
            self.n[0],
            self.n[1],
            self.n[2],
            self.nranks,
            self.active,
            self.opts.decomp.name(),
            self.opts.backend.routine()
        )?;
        for (i, d) in self.dists.iter().enumerate() {
            let grid = if d.is_regular() {
                format!("({}, {}, {})", d.grid[0], d.grid[1], d.grid[2])
            } else {
                "(irregular)".to_string()
            };
            let axes: Vec<String> = self
                .steps
                .iter()
                .filter_map(|s| match s {
                    Step::LocalFft { dist, axis } if *dist == i => Some(axis.to_string()),
                    _ => None,
                })
                .collect();
            let role = if axes.is_empty() {
                "I/O".to_string()
            } else {
                format!("FFT axis {}", axes.join(", "))
            };
            writeln!(f, "  stage {i}: grid {grid:<14} {role}")?;
            if i + 1 < self.dists.len() {
                let label = if self.reshapes[i].is_identity() {
                    "identity (skipped)"
                } else {
                    self.opts.backend.routine()
                };
                writeln!(f, "    reshape {i}: {label}")?;
            }
        }
        Ok(())
    }
}

/// Why a plan could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A transform extent is zero.
    DegenerateTransform([usize; 3]),
    /// `nranks == 0`.
    NoRanks,
    /// `batch == 0`.
    EmptyBatch,
    /// `shrink_to` outside `1..=nranks`.
    BadShrink {
        /// The requested target.
        requested: usize,
        /// The world size.
        nranks: usize,
    },
    /// Slab decomposition past the paper's `N₂`-process limit.
    SlabLimit {
        /// Active ranks requested.
        active: usize,
        /// Maximum supported by the domain.
        limit: usize,
    },
    /// The Alltoallw backend supports `batch == 1` only.
    AlltoallwBatched,
    /// The r2c pipeline supports `batch == 1` only.
    R2cBatched {
        /// The rejected batch size.
        batch: usize,
    },
    /// A custom I/O distribution has the wrong rank count.
    IoRankMismatch {
        /// Ranks in the supplied distribution.
        got: usize,
        /// World size expected.
        expected: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::DegenerateTransform(n) => write!(f, "degenerate transform {n:?}"),
            PlanError::NoRanks => write!(f, "need at least one rank"),
            PlanError::EmptyBatch => write!(f, "batch must be >= 1"),
            PlanError::BadShrink { requested, nranks } => {
                write!(f, "shrink_to {requested} out of 1..={nranks}")
            }
            PlanError::SlabLimit { active, limit } => write!(
                f,
                "slab decomposition supports at most {limit} ranks, got {active}"
            ),
            PlanError::AlltoallwBatched => {
                write!(f, "the Alltoallw backend supports batch == 1 only")
            }
            PlanError::R2cBatched { batch } => {
                write!(
                    f,
                    "the r2c pipeline supports batch == 1 only, got batch {batch}"
                )
            }
            PlanError::IoRankMismatch { got, expected } => {
                write!(
                    f,
                    "custom I/O distribution has {got} ranks, expected {expected}"
                )
            }
        }
    }
}

impl std::error::Error for PlanError {}

impl FftPlan {
    /// Builds a plan for an `n[0] × n[1] × n[2]` complex-to-complex
    /// transform over `nranks` ranks. Panics on invalid options; see
    /// [`FftPlan::try_build`] for the fallible variant.
    pub fn build(n: [usize; 3], nranks: usize, opts: FftOptions) -> FftPlan {
        FftPlan::try_build(n, nranks, opts).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible plan construction.
    pub fn try_build(n: [usize; 3], nranks: usize, opts: FftOptions) -> Result<FftPlan, PlanError> {
        FftPlan::try_build_impl(n, nranks, opts, None, None)
    }

    /// Builds a plan whose input and output layouts are **arbitrary
    /// user-supplied distributions** (one box per rank, validated to
    /// partition the domain) — heFFTe/fftMPI/SWFFT-style general I/O grids.
    /// `opts.io` is ignored.
    pub fn build_with_io(
        n: [usize; 3],
        nranks: usize,
        opts: FftOptions,
        input: Distribution,
        output: Distribution,
    ) -> FftPlan {
        FftPlan::try_build_impl(n, nranks, opts, Some(input), Some(output))
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_build_impl(
        n: [usize; 3],
        nranks: usize,
        opts: FftOptions,
        io_in: Option<Distribution>,
        io_out: Option<Distribution>,
    ) -> Result<FftPlan, PlanError> {
        if n.contains(&0) {
            return Err(PlanError::DegenerateTransform(n));
        }
        if nranks == 0 {
            return Err(PlanError::NoRanks);
        }
        if opts.batch == 0 {
            return Err(PlanError::EmptyBatch);
        }
        if opts.backend == CommBackend::AllToAllW && opts.batch > 1 {
            return Err(PlanError::AlltoallwBatched);
        }
        let active = match opts.shrink_to {
            Some(l) => {
                if l == 0 || l > nranks {
                    return Err(PlanError::BadShrink {
                        requested: l,
                        nranks,
                    });
                }
                l
            }
            None => nranks,
        };
        if opts.decomp == Decomp::Slabs && active > 1 {
            let limit = n[0].min(n[1]);
            if active > limit {
                return Err(PlanError::SlabLimit { active, limit });
            }
        }
        for d in io_in.iter().chain(io_out.iter()) {
            if d.boxes.len() != nranks {
                return Err(PlanError::IoRankMismatch {
                    got: d.boxes.len(),
                    expected: nranks,
                });
            }
        }

        let stages = compute_stages(opts.decomp, active, n);

        // Distribution sequence.
        let mut dists: Vec<Distribution> = Vec::new();
        let mut stage_axes: Vec<Vec<usize>> = Vec::new();
        let custom_io = io_in.is_some() || io_out.is_some();
        let io_brick =
            !custom_io && (matches!(opts.io, IoLayout::Brick) || opts.decomp == Decomp::Bricks);
        if let Some(input) = io_in {
            dists.push(input);
            stage_axes.push(Vec::new());
        } else if io_brick {
            let brick = min_surface_grid(nranks, n);
            dists.push(Distribution::new(n, brick, nranks));
            stage_axes.push(Vec::new());
        }
        for st in &stages {
            let d = Distribution::new(n, st.grid, nranks);
            // Merge with the previous distribution when identical (happens
            // when the input grid coincides with a compute grid).
            if let Some(prev) = dists.last() {
                if prev.boxes == d.boxes {
                    stage_axes
                        .last_mut()
                        // fftlint:allow(no-panic-in-lib): a stage was pushed before any merge
                        .expect("non-empty")
                        .extend(st.axes.clone());
                    continue;
                }
            }
            dists.push(d);
            stage_axes.push(st.axes.clone());
        }
        if let Some(output) = io_out {
            if dists.last().map(|d| &d.boxes) != Some(&output.boxes) {
                dists.push(output);
                stage_axes.push(Vec::new());
            }
        } else if io_brick {
            let brick = min_surface_grid(nranks, n);
            if dists.last().map(|d| d.grid) != Some(brick) {
                dists.push(Distribution::new(n, brick, nranks));
                stage_axes.push(Vec::new());
            }
        }

        // Reshapes between consecutive distributions. Each window is planned
        // once: the reverse spec is derived from the forward one (the flow
        // graph is symmetric), and a window whose distribution pair already
        // occurred reuses the earlier plan instead of re-running the O(Π·peers)
        // intersection sweep.
        let mut reshapes: Vec<ReshapeSpec> = Vec::with_capacity(dists.len().saturating_sub(1));
        let mut reshapes_rev: Vec<ReshapeSpec> = Vec::with_capacity(dists.len().saturating_sub(1));
        for (i, w) in dists.windows(2).enumerate() {
            let prior = dists
                .windows(2)
                .take(i)
                .position(|p| p[0] == w[0] && p[1] == w[1]);
            let fwd = match prior {
                Some(j) => {
                    fftobs::count("distfft.reshape_memo.hit", 1);
                    reshapes[j].clone()
                }
                None => {
                    fftobs::count("distfft.reshape_memo.miss", 1);
                    ReshapeSpec::build(&w[0], &w[1])
                }
            };
            reshapes_rev.push(fwd.reversed());
            reshapes.push(fwd);
        }

        // Forward step list: arrive in dist i ⇒ transform its axes.
        let mut steps = Vec::new();
        for (i, axes) in stage_axes.iter().enumerate() {
            if i > 0 {
                steps.push(Step::Reshape(i - 1));
            }
            for &axis in axes {
                steps.push(Step::LocalFft { dist: i, axis });
            }
        }

        Ok(FftPlan {
            n,
            nranks,
            active,
            opts,
            dists,
            reshapes,
            reshapes_rev,
            steps,
        })
    }

    /// Total elements of one transform.
    pub fn total_elems(&self) -> usize {
        self.n.iter().product()
    }

    /// Number of communication phases per (non-batched) transform — 2 for
    /// pencils with matching I/O, 4 with brick I/O, 1 for slabs, etc.
    pub fn exchange_count(&self) -> usize {
        self.reshapes.iter().filter(|r| !r.is_identity()).count()
    }

    /// The step sequence for a given direction: forward as stored, inverse
    /// mirrored (reshapes reversed, stages in opposite order).
    pub fn steps_for(&self, dir: fftkern::Direction) -> Vec<Step> {
        match dir {
            fftkern::Direction::Forward => self.steps.clone(),
            fftkern::Direction::Inverse => self.steps.iter().rev().cloned().collect(),
        }
    }

    /// Effective pipeline chunk count (≤ batch).
    pub fn chunks(&self) -> usize {
        self.opts.pipeline_chunks.clamp(1, self.opts.batch)
    }

    /// Batch items in pipeline chunk `c` (balanced split).
    pub fn chunk_items(&self, c: usize) -> usize {
        let (lo, hi) = crate::boxes::Box3::chunk(self.opts.batch, self.chunks(), c);
        hi - lo
    }

    /// Layout the local FFT kernels see along `axis`.
    pub fn fft_layout(&self, axis: usize) -> LayoutKind {
        if self.opts.contiguous_fft || axis == 2 {
            LayoutKind::Contiguous
        } else {
            LayoutKind::Strided
        }
    }

    /// Modeled duration (ns) of the local FFT pass along `axis` for `rank`
    /// in distribution `dist`, covering `items` batch items. `first_call`
    /// charges the strided plan-setup spike (Fig. 10).
    pub fn local_fft_ns(
        &self,
        km: &KernelTimeModel,
        dist: usize,
        axis: usize,
        rank: usize,
        items: usize,
        first_call: bool,
    ) -> u64 {
        let b = self.dists[dist].rank_box(rank);
        if b.is_empty() {
            return 0;
        }
        debug_assert_eq!(
            b.len(axis),
            self.n[axis],
            "axis {axis} not local in distribution {dist}"
        );
        let rows = (b.volume() / b.len(axis)) * items;
        let layout = self.fft_layout(axis);
        km.batched_fft_1d_ns(
            b.len(axis),
            rows,
            layout,
            first_call && layout == LayoutKind::Strided,
        )
    }

    /// Modeled duration (ns) of a *partial* local FFT pass along `axis`:
    /// `lines` axis lines (per batch item) instead of the rank's full box.
    /// Used by the transform-ahead schedule, which runs the next-axis
    /// butterflies per reshape chunk as its lines complete (DESIGN.md §16).
    /// Returns 0 when `lines == 0` so empty chunks price (and emit) nothing.
    #[allow(clippy::too_many_arguments)]
    pub fn local_fft_lines_ns(
        &self,
        km: &KernelTimeModel,
        dist: usize,
        axis: usize,
        rank: usize,
        items: usize,
        lines: usize,
        first_call: bool,
    ) -> u64 {
        if lines == 0 {
            return 0;
        }
        let b = self.dists[dist].rank_box(rank);
        if b.is_empty() {
            return 0;
        }
        debug_assert_eq!(
            b.len(axis),
            self.n[axis],
            "axis {axis} not local in distribution {dist}"
        );
        let layout = self.fft_layout(axis);
        km.batched_fft_1d_ns(
            b.len(axis),
            lines * items,
            layout,
            first_call && layout == LayoutKind::Strided,
        )
    }

    /// Per-rank local kernel bytes of reshape `ri` in direction-resolved
    /// spec `spec`: `(pack_bytes, unpack_bytes, self_bytes)` per batch item.
    ///
    /// * `AllToAllW` packs nothing (datatypes handled inside MPI).
    /// * Padded `AllToAll` packs the full padded send matrix row and unpacks
    ///   from padded receive blocks.
    /// * P2P moves the self block by device copy outside MPI.
    pub fn reshape_local_bytes(&self, spec: &ReshapeSpec, rank: usize) -> (usize, usize, usize) {
        match self.opts.backend {
            CommBackend::AllToAllW => (0, 0, 0),
            CommBackend::AllToAll => {
                let Some(gi) = spec.group_of[rank] else {
                    return (0, 0, 0);
                };
                let group = &spec.groups[gi];
                let pad = spec.padded_block_bytes(group);
                let total = pad * group.len();
                // Unpadding on receive only touches the real bytes plus one
                // pass over the padding.
                let real_recv: usize = spec.recvs[rank]
                    .iter()
                    .map(|(_, b)| b.volume() * crate::reshape::ELEM_BYTES)
                    .sum();
                (total, real_recv.max(total / 2), 0)
            }
            CommBackend::AllToAllV => {
                let send: usize = spec.sends[rank]
                    .iter()
                    .map(|(_, b)| b.volume() * crate::reshape::ELEM_BYTES)
                    .sum();
                let recv: usize = spec.recvs[rank]
                    .iter()
                    .map(|(_, b)| b.volume() * crate::reshape::ELEM_BYTES)
                    .sum();
                (send, recv, 0)
            }
            CommBackend::P2p | CommBackend::P2pBlocking => {
                let send = spec.offrank_send_bytes(rank);
                let recv = spec.offrank_recv_bytes(rank);
                let self_bytes = spec.bytes(rank, rank);
                (send, recv, self_bytes)
            }
        }
    }

    /// Unpack kernel duration (ns) for `bytes`, honouring the transposed
    /// unpack factor in contiguous-FFT mode.
    pub fn unpack_ns(&self, km: &KernelTimeModel, bytes: usize) -> u64 {
        let base = km.unpack_ns(bytes);
        if self.opts.contiguous_fft {
            base * TRANSPOSED_UNPACK_NUM / TRANSPOSED_UNPACK_DEN
        } else {
            base
        }
    }

    /// Pack kernel duration (ns).
    pub fn pack_ns(&self, km: &KernelTimeModel, bytes: usize) -> u64 {
        km.pack_ns(bytes)
    }

    /// On-rank self-copy duration (ns) of the P2P backends.
    pub fn selfcopy_ns(&self, spec_machine: &MachineSpec, bytes: usize) -> u64 {
        if bytes == 0 {
            return 0;
        }
        (bytes as f64 / (spec_machine.gpu.mem_bw_gbs / 2.0)).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fftkern::Direction;

    fn opts() -> FftOptions {
        FftOptions::default()
    }

    #[test]
    fn pencil_brick_plan_has_four_exchanges() {
        let p = FftPlan::build([64, 64, 64], 24, opts());
        assert_eq!(p.exchange_count(), 4);
        assert_eq!(p.dists.len(), 5);
        // 4 reshapes + 3 FFT stages = 7 steps.
        assert_eq!(p.steps.len(), 7);
    }

    #[test]
    fn pencil_matching_io_has_two_exchanges() {
        let p = FftPlan::build(
            [64, 64, 64],
            24,
            FftOptions {
                io: IoLayout::Matching,
                ..opts()
            },
        );
        assert_eq!(p.exchange_count(), 2);
        assert_eq!(p.dists.len(), 3);
    }

    #[test]
    fn slab_matching_io_has_one_exchange() {
        let p = FftPlan::build(
            [64, 64, 64],
            8,
            FftOptions {
                decomp: Decomp::Slabs,
                io: IoLayout::Matching,
                ..opts()
            },
        );
        assert_eq!(p.exchange_count(), 1);
    }

    #[test]
    fn bricks_decomp_forces_brick_io() {
        let p = FftPlan::build(
            [64, 64, 64],
            24,
            FftOptions {
                decomp: Decomp::Bricks,
                io: IoLayout::Matching, // overridden by Bricks
                ..opts()
            },
        );
        assert_eq!(p.exchange_count(), 4);
    }

    #[test]
    fn every_axis_transformed_exactly_once() {
        for decomp in [Decomp::Slabs, Decomp::Pencils, Decomp::Bricks] {
            let nranks = if decomp == Decomp::Slabs { 8 } else { 24 };
            let p = FftPlan::build([32, 32, 32], nranks, FftOptions { decomp, ..opts() });
            let mut axes: Vec<usize> = p
                .steps
                .iter()
                .filter_map(|s| match s {
                    Step::LocalFft { axis, .. } => Some(*axis),
                    _ => None,
                })
                .collect();
            axes.sort_unstable();
            assert_eq!(axes, vec![0, 1, 2], "{decomp:?}");
        }
    }

    #[test]
    fn fft_steps_only_on_local_axes() {
        let p = FftPlan::build([32, 32, 32], 12, opts());
        for s in &p.steps {
            if let Step::LocalFft { dist, axis } = s {
                assert_eq!(
                    p.dists[*dist].grid[*axis], 1,
                    "axis {axis} split in dist {dist}"
                );
            }
        }
    }

    #[test]
    fn inverse_steps_are_mirrored() {
        let p = FftPlan::build([32, 32, 32], 12, opts());
        let fwd = p.steps_for(Direction::Forward);
        let inv = p.steps_for(Direction::Inverse);
        assert_eq!(fwd.len(), inv.len());
        assert_eq!(fwd.first(), inv.last());
    }

    #[test]
    fn shrinking_reduces_active_ranks() {
        let p = FftPlan::build(
            [32, 32, 32],
            24,
            FftOptions {
                shrink_to: Some(6),
                ..opts()
            },
        );
        assert_eq!(p.active, 6);
        // The compute distributions hold data only on 6 ranks.
        for (i, d) in p.dists.iter().enumerate() {
            if i != 0 && i != p.dists.len() - 1 {
                assert_eq!(d.active_ranks(), 6, "dist {i}");
            } else {
                assert_eq!(d.active_ranks(), 24, "io dist {i}");
            }
        }
    }

    #[test]
    fn chunking_covers_batch() {
        let p = FftPlan::build(
            [16, 16, 16],
            4,
            FftOptions {
                batch: 10,
                pipeline_chunks: 4,
                ..opts()
            },
        );
        assert_eq!(p.chunks(), 4);
        let total: usize = (0..4).map(|c| p.chunk_items(c)).sum();
        assert_eq!(total, 10);
        // batch=1 degenerates to one chunk regardless of the setting.
        let single = FftPlan::build([16, 16, 16], 4, FftOptions { batch: 1, ..opts() });
        assert_eq!(single.chunks(), 1);
    }

    #[test]
    fn layout_per_axis_and_mode() {
        let strided = FftPlan::build([16, 16, 16], 4, opts());
        assert_eq!(strided.fft_layout(2), LayoutKind::Contiguous);
        assert_eq!(strided.fft_layout(0), LayoutKind::Strided);
        let contig = FftPlan::build(
            [16, 16, 16],
            4,
            FftOptions {
                contiguous_fft: true,
                ..opts()
            },
        );
        assert_eq!(contig.fft_layout(0), LayoutKind::Contiguous);
    }

    #[test]
    fn alltoallw_needs_no_pack() {
        let p = FftPlan::build(
            [16, 16, 16],
            4,
            FftOptions {
                backend: CommBackend::AllToAllW,
                ..opts()
            },
        );
        let (pack, unpack, selfb) = p.reshape_local_bytes(&p.reshapes[0], 0);
        assert_eq!((pack, unpack, selfb), (0, 0, 0));
        assert!(!CommBackend::AllToAllW.needs_pack());
    }

    #[test]
    fn padded_alltoall_packs_more_than_alltoallv() {
        // 12 ranks: brick grid (2,2,3) differs from pencil grid (1,3,4), so
        // the brick->pencil blocks are uneven and padding inflates them.
        let mk = |backend| FftPlan::build([24, 24, 24], 12, FftOptions { backend, ..opts() });
        let pv = mk(CommBackend::AllToAllV);
        let pa = mk(CommBackend::AllToAll);
        // Brick->pencil reshape (index 0) has uneven blocks.
        let (pack_v, _, _) = pv.reshape_local_bytes(&pv.reshapes[0], 0);
        let (pack_a, _, _) = pa.reshape_local_bytes(&pa.reshapes[0], 0);
        assert!(
            pack_a > pack_v,
            "padded pack {pack_a} should exceed exact pack {pack_v}"
        );
    }

    #[test]
    fn display_summarizes_the_stage_table() {
        let p = FftPlan::build([64, 64, 64], 24, opts());
        let s = p.to_string();
        assert!(s.contains("64x64x64 c2c on 24 ranks"));
        assert!(s.contains("pencils / MPI_Alltoallv"));
        assert!(s.contains("(1, 4, 6)"));
        assert!(s.contains("FFT axis 0"));
        assert!(s.contains("reshape 3"));
        // One stage line per distribution.
        assert_eq!(s.matches("stage ").count(), p.dists.len());
    }

    #[test]
    fn routine_names_match_paper_labels() {
        assert_eq!(CommBackend::AllToAll.routine(), "MPI_Alltoall");
        assert_eq!(CommBackend::AllToAllV.routine(), "MPI_Alltoallv");
        assert_eq!(CommBackend::AllToAllW.routine(), "MPI_Alltoallw");
        assert!(CommBackend::P2p.routine().contains("Isend"));
        assert!(CommBackend::P2pBlocking.routine().contains("MPI_Send"));
    }
}
