//! Index-box algebra: the bookkeeping layer of every reshape.
//!
//! A [`Box3`] is a half-open axis-aligned block `[lo, hi)` of the global
//! `n0 × n1 × n2` index space. Each rank owns one box per distribution;
//! reshapes move the intersection of (my old box, your new box) between
//! ranks.

use fftkern::C64;

/// A half-open 3-D index box `[lo[d], hi[d])`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Box3 {
    /// Inclusive lower corner.
    pub lo: [usize; 3],
    /// Exclusive upper corner.
    pub hi: [usize; 3],
}

impl Box3 {
    /// An empty box.
    pub const EMPTY: Box3 = Box3 {
        lo: [0; 3],
        hi: [0; 3],
    };

    /// Creates a box, normalizing inverted extents to empty.
    pub fn new(lo: [usize; 3], hi: [usize; 3]) -> Box3 {
        let b = Box3 { lo, hi };
        if b.is_empty() {
            Box3::EMPTY
        } else {
            b
        }
    }

    /// The whole `[0, n)` domain.
    pub fn whole(n: [usize; 3]) -> Box3 {
        Box3::new([0; 3], n)
    }

    /// Extent along dimension `d`.
    pub fn len(&self, d: usize) -> usize {
        self.hi[d].saturating_sub(self.lo[d])
    }

    /// Extents of all three dimensions.
    pub fn shape(&self) -> [usize; 3] {
        [self.len(0), self.len(1), self.len(2)]
    }

    /// Number of elements.
    pub fn volume(&self) -> usize {
        self.len(0) * self.len(1) * self.len(2)
    }

    /// True when the box holds no elements.
    pub fn is_empty(&self) -> bool {
        (0..3).any(|d| self.hi[d] <= self.lo[d])
    }

    /// Surface area (sum of face areas) — the quantity minimum-surface
    /// splitting minimizes for load-balanced brick grids.
    pub fn surface(&self) -> usize {
        let s = self.shape();
        2 * (s[0] * s[1] + s[1] * s[2] + s[0] * s[2])
    }

    /// Intersection of two boxes (empty if disjoint).
    pub fn intersect(&self, other: &Box3) -> Box3 {
        let mut lo = [0; 3];
        let mut hi = [0; 3];
        for d in 0..3 {
            lo[d] = self.lo[d].max(other.lo[d]);
            hi[d] = self.hi[d].min(other.hi[d]);
            if hi[d] <= lo[d] {
                return Box3::EMPTY;
            }
        }
        Box3 { lo, hi }
    }

    /// True when `p` lies inside the box.
    pub fn contains(&self, p: [usize; 3]) -> bool {
        (0..3).all(|d| self.lo[d] <= p[d] && p[d] < self.hi[d])
    }

    /// Row-major flat index of global point `p` within this box's local
    /// storage.
    #[inline]
    pub fn local_index(&self, p: [usize; 3]) -> usize {
        debug_assert!(self.contains(p), "point {p:?} outside box {self:?}");
        ((p[0] - self.lo[0]) * self.len(1) + (p[1] - self.lo[1])) * self.len(2)
            + (p[2] - self.lo[2])
    }

    /// Copies the elements of `region` (in global coordinates, a sub-box of
    /// both `self` and `dst_box`) from this box's local storage into a fresh
    /// contiguous buffer (row-major over `region`).
    pub fn extract(&self, data: &[C64], region: &Box3) -> Vec<C64> {
        let mut out = Vec::with_capacity(region.volume());
        self.extract_into(data, region, &mut out);
        out
    }

    /// Length (in elements) of one contiguous run when walking `region`
    /// inside this box's row-major storage, run-coalesced: a region that
    /// spans the full fastest axis merges whole `j`-planes (and, if it also
    /// spans axis 1, the entire region) into single `memcpy`-sized runs.
    /// Slab reshapes hit the fully-merged case, pencil reshapes the
    /// plane-merged one — turning the per-row copy loop into a handful of
    /// bulk copies.
    fn run_len(&self, region: &Box3) -> usize {
        let full2 = region.lo[2] == self.lo[2] && region.hi[2] == self.hi[2];
        let full1 = region.lo[1] == self.lo[1] && region.hi[1] == self.hi[1];
        if full2 && full1 {
            region.volume()
        } else if full2 {
            region.len(1) * region.len(2)
        } else {
            region.len(2)
        }
    }

    /// Appends the elements of `region` (row-major) onto `out` without
    /// allocating a fresh buffer — the zero-churn form of [`extract`] used
    /// by the pooled send-packing path. Runs are coalesced per
    /// [`run_len`](Box3::run_len).
    ///
    /// [`extract`]: Box3::extract
    pub fn extract_into(&self, data: &[C64], region: &Box3, out: &mut Vec<C64>) {
        debug_assert_eq!(data.len(), self.volume());
        let vol = region.volume();
        if vol == 0 {
            return;
        }
        out.reserve(vol);
        let run = self.run_len(region);
        let mut copied = 0;
        for i in region.lo[0]..region.hi[0] {
            let mut j = region.lo[1];
            while j < region.hi[1] {
                let base = self.local_index([i, j, region.lo[2]]);
                out.extend_from_slice(&data[base..base + run]);
                copied += run;
                if copied >= vol {
                    return;
                }
                j += (run / region.len(2)).max(1);
            }
        }
    }

    /// Deposits a contiguous `block` (as produced by [`extract`]) into this
    /// box's local storage at `region`. Runs are coalesced per
    /// [`run_len`](Box3::run_len).
    ///
    /// [`extract`]: Box3::extract
    pub fn deposit(&self, data: &mut [C64], region: &Box3, block: &[C64]) {
        debug_assert_eq!(data.len(), self.volume());
        debug_assert_eq!(block.len(), region.volume());
        if block.is_empty() {
            return;
        }
        let run = self.run_len(region);
        let mut src = 0;
        for i in region.lo[0]..region.hi[0] {
            let mut j = region.lo[1];
            while j < region.hi[1] {
                let base = self.local_index([i, j, region.lo[2]]);
                data[base..base + run].copy_from_slice(&block[src..src + run]);
                src += run;
                if src >= block.len() {
                    return;
                }
                j += (run / region.len(2)).max(1);
            }
        }
    }

    /// Splits `[0, n)` into `parts` contiguous chunks along one axis,
    /// distributing the remainder over the leading chunks (heFFTe/fftMPI
    /// balancing). Returns the `(lo, hi)` of chunk `idx`.
    pub fn chunk(n: usize, parts: usize, idx: usize) -> (usize, usize) {
        assert!(parts > 0 && idx < parts, "bad chunk request {idx}/{parts}");
        let base = n / parts;
        let rem = n % parts;
        let lo = idx * base + idx.min(rem);
        let extra = usize::from(idx < rem);
        (lo, lo + base + extra)
    }

    /// Inverse of [`Box3::chunk`]: the chunk index containing coordinate
    /// `x` (which must lie in `[0, n)`). O(1) — the kernel of the
    /// peer-lookup fast path that keeps reshape planning O(Π·peers) instead
    /// of O(Π²) at thousands of ranks.
    pub fn chunk_of(n: usize, parts: usize, x: usize) -> usize {
        debug_assert!(x < n, "coordinate {x} outside [0, {n})");
        let base = n / parts;
        let rem = n % parts;
        if base == 0 {
            // n < parts: each of the first n chunks holds one element.
            return x;
        }
        let split = rem * (base + 1);
        if x < split {
            x / (base + 1)
        } else {
            rem + (x - split) / base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: [usize; 3], hi: [usize; 3]) -> Box3 {
        Box3::new(lo, hi)
    }

    #[test]
    fn volume_shape_surface() {
        let x = b([1, 2, 3], [4, 6, 11]);
        assert_eq!(x.shape(), [3, 4, 8]);
        assert_eq!(x.volume(), 96);
        assert_eq!(x.surface(), 2 * (12 + 32 + 24));
        assert!(!x.is_empty());
        assert!(Box3::EMPTY.is_empty());
        assert_eq!(Box3::EMPTY.volume(), 0);
    }

    #[test]
    fn intersection_cases() {
        let a = b([0, 0, 0], [4, 4, 4]);
        let c = b([2, 2, 2], [6, 6, 6]);
        assert_eq!(a.intersect(&c), b([2, 2, 2], [4, 4, 4]));
        // Disjoint.
        let d = b([4, 0, 0], [8, 4, 4]);
        assert!(a.intersect(&d).is_empty());
        // Touching at a face is empty (half-open).
        assert!(a.intersect(&b([0, 4, 0], [4, 8, 4])).is_empty());
        // Self-intersection is identity.
        assert_eq!(a.intersect(&a), a);
    }

    #[test]
    fn local_indexing_is_row_major() {
        let x = b([10, 20, 30], [12, 23, 34]);
        assert_eq!(x.local_index([10, 20, 30]), 0);
        assert_eq!(x.local_index([10, 20, 31]), 1);
        assert_eq!(x.local_index([10, 21, 30]), 4);
        assert_eq!(x.local_index([11, 20, 30]), 12);
        assert_eq!(x.local_index([11, 22, 33]), 12 + 8 + 3);
    }

    #[test]
    fn extract_deposit_roundtrip() {
        let owner = b([0, 0, 0], [3, 4, 5]);
        let data: Vec<C64> = (0..60).map(|i| C64::real(i as f64)).collect();
        let region = b([1, 1, 2], [3, 3, 4]);
        let block = owner.extract(&data, &region);
        assert_eq!(block.len(), region.volume());
        // First element of the block is global (1,1,2) = flat 1*20+1*5+2 = 27.
        assert_eq!(block[0], C64::real(27.0));

        let mut target = vec![C64::ZERO; 60];
        owner.deposit(&mut target, &region, &block);
        for i in 1..3 {
            for j in 1..3 {
                for k in 2..4 {
                    let idx = owner.local_index([i, j, k]);
                    assert_eq!(target[idx], data[idx]);
                }
            }
        }
        // Nothing outside the region was touched.
        assert_eq!(target[0], C64::ZERO);
    }

    #[test]
    fn chunk_balances_remainder_to_leading_parts() {
        // 10 into 3: 4, 3, 3.
        assert_eq!(Box3::chunk(10, 3, 0), (0, 4));
        assert_eq!(Box3::chunk(10, 3, 1), (4, 7));
        assert_eq!(Box3::chunk(10, 3, 2), (7, 10));
        // Exact division.
        assert_eq!(Box3::chunk(8, 4, 3), (6, 8));
        // More parts than elements: trailing chunks empty.
        assert_eq!(Box3::chunk(2, 4, 0), (0, 1));
        assert_eq!(Box3::chunk(2, 4, 1), (1, 2));
        assert_eq!(Box3::chunk(2, 4, 3), (2, 2));
    }

    #[test]
    fn chunk_of_inverts_chunk() {
        for n in [1usize, 2, 7, 16, 100, 513] {
            for parts in [1usize, 2, 3, 5, 8, 24] {
                for idx in 0..parts {
                    let (lo, hi) = Box3::chunk(n, parts, idx);
                    for x in lo..hi {
                        assert_eq!(
                            Box3::chunk_of(n, parts, x),
                            idx,
                            "n={n} parts={parts} x={x}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn chunks_partition_the_axis() {
        for n in [1usize, 7, 16, 100] {
            for parts in [1usize, 2, 3, 5, 8] {
                let mut cursor = 0;
                for idx in 0..parts {
                    let (lo, hi) = Box3::chunk(n, parts, idx);
                    assert_eq!(lo, cursor, "gap at n={n} parts={parts} idx={idx}");
                    assert!(hi >= lo);
                    cursor = hi;
                }
                assert_eq!(cursor, n);
            }
        }
    }
}
