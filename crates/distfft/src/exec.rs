//! Functional executor: runs a plan on `mpisim` rank threads with real data.
//!
//! Data correctness and simulated timing are both produced here. The timing
//! bookkeeping mirrors a GPU + NIC pipeline per rank:
//!
//! * `gpu_clock` — when the rank's GPU finishes its latest kernel;
//! * `rank.clock` — the network timeline (exchange entry/exit, via the
//!   shared schedule walkers inside the `mpisim` collectives);
//! * per-chunk `data_ready` — when a pipeline chunk's data is available.
//!
//! With `batch == 1` this degenerates to strictly serial execution; with
//! batched transforms, chunk `c+1`'s kernels overlap chunk `c`'s exchanges —
//! the communication/computation overlap behind the >2× batching speedups of
//! Fig. 13.

use std::collections::BTreeSet;
use std::sync::OnceLock;

use fftkern::plan::Layout;
use fftkern::{Direction, C64};
use mpisim::coll;
use mpisim::comm::{Comm, Rank};
use mpisim::pattern::{P2pFlavor, PhaseEnv};
use mpisim::Subarray;
use simgrid::SimTime;

use crate::boxes::Box3;
use crate::plan::{CommBackend, FftPlan, Step};
use crate::reshape::{apply_self_block, ReshapeSpec};
use crate::trace::{KernelKind, Trace, TraceEvent};

/// Worker-thread count for the parallel executor: the `FFT_EXEC_THREADS`
/// environment variable if set (and ≥ 1), otherwise 1 (serial). Unlike the
/// sweep harnesses, the executor defaults to serial: rank programs already
/// run one thread per rank, so oversubscription is an explicit opt-in.
/// An unparsable value warns once to stderr (via the shared
/// [`fftobs::env`] helper) instead of silently running serial.
pub fn exec_threads() -> usize {
    fftobs::env::positive_var("FFT_EXEC_THREADS", "1 (serial)").unwrap_or(1)
}

/// Minimum number of complex elements a local-FFT or pack/unpack call must
/// touch before the executor fans it out across worker threads. Below this
/// the per-call thread spawn/join cost of the scoped pool dwarfs the work
/// (a 16³ per-rank grid is 4 096 elements — microseconds of math), so small
/// problems run inline on worker 0 even when the context owns several
/// arenas. The gate is a pure function of the data sizes, so scheduling —
/// and therefore per-arena [`PoolStats`] — stays deterministic.
const PAR_MIN_ELEMS: usize = 8192;

/// The grain gate, overridable via `FFT_EXEC_GRAIN` (parsed like
/// `FFT_EXEC_THREADS`: integer, clamped ≥ 1, warn-once on garbage) so bench
/// sweeps can probe the fan-out threshold without rebuilds. Read once per
/// process: both the take side (`run_local_fft`/`exchange_chunk` deciding
/// worker count) and the recycle side consult this value, and they must
/// agree for the arena pools to stay balanced — a per-call env read could
/// in principle see a mutated environment mid-transform.
pub fn par_min_elems() -> usize {
    static GRAIN: OnceLock<usize> = OnceLock::new();
    *GRAIN.get_or_init(|| {
        fftobs::env::positive_var("FFT_EXEC_GRAIN", "the built-in grain (8192)")
            .unwrap_or(PAR_MIN_ELEMS)
    })
}

/// How the per-peer reshape chunk count is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkSetting {
    /// A fixed chunk count (still clamped per group to `p − 1`).
    Fixed(usize),
    /// Model-driven: per group, k = argmin of the extended pipeline model
    /// [`auto_chunks_from_stages`] over a k-ladder (DESIGN.md §16).
    Auto,
}

impl std::fmt::Display for ChunkSetting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChunkSetting::Fixed(n) => write!(f, "{n}"),
            ChunkSetting::Auto => write!(f, "auto"),
        }
    }
}

/// Resolves the reshape-chunking setting: the `FFT_RESHAPE_CHUNKS`
/// environment variable when set (`auto`, or an integer clamped ≥ 1;
/// warn-once on garbage), otherwise the plan's `reshape_chunks` option
/// (`0` is the auto sentinel). Read once per process so the functional
/// executor and the analytic dry-run — which both call this — cannot
/// disagree mid-run.
pub fn reshape_chunks_setting(opt_chunks: usize) -> ChunkSetting {
    static CHUNKS: OnceLock<Option<ChunkSetting>> = OnceLock::new();
    let env = *CHUNKS.get_or_init(|| {
        fftobs::env::parse_var(
            "FFT_RESHAPE_CHUNKS",
            "a positive integer or \"auto\"",
            "the plan's reshape_chunks option",
            |v| {
                let v = v.trim();
                if v.eq_ignore_ascii_case("auto") {
                    Some(ChunkSetting::Auto)
                } else {
                    v.parse::<usize>()
                        .ok()
                        .map(|n| ChunkSetting::Fixed(n.max(1)))
                }
            },
        )
    });
    env.unwrap_or(if opt_chunks == 0 {
        ChunkSetting::Auto
    } else {
        ChunkSetting::Fixed(opt_chunks)
    })
}

/// Effective chunk count for one communication group: the requested
/// setting clamped to the number of off-diagonal send steps (`p - 1`).
/// Groups of ≤ 2 ranks have a single step and can never chunk.
pub fn effective_group_chunks(setting: usize, group_size: usize) -> usize {
    setting.min(group_size.saturating_sub(1)).max(1)
}

/// Largest chunk count the auto-k ladder considers. Past this the per-chunk
/// latency term dominates every configuration we bench; bounding the ladder
/// keeps the argmin scan O(1) per reshape.
const AUTO_K_MAX: usize = 16;

/// The duplicate of `fftmodels::t_pipelined_ext`'s argmin, expressed over
/// integer nanoseconds: picks the chunk count k ∈ [1, max_k] minimizing
///
/// ```text
/// T(k) = (t_pack + t_comm + t_unpack)/k + (k−1)/k · max(stage)   — §14 pipe
///      + (k−1) · lat                                             — per-chunk cost
///      + t_fft − min(t_fft, t_comm) · (k−1)/k                    — transform-ahead
/// ```
///
/// smallest k winning ties. Lives here (not in `fftmodels`) because
/// `fftmodels` depends on `distfft`; a property test over a k-ladder in
/// `fftmodels` pins this duplicate to `t_pipelined_ext` exactly, so the
/// two formulas cannot drift apart silently.
pub fn auto_chunks_from_stages(
    t_pack_ns: u64,
    t_comm_ns: u64,
    t_unpack_ns: u64,
    t_fft_ns: u64,
    lat_ns: u64,
    max_k: usize,
) -> usize {
    let (p, c, u, f, l) = (
        t_pack_ns as f64,
        t_comm_ns as f64,
        t_unpack_ns as f64,
        t_fft_ns as f64,
        lat_ns as f64,
    );
    let sum = p + c + u;
    let bottleneck = p.max(c).max(u);
    let mut best_k = 1usize;
    let mut best = f64::INFINITY;
    for k in 1..=max_k.max(1) {
        let k_f = k as f64;
        // Same association order as `t_pipelined` + `t_pipelined_ext` so
        // the argmin cannot differ by a rounding ulp.
        let t_pipe = sum / k_f + (k_f - 1.0) / k_f * bottleneck;
        let overlap = f.min(c) * (k_f - 1.0) / k_f;
        let t = t_pipe + (k_f - 1.0) * l + f - overlap;
        if t < best {
            best = t;
            best_k = k;
        }
    }
    best_k
}

/// Model-driven chunk count for one communication group: evaluates the
/// group-level stage aggregates the §16 model needs — slowest member's
/// pack/unpack kernels, slowest member's serialized wire time, and the
/// next-axis FFT available for overlap — and returns the k-ladder argmin.
///
/// Every input is a group-level aggregate (max over members), so all
/// members — and the dry-run walker pricing them — compute the same k
/// without communicating. Wire time is priced per message via
/// `simgrid::link::message_time_ns`-equivalent arithmetic on the spec's
/// own latency/bandwidth figures; the per-chunk latency term charges two
/// kernel launches (split pack + split unpack) plus one host sync per
/// extra chunk.
#[allow(clippy::too_many_arguments)]
pub(crate) fn auto_group_chunks(
    plan: &FftPlan,
    spec: &ReshapeSpec,
    machine: &simgrid::MachineSpec,
    km: &fftkern::kernel_model::KernelTimeModel,
    gpu_aware: bool,
    group: &[usize],
    items: usize,
    next_fft: Option<(usize, usize)>,
) -> usize {
    let p = group.len();
    if p <= 2 {
        return 1;
    }
    let backend = plan.opts.backend;
    let matrix = spec.group_byte_matrix(group);
    let pad = if backend == CommBackend::AllToAll {
        spec.padded_block_bytes(group)
    } else {
        0
    };
    let ctx = simgrid::link::TransferCtx {
        gpu_aware,
        offnode_flows_per_nic: machine.gpus_per_node.min(plan.nranks),
        nodes_involved: machine.nodes_for(plan.nranks),
    };
    let (mut t_pack, mut t_comm, mut t_unpack, mut t_fft) = (0u64, 0u64, 0u64, 0u64);
    for (i, &r) in group.iter().enumerate() {
        if backend.needs_pack() {
            let (pb, ub, _) = plan.reshape_local_bytes(spec, r);
            t_pack = t_pack.max(plan.pack_ns(km, pb * items));
            t_unpack = t_unpack.max(plan.unpack_ns(km, ub * items));
        }
        let mut wire = 0u64;
        for (j, &dst) in group.iter().enumerate() {
            if j == i {
                continue;
            }
            let bytes = if backend == CommBackend::AllToAll {
                pad * items
            } else {
                matrix[i][j] * items
            };
            if bytes > 0 {
                wire += simgrid::link::message_time_est_ns(machine, bytes, r, dst, &ctx);
            }
        }
        t_comm = t_comm.max(wire);
        if let Some((dist, axis)) = next_fft {
            t_fft = t_fft.max(plan.local_fft_ns(km, dist, axis, r, items, false));
        }
    }
    let lat = 2 * machine.gpu.launch_ns + machine.gpu_call_sync_ns;
    auto_chunks_from_stages(
        t_pack,
        t_comm,
        t_unpack,
        t_fft,
        lat,
        (p - 1).min(AUTO_K_MAX),
    )
}

/// Chunk count of the pipelined reshape path for one group, `None` when
/// the reshape runs monolithically (k = 1). All four backends are
/// partitionable since the padded-`AllToAll` and `AllToAllW` walkers
/// landed; `Fixed` settings pass through the per-group clamp, `Auto`
/// evaluates [`auto_group_chunks`] on group-level aggregates (identical
/// on every member and in the dry-run walker).
#[allow(clippy::too_many_arguments)]
pub(crate) fn pipelined_k(
    plan: &FftPlan,
    spec: &ReshapeSpec,
    machine: &simgrid::MachineSpec,
    km: &fftkern::kernel_model::KernelTimeModel,
    gpu_aware: bool,
    group: &[usize],
    items: usize,
    next_fft: Option<(usize, usize)>,
) -> Option<usize> {
    let requested = match reshape_chunks_setting(plan.opts.reshape_chunks) {
        ChunkSetting::Fixed(n) => n,
        ChunkSetting::Auto => {
            auto_group_chunks(plan, spec, machine, km, gpu_aware, group, items, next_fft)
        }
    };
    let k = effective_group_chunks(requested, group.len());
    (k >= 2).then_some(k)
}

/// Cross-call executor state: strided-plan warmup tracking, the phase-id
/// counter and the per-rank scratch pool. Create one per experiment and
/// reuse it across warm-up and timed transforms so the Fig. 10 first-call
/// spikes land in the warm-up — and so the steady state runs entirely out
/// of recycled buffers, as on the real machine.
///
/// With [`with_threads`](ExecCtx::with_threads)` > 1` the context carries
/// one scratch arena *per worker* and the executor fans local FFT and
/// pack/unpack work across a statically-partitioned thread pool
/// ([`mpisim::par::par_parts`]). Work unit `i` always runs on worker
/// `i % threads` against that worker's arena, so results stay bit-identical
/// to the serial path and per-arena [`PoolStats`] stay deterministic.
#[derive(Clone)]
pub struct ExecCtx {
    strided_seen: BTreeSet<(usize, usize, bool)>,
    call_counter: u64,
    /// One scratch arena per executor worker; `arenas[0]` doubles as the
    /// serial/chunk-level pool (new layouts, retired arrays).
    arenas: Vec<ExecScratch>,
    /// Pre-overhaul baseline mode: legacy radix-2 kernels, a fresh plan
    /// built per call, no plan-cache participation. Benchmark-only.
    baseline: bool,
    /// Completed [`execute`] calls through this context.
    runs: u64,
    /// Run-completion observer (see [`on_run_completion`]
    /// (ExecCtx::on_run_completion)).
    on_run: Option<RunHook>,
}

/// A run-completion observer: shared so a cloned context keeps reporting
/// to the same sink.
pub type RunHook = std::sync::Arc<dyn Fn(&ExecRunSummary) + Send + Sync>;

impl std::fmt::Debug for ExecCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecCtx")
            .field("strided_seen", &self.strided_seen)
            .field("call_counter", &self.call_counter)
            .field("arenas", &self.arenas)
            .field("baseline", &self.baseline)
            .field("runs", &self.runs)
            .field("on_run", &self.on_run.as_ref().map(|_| "<hook>"))
            .finish()
    }
}

/// What one completed [`execute`] call looked like from its context —
/// handed to the [`ExecCtx::on_run_completion`] observer. Everything here
/// is already-computed bookkeeping: assembling the summary adds no timing
/// work, and the observer runs after `rank.clock` has synced, so it can
/// never perturb simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecRunSummary {
    /// 1-based sequence number of this run within the context.
    pub seq: u64,
    /// Local complex elements transformed (per-rank volume × batch).
    pub elems: usize,
    /// Executor worker count of the context.
    pub threads: usize,
    /// Simulated duration of this run, ns.
    pub elapsed_ns: u64,
    /// Cumulative scratch-pool statistics (all arenas, all runs so far).
    pub pool: PoolStats,
}

impl Default for ExecCtx {
    fn default() -> ExecCtx {
        ExecCtx::with_threads(exec_threads())
    }
}

impl ExecCtx {
    /// Fresh state (next transform pays the strided first-call spikes and
    /// the buffer-pool warm-up). Worker count comes from [`exec_threads`].
    pub fn new() -> ExecCtx {
        ExecCtx::default()
    }

    /// Fresh state with an explicit executor worker count (`.max(1)`).
    pub fn with_threads(threads: usize) -> ExecCtx {
        ExecCtx {
            strided_seen: BTreeSet::new(),
            call_counter: 0,
            arenas: vec![ExecScratch::default(); threads.max(1)],
            baseline: false,
            runs: 0,
            on_run: None,
        }
    }

    /// Installs an observer called once at the end of every [`execute`]
    /// through this context, with that run's [`ExecRunSummary`]. This is
    /// the emit hook the performance ledger rides on: a bench harness
    /// installs a closure that forwards pool/throughput numbers into its
    /// ledger record, and the executor itself stays free of any ledger
    /// dependency. Observers observe — the summary is computed after the
    /// rank clock has synced, so a hook can never alter simulated time.
    pub fn on_run_completion(&mut self, hook: RunHook) {
        self.on_run = Some(hook);
    }

    /// Completed [`execute`] calls through this context.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// A context that reproduces the **pre-overhaul** executor: serial,
    /// legacy radix-2 kernels (`Engine::Legacy` — bit-reversal pass,
    /// per-line gather/scatter), and a fresh 1-D plan built on every local
    /// FFT instead of a plan-cache lookup. Exists so benchmarks compare the
    /// engine overhaul against the real seed code path, not a synthetic
    /// slowdown.
    pub fn legacy_baseline() -> ExecCtx {
        ExecCtx {
            baseline: true,
            ..ExecCtx::with_threads(1)
        }
    }

    /// Executor worker count (≥ 1; 1 means fully serial).
    pub fn threads(&self) -> usize {
        self.arenas.len()
    }

    pub(crate) fn first_strided(&mut self, dist: usize, axis: usize, dir: Direction) -> bool {
        self.strided_seen
            .insert((dist, axis, matches!(dir, Direction::Forward)))
    }

    pub(crate) fn next_phase_id(&mut self) -> u64 {
        let id = self.call_counter;
        self.call_counter += 1;
        id
    }

    /// Takes a pooled, empty staging buffer (recycled capacity, length 0).
    pub(crate) fn take_buffer(&mut self) -> Vec<C64> {
        self.arenas[0].take_empty()
    }

    /// Returns a buffer to the pool for reuse by later calls.
    pub(crate) fn recycle(&mut self, buf: Vec<C64>) {
        self.arenas[0].give(buf);
    }

    /// Number of buffers currently parked across all arenas (diagnostics).
    pub fn pooled_buffers(&self) -> usize {
        self.arenas.iter().map(|a| a.arrays.len()).sum()
    }

    /// Cumulative hit/miss/eviction statistics of this context's scratch
    /// pool, aggregated over all worker arenas. Per-context (deterministic
    /// even when tests run in parallel); the same events also feed the
    /// global `distfft.exec_pool.*` counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.arenas
            .iter()
            .fold(PoolStats::default(), |acc, a| PoolStats {
                hits: acc.hits + a.stats.hits,
                misses: acc.misses + a.stats.misses,
                evictions: acc.evictions + a.stats.evictions,
            })
    }

    /// Per-worker arena statistics, in worker order. With the static
    /// round-robin partitioning these are a pure function of the workload
    /// (asserted by `tests/parallel_exec.rs`).
    pub fn pool_stats_per_worker(&self) -> Vec<PoolStats> {
        self.arenas.iter().map(|a| a.stats).collect()
    }

    /// Sanitizer leak counter: pool takes minus deposits across this
    /// context's arenas. Send buffers are deposited by the *receiving*
    /// rank's context, so a single context may legitimately be nonzero
    /// mid-world; summed over every rank of a world after `execute`
    /// returns, the balance must be exactly zero — anything else is a
    /// leaked (or double-deposited) pooled buffer.
    #[cfg(feature = "sanitize")]
    pub fn outstanding_buffers(&self) -> i64 {
        self.arenas.iter().map(|a| a.outstanding).sum()
    }
}

/// Scratch-pool statistics: how the recycled-buffer free list behaved.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// `take` calls served from a recycled buffer.
    pub hits: u64,
    /// `take` calls that had to allocate (empty pool).
    pub misses: u64,
    /// `give` calls that dropped a non-empty buffer because the pool was
    /// full (`POOL_CAP`) — silent deallocation churn on the hot path.
    pub evictions: u64,
}

impl PoolStats {
    /// Hit rate over all takes (0.0 when nothing was taken).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Pooled per-rank execution scratch: recycled local arrays / send buffers
/// plus the shared 1-D kernel scratch. After one warm transform, the hot
/// path allocates nothing — every buffer the executor needs comes out of
/// (and goes back into) this free list.
#[derive(Debug, Default, Clone)]
struct ExecScratch {
    /// Free list of recycled `Vec<C64>` buffers, any capacity.
    arrays: Vec<Vec<C64>>,
    /// Scratch for the batched 1-D kernels (grown to the largest
    /// `Plan1d::scratch_elems` seen).
    kernel: Vec<C64>,
    /// Hit/miss/eviction accounting (see [`PoolStats`]).
    stats: PoolStats,
    /// Sanitizer leak accounting: pool takes minus deposits. Buffers
    /// migrate across ranks inside an exchange (a send buffer taken here is
    /// deposited by its receiver), so the invariant is on the *world* sum:
    /// zero after every completed `execute`.
    #[cfg(feature = "sanitize")]
    outstanding: i64,
}

/// Free-list bound: batch items + send/recv buffers per reshape stay well
/// under this; the cap only guards against pathological churn.
const POOL_CAP: usize = 64;

impl ExecScratch {
    /// A pooled buffer zero-filled to `len` — bit-identical to
    /// `vec![C64::ZERO; len]` without the allocation.
    fn take_zeroed(&mut self, len: usize) -> Vec<C64> {
        let mut buf = self.take_empty();
        buf.resize(len, C64::ZERO);
        buf
    }

    fn take_empty(&mut self) -> Vec<C64> {
        #[cfg(feature = "sanitize")]
        {
            self.outstanding += 1;
        }
        match self.arrays.pop() {
            Some(mut buf) => {
                self.stats.hits += 1;
                fftobs::count("distfft.exec_pool.hit", 1);
                buf.clear();
                buf
            }
            None => {
                self.stats.misses += 1;
                fftobs::count("distfft.exec_pool.miss", 1);
                Vec::new()
            }
        }
    }

    /// The per-arena 1-D kernel scratch, grown to at least `elems`.
    fn kernel_for(&mut self, elems: usize) -> &mut Vec<C64> {
        if self.kernel.len() < elems {
            self.kernel.resize(elems, C64::ZERO);
        }
        &mut self.kernel
    }

    fn give(&mut self, buf: Vec<C64>) {
        // Leak accounting must see capacity-0 deposits too: a buffer taken
        // on a miss and never grown (e.g. an empty send region) is still a
        // matched take/deposit pair.
        #[cfg(feature = "sanitize")]
        {
            self.outstanding -= 1;
        }
        if buf.capacity() == 0 {
            // Nothing worth recycling; not an eviction.
            return;
        }
        if self.arrays.len() < POOL_CAP {
            self.arrays.push(buf);
        } else {
            // The free list is full: this buffer's capacity is silently
            // deallocated. Recorded so a figure harness can prove the
            // steady state never churns (tests/pooling.rs asserts 0).
            self.stats.evictions += 1;
            fftobs::count("distfft.exec_pool.eviction", 1);
        }
    }
}

/// Per-rank result of one executed transform.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Event log of this rank.
    pub trace: Trace,
    /// Completion time of this rank (GPU and network both drained).
    pub total: SimTime,
}

/// Pre-split sub-communicators for every reshape of a plan, per rank.
/// Binding is collective: every rank must call [`bind`] at the same point.
pub struct BoundPlan {
    fwd_comms: Vec<Option<Comm>>,
    rev_comms: Vec<Option<Comm>>,
}

/// Splits the group sub-communicators of every reshape (forward and
/// reverse). Collective over `comm`.
pub fn bind(plan: &FftPlan, rank: &mut Rank, comm: &Comm) -> BoundPlan {
    let split_for = |rank: &mut Rank, specs: &[ReshapeSpec]| -> Vec<Option<Comm>> {
        specs
            .iter()
            .map(|spec| {
                let me = comm.me();
                let color = spec.group_of[me].map(|g| g as u64).unwrap_or(u64::MAX);
                let sub = comm.split(rank, color, me as u64);
                spec.group_of[me].map(|_| sub)
            })
            .collect()
    };
    let fwd_comms = split_for(rank, &plan.reshapes);
    let rev_comms = split_for(rank, &plan.reshapes_rev);
    BoundPlan {
        fwd_comms,
        rev_comms,
    }
}

/// Executes one (possibly batched) transform functionally.
///
/// `data[b]` holds batch item `b`'s local elements in the layout of the
/// plan's input distribution (forward) or output distribution (inverse);
/// on return it holds the transformed elements in the opposite boundary
/// layout. Transforms are unnormalized in both directions.
#[allow(clippy::ptr_arg)] // batch items are swapped wholesale; &mut Vec is the honest type
pub fn execute(
    plan: &FftPlan,
    bound: &BoundPlan,
    ctx: &mut ExecCtx,
    rank: &mut Rank,
    comm: &Comm,
    data: &mut Vec<Vec<C64>>,
    dir: Direction,
) -> ExecResult {
    assert_eq!(comm.size(), plan.nranks, "communicator does not match plan");
    assert_eq!(
        data.len(),
        plan.opts.batch,
        "one local array per batch item"
    );
    let me = comm.me();
    // `Rank::world()` hands back `&'w World`, so the machine spec and the
    // slowdown table are borrowed for the whole call — no per-execute clone.
    let spec_machine = rank.world().spec();
    let km = spec_machine.kernel_model();
    let gpu_aware = rank.world().opts().gpu_aware;
    let slowdowns: &[(usize, f64)] = &rank.world().opts().compute_slowdown;

    let (start_dist, specs, comms) = match dir {
        Direction::Forward => (0usize, &plan.reshapes, &bound.fwd_comms),
        Direction::Inverse => (plan.dists.len() - 1, &plan.reshapes_rev, &bound.rev_comms),
    };
    // Borrowed step sequence — `steps_for` clones every `Step`, which the
    // hot path does not need.
    let steps: Vec<&Step> = match dir {
        Direction::Forward => plan.steps.iter().collect(),
        Direction::Inverse => plan.steps.iter().rev().collect(),
    };

    let expect = plan.dists[start_dist].rank_box(me).volume();
    for d in data.iter() {
        assert_eq!(d.len(), expect, "local array does not match input layout");
    }

    let mut trace = Trace::new();
    let t0 = rank.now();
    let mut gpu_clock = t0;
    let chunks = plan.chunks();
    let mut data_ready = vec![t0; chunks];
    // Chunk -> item range.
    let ranges: Vec<(usize, usize)> = (0..chunks)
        .map(|c| Box3::chunk(plan.opts.batch, chunks, c))
        .collect();

    let mut cur_dist = vec![start_dist; chunks];
    for (c, &(ilo, ihi)) in ranges.iter().enumerate() {
        let items = ihi - ilo;
        let mut si = 0;
        while si < steps.len() {
            match *steps[si] {
                Step::LocalFft { dist, axis } => {
                    let first = ctx.first_strided(dist, axis, dir);
                    let ns = crate::plan::slowed_ns(
                        slowdowns,
                        me,
                        plan.local_fft_ns(&km, dist, axis, me, items, first),
                    );
                    let start = gpu_clock.max(data_ready[c]);
                    gpu_clock = start + SimTime::from_ns(ns);
                    data_ready[c] = gpu_clock;
                    trace.push(TraceEvent::Kernel {
                        kind: KernelKind::Fft1d {
                            axis,
                            contiguous: plan.fft_layout(axis)
                                == fftkern::kernel_model::LayoutKind::Contiguous,
                        },
                        start,
                        dur: SimTime::from_ns(ns),
                    });
                    // Real math on every item of this chunk.
                    let b = plan.dists[dist].rank_box(me);
                    if !b.is_empty() {
                        run_local_fft(
                            b,
                            axis,
                            &mut data[ilo..ihi],
                            dir,
                            &mut ctx.arenas,
                            ctx.baseline,
                        );
                    }
                    si += 1;
                }
                Step::Reshape(ri) => {
                    let spec = &specs[ri];
                    let (from_dist, to_dist) = match dir {
                        Direction::Forward => (ri, ri + 1),
                        Direction::Inverse => (ri + 1, ri),
                    };
                    debug_assert_eq!(cur_dist[c], from_dist);
                    // The axis transform that follows this reshape — the
                    // transform-ahead candidate. A pipelined exchange runs
                    // it per chunk as lines complete and *consumes* the
                    // step; a monolithic exchange leaves it to the next
                    // loop iteration.
                    let next_fft = match steps.get(si + 1) {
                        Some(Step::LocalFft { dist, axis }) if *dist == to_dist => {
                            Some((*dist, *axis))
                        }
                        _ => None,
                    };
                    let consumed = exchange_chunk(ExchangeArgs {
                        plan,
                        spec,
                        sub: &comms[ri],
                        reshape_label: ri,
                        from_box: plan.dists[from_dist].rank_box(me),
                        to_box: plan.dists[to_dist].rank_box(me),
                        km: &km,
                        spec_machine,
                        gpu_aware,
                        slowdowns,
                        rank,
                        ctx,
                        trace: &mut trace,
                        gpu_clock: &mut gpu_clock,
                        data_ready: &mut data_ready[c],
                        data: &mut data[ilo..ihi],
                        dir,
                        next_fft,
                    });
                    cur_dist[c] = to_dist;
                    si += if consumed { 2 } else { 1 };
                }
            }
        }
    }

    let total = gpu_clock
        .max(rank.now())
        .max(data_ready.iter().copied().fold(SimTime::ZERO, SimTime::max));
    rank.clock.sync_to(total);
    ctx.runs += 1;
    if let Some(hook) = &ctx.on_run {
        let summary = ExecRunSummary {
            seq: ctx.runs,
            elems: expect * plan.opts.batch,
            threads: ctx.threads(),
            elapsed_ns: total.as_ns() - t0.as_ns(),
            pool: ctx.pool_stats(),
        };
        hook(&summary);
    }
    ExecResult { trace, total }
}

/// Runs the real batched 1-D FFTs along `axis` over every item's local
/// array (always on the canonical row-major box layout; the contiguous /
/// strided distinction is a *timing* concern handled by the kernel model).
///
/// Plans come out of the process-wide [`fftkern::plan_cache`] and the
/// transform runs through the `_scratch` entry points against each arena's
/// kernel buffer (grown once per shape, reused across calls), so the steady
/// state builds no plans and allocates no buffers.
///
/// With more than one arena — and at least [`par_min_elems`] elements of
/// work, below which the fan-out cost exceeds the math — the batch is split
/// into disjoint `&mut` work units — contiguous row blocks (axis 2), axis-0
/// planes (axis 1), whole batch items (axis 0) — and fanned across
/// [`mpisim::par::par_parts`].
/// Every row is still transformed by the same plan math against the same
/// interned twiddles, so the parallel result is bit-identical to serial.
// fftlint:hot — steady-state local transform; one call per (axis, rank)
// of every execute, all buffers must come from the arena pool.
fn run_local_fft(
    b: &Box3,
    axis: usize,
    data: &mut [Vec<C64>],
    dir: Direction,
    arenas: &mut [ExecScratch],
    baseline: bool,
) {
    let s = b.shape();
    let n = s[axis];
    if n == 0 {
        return;
    }
    let cache = fftkern::plan_cache();
    let total_elems: usize = data.iter().map(|item| item.len()).sum();
    if arenas.len() <= 1 || total_elems < par_min_elems() {
        // Serial fast path: one plan lookup, one kernel buffer. In baseline
        // mode the plan is instead built fresh per call with the legacy
        // engine — the pre-overhaul executor, kept for honest A/B benches.
        let (batch, input, output) = match axis {
            2 => (s[0] * s[1], Layout::contiguous(n), Layout::contiguous(n)),
            1 => (s[2], Layout::strided(s[2]), Layout::strided(s[2])),
            0 => (
                s[1] * s[2],
                Layout::strided(s[1] * s[2]),
                Layout::strided(s[1] * s[2]),
            ),
            _ => unreachable!("axis out of range"),
        };
        let plan1d = if baseline {
            std::sync::Arc::new(fftkern::plan::Plan1d::with_engine(
                n,
                batch,
                input,
                output,
                fftkern::plan::Engine::Legacy,
            ))
        } else {
            cache.plan1d(n, batch, input, output)
        };
        let kernel = arenas[0].kernel_for(plan1d.scratch_elems());
        for item in data.iter_mut() {
            match axis {
                2 | 0 => plan1d.execute_inplace_scratch(item, dir, kernel),
                1 => {
                    // Axis 1 is strided within each axis-0 plane.
                    let plane = s[1] * s[2];
                    for i0 in 0..s[0] {
                        plan1d.execute_inplace_scratch(
                            &mut item[i0 * plane..(i0 + 1) * plane],
                            dir,
                            kernel,
                        );
                    }
                }
                _ => unreachable!(),
            }
        }
        return;
    }
    match axis {
        2 => {
            // Contiguous rows: split each item into per-worker row blocks.
            let rows = s[0] * s[1];
            let per = rows.div_ceil(arenas.len()).max(1);
            let units: Vec<&mut [C64]> = data
                .iter_mut()
                .flat_map(|item| item.chunks_mut(per * n))
                .collect(); // fftlint:allow(no-alloc-in-hot-path): O(workers) unit list for the fan-out, not payload
            mpisim::par::par_parts(arenas, units, |_, arena, seg| {
                let rows_u = seg.len() / n;
                let plan = cache.plan1d(n, rows_u, Layout::contiguous(n), Layout::contiguous(n));
                plan.execute_inplace_scratch(seg, dir, arena.kernel_for(plan.scratch_elems()));
            });
        }
        1 => {
            // One strided batch per axis-0 plane; planes are disjoint slices.
            let plane = s[1] * s[2];
            let units: Vec<&mut [C64]> = data
                .iter_mut()
                .flat_map(|item| item.chunks_mut(plane))
                .collect(); // fftlint:allow(no-alloc-in-hot-path): O(workers) unit list for the fan-out, not payload
            let plan = cache.plan1d(n, s[2], Layout::strided(s[2]), Layout::strided(s[2]));
            mpisim::par::par_parts(arenas, units, |_, arena, seg| {
                plan.execute_inplace_scratch(seg, dir, arena.kernel_for(plan.scratch_elems()));
            });
        }
        0 => {
            // Axis 0 spans every plane of an item, so the finest safe `&mut`
            // split is one unit per batch item.
            let stride = s[1] * s[2];
            let units: Vec<&mut Vec<C64>> = data.iter_mut().collect(); // fftlint:allow(no-alloc-in-hot-path): O(items) unit list for the fan-out, not payload
            let plan = cache.plan1d(n, stride, Layout::strided(stride), Layout::strided(stride));
            mpisim::par::par_parts(arenas, units, |_, arena, item| {
                plan.execute_inplace_scratch(item, dir, arena.kernel_for(plan.scratch_elems()));
            });
        }
        _ => unreachable!("axis out of range"),
    }
}

/// Runs the next-axis butterflies for an explicit set of `[lo, hi)` line
/// runs of the rank's box — the transform-ahead math (DESIGN.md §16). Rows
/// transform independently through the same cached plan and interned
/// twiddles, so executing the box's lines as disjoint sub-batches in chunk
/// order is bit-identical to the full-batch pass in [`run_local_fft`].
/// Runs execute serially against arena 0's kernel scratch: per-chunk
/// batches are small slices of one rank's box, where fan-out cost exceeds
/// the math (the same reasoning as [`par_min_elems`], applied per run).
// fftlint:hot — per-chunk transform-ahead sub-batches; runs inside the
// pipelined exchange loop.
fn run_local_fft_lines(
    b: &Box3,
    axis: usize,
    runs: &[(usize, usize)],
    data: &mut [Vec<C64>],
    dir: Direction,
    arenas: &mut [ExecScratch],
    baseline: bool,
) {
    let s = b.shape();
    let n = s[axis];
    if n == 0 || runs.is_empty() {
        return;
    }
    let cache = fftkern::plan_cache();
    let (batch, input, output) = match axis {
        2 => (s[0] * s[1], Layout::contiguous(n), Layout::contiguous(n)),
        1 => (s[2], Layout::strided(s[2]), Layout::strided(s[2])),
        0 => (
            s[1] * s[2],
            Layout::strided(s[1] * s[2]),
            Layout::strided(s[1] * s[2]),
        ),
        _ => unreachable!("axis out of range"),
    };
    let plan1d = if baseline {
        std::sync::Arc::new(fftkern::plan::Plan1d::with_engine(
            n,
            batch,
            input,
            output,
            fftkern::plan::Engine::Legacy,
        ))
    } else {
        cache.plan1d(n, batch, input, output)
    };
    let kernel_elems = plan1d.scratch_elems();
    for item in data.iter_mut() {
        let kernel = arenas[0].kernel_for(kernel_elems);
        for &(lo, hi) in runs {
            match axis {
                2 | 0 => plan1d.execute_lines_inplace_scratch(item, dir, kernel, lo, hi),
                1 => {
                    // Line index = i0·s2 + i2 — split the run at axis-0
                    // plane boundaries, transforming within each plane
                    // (the axis-1 plan is strided within one plane).
                    let plane = s[1] * s[2];
                    let mut cur = lo;
                    while cur < hi {
                        let i0 = cur / s[2];
                        let plo = cur - i0 * s[2];
                        let phi = (hi - i0 * s[2]).min(s[2]);
                        plan1d.execute_lines_inplace_scratch(
                            &mut item[i0 * plane..(i0 + 1) * plane],
                            dir,
                            kernel,
                            plo,
                            phi,
                        );
                        cur = i0 * s[2] + phi;
                    }
                }
                _ => unreachable!(),
            }
        }
    }
}

struct ExchangeArgs<'a, 'w> {
    plan: &'a FftPlan,
    spec: &'a ReshapeSpec,
    sub: &'a Option<Comm>,
    reshape_label: usize,
    from_box: &'a Box3,
    to_box: &'a Box3,
    km: &'a fftkern::kernel_model::KernelTimeModel,
    spec_machine: &'a simgrid::MachineSpec,
    gpu_aware: bool,
    slowdowns: &'a [(usize, f64)],
    rank: &'a mut Rank<'w>,
    ctx: &'a mut ExecCtx,
    trace: &'a mut Trace,
    gpu_clock: &'a mut SimTime,
    data_ready: &'a mut SimTime,
    data: &'a mut [Vec<C64>],
    dir: Direction,
    /// The `(dist, axis)` of the LocalFft step immediately following this
    /// reshape, when its dist is the reshape target — the transform-ahead
    /// candidate the pipelined path consumes.
    next_fft: Option<(usize, usize)>,
}

/// Executes one reshape for one pipeline chunk: pack kernel, exchange on the
/// group sub-communicator, self-copy (P2P), unpack kernel, plus the actual
/// data movement for every item in the chunk. Returns `true` when the
/// pipelined path also ran the following axis transform per chunk
/// (transform-ahead) — the caller must then skip that LocalFft step.
// fftlint:hot — per-chunk pack/exchange/unpack; runs once per pipeline
// chunk of every reshape.
fn exchange_chunk(a: ExchangeArgs<'_, '_>) -> bool {
    let ExchangeArgs {
        plan,
        spec,
        sub,
        reshape_label,
        from_box,
        to_box,
        km,
        spec_machine,
        gpu_aware,
        slowdowns,
        rank,
        ctx,
        trace,
        gpu_clock,
        data_ready,
        data,
        dir,
        next_fft,
    } = a;
    let me_world = rank.rank();
    let items = data.len();
    let backend = plan.opts.backend;

    // Phase id must advance identically on every rank and in the dry run.
    let phase_id = ctx.next_phase_id();

    // Pipelined reshape: per-peer chunks overlapping pack, send, unpack and
    // the next axis transform (DESIGN.md §14/§16). Takes over the whole
    // kernel + exchange chain.
    if let Some(sub) = sub {
        let members: Vec<usize> = (0..sub.size()).map(|j| sub.member(j)).collect(); // fftlint:allow(no-alloc-in-hot-path): O(group) member table per exchange
        if let Some(k_eff) = pipelined_k(
            plan,
            spec,
            spec_machine,
            km,
            gpu_aware,
            &members,
            items,
            next_fft,
        ) {
            exchange_chunk_pipelined(
                plan,
                spec,
                sub,
                &members,
                reshape_label,
                from_box,
                to_box,
                km,
                spec_machine,
                gpu_aware,
                slowdowns,
                rank,
                ctx,
                trace,
                gpu_clock,
                data_ready,
                data,
                dir,
                next_fft,
                phase_id,
                k_eff,
            );
            return next_fft.is_some();
        }
    }

    let (pack_b, unpack_b, self_b) = plan.reshape_local_bytes(spec, me_world);
    let (pack_b, unpack_b, self_b) = (pack_b * items, unpack_b * items, self_b * items);

    // Pack kernel.
    if backend.needs_pack() && pack_b > 0 {
        let ns = crate::plan::slowed_ns(slowdowns, me_world, plan.pack_ns(km, pack_b));
        let start = (*gpu_clock).max(*data_ready);
        *gpu_clock = start + SimTime::from_ns(ns);
        *data_ready = *gpu_clock;
        trace.push(TraceEvent::Kernel {
            kind: KernelKind::Pack,
            start,
            dur: SimTime::from_ns(ns),
        });
    }

    // New local arrays in the target layout, drawn zero-filled from the
    // rank's buffer pool (bit-identical to freshly allocated arrays).
    let mut new_data: Vec<Vec<C64>> = (0..items)
        .map(|_| ctx.arenas[0].take_zeroed(to_box.volume()))
        .collect(); // fftlint:allow(no-alloc-in-hot-path): outer Vec of pooled buffers; payloads are take_zeroed

    // P2P self block: device copy outside MPI.
    if backend.is_p2p() && self_b > 0 {
        let ns =
            crate::plan::slowed_ns(slowdowns, me_world, plan.selfcopy_ns(spec_machine, self_b));
        let start = (*gpu_clock).max(*data_ready);
        *gpu_clock = start + SimTime::from_ns(ns);
        *data_ready = *gpu_clock;
        trace.push(TraceEvent::Kernel {
            kind: KernelKind::SelfCopy,
            start,
            dur: SimTime::from_ns(ns),
        });
        for (old, new) in data.iter().zip(new_data.iter_mut()) {
            apply_self_block(from_box, old, to_box, new);
        }
    }

    if let Some(sub) = sub {
        // Exchange on the group sub-communicator.
        let env = PhaseEnv {
            gpu_aware,
            flows_per_nic: spec_machine.gpus_per_node.min(plan.nranks),
            nodes: spec_machine.nodes_for(plan.nranks),
            p2p_peers: spec.peer_count(me_world).max(1),
            phase_id,
        };
        // Wait until this chunk's packed data exists.
        rank.clock.sync_to(*data_ready);
        let entry = rank.now();
        let sent_bytes = spec.offrank_send_bytes(me_world) * items;

        match backend {
            CommBackend::AllToAllW => {
                run_alltoallw(
                    plan,
                    spec,
                    sub,
                    env,
                    rank,
                    from_box,
                    to_box,
                    data,
                    &mut new_data,
                );
            }
            _ => {
                // Grain gate: pack/unpack of a tiny chunk runs inline on
                // arena 0 — the same decision on take and recycle sides, so
                // per-arena pool traffic stays balanced (see PAR_MIN_ELEMS).
                let vol = items * from_box.volume().max(to_box.volume());
                let w = if vol < par_min_elems() {
                    1
                } else {
                    ctx.arenas.len()
                };
                let sends =
                    build_sends(plan, spec, sub, from_box, data, items, &mut ctx.arenas[..w]);
                let recvd = match backend {
                    CommBackend::AllToAll => coll::alltoall(rank, sub, env, sends),
                    CommBackend::AllToAllV => coll::alltoallv(rank, sub, env, sends),
                    CommBackend::P2p => {
                        coll::p2p_exchange(rank, sub, env, P2pFlavor::NonBlocking, sends)
                    }
                    CommBackend::P2pBlocking => {
                        coll::p2p_exchange(rank, sub, env, P2pFlavor::Blocking, sends)
                    }
                    CommBackend::AllToAllW => unreachable!(),
                };
                deposit_recvs(
                    plan,
                    spec,
                    sub,
                    to_box,
                    &recvd,
                    &mut new_data,
                    &mut ctx.arenas[..w],
                );
                // Recycle received blocks round-robin so per-arena give
                // counts match the round-robin takes in `build_sends` —
                // keeping every arena's free list balanced in steady state.
                for (j, buf) in recvd.into_iter().enumerate() {
                    ctx.arenas[j % w].give(buf);
                }
            }
        }
        let exit = rank.now();
        *data_ready = exit;
        trace.push(TraceEvent::MpiCall {
            reshape: reshape_label,
            routine: backend.routine(),
            start: entry,
            dur: exit - entry,
            bytes: sent_bytes,
        });
    }

    // Unpack kernel.
    if backend.needs_pack() && unpack_b > 0 {
        let ns = crate::plan::slowed_ns(slowdowns, me_world, plan.unpack_ns(km, unpack_b));
        let start = (*gpu_clock).max(*data_ready);
        *gpu_clock = start + SimTime::from_ns(ns);
        *data_ready = *gpu_clock;
        trace.push(TraceEvent::Kernel {
            kind: KernelKind::Unpack,
            start,
            dur: SimTime::from_ns(ns),
        });
    }

    // Swap the chunk's arrays to the new layout; the superseded arrays go
    // back to the pool for the next reshape of this rank. They return to
    // arena 0, which is also where `take_zeroed` drew the new layouts.
    for (old, new) in data.iter_mut().zip(new_data) {
        let prev = std::mem::replace(old, new);
        ctx.arenas[0].give(prev);
    }
    false
}

/// The pipelined reshape (DESIGN.md §14/§16): the exchange is split into
/// `k_eff` per-peer chunks by `mpisim::pattern::partition_of_step`, so
/// packing for chunk `k+1` proceeds while chunk `k`'s sends are in flight,
/// per-chunk unpack kernels start as each chunk's receives land, and —
/// when the following step is the next axis transform (`next_fft`) — the
/// Stockham butterflies for each chunk's newly-complete lines run right
/// behind its unpack instead of barriering on the full exchange
/// (transform-ahead).
///
/// Data is bit-identical to the monolithic path: the same `build_sends`
/// buffers go on the wire, one index-ordered `deposit_recvs` pass merges
/// every received block, and the line-granular FFT batches partition the
/// rank's rows exactly (rows transform independently), so chunk-completion
/// order affects timing only. The analytic dry-run replays the same
/// per-chunk kernel chain and the same partitioned walker, keeping the two
/// modes in exact agreement.
// fftlint:hot — the partitioned exchange walker (DESIGN.md §16).
#[allow(clippy::too_many_arguments)]
fn exchange_chunk_pipelined(
    plan: &FftPlan,
    spec: &ReshapeSpec,
    sub: &Comm,
    members: &[usize],
    reshape_label: usize,
    from_box: &Box3,
    to_box: &Box3,
    km: &fftkern::kernel_model::KernelTimeModel,
    spec_machine: &simgrid::MachineSpec,
    gpu_aware: bool,
    slowdowns: &[(usize, f64)],
    rank: &mut Rank,
    ctx: &mut ExecCtx,
    trace: &mut Trace,
    gpu_clock: &mut SimTime,
    data_ready: &mut SimTime,
    data: &mut [Vec<C64>],
    dir: Direction,
    next_fft: Option<(usize, usize)>,
    phase_id: u64,
    k_eff: usize,
) {
    let me_world = rank.rank();
    let items = data.len();
    let backend = plan.opts.backend;
    let is_p2p = backend.is_p2p();
    let me_sub = sub.me();

    let (_, _, self_b) = plan.reshape_local_bytes(spec, me_world);
    let self_b = self_b * items;
    let pad_bytes = if backend == CommBackend::AllToAll {
        spec.padded_block_bytes(members)
    } else {
        0
    };

    // Per-chunk byte totals (pack, unpack, wire), assigned by the global
    // partition function so sender and receiver agree on every message's
    // chunk. Collective self flows belong to chunk 0 on both sides; the
    // P2P self block moves by device copy and stays outside these sums,
    // exactly as in `FftPlan::reshape_local_bytes`.
    let (chunk_pack_b, chunk_unpack_b, chunk_wire_b) = chunk_byte_split(
        spec, me_world, members, me_sub, k_eff, is_p2p, pad_bytes, items,
    );

    // New local arrays in the target layout (zero-filled from the pool).
    let mut new_data: Vec<Vec<C64>> = (0..items)
        .map(|_| ctx.arenas[0].take_zeroed(to_box.volume()))
        .collect(); // fftlint:allow(no-alloc-in-hot-path): outer Vec of pooled buffers; payloads are take_zeroed

    // Per-chunk pack chain: each chunk's pack kernel (and, for P2P, the
    // chunk-0 self device copy) serializes on the GPU; `pack_done[k]` is
    // when chunk `k`'s payload is postable.
    let mut pack_done = vec![SimTime::ZERO; k_eff]; // fftlint:allow(no-alloc-in-hot-path): O(chunks) schedule table
    for k in 0..k_eff {
        if backend.needs_pack() && chunk_pack_b[k] > 0 {
            let ns = crate::plan::slowed_ns(slowdowns, me_world, plan.pack_ns(km, chunk_pack_b[k]));
            let start = (*gpu_clock).max(*data_ready);
            *gpu_clock = start + SimTime::from_ns(ns);
            *data_ready = *gpu_clock;
            trace.push(TraceEvent::Kernel {
                kind: KernelKind::Pack,
                start,
                dur: SimTime::from_ns(ns),
            });
        }
        if k == 0 && is_p2p && self_b > 0 {
            let ns =
                crate::plan::slowed_ns(slowdowns, me_world, plan.selfcopy_ns(spec_machine, self_b));
            let start = (*gpu_clock).max(*data_ready);
            *gpu_clock = start + SimTime::from_ns(ns);
            *data_ready = *gpu_clock;
            trace.push(TraceEvent::Kernel {
                kind: KernelKind::SelfCopy,
                start,
                dur: SimTime::from_ns(ns),
            });
            for (old, new) in data.iter().zip(new_data.iter_mut()) {
                apply_self_block(from_box, old, to_box, new);
            }
        }
        pack_done[k] = (*gpu_clock).max(*data_ready);
    }

    let env = PhaseEnv {
        gpu_aware,
        flows_per_nic: spec_machine.gpus_per_node.min(plan.nranks),
        nodes: spec_machine.nodes_for(plan.nranks),
        p2p_peers: spec.peer_count(me_world).max(1),
        phase_id,
    };
    // The call posts as soon as the *first* chunk is packed — this is the
    // pipelining win over the monolithic `sync_to(*data_ready)`.
    rank.clock.sync_to(pack_done[0]);
    let call_entry = rank.now();
    let part_entries: Vec<SimTime> = pack_done.iter().map(|t| call_entry.max(*t)).collect(); // fftlint:allow(no-alloc-in-hot-path): O(chunks) schedule table

    // Same grain gate as the monolithic path (see PAR_MIN_ELEMS).
    let vol = items * from_box.volume().max(to_box.volume());
    let w = if vol < par_min_elems() {
        1
    } else {
        ctx.arenas.len()
    };
    let times = if backend == CommBackend::AllToAllW {
        // Sub-array datatype delivery straight into the new layout — no
        // caller-side pack/unpack kernels, same as the monolithic W path.
        assert_eq!(
            plan.opts.batch, 1,
            "the Alltoallw backend supports batch == 1 only"
        );
        let (send_types, recv_types) = alltoallw_types(spec, sub, from_box, to_box);
        coll::alltoallw_partitioned(
            rank,
            sub,
            env,
            &data[0],
            &send_types,
            &mut new_data[0],
            &recv_types,
            &part_entries,
        )
    } else {
        let sends = build_sends(plan, spec, sub, from_box, data, items, &mut ctx.arenas[..w]);
        let (recvd, times) = match backend {
            CommBackend::AllToAll => {
                coll::alltoall_partitioned(rank, sub, env, sends, &part_entries)
            }
            CommBackend::AllToAllV => {
                coll::alltoallv_partitioned(rank, sub, env, sends, &part_entries)
            }
            CommBackend::P2p => coll::p2p_exchange_partitioned(
                rank,
                sub,
                env,
                P2pFlavor::NonBlocking,
                sends,
                &part_entries,
            ),
            CommBackend::P2pBlocking => coll::p2p_exchange_partitioned(
                rank,
                sub,
                env,
                P2pFlavor::Blocking,
                sends,
                &part_entries,
            ),
            CommBackend::AllToAllW => unreachable!("handled above"),
        };
        // Deposits stay a single index-ordered merge over every received
        // block — bit-identical to the monolithic path regardless of the
        // chunks' completion order.
        deposit_recvs(
            plan,
            spec,
            sub,
            to_box,
            &recvd,
            &mut new_data,
            &mut ctx.arenas[..w],
        );
        for (j, buf) in recvd.into_iter().enumerate() {
            ctx.arenas[j % w].give(buf);
        }
        times
    };
    let exit = rank.now();
    let ready = &times.part_ready[me_sub];

    // One MPI-call event per chunk, in chunk order on every rank (the
    // occurrence-matched pairing fftprof's critical path relies on). A
    // chunk's call spans posting to chunk completion; the last one also
    // covers the member's overall exit.
    for k in 0..k_eff {
        let start = part_entries[k];
        let end = if k + 1 == k_eff {
            exit.max(ready[k]).max(start)
        } else {
            ready[k].max(start)
        };
        trace.push(TraceEvent::MpiCall {
            reshape: reshape_label,
            routine: backend.routine(),
            start,
            dur: end - start,
            bytes: chunk_wire_b[k],
        });
    }

    // Transform-ahead: the next axis transform's lines, grouped by the
    // chunk whose arrival completes them. The first-call spike (if any)
    // lands on the first chunk that actually transforms lines, exactly as
    // the monolithic LocalFft arm would charge it.
    let line_runs = next_fft
        .map(|(_, axis)| spec.recv_line_runs(me_world, members, me_sub, k_eff, to_box, axis));
    let mut first_pending = match next_fft {
        Some((dist, axis)) => ctx.first_strided(dist, axis, dir),
        None => false,
    };

    // Per-chunk unpack kernels, each eligible as soon as its chunk's
    // receives have landed — the unpack/recv overlap — followed by that
    // chunk's butterflies (the transform-ahead compute-under-wire).
    for k in 0..k_eff {
        if backend.needs_pack() && chunk_unpack_b[k] > 0 {
            let ns =
                crate::plan::slowed_ns(slowdowns, me_world, plan.unpack_ns(km, chunk_unpack_b[k]));
            let start = (*gpu_clock).max(ready[k]);
            *gpu_clock = start + SimTime::from_ns(ns);
            trace.push(TraceEvent::Kernel {
                kind: KernelKind::Unpack,
                start,
                dur: SimTime::from_ns(ns),
            });
        }
        if let (Some((dist, axis)), Some(runs)) = (next_fft, line_runs.as_ref()) {
            let lines: usize = runs[k].iter().map(|&(lo, hi)| hi - lo).sum();
            if lines > 0 {
                let first = first_pending;
                first_pending = false;
                let ns = crate::plan::slowed_ns(
                    slowdowns,
                    me_world,
                    plan.local_fft_lines_ns(km, dist, axis, me_world, items, lines, first),
                );
                let start = (*gpu_clock).max(ready[k]);
                *gpu_clock = start + SimTime::from_ns(ns);
                trace.push(TraceEvent::Kernel {
                    kind: KernelKind::Fft1d {
                        axis,
                        contiguous: plan.fft_layout(axis)
                            == fftkern::kernel_model::LayoutKind::Contiguous,
                    },
                    start,
                    dur: SimTime::from_ns(ns),
                });
            }
        }
    }
    *data_ready = (*gpu_clock).max(exit);

    for (old, new) in data.iter_mut().zip(new_data) {
        let prev = std::mem::replace(old, new);
        ctx.arenas[0].give(prev);
    }

    // The real butterfly math for the consumed LocalFft step, on the
    // swapped-in arrays: every line in chunk order. Row transforms are
    // independent, so this is bit-identical to the full-batch pass.
    if let (Some((_, axis)), Some(runs)) = (next_fft, line_runs) {
        if !to_box.is_empty() {
            let flat: Vec<(usize, usize)> = runs.into_iter().flatten().collect(); // fftlint:allow(no-alloc-in-hot-path): O(lines) run list, built once per consumed chunk
            run_local_fft_lines(
                to_box,
                axis,
                &flat,
                data,
                dir,
                &mut ctx.arenas,
                ctx.baseline,
            );
        }
    }
}

/// Per-chunk (pack, unpack, wire) byte totals for one rank's reshape.
pub(crate) type ChunkBytes = (Vec<usize>, Vec<usize>, Vec<usize>);

/// Splits rank `me_world`'s reshape bytes into per-chunk (pack, unpack,
/// wire) totals under the global partition function — shared by the
/// functional executor and the analytic dry-run so both price identical
/// chunk kernels and identical per-chunk MPI-call byte counts.
///
/// `pad_bytes > 0` selects padded-`AllToAll` accounting: every block —
/// present or not, self included — is the group-maximum padded size, so
/// each chunk's pack/unpack/wire totals count whole padded blocks (this
/// intentionally differs from the monolithic path's amortized
/// `real_recv.max(total/2)` unpack estimate; only the chunked executor and
/// the chunked dry-run need to agree).
#[allow(clippy::too_many_arguments)]
pub(crate) fn chunk_byte_split(
    spec: &ReshapeSpec,
    me_world: usize,
    members: &[usize],
    me_sub: usize,
    k_eff: usize,
    is_p2p: bool,
    pad_bytes: usize,
    items: usize,
) -> ChunkBytes {
    use mpisim::pattern::partition_of_step;
    let p = members.len();
    let send_idx = spec.send_region_index(me_world, members);
    let recv_idx = spec.recv_region_index(me_world, members);
    let mut pack = vec![0usize; k_eff]; // fftlint:allow(no-alloc-in-hot-path): O(chunks) byte table
    let mut unpack = vec![0usize; k_eff]; // fftlint:allow(no-alloc-in-hot-path): O(chunks) byte table
    let mut wire = vec![0usize; k_eff]; // fftlint:allow(no-alloc-in-hot-path): O(chunks) byte table
    for j in 0..p {
        if pad_bytes > 0 {
            if j == me_sub {
                pack[0] += pad_bytes;
                unpack[0] += pad_bytes;
            } else {
                let sp = partition_of_step((j + p - me_sub) % p, p, k_eff);
                pack[sp] += pad_bytes;
                wire[sp] += pad_bytes;
                let rp = partition_of_step((me_sub + p - j) % p, p, k_eff);
                unpack[rp] += pad_bytes;
            }
            continue;
        }
        if j == me_sub {
            if !is_p2p {
                if let Some(r) = send_idx[j] {
                    pack[0] += r.volume() * crate::reshape::ELEM_BYTES;
                }
                if let Some(r) = recv_idx[j] {
                    unpack[0] += r.volume() * crate::reshape::ELEM_BYTES;
                }
            }
            continue;
        }
        if let Some(r) = send_idx[j] {
            let part = partition_of_step((j + p - me_sub) % p, p, k_eff);
            let b = r.volume() * crate::reshape::ELEM_BYTES;
            pack[part] += b;
            wire[part] += b;
        }
        if let Some(r) = recv_idx[j] {
            let part = partition_of_step((me_sub + p - j) % p, p, k_eff);
            unpack[part] += r.volume() * crate::reshape::ELEM_BYTES;
        }
    }
    for v in [&mut pack, &mut unpack, &mut wire] {
        for b in v.iter_mut() {
            *b *= items;
        }
    }
    (pack, unpack, wire)
}

/// Builds per-destination send buffers (items coalesced), in sub-comm member
/// order, packing straight from the local arrays into pooled buffers. P2P
/// skips the diagonal; padded Alltoall pads to the group maximum.
///
/// Destination `j` is packed by worker `j % arenas.len()` out of that
/// worker's arena ([`par_parts`](mpisim::par::par_parts) round-robin), so
/// the pack kernel parallelizes while per-arena take counts stay
/// deterministic; with one arena this degenerates to the serial loop.
// fftlint:hot — the pack kernel; send buffers must be pooled takes.
#[allow(clippy::too_many_arguments)]
fn build_sends(
    plan: &FftPlan,
    spec: &ReshapeSpec,
    sub: &Comm,
    from_box: &Box3,
    data: &[Vec<C64>],
    items: usize,
    arenas: &mut [ExecScratch],
) -> Vec<Vec<C64>> {
    let me_world = sub.member(sub.me());
    let is_p2p = plan.opts.backend.is_p2p();
    let pad_elems = if plan.opts.backend == CommBackend::AllToAll {
        // fftlint:allow(no-panic-in-lib): every world rank is placed in a group at build
        let gi = spec.group_of[me_world].expect("rank in group");
        spec.padded_block_bytes(&spec.groups[gi]) / crate::reshape::ELEM_BYTES
    } else {
        0
    };

    // Source→region index built once per reshape: one O(p + peers) merge
    // instead of an O(peers) `find` per destination.
    let members: Vec<usize> = (0..sub.size()).map(|j| sub.member(j)).collect(); // fftlint:allow(no-alloc-in-hot-path): O(group) member table per reshape
    let send_idx = spec.send_region_index(me_world, &members);

    let dests: Vec<usize> = (0..sub.size()).collect(); // fftlint:allow(no-alloc-in-hot-path): O(group) destination list per reshape
    mpisim::par::par_parts(arenas, dests, |_, pool, j| {
        let dst_world = members[j];
        if is_p2p && dst_world == me_world {
            return Vec::new(); // fftlint:allow(no-alloc-in-hot-path): capacity-0 sentinel, no heap
        }
        let mut buf = pool.take_empty();
        if let Some(region) = send_idx[j] {
            for item in data.iter().take(items) {
                from_box.extract_into(item, region, &mut buf);
            }
        }
        if plan.opts.backend == CommBackend::AllToAll {
            buf.resize(pad_elems * items, C64::ZERO);
        }
        buf
    })
}

/// Deposits received (coalesced) blocks into the new local arrays — the
/// unpack kernel. Batch items are disjoint destinations, so with multiple
/// arenas the items fan out across workers; each item replays every block
/// in sub-comm order, making the writes identical to the serial loop.
// fftlint:hot — the unpack kernel.
#[allow(clippy::too_many_arguments)]
fn deposit_recvs(
    plan: &FftPlan,
    spec: &ReshapeSpec,
    sub: &Comm,
    to_box: &Box3,
    recvd: &[Vec<C64>],
    new_data: &mut [Vec<C64>],
    arenas: &mut [ExecScratch],
) {
    let me_world = sub.member(sub.me());
    let is_p2p = plan.opts.backend.is_p2p();
    // Source→region index built once per reshape (O(p + peers)) instead of
    // the per-block linear `find` that made this loop O(peers²).
    let members: Vec<usize> = (0..sub.size()).map(|j| sub.member(j)).collect(); // fftlint:allow(no-alloc-in-hot-path): O(group) member table per reshape
    let recv_idx = spec.recv_region_index(me_world, &members);
    let units: Vec<&mut Vec<C64>> = new_data.iter_mut().collect(); // fftlint:allow(no-alloc-in-hot-path): O(items) unit list for the fan-out
    mpisim::par::par_parts(arenas, units, |b, _, item| {
        for (j, block) in recvd.iter().enumerate() {
            let src_world = members[j];
            if is_p2p && src_world == me_world {
                continue; // self block handled by the device copy
            }
            let Some(region) = recv_idx[j] else {
                // A non-empty block with no matching recv region means the
                // spec is malformed — fail loudly instead of silently
                // dropping received data (see ReshapeSpec::validate).
                assert!(
                    block.is_empty() || plan.opts.backend == CommBackend::AllToAll,
                    "reshape spec: rank {me_world} received {} elements from rank \
                     {src_world} but has no recv region for it",
                    block.len()
                );
                continue;
            };
            let vol = region.volume();
            to_box.deposit(item, region, &block[b * vol..(b + 1) * vol]);
        }
    });
}

/// Builds the per-member sub-array datatypes of the Alltoallw path: one
/// send type per destination (a region of `from_box`) and one recv type
/// per source (a region of `to_box`), empty where no flow exists. Shared
/// by the monolithic and partitioned W exchanges.
fn alltoallw_types(
    spec: &ReshapeSpec,
    sub: &Comm,
    from_box: &Box3,
    to_box: &Box3,
) -> (Vec<Subarray>, Vec<Subarray>) {
    let me_world = sub.member(sub.me());
    let empty_send = Subarray::new(from_box.shape(), [0, 0, 0], [0, 0, 0]);
    let empty_recv = Subarray::new(to_box.shape(), [0, 0, 0], [0, 0, 0]);

    let to_local = |owner: &Box3, region: &Box3| -> Subarray {
        Subarray::new(
            owner.shape(),
            region.shape(),
            [
                region.lo[0] - owner.lo[0],
                region.lo[1] - owner.lo[1],
                region.lo[2] - owner.lo[2],
            ],
        )
    };

    let send_types: Vec<Subarray> = (0..sub.size())
        .map(|j| {
            let dst_world = sub.member(j);
            spec.sends[me_world]
                .iter()
                .find(|(d, _)| *d == dst_world)
                .map(|(_, r)| to_local(from_box, r))
                .unwrap_or(empty_send)
        })
        .collect(); // fftlint:allow(no-alloc-in-hot-path): O(group) datatype table per exchange
    let recv_types: Vec<Subarray> = (0..sub.size())
        .map(|j| {
            let src_world = sub.member(j);
            spec.recvs[me_world]
                .iter()
                .find(|(s, _)| *s == src_world)
                .map(|(_, r)| to_local(to_box, r))
                .unwrap_or(empty_recv)
        })
        .collect(); // fftlint:allow(no-alloc-in-hot-path): O(group) datatype table per exchange
    (send_types, recv_types)
}

/// Runs the Alltoallw path: sub-array datatypes over the local arrays, no
/// caller-side packing. Batched transforms are restricted to one item here
/// (Algorithm 2 is not batched in the paper either).
#[allow(clippy::too_many_arguments)]
fn run_alltoallw(
    plan: &FftPlan,
    spec: &ReshapeSpec,
    sub: &Comm,
    env: PhaseEnv,
    rank: &mut Rank,
    from_box: &Box3,
    to_box: &Box3,
    data: &mut [Vec<C64>],
    new_data: &mut [Vec<C64>],
) {
    assert_eq!(
        plan.opts.batch, 1,
        "the Alltoallw backend supports batch == 1 only"
    );
    let (send_types, recv_types) = alltoallw_types(spec, sub, from_box, to_box);

    coll::alltoallw(
        rank,
        sub,
        env,
        &data[0],
        &send_types,
        &mut new_data[0],
        &recv_types,
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn exec_knobs_use_the_shared_clamping_parse() {
        // The accept/reject behavior (integers clamped ≥ 1, garbage
        // rejected with a warn-once at the call sites) lives in
        // `fftobs::env` now — pin the contract the executor relies on.
        assert_eq!(fftobs::env::parse_positive("4"), Some(4));
        assert_eq!(fftobs::env::parse_positive("0"), Some(1));
        assert_eq!(fftobs::env::parse_positive("fourteen"), None);
    }

    #[test]
    fn grain_gate_is_stable_within_a_process() {
        // Take and recycle sides of the executor both consult this; a
        // flapping value would unbalance the per-arena pools.
        assert_eq!(super::par_min_elems(), super::par_min_elems());
        assert!(super::par_min_elems() >= 1);
    }

    #[test]
    fn group_chunks_clamp_to_peer_count() {
        // Groups of 2 have one send step — never chunkable.
        assert_eq!(super::effective_group_chunks(4, 2), 1);
        assert_eq!(super::effective_group_chunks(4, 8), 4);
        // More chunks than peers clamps to p-1.
        assert_eq!(super::effective_group_chunks(16, 8), 7);
        assert_eq!(super::effective_group_chunks(1, 8), 1);
        // Degenerate groups.
        assert_eq!(super::effective_group_chunks(4, 1), 1);
        assert_eq!(super::effective_group_chunks(4, 0), 1);
    }

    #[test]
    fn chunk_byte_split_conserves_reshape_totals() {
        use crate::procgrid::Distribution;
        use crate::reshape::ReshapeSpec;
        let a = Distribution::new([8, 8, 8], [2, 2, 2], 8);
        let b = Distribution::new([8, 8, 8], [1, 2, 4], 8);
        let spec = ReshapeSpec::build(&a, &b);
        let members: Vec<usize> = (0..8).collect();
        let items = 3usize;
        for k_eff in [2usize, 4, 7] {
            for (me_sub, &me) in members.iter().enumerate() {
                for is_p2p in [false, true] {
                    let (pack, unpack, wire) = super::chunk_byte_split(
                        &spec, me, &members, me_sub, k_eff, is_p2p, 0, items,
                    );
                    let self_b = spec.bytes(me, me) * items;
                    let wire_total: usize = wire.iter().sum();
                    assert_eq!(wire_total, spec.offrank_send_bytes(me) * items);
                    let pack_total: usize = pack.iter().sum();
                    let unpack_total: usize = unpack.iter().sum();
                    if is_p2p {
                        assert_eq!(pack_total, wire_total);
                        assert_eq!(unpack_total, spec.offrank_recv_bytes(me) * items);
                    } else {
                        assert_eq!(pack_total, wire_total + self_b);
                        assert_eq!(unpack_total, spec.offrank_recv_bytes(me) * items + self_b);
                    }
                }
            }
        }
    }

    #[test]
    fn chunk_byte_split_padded_counts_whole_blocks() {
        use crate::procgrid::Distribution;
        use crate::reshape::ReshapeSpec;
        let a = Distribution::new([8, 8, 8], [2, 2, 2], 8);
        let b = Distribution::new([8, 8, 8], [1, 2, 4], 8);
        let spec = ReshapeSpec::build(&a, &b);
        let members: Vec<usize> = (0..8).collect();
        let pad = spec.padded_block_bytes(&members);
        let items = 2usize;
        let p = members.len();
        for k_eff in [2usize, 4, 7] {
            for (me_sub, &me) in members.iter().enumerate() {
                let (pack, unpack, wire) =
                    super::chunk_byte_split(&spec, me, &members, me_sub, k_eff, false, pad, items);
                // Padded accounting: every block is the group max — p packed
                // and unpacked blocks (self included), p − 1 on the wire.
                assert_eq!(pack.iter().sum::<usize>(), pad * p * items);
                assert_eq!(unpack.iter().sum::<usize>(), pad * p * items);
                assert_eq!(wire.iter().sum::<usize>(), pad * (p - 1) * items);
                // Chunk 0 always carries the self block.
                assert!(pack[0] >= pad * items && unpack[0] >= pad * items);
            }
        }
    }

    #[test]
    fn auto_chunks_prefers_one_when_nothing_overlaps() {
        // Zero comm and zero fft: splitting only adds latency.
        assert_eq!(super::auto_chunks_from_stages(1000, 0, 1000, 0, 500, 8), 1);
        // Latency-free with a dominant wire: more chunks always help, so
        // the ladder cap wins.
        assert_eq!(
            super::auto_chunks_from_stages(1000, 100_000, 1000, 0, 0, 8),
            8
        );
    }

    #[test]
    fn auto_chunks_finds_interior_optimum() {
        // Comparable stages with real per-chunk latency: the argmin lands
        // strictly inside the ladder.
        let k = super::auto_chunks_from_stages(40_000, 120_000, 40_000, 60_000, 9_000, 16);
        assert!(k > 1 && k < 16, "interior optimum, got {k}");
    }
}
