//! Replay-digest and pool-leak sanitizer tests (`--features sanitize`,
//! ISSUE 5).
//!
//! The determinism contract (DESIGN.md §12) in executable form:
//!
//! * the **timing digest** (per-rank simulated completion times + the full
//!   trace-event stream) is bit-identical across executor thread counts,
//!   scheduler memoization modes, harvest-order permutations, and reruns;
//! * the **full digest** (timing + pool statistics) is bit-identical
//!   across memoization modes and reruns of one thread count;
//! * summed over the world, every pooled-buffer take is matched by a
//!   deposit once `execute` returns (no leaks, no double deposits).

#![cfg(feature = "sanitize")]

use distfft::boxes::Box3;
use distfft::exec::{bind, execute, ExecCtx, PoolStats};
use distfft::plan::{CommBackend, FftOptions, FftPlan};
use distfft::sanitize::{full_digest, set_shuffle_seed, timing_digest};
use distfft::trace::Trace;
use distfft::Decomp;
use fftkern::{Direction, C64};
use mpisim::comm::{Comm, World, WorldOpts};
use simgrid::{MachineSpec, SimTime};

/// One world run: forward + inverse transform on every rank. Returns the
/// per-rank (completion time, combined trace), the per-rank pool stats,
/// and the per-rank pool take/deposit balance.
fn run(world_opts: WorldOpts, threads: usize) -> (Vec<(SimTime, Trace)>, Vec<PoolStats>, Vec<i64>) {
    let n = [16usize, 16, 8];
    let ranks = 4;
    let opts = FftOptions {
        decomp: Decomp::Pencils,
        backend: CommBackend::AllToAllV,
        ..FftOptions::default()
    };
    let plan = FftPlan::build(n, ranks, opts);
    let world = World::new(MachineSpec::testbox(2), ranks, world_opts);
    let whole = Box3::whole(n);
    let global: Vec<C64> = (0..n[0] * n[1] * n[2])
        .map(|i| C64::new((i as f64 * 0.37).sin(), (i as f64 * 0.61).cos()))
        .collect();
    let per_rank = world.run(|rank| {
        let comm = Comm::world(rank);
        let bound = bind(&plan, rank, &comm);
        let mut ctx = ExecCtx::with_threads(threads);
        let b = plan.dists[0].rank_box(rank.rank());
        let mut data = vec![whole.extract(&global, b)];
        let fwd = execute(
            &plan,
            &bound,
            &mut ctx,
            rank,
            &comm,
            &mut data,
            Direction::Forward,
        );
        let inv = execute(
            &plan,
            &bound,
            &mut ctx,
            rank,
            &comm,
            &mut data,
            Direction::Inverse,
        );
        let mut trace = fwd.trace;
        trace.events.extend(inv.trace.events);
        (
            (inv.total, trace),
            ctx.pool_stats(),
            ctx.outstanding_buffers(),
        )
    });
    let mut ranks_out = Vec::new();
    let mut pools = Vec::new();
    let mut outstanding = Vec::new();
    for (rt, p, o) in per_rank {
        ranks_out.push(rt);
        pools.push(p);
        outstanding.push(o);
    }
    (ranks_out, pools, outstanding)
}

fn jittery(sched_memo: bool, fused_meta: bool) -> WorldOpts {
    WorldOpts {
        noise_amplitude: 0.05,
        seed: 0xC0FFEE,
        sched_memo,
        fused_meta,
        ..WorldOpts::default()
    }
}

#[test]
fn replay_digests_are_invariant_where_the_contract_says_so() {
    // Memoized, cold-scheduler, and unfused worlds × serial and 4-thread
    // executors; plus a rerun and a shuffled-harvest run of the baseline.
    let (r11, p11, _) = run(jittery(true, true), 1);
    let (r11b, p11b, _) = run(jittery(true, true), 1);
    let (r10, p10, _) = run(jittery(false, true), 1);
    let (r1f, p1f, _) = run(jittery(true, false), 1);
    let (r41, p41, _) = run(jittery(true, true), 4);
    let (r40, p40, _) = run(jittery(false, false), 4);

    set_shuffle_seed(0x5EED);
    let (rs, ps, _) = run(jittery(true, true), 1);
    set_shuffle_seed(0);

    // Timing digest: one value across every configuration axis.
    let t = timing_digest(&r11);
    for (label, other) in [
        ("rerun", &r11b),
        ("sched_memo off", &r10),
        ("fused_meta off", &r1f),
        ("4 threads", &r41),
        ("4 threads, cold scheduler, unfused", &r40),
        ("shuffled harvest", &rs),
    ] {
        assert_eq!(
            t,
            timing_digest(other),
            "timing digest drifted under: {label}"
        );
    }

    // Full digest: invariant per thread count across reruns, memoization
    // modes, and harvest shuffling…
    let f1 = full_digest(&r11, &p11);
    assert_eq!(
        f1,
        full_digest(&r11b, &p11b),
        "full digest drifted on rerun"
    );
    assert_eq!(
        f1,
        full_digest(&r10, &p10),
        "sched_memo must not change pool behavior"
    );
    assert_eq!(
        f1,
        full_digest(&r1f, &p1f),
        "fused_meta must not change pool behavior"
    );
    assert_eq!(
        f1,
        full_digest(&rs, &ps),
        "harvest shuffling must not change pool behavior"
    );
    // …while thread counts legitimately differ only in the pool half.
    let f4 = full_digest(&r41, &p41);
    assert_eq!(f4, full_digest(&r40, &p40));
}

#[test]
fn every_pool_take_is_matched_by_a_deposit() {
    for threads in [1, 4] {
        let (_, _, outstanding) = run(jittery(true, true), threads);
        // Send buffers migrate between ranks inside an exchange, so the
        // leak invariant is on the world sum.
        let total: i64 = outstanding.iter().sum();
        assert_eq!(
            total, 0,
            "{threads}-thread world leaked pooled buffers (per-rank balance: {outstanding:?})"
        );
    }
}
