//! Failure injection at the distfft level: degraded-GPU behavior.

use distfft::dryrun::{DryRunOpts, DryRunner};
use distfft::plan::{FftOptions, FftPlan};
use fftkern::Direction;
use simgrid::MachineSpec;

#[test]
fn slowdown_scales_only_the_target_ranks_kernels() {
    let machine = MachineSpec::summit();
    let plan = FftPlan::build([32, 32, 32], 12, FftOptions::default());

    let kernels_of = |slow: Vec<(usize, f64)>, rank: usize| -> u64 {
        let mut r = DryRunner::new(
            &plan,
            &machine,
            DryRunOpts {
                compute_slowdown: slow,
                ..DryRunOpts::default()
            },
        );
        let rep = r.run(Direction::Forward);
        rep.traces[rank]
            .kernel_breakdown()
            .values()
            .map(|t| t.as_ns())
            .sum()
    };

    let healthy = kernels_of(vec![], 5);
    let slowed = kernels_of(vec![(5, 4.0)], 5);
    let bystander = kernels_of(vec![(5, 4.0)], 2);

    // The straggler's kernel time scales ~4x (rounding slack allowed).
    let ratio = slowed as f64 / healthy as f64;
    assert!(
        (3.5..=4.5).contains(&ratio),
        "straggler kernel ratio {ratio:.2}, expected ~4"
    );
    // Other ranks' own kernel time is untouched.
    assert_eq!(bystander, kernels_of(vec![], 2));
}

#[test]
fn multiple_stragglers_compound() {
    let machine = MachineSpec::summit();
    let plan = FftPlan::build([32, 32, 32], 12, FftOptions::default());
    let makespan = |slow: Vec<(usize, f64)>| {
        let mut r = DryRunner::new(
            &plan,
            &machine,
            DryRunOpts {
                compute_slowdown: slow,
                ..DryRunOpts::default()
            },
        );
        r.run(Direction::Forward).makespan()
    };
    let none = makespan(vec![]);
    let one = makespan(vec![(0, 8.0)]);
    let two = makespan(vec![(0, 8.0), (7, 8.0)]);
    assert!(one > none);
    assert!(two >= one);
}
