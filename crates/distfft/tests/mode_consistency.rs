//! Functional-mode vs analytic-mode consistency.
//!
//! The two executors share the kernel model and the schedule walkers, so for
//! the same plan and options the simulated times — per rank, per MPI call,
//! per kernel — must agree *exactly*. Every large-scale figure in the
//! reproduction rests on this property.

use distfft::dryrun::{DryRunOpts, DryRunner};
use distfft::exec::{bind, execute, ExecCtx};
use distfft::plan::{CommBackend, FftOptions, FftPlan, IoLayout};
use distfft::trace::Trace;
use distfft::Decomp;
use fftkern::{Direction, C64};
use mpisim::comm::{Comm, World, WorldOpts};
use mpisim::MpiDistro;
use simgrid::{MachineSpec, SimTime};

fn field(plan: &FftPlan, dist_idx: usize, rank: usize) -> Vec<C64> {
    let b = plan.dists[dist_idx].rank_box(rank);
    (0..b.volume())
        .map(|i| C64::new(i as f64 * 0.01, -(i as f64) * 0.02))
        .collect()
}

/// Runs `rounds` forward+inverse pairs both ways and asserts exact equality
/// of per-rank completion times and per-rank MPI/kernel traces.
fn check_consistency(
    machine: MachineSpec,
    n: [usize; 3],
    nranks: usize,
    opts: FftOptions,
    wopts: WorldOpts,
    rounds: usize,
) {
    let plan = FftPlan::build(n, nranks, opts);

    // Functional.
    let world = World::new(machine.clone(), nranks, wopts.clone());
    let functional: Vec<(Vec<SimTime>, Vec<Trace>)> = {
        let out = world.run(|rank| {
            let comm = Comm::world(rank);
            let bound = bind(&plan, rank, &comm);
            let mut ctx = ExecCtx::new();
            let mut per_round = Vec::new();
            for _ in 0..rounds {
                let mut data = vec![field(&plan, 0, rank.rank()); plan.opts.batch];
                let f = execute(
                    &plan,
                    &bound,
                    &mut ctx,
                    rank,
                    &comm,
                    &mut data,
                    Direction::Forward,
                );
                let i = execute(
                    &plan,
                    &bound,
                    &mut ctx,
                    rank,
                    &comm,
                    &mut data,
                    Direction::Inverse,
                );
                per_round.push((f.total, f.trace, i.total, i.trace));
            }
            per_round
        });
        // Transpose to per-round (totals per rank, traces per rank).
        (0..rounds)
            .flat_map(|round| {
                let fwd: (Vec<SimTime>, Vec<Trace>) = (
                    out.iter().map(|r| r[round].0).collect(),
                    out.iter().map(|r| r[round].1.clone()).collect(),
                );
                let inv: (Vec<SimTime>, Vec<Trace>) = (
                    out.iter().map(|r| r[round].2).collect(),
                    out.iter().map(|r| r[round].3.clone()).collect(),
                );
                [fwd, inv]
            })
            .collect()
    };

    // Analytic.
    let dopts = DryRunOpts {
        gpu_aware: wopts.gpu_aware,
        distro: wopts.distro,
        noise_amplitude: wopts.noise_amplitude,
        seed: wopts.seed,
        compute_slowdown: wopts.compute_slowdown.clone(),
        ..DryRunOpts::default()
    };
    let mut runner = DryRunner::new(&plan, &machine, dopts);
    for (round, (f_totals, f_traces)) in functional.iter().enumerate() {
        let dir = if round % 2 == 0 {
            Direction::Forward
        } else {
            Direction::Inverse
        };
        let report = runner.run(dir);
        assert_eq!(
            report.per_rank_total, *f_totals,
            "per-rank totals diverge at transform {round} ({dir:?})"
        );
        for (r, (ft, dt)) in f_traces.iter().zip(&report.traces).enumerate() {
            assert_eq!(
                ft.events, dt.events,
                "trace diverges at transform {round}, rank {r}"
            );
        }
    }
}

fn summit_opts() -> WorldOpts {
    WorldOpts::default()
}

#[test]
fn pencils_alltoallv_consistent() {
    check_consistency(
        MachineSpec::summit(),
        [8, 8, 8],
        12,
        FftOptions::default(),
        summit_opts(),
        2,
    );
}

#[test]
fn padded_alltoall_consistent() {
    check_consistency(
        MachineSpec::summit(),
        [10, 9, 8],
        12,
        FftOptions {
            backend: CommBackend::AllToAll,
            ..FftOptions::default()
        },
        summit_opts(),
        1,
    );
}

#[test]
fn alltoallw_consistent_on_both_distros() {
    for distro in [MpiDistro::SpectrumMpi, MpiDistro::MvapichGdr] {
        check_consistency(
            MachineSpec::summit(),
            [8, 8, 8],
            6,
            FftOptions {
                backend: CommBackend::AllToAllW,
                ..FftOptions::default()
            },
            WorldOpts {
                distro,
                ..WorldOpts::default()
            },
            1,
        );
    }
}

#[test]
fn p2p_flavors_consistent() {
    for backend in [CommBackend::P2p, CommBackend::P2pBlocking] {
        check_consistency(
            MachineSpec::summit(),
            [8, 8, 8],
            12,
            FftOptions {
                backend,
                ..FftOptions::default()
            },
            summit_opts(),
            1,
        );
    }
}

#[test]
fn no_gpu_aware_consistent() {
    check_consistency(
        MachineSpec::summit(),
        [8, 8, 8],
        12,
        FftOptions::default(),
        WorldOpts {
            gpu_aware: false,
            ..WorldOpts::default()
        },
        1,
    );
}

#[test]
fn slabs_consistent() {
    check_consistency(
        MachineSpec::summit(),
        [8, 8, 8],
        8,
        FftOptions {
            decomp: Decomp::Slabs,
            ..FftOptions::default()
        },
        summit_opts(),
        1,
    );
}

#[test]
fn matching_io_consistent() {
    check_consistency(
        MachineSpec::summit(),
        [8, 8, 8],
        6,
        FftOptions {
            io: IoLayout::Matching,
            ..FftOptions::default()
        },
        summit_opts(),
        1,
    );
}

#[test]
fn batched_pipeline_consistent() {
    check_consistency(
        MachineSpec::spock(),
        [8, 8, 8],
        8,
        FftOptions {
            batch: 6,
            pipeline_chunks: 3,
            ..FftOptions::default()
        },
        summit_opts(),
        1,
    );
}

#[test]
fn shrink_consistent() {
    check_consistency(
        MachineSpec::summit(),
        [8, 8, 8],
        12,
        FftOptions {
            shrink_to: Some(4),
            ..FftOptions::default()
        },
        summit_opts(),
        1,
    );
}

#[test]
fn jittered_runs_consistent() {
    check_consistency(
        MachineSpec::summit(),
        [8, 8, 8],
        12,
        FftOptions::default(),
        WorldOpts {
            noise_amplitude: 0.04,
            seed: 1234,
            ..WorldOpts::default()
        },
        2,
    );
}

#[test]
fn straggler_injection_consistent() {
    // Failure injection: rank 3's GPU runs 5x slower. Both executors must
    // agree on the (much later) completion times.
    check_consistency(
        MachineSpec::summit(),
        [8, 8, 8],
        12,
        FftOptions::default(),
        WorldOpts {
            compute_slowdown: vec![(3, 5.0)],
            ..WorldOpts::default()
        },
        2,
    );
}

#[test]
fn chunked_reshapes_consistent() {
    // The pipelined reshape path (ISSUE 7): 8 ranks with brick I/O put a
    // group of 8 in the boundary reshapes (chunked) next to pencil-stage
    // groups of 2 (monolithic) — both executors must agree event-by-event
    // on the mixed schedule, for every partitionable backend.
    for backend in [
        CommBackend::AllToAllV,
        CommBackend::P2p,
        CommBackend::P2pBlocking,
    ] {
        check_consistency(
            MachineSpec::summit(),
            [8, 8, 8],
            8,
            FftOptions {
                backend,
                reshape_chunks: 4,
                ..FftOptions::default()
            },
            summit_opts(),
            2,
        );
    }
}

#[test]
fn chunked_reshapes_consistent_under_jitter_and_stragglers() {
    // Chunk arrival order reshuffles under per-message jitter and a slow
    // GPU; the partitioned walker and the functional exchange must still
    // agree exactly.
    check_consistency(
        MachineSpec::summit(),
        [8, 8, 8],
        8,
        FftOptions {
            reshape_chunks: 7,
            ..FftOptions::default()
        },
        WorldOpts {
            noise_amplitude: 0.04,
            seed: 77,
            compute_slowdown: vec![(2, 3.0)],
            ..WorldOpts::default()
        },
        2,
    );
}

#[test]
fn chunked_padded_alltoall_consistent() {
    // ISSUE 9: the padded AllToAll backend chunks via the partitioned
    // walker with whole padded blocks per chunk. Uneven extents force
    // real padding; both executors must agree event-by-event, including
    // on the transform-ahead butterfly chunks.
    check_consistency(
        MachineSpec::summit(),
        [10, 9, 8],
        8,
        FftOptions {
            backend: CommBackend::AllToAll,
            reshape_chunks: 4,
            ..FftOptions::default()
        },
        summit_opts(),
        2,
    );
}

#[test]
fn chunked_alltoallw_consistent_on_both_distros() {
    // The sub-array AllToAllW backend has no pack/unpack kernels; the
    // partitioned walker charges its per-chunk datatype exchanges
    // directly. Both MPI distro models must agree with the functional
    // executor.
    for distro in [MpiDistro::SpectrumMpi, MpiDistro::MvapichGdr] {
        check_consistency(
            MachineSpec::summit(),
            [8, 8, 8],
            8,
            FftOptions {
                backend: CommBackend::AllToAllW,
                reshape_chunks: 4,
                ..FftOptions::default()
            },
            WorldOpts {
                distro,
                ..WorldOpts::default()
            },
            2,
        );
    }
}

#[test]
fn chunked_padded_backends_consistent_under_jitter_and_stragglers() {
    // Chunk arrival order reshuffles under per-message jitter and a slow
    // GPU; the padded partitioned walkers must still agree exactly.
    for backend in [CommBackend::AllToAll, CommBackend::AllToAllW] {
        check_consistency(
            MachineSpec::summit(),
            [8, 8, 8],
            8,
            FftOptions {
                backend,
                reshape_chunks: 7,
                ..FftOptions::default()
            },
            WorldOpts {
                noise_amplitude: 0.04,
                seed: 77,
                compute_slowdown: vec![(2, 3.0)],
                ..WorldOpts::default()
            },
            2,
        );
    }
}

#[test]
fn auto_chunking_consistent() {
    // `reshape_chunks: 0` = auto: the model-driven k must be derived
    // identically (group-level aggregates only) by both executors.
    for backend in [
        CommBackend::AllToAllV,
        CommBackend::AllToAll,
        CommBackend::AllToAllW,
        CommBackend::P2p,
    ] {
        check_consistency(
            MachineSpec::summit(),
            [8, 8, 8],
            8,
            FftOptions {
                backend,
                reshape_chunks: 0,
                ..FftOptions::default()
            },
            summit_opts(),
            2,
        );
    }
}

#[test]
fn chunked_batched_pipeline_consistent() {
    // Chunked reshapes compose with the batched transform pipeline.
    check_consistency(
        MachineSpec::spock(),
        [8, 8, 8],
        8,
        FftOptions {
            batch: 4,
            pipeline_chunks: 2,
            reshape_chunks: 3,
            ..FftOptions::default()
        },
        summit_opts(),
        1,
    );
}

#[test]
fn contiguous_fft_mode_consistent() {
    check_consistency(
        MachineSpec::summit(),
        [8, 8, 8],
        12,
        FftOptions {
            contiguous_fft: true,
            backend: CommBackend::AllToAll,
            ..FftOptions::default()
        },
        summit_opts(),
        2,
    );
}
