//! The [`ExecCtx::on_run_completion`] emit hook: fires once per
//! `execute`, reports consistent bookkeeping, and never changes results
//! or simulated timing — it is the attachment point the performance
//! ledger (fftledger) rides on, so "observer only" is a contract.

use std::sync::{Arc, Mutex};

use distfft::boxes::Box3;
use distfft::exec::{bind, execute, ExecCtx, ExecRunSummary};
use distfft::plan::{FftOptions, FftPlan};
use fftkern::{Direction, C64};
use mpisim::comm::{Comm, World, WorldOpts};
use simgrid::{MachineSpec, SimTime};

const N: [usize; 3] = [8, 8, 8];
const RANKS: usize = 4;

/// Forward+inverse on every rank; `hook = true` installs a summary
/// collector. Returns (per-rank output bits, per-rank completion time,
/// collected summaries in rank-major order).
#[allow(clippy::type_complexity)]
fn run(hook: bool) -> (Vec<Vec<(u64, u64)>>, Vec<SimTime>, Vec<Vec<ExecRunSummary>>) {
    let plan = FftPlan::build(N, RANKS, FftOptions::default());
    let world = World::new(MachineSpec::testbox(2), RANKS, WorldOpts::default());
    let whole = Box3::whole(N);
    let global: Vec<C64> = (0..N[0] * N[1] * N[2])
        .map(|i| C64::new((i as f64 * 0.37).sin(), (i as f64 * 0.53).cos()))
        .collect();
    let plan_ref = &plan;
    let per_rank = world.run(move |rank| {
        let comm = Comm::world(rank);
        let bound = bind(plan_ref, rank, &comm);
        let mut ctx = ExecCtx::with_threads(1);
        let seen: Arc<Mutex<Vec<ExecRunSummary>>> = Arc::new(Mutex::new(Vec::new()));
        if hook {
            let sink = Arc::clone(&seen);
            ctx.on_run_completion(Arc::new(move |s: &ExecRunSummary| {
                sink.lock().unwrap().push(*s);
            }));
        }
        let b = plan_ref.dists[0].rank_box(rank.rank());
        let mut data = vec![whole.extract(&global, b)];
        let _ = execute(
            plan_ref,
            &bound,
            &mut ctx,
            rank,
            &comm,
            &mut data,
            Direction::Forward,
        );
        let rep = execute(
            plan_ref,
            &bound,
            &mut ctx,
            rank,
            &comm,
            &mut data,
            Direction::Inverse,
        );
        assert_eq!(ctx.runs(), 2);
        let bits: Vec<(u64, u64)> = data[0]
            .iter()
            .map(|c| (c.re.to_bits(), c.im.to_bits()))
            .collect();
        let collected = seen.lock().unwrap().clone();
        (bits, rep.total, collected)
    });
    let mut bits = Vec::new();
    let mut times = Vec::new();
    let mut summaries = Vec::new();
    for (b, t, s) in per_rank {
        bits.push(b);
        times.push(t);
        summaries.push(s);
    }
    (bits, times, summaries)
}

#[test]
fn hook_fires_once_per_run_with_consistent_bookkeeping() {
    let (_, _, summaries) = run(true);
    let elems = N[0] * N[1] * N[2] / RANKS;
    for (rank, per_run) in summaries.iter().enumerate() {
        assert_eq!(per_run.len(), 2, "rank {rank}: one summary per execute");
        assert_eq!(per_run[0].seq, 1);
        assert_eq!(per_run[1].seq, 2);
        for s in per_run {
            assert_eq!(s.elems, elems);
            assert_eq!(s.threads, 1);
            assert!(s.elapsed_ns > 0, "a transform takes simulated time");
        }
        // Pool stats are cumulative: the second run has seen at least as
        // many takes as the first, and the warm run mostly hits.
        let (p0, p1) = (per_run[0].pool, per_run[1].pool);
        assert!(p1.hits + p1.misses >= p0.hits + p0.misses);
        assert!(p1.hits > p0.hits, "warm run must recycle buffers");
    }
}

#[test]
fn hook_is_a_pure_observer() {
    // Results and simulated completion times must be bit-identical with
    // and without the hook installed.
    let (bits_off, times_off, _) = run(false);
    let (bits_on, times_on, _) = run(true);
    assert_eq!(bits_off, bits_on, "hook must not change data");
    assert_eq!(times_off, times_on, "hook must not change timing");
}
