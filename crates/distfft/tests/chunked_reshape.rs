//! Chunked-reshape invariance (ISSUE 7).
//!
//! The pipelined reshape path (`reshape_chunks > 1`, DESIGN.md §14) is a
//! *timing* optimization: per-peer chunks overlap pack, send, and unpack,
//! but the same buffers go on the wire and one index-ordered deposit pass
//! merges them — so distributed output must stay bit-identical to the
//! monolithic path across chunk counts {1, 2, peers/2, peers, auto} ×
//! executor thread counts {1, 4}, over pow2, mixed-radix, and Bluestein
//! grids, on both partitionable backends. The transform-ahead schedule
//! (ISSUE 9) additionally runs next-axis butterflies line-by-line as
//! chunks land, so this matrix also pins that per-line execution matches
//! the whole-batch kernel bit for bit. Simulated times must be invariant to
//! thread count *within* a chunk setting, and (unless the
//! `FFT_RESHAPE_CHUNKS` env override flattens every config to one
//! setting) chunking must actually change the schedule somewhere.

use distfft::boxes::Box3;
use distfft::exec::{bind, execute, ExecCtx};
use distfft::plan::{CommBackend, FftOptions, FftPlan};
use fftkern::{Direction, C64};
use mpisim::comm::{Comm, World, WorldOpts};
use simgrid::{MachineSpec, SimTime};

/// Pow2 axes (Stockham), smooth non-pow2 axes (mixed-radix), and a prime
/// axis (Bluestein) — the same grid triple `simd_invariance` sweeps.
const GRIDS: [[usize; 3]; 3] = [[16, 16, 8], [12, 10, 14], [13, 16, 8]];

/// 8 ranks with the default brick I/O layout: the brick→pencil reshape
/// exchanges in one group of 8, so per-group chunk counts up to 7 engage
/// (pencil-stage groups of 2 stay monolithic — the mixed case).
const RANKS: usize = 8;

/// True when the `FFT_RESHAPE_CHUNKS` env override is active: it beats
/// `FftOptions::reshape_chunks` everywhere, collapsing every config in
/// this file to one setting (bit-identity still must hold; schedule
/// *difference* assertions are skipped).
fn chunks_env_forced() -> bool {
    fftobs::env::is_set("FFT_RESHAPE_CHUNKS")
}

/// Distributed forward+inverse at one (backend, chunks, threads) setting;
/// returns per-rank final data bits and completion times.
#[allow(clippy::type_complexity)]
fn run(
    n: [usize; 3],
    backend: CommBackend,
    chunks: usize,
    threads: usize,
) -> (Vec<Vec<(u64, u64)>>, Vec<SimTime>) {
    let opts = FftOptions {
        backend,
        reshape_chunks: chunks,
        ..FftOptions::default()
    };
    let plan = FftPlan::build(n, RANKS, opts);
    let world = World::new(MachineSpec::testbox(2), RANKS, WorldOpts::default());
    let whole = Box3::whole(n);
    let global: Vec<C64> = (0..n[0] * n[1] * n[2])
        .map(|i| C64::new((i as f64 * 0.43).sin(), (i as f64 * 0.29).cos()))
        .collect();
    let plan_ref = &plan;
    let per_rank = world.run(move |rank| {
        let comm = Comm::world(rank);
        let bound = bind(plan_ref, rank, &comm);
        let mut ctx = ExecCtx::with_threads(threads);
        let b = plan_ref.dists[0].rank_box(rank.rank());
        let mut data = vec![whole.extract(&global, b)];
        let _ = execute(
            plan_ref,
            &bound,
            &mut ctx,
            rank,
            &comm,
            &mut data,
            Direction::Forward,
        );
        let rep = execute(
            plan_ref,
            &bound,
            &mut ctx,
            rank,
            &comm,
            &mut data,
            Direction::Inverse,
        );
        let bits: Vec<(u64, u64)> = data[0]
            .iter()
            .map(|c| (c.re.to_bits(), c.im.to_bits()))
            .collect();
        (bits, rep.total)
    });
    per_rank.into_iter().unzip()
}

#[test]
fn chunked_output_bit_identical_to_monolithic() {
    for backend in [CommBackend::AllToAllV, CommBackend::P2p] {
        let mut any_schedule_diff = false;
        for n in GRIDS {
            let (ref_bits, ref_times) = run(n, backend, 1, 1);
            // 2, peers/2, and peers for the 8-rank boundary group (the
            // larger two clamp per group to `size - 1`, exercising mixed
            // chunked/monolithic groups within one reshape), plus the
            // `0 = auto` sentinel whose model-picked k must be just as
            // invariant.
            for chunks in [2usize, 4, 8, 0] {
                let (bits, times) = run(n, backend, chunks, 1);
                assert_eq!(
                    bits, ref_bits,
                    "data diverged: n={n:?} backend={backend:?} chunks={chunks}"
                );
                any_schedule_diff |= times != ref_times;
                let (bits_mt, times_mt) = run(n, backend, chunks, 4);
                assert_eq!(
                    bits_mt, ref_bits,
                    "data diverged under threads: n={n:?} backend={backend:?} chunks={chunks}"
                );
                assert_eq!(
                    times_mt, times,
                    "simulated times must not depend on executor threads: \
                     n={n:?} backend={backend:?} chunks={chunks}"
                );
            }
        }
        if !chunks_env_forced() {
            assert!(
                any_schedule_diff,
                "chunking never changed the schedule for {backend:?} — the pipelined path \
                 did not engage"
            );
        }
    }
}

#[cfg(feature = "sanitize")]
mod digests {
    use super::*;
    use distfft::sanitize::{full_digest, timing_digest};
    use distfft::trace::Trace;

    /// The sanitize-suite world (jitter on) at one (chunks, threads)
    /// setting: per-rank (completion, trace) + pool stats.
    fn run_digest(
        chunks: usize,
        threads: usize,
    ) -> (Vec<(SimTime, Trace)>, Vec<distfft::exec::PoolStats>) {
        let n = [16usize, 16, 8];
        let opts = FftOptions {
            backend: CommBackend::AllToAllV,
            reshape_chunks: chunks,
            ..FftOptions::default()
        };
        let plan = FftPlan::build(n, RANKS, opts);
        let world_opts = WorldOpts {
            noise_amplitude: 0.05,
            seed: 0xC0FFEE,
            ..WorldOpts::default()
        };
        let world = World::new(MachineSpec::testbox(2), RANKS, world_opts);
        let whole = Box3::whole(n);
        let global: Vec<C64> = (0..n[0] * n[1] * n[2])
            .map(|i| C64::new((i as f64 * 0.37).sin(), (i as f64 * 0.61).cos()))
            .collect();
        let plan_ref = &plan;
        let per_rank = world.run(move |rank| {
            let comm = Comm::world(rank);
            let bound = bind(plan_ref, rank, &comm);
            let mut ctx = ExecCtx::with_threads(threads);
            let b = plan_ref.dists[0].rank_box(rank.rank());
            let mut data = vec![whole.extract(&global, b)];
            let fwd = execute(
                plan_ref,
                &bound,
                &mut ctx,
                rank,
                &comm,
                &mut data,
                Direction::Forward,
            );
            let inv = execute(
                plan_ref,
                &bound,
                &mut ctx,
                rank,
                &comm,
                &mut data,
                Direction::Inverse,
            );
            let mut trace = fwd.trace;
            trace.events.extend(inv.trace.events);
            ((inv.total, trace), ctx.pool_stats())
        });
        per_rank.into_iter().unzip()
    }

    #[test]
    fn chunked_replay_digests_invariant_across_threads() {
        // The chunked schedule is deterministic: timing digests must not
        // move with the executor thread count, and a repeated run must
        // reproduce the full digest (timing + pool accounting) exactly —
        // including under the transform-ahead auto sentinel (chunks = 0).
        for chunks in [1usize, 4, 0] {
            let (r1, p1) = run_digest(chunks, 1);
            let (r4, _) = run_digest(chunks, 4);
            assert_eq!(
                timing_digest(&r1),
                timing_digest(&r4),
                "timing digest drifted with threads at chunks={chunks}"
            );
            let (r1b, p1b) = run_digest(chunks, 1);
            assert_eq!(
                full_digest(&r1, &p1),
                full_digest(&r1b, &p1b),
                "full digest not reproducible at chunks={chunks}"
            );
        }
    }
}
