//! The heFFTe-style `Fft3d` facade: scaling conventions and round trips.

use distfft::api::{Fft3d, Scale};
use distfft::plan::FftOptions;
use distfft::Box3;
use fftkern::complex::max_abs_diff;
use fftkern::C64;
use mpisim::comm::{Comm, World, WorldOpts};
use simgrid::MachineSpec;

fn field(n: usize) -> Vec<C64> {
    (0..n)
        .map(|i| C64::new((0.19 * i as f64).sin(), (0.41 * i as f64).cos()))
        .collect()
}

#[test]
fn full_scaled_roundtrip_is_identity() {
    let n = [8usize, 8, 8];
    let ranks = 6;
    let world = World::new(MachineSpec::testbox(2), ranks, WorldOpts::default());
    let errs = world.run(|rank| {
        let comm = Comm::world(rank);
        let mut fft = Fft3d::new(n, FftOptions::default(), rank, &comm);
        let orig = field(fft.input_len());
        let mut data = vec![orig.clone()];
        fft.forward(rank, &comm, &mut data, Scale::None);
        assert_eq!(data[0].len(), fft.output_len());
        fft.backward(rank, &comm, &mut data, Scale::Full);
        assert!(fft.last_time.as_ns() > 0);
        assert!(!fft.last_trace.mpi_call_durations().is_empty());
        max_abs_diff(&data[0], &orig)
    });
    for e in errs {
        assert!(e < 1e-10, "roundtrip error {e}");
    }
}

#[test]
fn symmetric_scaling_is_unitary() {
    // Forward+backward with Symmetric on both = identity; and a single
    // Symmetric forward preserves the L2 norm (Parseval with 1/sqrt(N)).
    let n = [8usize, 4, 4];
    let ranks = 4;
    let world = World::new(MachineSpec::testbox(2), ranks, WorldOpts::default());
    let results = world.run(|rank| {
        let comm = Comm::world(rank);
        let mut fft = Fft3d::new(n, FftOptions::default(), rank, &comm);
        let orig = field(fft.input_len());
        let in_norm: f64 = orig.iter().map(|v| v.norm_sqr()).sum();

        let mut data = vec![orig.clone()];
        fft.forward(rank, &comm, &mut data, Scale::Symmetric);
        let out_norm: f64 = data[0].iter().map(|v| v.norm_sqr()).sum();
        fft.backward(rank, &comm, &mut data, Scale::Symmetric);
        let err = max_abs_diff(&data[0], &orig);
        (in_norm, out_norm, err)
    });
    // Per-rank norms redistribute across ranks; compare the global sums.
    let global_in: f64 = results.iter().map(|(i, _, _)| i).sum();
    let global_out: f64 = results.iter().map(|(_, o, _)| o).sum();
    assert!(
        (global_in - global_out).abs() < 1e-8 * global_in.max(1.0),
        "unitary transform must preserve energy: {global_in} vs {global_out}"
    );
    for (_, _, e) in results {
        assert!(e < 1e-10, "symmetric roundtrip error {e}");
    }
}

#[test]
fn facade_output_layout_matches_plan() {
    let n = [8usize, 8, 8];
    let ranks = 4;
    let world = World::new(MachineSpec::testbox(2), ranks, WorldOpts::default());
    let oks = world.run(|rank| {
        let comm = Comm::world(rank);
        let fft = Fft3d::new(n, FftOptions::default(), rank, &comm);
        let me = rank.rank();
        let in_box: Box3 = *fft.plan().dists[0].rank_box(me);
        fft.input_len() == in_box.volume()
    });
    assert!(oks.into_iter().all(|x| x));
}
