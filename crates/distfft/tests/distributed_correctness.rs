//! Distributed-transform correctness: every decomposition × backend
//! combination must compute exactly the same 3-D FFT as the local engine
//! (which is itself validated against the naive DFT).

use distfft::exec::{bind, execute, ExecCtx};
use distfft::plan::{CommBackend, FftOptions, FftPlan, IoLayout};
use distfft::Decomp;
use fftkern::complex::max_abs_diff;
use fftkern::{Direction, Plan3d, C64};
use mpisim::comm::{Comm, World, WorldOpts};
use simgrid::MachineSpec;

/// Deterministic pseudo-random field.
fn field(n: [usize; 3]) -> Vec<C64> {
    (0..n[0] * n[1] * n[2])
        .map(|i| {
            let x = i as f64;
            C64::new((x * 0.37).sin() + 0.1, (x * 0.91).cos() - 0.2)
        })
        .collect()
}

/// Scatters the global field into per-rank local arrays of distribution `d`.
fn scatter(global: &[C64], plan: &FftPlan, dist_idx: usize, rank: usize) -> Vec<C64> {
    let b = plan.dists[dist_idx].rank_box(rank);
    let whole = distfft::Box3::whole(plan.n);
    whole.extract(global, b)
}

/// Gathers per-rank local arrays back into a global field.
fn gather(locals: &[Vec<C64>], plan: &FftPlan, dist_idx: usize) -> Vec<C64> {
    let whole = distfft::Box3::whole(plan.n);
    let mut global = vec![C64::ZERO; plan.total_elems()];
    for (r, local) in locals.iter().enumerate() {
        let b = plan.dists[dist_idx].rank_box(r);
        if !b.is_empty() {
            whole.deposit(&mut global, b, local);
        }
    }
    global
}

/// Runs a forward transform of `n` over `nranks` ranks and compares with the
/// local 3-D FFT of the same field.
fn check_forward(n: [usize; 3], nranks: usize, opts: FftOptions) {
    let plan = FftPlan::build(n, nranks, opts);
    let world = World::new(MachineSpec::testbox(2), nranks, WorldOpts::default());
    let global = field(n);

    let locals = world.run(|rank| {
        let comm = Comm::world(rank);
        let bound = bind(&plan, rank, &comm);
        let mut ctx = ExecCtx::new();
        let mut data = vec![scatter(&global, &plan, 0, rank.rank())];
        let res = execute(
            &plan,
            &bound,
            &mut ctx,
            rank,
            &comm,
            &mut data,
            Direction::Forward,
        );
        assert!(res.total.as_ns() > 0 || plan.total_elems() == 0);
        data.remove(0)
    });

    let got = gather(&locals, &plan, plan.dists.len() - 1);
    let mut expect = global;
    Plan3d::new(n[0], n[1], n[2]).execute(&mut expect, Direction::Forward);
    let err = max_abs_diff(&got, &expect);
    let scale = plan.total_elems() as f64;
    assert!(
        err < 1e-8 * scale,
        "forward mismatch: err={err:.3e} for n={n:?} ranks={nranks} opts={:?}",
        plan.opts
    );
}

/// Forward then inverse must reproduce the input scaled by N.
fn check_roundtrip(n: [usize; 3], nranks: usize, opts: FftOptions) {
    let plan = FftPlan::build(n, nranks, opts);
    let world = World::new(MachineSpec::testbox(2), nranks, WorldOpts::default());
    let global = field(n);
    let batch = plan.opts.batch;

    let locals = world.run(|rank| {
        let comm = Comm::world(rank);
        let bound = bind(&plan, rank, &comm);
        let mut ctx = ExecCtx::new();
        let mine = scatter(&global, &plan, 0, rank.rank());
        let mut data = vec![mine; batch];
        execute(
            &plan,
            &bound,
            &mut ctx,
            rank,
            &comm,
            &mut data,
            Direction::Forward,
        );
        execute(
            &plan,
            &bound,
            &mut ctx,
            rank,
            &comm,
            &mut data,
            Direction::Inverse,
        );
        data
    });

    let total = plan.total_elems() as f64;
    for b in 0..batch {
        let per_rank: Vec<Vec<C64>> = locals.iter().map(|d| d[b].clone()).collect();
        let got = gather(&per_rank, &plan, 0);
        let expect: Vec<C64> = global.iter().map(|v| v.scale(total)).collect();
        let err = max_abs_diff(&got, &expect);
        assert!(
            err < 1e-7 * total,
            "roundtrip mismatch in batch item {b}: err={err:.3e}"
        );
    }
}

#[test]
fn pencils_alltoallv_matches_local_fft() {
    check_forward([8, 8, 8], 4, FftOptions::default());
    check_forward([12, 8, 10], 6, FftOptions::default());
}

#[test]
fn pencils_alltoall_padded_matches_local_fft() {
    check_forward(
        [10, 9, 8],
        6,
        FftOptions {
            backend: CommBackend::AllToAll,
            ..FftOptions::default()
        },
    );
}

#[test]
fn pencils_alltoallw_matches_local_fft() {
    check_forward(
        [8, 8, 8],
        6,
        FftOptions {
            backend: CommBackend::AllToAllW,
            ..FftOptions::default()
        },
    );
}

#[test]
fn pencils_p2p_matches_local_fft() {
    check_forward(
        [8, 10, 12],
        6,
        FftOptions {
            backend: CommBackend::P2p,
            ..FftOptions::default()
        },
    );
    check_forward(
        [8, 8, 8],
        4,
        FftOptions {
            backend: CommBackend::P2pBlocking,
            ..FftOptions::default()
        },
    );
}

#[test]
fn slabs_match_local_fft() {
    check_forward(
        [8, 8, 8],
        4,
        FftOptions {
            decomp: Decomp::Slabs,
            ..FftOptions::default()
        },
    );
    check_forward(
        [8, 8, 8],
        8,
        FftOptions {
            decomp: Decomp::Slabs,
            io: IoLayout::Matching,
            backend: CommBackend::P2p,
            ..FftOptions::default()
        },
    );
}

#[test]
fn bricks_match_local_fft() {
    check_forward(
        [8, 8, 8],
        12,
        FftOptions {
            decomp: Decomp::Bricks,
            ..FftOptions::default()
        },
    );
}

#[test]
fn matching_io_roundtrip() {
    check_roundtrip(
        [8, 8, 8],
        6,
        FftOptions {
            io: IoLayout::Matching,
            ..FftOptions::default()
        },
    );
}

#[test]
fn brick_io_roundtrip_all_backends() {
    for backend in [
        CommBackend::AllToAll,
        CommBackend::AllToAllV,
        CommBackend::P2p,
        CommBackend::P2pBlocking,
    ] {
        check_roundtrip(
            [8, 6, 10],
            6,
            FftOptions {
                backend,
                ..FftOptions::default()
            },
        );
    }
}

#[test]
fn single_rank_roundtrip() {
    check_roundtrip([8, 8, 8], 1, FftOptions::default());
}

#[test]
fn prime_rank_count_roundtrip() {
    check_roundtrip([10, 10, 14], 7, FftOptions::default());
}

#[test]
fn grid_shrinking_roundtrip_and_correctness() {
    check_forward(
        [8, 8, 8],
        8,
        FftOptions {
            shrink_to: Some(2),
            ..FftOptions::default()
        },
    );
    check_roundtrip(
        [8, 8, 8],
        8,
        FftOptions {
            shrink_to: Some(3),
            ..FftOptions::default()
        },
    );
}

#[test]
fn batched_transforms_roundtrip() {
    check_roundtrip(
        [6, 6, 6],
        4,
        FftOptions {
            batch: 5,
            pipeline_chunks: 3,
            ..FftOptions::default()
        },
    );
}

#[test]
fn contiguous_fft_mode_is_numerically_identical() {
    check_forward(
        [8, 8, 8],
        6,
        FftOptions {
            contiguous_fft: true,
            backend: CommBackend::AllToAll,
            ..FftOptions::default()
        },
    );
}

#[test]
fn non_pow2_domain_with_bluestein_sizes() {
    // 11 is prime: exercises the Bluestein path inside the distributed FFT.
    check_forward([11, 6, 9], 6, FftOptions::default());
}

#[test]
fn alltoallw_matching_io_roundtrip() {
    check_roundtrip(
        [8, 8, 8],
        6,
        FftOptions {
            backend: CommBackend::AllToAllW,
            io: IoLayout::Matching,
            ..FftOptions::default()
        },
    );
}

#[test]
fn slabs_with_every_backend() {
    for backend in [
        CommBackend::AllToAll,
        CommBackend::AllToAllV,
        CommBackend::AllToAllW,
        CommBackend::P2p,
        CommBackend::P2pBlocking,
    ] {
        check_forward(
            [8, 8, 8],
            4,
            FftOptions {
                decomp: Decomp::Slabs,
                backend,
                ..FftOptions::default()
            },
        );
    }
}

#[test]
fn rank_counts_that_do_not_divide_the_domain() {
    // 5 ranks over 8³: uneven chunks everywhere, pencil grid (1,5).
    check_roundtrip([8, 8, 8], 5, FftOptions::default());
    // 9 ranks (3x3 pencil grid) over a domain not divisible by 3.
    check_forward([8, 10, 8], 9, FftOptions::default());
}

#[test]
fn wide_flat_and_tall_domains() {
    check_forward([32, 2, 2], 4, FftOptions::default());
    check_forward([2, 2, 32], 4, FftOptions::default());
    check_forward([2, 32, 2], 4, FftOptions::default());
}

#[test]
fn batched_with_p2p_backend() {
    check_roundtrip(
        [6, 6, 6],
        4,
        FftOptions {
            backend: CommBackend::P2p,
            batch: 4,
            pipeline_chunks: 2,
            ..FftOptions::default()
        },
    );
}

#[test]
fn shrink_to_single_rank() {
    // Extreme shrinking: the whole FFT computed by rank 0.
    check_roundtrip(
        [8, 8, 8],
        6,
        FftOptions {
            shrink_to: Some(1),
            ..FftOptions::default()
        },
    );
}
