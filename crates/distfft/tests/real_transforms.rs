//! Distributed r2c/c2r correctness: against the embedded complex transform
//! and round trips, plus the half-cost property.

use distfft::exec::ExecCtx;
use distfft::plan::FftOptions;
use distfft::real3d::Real3dPlan;
use distfft::Box3;
use fftkern::{Direction, Plan3d, C64};
use mpisim::comm::{Comm, World, WorldOpts};
use simgrid::MachineSpec;

fn real_field(n: [usize; 3]) -> Vec<f64> {
    (0..n[0] * n[1] * n[2])
        .map(|i| (0.17 * i as f64).sin() + 0.4 * (0.53 * i as f64).cos())
        .collect()
}

fn scatter_reals(global: &[f64], plan: &Real3dPlan, rank: usize) -> Vec<f64> {
    let b = plan.real_input_box(rank);
    let whole = Box3::whole(plan.n);
    // Box3::extract is C64-typed; do the f64 gather by hand.
    let mut out = Vec::with_capacity(b.volume());
    for i0 in b.lo[0]..b.hi[0] {
        for i1 in b.lo[1]..b.hi[1] {
            for i2 in b.lo[2]..b.hi[2] {
                out.push(global[(i0 * plan.n[1] + i1) * plan.n[2] + i2]);
            }
        }
    }
    let _ = whole;
    out
}

#[test]
fn distributed_r2c_matches_embedded_c2c() {
    let n = [8usize, 6, 8];
    let ranks = 6;
    let plan = Real3dPlan::build(n, ranks, FftOptions::default());
    let global = real_field(n);

    let world = World::new(MachineSpec::testbox(2), ranks, WorldOpts::default());
    let blocks = world.run(|rank| {
        let comm = Comm::world(rank);
        let bound = plan.bind(rank, &comm);
        let mut ctx = ExecCtx::new();
        let mine = scatter_reals(&global, &plan, rank.rank());
        plan.execute_forward(&bound, &mut ctx, rank, &comm, &mine)
    });

    // Gather the half spectrum.
    let mh = [n[0], n[1], plan.h];
    let whole_h = Box3::whole(mh);
    let mut got = vec![C64::ZERO; mh[0] * mh[1] * mh[2]];
    for (r, block) in blocks.iter().enumerate() {
        let b = plan.spectrum_box(r);
        if !b.is_empty() {
            whole_h.deposit(&mut got, &b, block);
        }
    }

    // Reference: full complex transform of the embedded reals, truncated to
    // the non-redundant axis-2 bins.
    let mut full: Vec<C64> = global.iter().map(|&v| C64::real(v)).collect();
    Plan3d::new(n[0], n[1], n[2]).execute(&mut full, Direction::Forward);
    let mut err: f64 = 0.0;
    for i0 in 0..n[0] {
        for i1 in 0..n[1] {
            for k in 0..plan.h {
                let want = full[(i0 * n[1] + i1) * n[2] + k];
                let have = got[(i0 * mh[1] + i1) * mh[2] + k];
                err = err.max((have - want).abs());
            }
        }
    }
    assert!(err < 1e-8 * (n[0] * n[1] * n[2]) as f64, "r2c error {err}");
}

#[test]
fn distributed_r2c_c2r_roundtrip() {
    let n = [6usize, 8, 10];
    let ranks = 4;
    let plan = Real3dPlan::build(n, ranks, FftOptions::default());
    let global = real_field(n);
    let norm = plan.normalization();

    let world = World::new(MachineSpec::testbox(2), ranks, WorldOpts::default());
    let errs = world.run(|rank| {
        let comm = Comm::world(rank);
        let bound = plan.bind(rank, &comm);
        let mut ctx = ExecCtx::new();
        let mine = scatter_reals(&global, &plan, rank.rank());
        let spec = plan.execute_forward(&bound, &mut ctx, rank, &comm, &mine);
        let back = plan.execute_inverse(&bound, &mut ctx, rank, &comm, spec);
        back.iter()
            .zip(&mine)
            .map(|(got, want)| (got / norm - want).abs())
            .fold(0.0, f64::max)
    });
    for (r, e) in errs.iter().enumerate() {
        assert!(*e < 1e-9, "rank {r} roundtrip error {e}");
    }
}

#[test]
fn r2c_moves_half_the_bytes_of_embedded_c2c() {
    // The point of true r2c: the packed-domain reshape carries half the
    // complex volume.
    let n = [32usize, 32, 32];
    let ranks = 8;
    let r2c = Real3dPlan::build(n, ranks, FftOptions::default());
    let c2c = distfft::plan::FftPlan::build(n, ranks, FftOptions::default());
    let bytes = |spec: &distfft::reshape::ReshapeSpec| -> usize {
        (0..ranks).map(|r| spec.offrank_send_bytes(r)).sum()
    };
    // First data reshape of each pipeline.
    let r2c_first = bytes(&r2c.plan_a.reshapes[0]);
    let c2c_first = bytes(&c2c.reshapes[0]);
    assert!(
        r2c_first * 2 <= c2c_first + 16 * ranks,
        "r2c first reshape {r2c_first} B should be ~half of c2c {c2c_first} B"
    );
}

#[test]
fn r2c_dryrun_cheaper_than_c2c() {
    let n = [64usize, 64, 64];
    let ranks = 24;
    let machine = MachineSpec::summit();
    let r2c = Real3dPlan::build(n, ranks, FftOptions::default());
    let t_r2c = r2c.dryrun_forward(&machine, distfft::dryrun::DryRunOpts::default());
    let c2c = distfft::plan::FftPlan::build(n, ranks, FftOptions::default());
    let mut runner =
        distfft::dryrun::DryRunner::new(&c2c, &machine, distfft::dryrun::DryRunOpts::default());
    let t_c2c = runner.run(Direction::Forward).makespan();
    assert!(
        t_r2c < t_c2c,
        "r2c ({t_r2c}) should beat the embedded c2c ({t_c2c})"
    );
}

#[test]
fn odd_n2_rejected() {
    assert!(Real3dPlan::try_build([8, 8, 7], 4, FftOptions::default()).is_err());
}

#[test]
fn batched_r2c_rejected_with_typed_error() {
    // Batched r2c is unimplemented; the old behavior silently forced
    // `batch: 1`, transforming less data than requested.
    let err = Real3dPlan::try_build(
        [8, 8, 6],
        4,
        FftOptions {
            batch: 3,
            ..FftOptions::default()
        },
    )
    .unwrap_err();
    assert_eq!(err, distfft::PlanError::R2cBatched { batch: 3 });
    assert!(
        err.to_string().contains("batch 3"),
        "error must name the offending batch: {err}"
    );
    // batch == 1 stays accepted.
    assert!(Real3dPlan::try_build(
        [8, 8, 6],
        4,
        FftOptions {
            batch: 1,
            ..FftOptions::default()
        }
    )
    .is_ok());
}

#[test]
fn slab_r2c_roundtrip_and_matches_pencils() {
    // The slab pipeline (one fewer reshape) must produce the same spectrum
    // as the pencil pipeline and round-trip to the input.
    let n = [8usize, 8, 6];
    let ranks = 4;
    let slabs = FftOptions {
        decomp: distfft::Decomp::Slabs,
        ..FftOptions::default()
    };
    let plan_s = Real3dPlan::build(n, ranks, slabs);
    let plan_p = Real3dPlan::build(n, ranks, FftOptions::default());
    assert_eq!(
        plan_s.plan_a.reshapes.len() + plan_s.plan_c.reshapes.len() + 1,
        plan_p.plan_a.reshapes.len() + plan_p.plan_c.reshapes.len(),
        "slabs must save one reshape over pencils"
    );
    let global = real_field(n);
    let mh = [n[0], n[1], plan_s.h];
    let whole_h = Box3::whole(mh);

    let spectrum_of = |plan: &Real3dPlan| -> Vec<C64> {
        let world = World::new(MachineSpec::testbox(2), ranks, WorldOpts::default());
        let blocks = world.run(|rank| {
            let comm = Comm::world(rank);
            let bound = plan.bind(rank, &comm);
            let mut ctx = ExecCtx::new();
            let mine = scatter_reals(&global, plan, rank.rank());
            let spec = plan.execute_forward(&bound, &mut ctx, rank, &comm, &mine);
            let back = plan.execute_inverse(&bound, &mut ctx, rank, &comm, spec.clone());
            let norm = plan.normalization();
            let err = back
                .iter()
                .zip(&mine)
                .map(|(got, want)| (got / norm - want).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-9, "roundtrip error {err}");
            spec
        });
        let mut got = vec![C64::ZERO; mh[0] * mh[1] * mh[2]];
        for (r, block) in blocks.iter().enumerate() {
            let b = plan.spectrum_box(r);
            if !b.is_empty() {
                whole_h.deposit(&mut got, &b, block);
            }
        }
        got
    };

    let s = spectrum_of(&plan_s);
    let p = spectrum_of(&plan_p);
    let err = s
        .iter()
        .zip(&p)
        .map(|(a, b)| (*a - *b).abs())
        .fold(0.0, f64::max);
    assert!(err < 1e-9, "slab vs pencil spectrum differs by {err}");
}

#[test]
fn slab_rank_limit_rejected() {
    let err = Real3dPlan::try_build(
        [4, 4, 8],
        8,
        FftOptions {
            decomp: distfft::Decomp::Slabs,
            ..FftOptions::default()
        },
    );
    assert!(err.is_err(), "8 ranks of 4-wide slabs must be rejected");
}
