//! SIMD-tier invariance of the distributed executor (ISSUE 6).
//!
//! The `fftkern::simd` dispatcher claims tier choice is unobservable in
//! results: scalar, AVX2 and AVX-512 butterflies are bit-identical, so the
//! functional executor must produce bit-identical distributed data — and,
//! with `--features sanitize`, identical replay digests — across
//! `FFT_SIMD=off/avx2/avx512` (tiers the host lacks are skipped) crossed
//! with executor thread counts {1, 4}, over pow2, mixed-radix, and
//! Bluestein per-axis lengths in both packed and strided local-FFT modes.
//!
//! Tier forcing is process-global; all tests in this file serialize on
//! [`TIER_LOCK`] and restore auto dispatch before releasing it.

use distfft::boxes::Box3;
use distfft::exec::{bind, execute, ExecCtx};
use distfft::plan::{CommBackend, FftOptions, FftPlan};
use distfft::Decomp;
use fftkern::simd::{self, SimdTier};
use fftkern::{Direction, C64};
use mpisim::comm::{Comm, World, WorldOpts};
use simgrid::{MachineSpec, SimTime};
use std::sync::Mutex;

static TIER_LOCK: Mutex<()> = Mutex::new(());

fn available_tiers() -> Vec<SimdTier> {
    [SimdTier::Scalar, SimdTier::Avx2, SimdTier::Avx512]
        .into_iter()
        .filter(|&t| simd::tier_available(t))
        .collect()
}

/// The grids under test: pow2 axes (Stockham direct), smooth non-pow2 axes
/// (mixed-radix, whose pow2 sub-lengths ride Stockham), and a prime axis
/// (Bluestein, whose chirp convolution is a pow2 Stockham transform). Axis
/// 2 runs packed, axes 0/1 strided — both local-FFT modes per grid.
const GRIDS: [[usize; 3]; 3] = [[16, 16, 8], [12, 10, 14], [13, 16, 8]];

/// Distributed forward+inverse under a forced tier; returns the final
/// per-rank data bits and completion times (and, under `sanitize`, feeds
/// the digest test below through the same harness).
#[allow(clippy::type_complexity)]
fn run(n: [usize; 3], tier: SimdTier, threads: usize) -> (Vec<Vec<(u64, u64)>>, Vec<SimTime>) {
    simd::force_tier(Some(tier));
    let ranks = 4;
    let opts = FftOptions {
        decomp: Decomp::Pencils,
        backend: CommBackend::AllToAllV,
        ..FftOptions::default()
    };
    let plan = FftPlan::build(n, ranks, opts);
    let world = World::new(MachineSpec::testbox(2), ranks, WorldOpts::default());
    let whole = Box3::whole(n);
    let global: Vec<C64> = (0..n[0] * n[1] * n[2])
        .map(|i| C64::new((i as f64 * 0.43).sin(), (i as f64 * 0.29).cos()))
        .collect();
    let plan_ref = &plan;
    let per_rank = world.run(move |rank| {
        let comm = Comm::world(rank);
        let bound = bind(plan_ref, rank, &comm);
        let mut ctx = ExecCtx::with_threads(threads);
        let b = plan_ref.dists[0].rank_box(rank.rank());
        let mut data = vec![whole.extract(&global, b)];
        let _ = execute(
            plan_ref,
            &bound,
            &mut ctx,
            rank,
            &comm,
            &mut data,
            Direction::Forward,
        );
        let rep = execute(
            plan_ref,
            &bound,
            &mut ctx,
            rank,
            &comm,
            &mut data,
            Direction::Inverse,
        );
        let bits: Vec<(u64, u64)> = data[0]
            .iter()
            .map(|c| (c.re.to_bits(), c.im.to_bits()))
            .collect();
        (bits, rep.total)
    });
    simd::force_tier(None);
    per_rank.into_iter().unzip()
}

#[test]
fn distributed_output_bit_identical_across_tiers_and_threads() {
    let _g = TIER_LOCK.lock().unwrap();
    let tiers = available_tiers();
    for n in GRIDS {
        let (ref_bits, ref_times) = run(n, SimdTier::Scalar, 1);
        for &tier in &tiers {
            for threads in [1usize, 4] {
                let (bits, times) = run(n, tier, threads);
                assert_eq!(
                    bits,
                    ref_bits,
                    "data diverged: n={n:?} tier={} threads={threads}",
                    tier.name()
                );
                assert_eq!(
                    times,
                    ref_times,
                    "simulated times diverged: n={n:?} tier={} threads={threads}",
                    tier.name()
                );
            }
        }
    }
}

#[cfg(feature = "sanitize")]
mod digests {
    use super::*;
    use distfft::sanitize::{full_digest, timing_digest};
    use distfft::trace::Trace;

    /// The sanitize-suite world (jitter on, 4 ranks, [16,16,8] pencils)
    /// under a forced tier: per-rank (completion, trace) + pool stats.
    fn run_digest(
        tier: SimdTier,
        threads: usize,
    ) -> (Vec<(SimTime, Trace)>, Vec<distfft::exec::PoolStats>) {
        simd::force_tier(Some(tier));
        let n = [16usize, 16, 8];
        let ranks = 4;
        let opts = FftOptions {
            decomp: Decomp::Pencils,
            backend: CommBackend::AllToAllV,
            ..FftOptions::default()
        };
        let plan = FftPlan::build(n, ranks, opts);
        let world_opts = WorldOpts {
            noise_amplitude: 0.05,
            seed: 0xC0FFEE,
            ..WorldOpts::default()
        };
        let world = World::new(MachineSpec::testbox(2), ranks, world_opts);
        let whole = Box3::whole(n);
        let global: Vec<C64> = (0..n[0] * n[1] * n[2])
            .map(|i| C64::new((i as f64 * 0.37).sin(), (i as f64 * 0.61).cos()))
            .collect();
        let plan_ref = &plan;
        let per_rank = world.run(move |rank| {
            let comm = Comm::world(rank);
            let bound = bind(plan_ref, rank, &comm);
            let mut ctx = ExecCtx::with_threads(threads);
            let b = plan_ref.dists[0].rank_box(rank.rank());
            let mut data = vec![whole.extract(&global, b)];
            let fwd = execute(
                plan_ref,
                &bound,
                &mut ctx,
                rank,
                &comm,
                &mut data,
                Direction::Forward,
            );
            let inv = execute(
                plan_ref,
                &bound,
                &mut ctx,
                rank,
                &comm,
                &mut data,
                Direction::Inverse,
            );
            let mut trace = fwd.trace;
            trace.events.extend(inv.trace.events);
            ((inv.total, trace), ctx.pool_stats())
        });
        simd::force_tier(None);
        per_rank.into_iter().unzip()
    }

    #[test]
    fn replay_digests_invariant_across_simd_tiers() {
        // The butterfly tier is a pure compute-speed knob: simulated
        // timing comes from the kernel model and the schedule walkers,
        // never from the data values, so both digests must be identical
        // across every tier × thread-count combination.
        let _g = TIER_LOCK.lock().unwrap();
        let (r_ref, p_ref) = run_digest(SimdTier::Scalar, 1);
        let t_ref = timing_digest(&r_ref);
        for &tier in &available_tiers() {
            for threads in [1usize, 4] {
                let (r, p) = run_digest(tier, threads);
                assert_eq!(
                    t_ref,
                    timing_digest(&r),
                    "timing digest drifted: tier={} threads={threads}",
                    tier.name()
                );
                if threads == 1 {
                    assert_eq!(
                        full_digest(&r_ref, &p_ref),
                        full_digest(&r, &p),
                        "full digest drifted: tier={} threads=1",
                        tier.name()
                    );
                }
            }
        }
    }
}
