//! General (user-supplied) input/output grids — the feature §III of the
//! paper attributes to fftMPI, heFFTe and SWFFT only — plus the fallible
//! plan-construction API.

use distfft::exec::{bind, execute, ExecCtx};
use distfft::plan::{CommBackend, FftOptions, FftPlan, PlanError};
use distfft::procgrid::Distribution;
use distfft::{Box3, Decomp};
use fftkern::complex::max_abs_diff;
use fftkern::{Direction, Plan3d, C64};
use mpisim::comm::{Comm, World, WorldOpts};
use simgrid::MachineSpec;

/// An intentionally irregular (non-grid) partition of an 8×8×8 domain over
/// 4 ranks: an L-shaped split no processor grid can express.
fn weird_partition() -> Vec<Box3> {
    vec![
        Box3::new([0, 0, 0], [8, 8, 3]), // front slab
        Box3::new([0, 0, 3], [5, 8, 8]), // lower back block
        Box3::new([5, 0, 3], [8, 4, 8]), // upper back left
        Box3::new([5, 4, 3], [8, 8, 8]), // upper back right
    ]
}

#[test]
fn irregular_io_boxes_roundtrip_correctly() {
    let n = [8usize, 8, 8];
    let ranks = 4;
    let boxes = weird_partition();
    let input = Distribution::from_boxes(n, boxes.clone());
    let output = Distribution::from_boxes(n, boxes);
    let plan = FftPlan::build_with_io(n, ranks, FftOptions::default(), input, output);

    let total = 512;
    let global: Vec<C64> = (0..total)
        .map(|i| C64::new((0.21 * i as f64).sin(), (0.47 * i as f64).cos()))
        .collect();
    let whole = Box3::whole(n);

    let world = World::new(MachineSpec::testbox(2), ranks, WorldOpts::default());
    let locals = world.run(|rank| {
        let comm = Comm::world(rank);
        let bound = bind(&plan, rank, &comm);
        let mut ctx = ExecCtx::new();
        let b = plan.dists[0].rank_box(rank.rank());
        let mut data = vec![whole.extract(&global, b)];
        execute(
            &plan,
            &bound,
            &mut ctx,
            rank,
            &comm,
            &mut data,
            Direction::Forward,
        );
        data.remove(0)
    });

    // Gather from the irregular output layout and compare with the local FFT.
    let out_idx = plan.dists.len() - 1;
    let mut got = vec![C64::ZERO; total];
    for (r, local) in locals.iter().enumerate() {
        let b = plan.dists[out_idx].rank_box(r);
        if !b.is_empty() {
            whole.deposit(&mut got, b, local);
        }
    }
    let mut want = global;
    Plan3d::new(8, 8, 8).execute(&mut want, Direction::Forward);
    assert!(max_abs_diff(&got, &want) < 1e-8 * total as f64);
}

#[test]
fn asymmetric_io_input_brick_output_pencil() {
    // Input on a brick grid, output directly in the last pencil layout:
    // only 3 exchanges needed instead of 4.
    let n = [8usize, 8, 8];
    let ranks = 6;
    let input = Distribution::new(n, [1, 2, 3], ranks);
    let output = Distribution::new(n, [2, 3, 1], ranks);
    let plan = FftPlan::build_with_io(n, ranks, FftOptions::default(), input, output);
    assert_eq!(plan.exchange_count(), 2); // brick == first pencil grid here
    let p2 = FftPlan::build_with_io(
        n,
        ranks,
        FftOptions::default(),
        Distribution::new(n, [6, 1, 1], ranks),
        Distribution::new(n, [2, 3, 1], ranks),
    );
    assert_eq!(p2.exchange_count(), 3);
}

#[test]
fn from_boxes_rejects_overlap_and_gaps() {
    let n = [4usize, 4, 4];
    // Overlapping boxes.
    let overlapping = vec![
        Box3::new([0, 0, 0], [4, 4, 3]),
        Box3::new([0, 0, 2], [4, 4, 4]),
    ];
    assert!(std::panic::catch_unwind(|| Distribution::from_boxes(n, overlapping)).is_err());
    // A gap.
    let gappy = vec![
        Box3::new([0, 0, 0], [4, 4, 2]),
        Box3::new([0, 0, 3], [4, 4, 4]),
    ];
    assert!(std::panic::catch_unwind(|| Distribution::from_boxes(n, gappy)).is_err());
    // Out of bounds.
    let oob = vec![Box3::new([0, 0, 0], [4, 4, 5])];
    assert!(std::panic::catch_unwind(|| Distribution::from_boxes(n, oob)).is_err());
}

#[test]
fn try_build_reports_precise_errors() {
    let ok = FftPlan::try_build([8, 8, 8], 4, FftOptions::default());
    assert!(ok.is_ok());

    assert_eq!(
        FftPlan::try_build([0, 8, 8], 4, FftOptions::default()).unwrap_err(),
        PlanError::DegenerateTransform([0, 8, 8])
    );
    assert_eq!(
        FftPlan::try_build([8, 8, 8], 0, FftOptions::default()).unwrap_err(),
        PlanError::NoRanks
    );
    assert_eq!(
        FftPlan::try_build(
            [8, 8, 8],
            4,
            FftOptions {
                batch: 0,
                ..FftOptions::default()
            }
        )
        .unwrap_err(),
        PlanError::EmptyBatch
    );
    assert_eq!(
        FftPlan::try_build(
            [8, 8, 8],
            4,
            FftOptions {
                shrink_to: Some(9),
                ..FftOptions::default()
            }
        )
        .unwrap_err(),
        PlanError::BadShrink {
            requested: 9,
            nranks: 4
        }
    );
    assert_eq!(
        FftPlan::try_build(
            [8, 8, 8],
            12,
            FftOptions {
                decomp: Decomp::Slabs,
                ..FftOptions::default()
            }
        )
        .unwrap_err(),
        PlanError::SlabLimit {
            active: 12,
            limit: 8
        }
    );
    assert_eq!(
        FftPlan::try_build(
            [8, 8, 8],
            4,
            FftOptions {
                backend: CommBackend::AllToAllW,
                batch: 2,
                ..FftOptions::default()
            }
        )
        .unwrap_err(),
        PlanError::AlltoallwBatched
    );
    // Errors display as readable messages.
    let msg = PlanError::SlabLimit {
        active: 12,
        limit: 8,
    }
    .to_string();
    assert!(msg.contains("12") && msg.contains("8"));
}
