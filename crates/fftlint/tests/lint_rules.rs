//! Fixture tests: every rule fires on a seeded violation with an exact
//! rule id and file:line:col span, and `fftlint:allow` silences it.
//!
//! Fixtures live under `tests/fixtures/` (excluded from `--workspace`
//! walks) and are linted *as if* they sat in a simulated-time library
//! crate, so every rule is in scope.

use fftlint::{lint_source, rules};

/// Reads a fixture and lints it under a pretend path inside `mpisim`'s
/// library sources — a simulated-time crate, so all five rules apply.
fn lint_fixture(name: &str) -> Vec<fftlint::Finding> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    let src = std::fs::read_to_string(format!("{dir}/{name}")).expect("fixture readable");
    lint_source(&format!("crates/mpisim/src/{name}"), &src)
}

/// (rule, line, col) triples of the findings.
fn spans(findings: &[fftlint::Finding]) -> Vec<(&'static str, u32, u32)> {
    findings.iter().map(|f| (f.rule, f.line, f.col)).collect()
}

#[test]
fn wallclock_fixture_fires_twice_and_allow_silences_the_third() {
    // Note the fixture is named wallclock_reads.rs: a file named exactly
    // `wallclock.rs` would hit the rule's module allowlist by design.
    let f = lint_fixture("wallclock_reads.rs");
    assert_eq!(
        spans(&f),
        vec![(rules::NO_WALLCLOCK, 3, 25), (rules::NO_WALLCLOCK, 8, 24),]
    );
    assert!(f
        .iter()
        .all(|x| x.path == "crates/mpisim/src/wallclock_reads.rs"));
}

#[test]
fn wallclock_module_allowlist_exempts_dedicated_wallclock_files() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    let src =
        std::fs::read_to_string(format!("{dir}/wallclock_reads.rs")).expect("fixture readable");
    let f = lint_source("crates/mpisim/src/wallclock.rs", &src);
    assert!(f.is_empty(), "allowlisted module must be exempt: {f:?}");
}

#[test]
fn unordered_iter_fixture_flags_use_and_bad_iteration_only() {
    let f = lint_fixture("unordered_iter.rs");
    assert_eq!(
        spans(&f),
        vec![
            (rules::NO_UNORDERED_ITER, 2, 23),
            (rules::NO_UNORDERED_ITER, 5, 12),
        ],
        "the allowed lookup and the #[cfg(test)] module must not fire"
    );
}

#[test]
fn panic_fixture_flags_unwrap_and_expect_but_not_fallbacks() {
    let f = lint_fixture("panic_in_lib.rs");
    assert_eq!(
        spans(&f),
        vec![
            (rules::NO_PANIC_IN_LIB, 3, 7),
            (rules::NO_PANIC_IN_LIB, 7, 7),
        ],
        "unwrap_or/unwrap_or_else/unwrap_or_default, the allow-annotated \
         unwrap, and the test module must not fire"
    );
}

#[test]
fn unsafe_fixture_fires_once_and_allow_silences_the_second() {
    let f = lint_fixture("unsafe_block.rs");
    assert_eq!(spans(&f), vec![(rules::NO_UNSAFE, 3, 5)]);
}

#[test]
fn unsafe_rule_has_no_simd_module_carveout() {
    // fftkern's SIMD kernels live behind `#![deny(unsafe_code)]` with
    // per-site `fftlint:allow(no-unsafe)` justifications — the *module*
    // gets no blanket exemption from the linter. Unannotated `unsafe`
    // must keep firing everywhere in fftkern, including simd.rs itself
    // and test/bench targets (rustc's deny does not reach a dropped
    // attribute; the lint does).
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    let src = std::fs::read_to_string(format!("{dir}/unsafe_block.rs")).expect("fixture readable");
    for path in [
        "crates/fftkern/src/simd.rs",
        "crates/fftkern/src/stockham.rs",
        "crates/fftkern/src/lib.rs",
        "crates/fftkern/tests/simd_equivalence.rs",
        "crates/bench/src/bin/bench_snapshot.rs",
    ] {
        let f = fftlint::lint_source(path, &src);
        assert_eq!(
            spans(&f),
            vec![(rules::NO_UNSAFE, 3, 5)],
            "unannotated unsafe must fire under {path}"
        );
    }
}

#[test]
fn float_reduction_fixture_flags_only_the_unordered_parallel_sum() {
    let f = lint_fixture("float_reduction.rs");
    assert_eq!(
        spans(&f),
        vec![(rules::FLOAT_REDUCTION_ORDER, 3, 7)],
        "integer parallel, serial float, index-sorted merge, and the \
         allow-annotated sum must not fire"
    );
}

#[test]
fn clean_fixture_is_clean() {
    assert!(lint_fixture("clean.rs").is_empty());
}

#[test]
fn hot_alloc_fixture_flags_the_two_hop_chain_only() {
    // The pooled take is exempt, the annotated capacity-0 sentinel is
    // suppressed, and `cold` allocates freely — only the allocation two
    // hops below the `fftlint:hot` driver fires.
    let f = lint_fixture("hot_alloc.rs");
    assert_eq!(spans(&f), vec![(rules::NO_ALLOC_IN_HOT_PATH, 16, 17)]);
    assert!(
        f[0].msg.contains("driver -> stage -> deep"),
        "finding must carry the call chain: {}",
        f[0].msg
    );
}

#[test]
fn lock_pair_fixture_flags_both_shapes_and_allow_silences_backward() {
    // `forward` (lexical pair) and `outer` (hold-and-call via `tail`) are
    // flagged against `backward`'s reversed order; `backward`'s own site
    // carries the inline justification.
    let f = lint_fixture("lock_pair.rs");
    assert_eq!(
        spans(&f),
        vec![(rules::LOCK_ORDER, 8, 20), (rules::LOCK_ORDER, 20, 5)]
    );
    assert!(
        f[1].msg.contains("via call to `tail`"),
        "interprocedural finding must name the callee: {}",
        f[1].msg
    );
    assert!(
        f.iter().all(|x| x.msg.contains("lock_pair.rs:14")),
        "findings must point at the reversing site"
    );
}

#[test]
fn env_probe_fixture_fires_once_and_is_exempt_as_fftobs_env() {
    let f = lint_fixture("env_probe.rs");
    assert_eq!(spans(&f), vec![(rules::ENV_READ_OUTSIDE_FFTOBS, 6, 10)]);

    // The identical source *as* the sanctioned implementation file is clean.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    let src = std::fs::read_to_string(format!("{dir}/env_probe.rs")).expect("fixture readable");
    let f = fftlint::lint_source("crates/obs/src/env.rs", &src);
    assert!(
        f.iter().all(|x| x.rule != rules::ENV_READ_OUTSIDE_FFTOBS),
        "the fftobs env module must be exempt: {f:?}"
    );
}

#[test]
fn panic_chain_fixtures_cross_the_crate_boundary() {
    // Two files analyzed together: the executor entry in pretend
    // `distfft/src/exec.rs` seeds reachability, the panics live in a
    // pretend `fftkern` source two hops away.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    let exec = std::fs::read_to_string(format!("{dir}/exec_seed.rs")).expect("fixture readable");
    let kern = std::fs::read_to_string(format!("{dir}/panic_chain.rs")).expect("fixture readable");
    let f = fftlint::analyze(&[
        ("crates/distfft/src/exec.rs".to_string(), exec),
        ("crates/fftkern/src/panic_chain.rs".to_string(), kern),
    ]);
    let reach: Vec<(u32, u32)> = f
        .iter()
        .filter(|x| x.rule == rules::PANIC_REACHABLE_FROM_EXEC)
        .map(|x| (x.line, x.col))
        .collect();
    // The unwrap in `deep`, plus the per-fn index summary in `indexed`;
    // `justified`'s unwrap is discharged by its written `no-panic-in-lib`
    // invariant, which covers reachability too.
    assert_eq!(reach, vec![(11, 13), (15, 12)]);
    let unwrap_finding = f
        .iter()
        .find(|x| x.rule == rules::PANIC_REACHABLE_FROM_EXEC && x.line == 11)
        .expect("unwrap finding");
    assert_eq!(unwrap_finding.path, "crates/fftkern/src/panic_chain.rs");
    assert!(
        unwrap_finding.msg.contains("execute -> kern_entry -> deep"),
        "finding must carry the cross-crate chain: {}",
        unwrap_finding.msg
    );
    let index_finding = f
        .iter()
        .find(|x| x.rule == rules::PANIC_REACHABLE_FROM_EXEC && x.line == 15)
        .expect("index summary finding");
    assert!(
        index_finding.msg.contains("2 index expression(s)"),
        "index sites summarize per fn: {}",
        index_finding.msg
    );
}

#[test]
fn fixture_directory_is_excluded_from_workspace_walks() {
    // The fixtures seed deliberate violations; a workspace walk rooted at
    // the repo must never pick them up (CI runs `fftlint --workspace` and
    // requires it clean).
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("repo root");
    let files = fftlint::workspace_files(root).expect("walk");
    assert!(
        !files.is_empty(),
        "walk must find the workspace sources from the repo root"
    );
    assert!(
        files
            .iter()
            .all(|p| !p.to_string_lossy().contains("fixtures")),
        "fixtures leaked into the workspace walk"
    );
}
