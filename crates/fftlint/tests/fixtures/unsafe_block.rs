// Fixture: no-unsafe violations.
fn bad_unsafe(p: *const u64) -> u64 {
    unsafe { *p }
}

fn allowed_unsafe(p: *const u64) -> u64 {
    // fftlint:allow(no-unsafe): fixture proving the escape hatch works
    unsafe { *p }
}
