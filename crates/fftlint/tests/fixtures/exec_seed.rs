// Fixture: the executor-entry half of the cross-crate panic chain. Linted
// as `crates/distfft/src/exec.rs`, so `execute` seeds
// `panic-reachable-from-exec`; the panics it reaches live in
// `panic_chain.rs`, linted as an `fftkern` source.

pub fn execute(p: &P) -> usize {
    kern_entry(p)
}
