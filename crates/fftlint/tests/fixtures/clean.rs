// Fixture: a fully clean simulated-time library module.
use std::collections::BTreeMap;

fn ordered(m: &BTreeMap<u64, u64>) -> Vec<u64> {
    m.values().copied().collect()
}

fn no_panics(x: Option<u64>) -> u64 {
    x.unwrap_or_default()
}
