// Fixture: `lock-order`. `forward` and `backward` take the same two locks
// in opposite orders — `forward`'s second acquisition is flagged, while
// `backward` carries the inline justification. `outer` shows the
// interprocedural shape: it still holds `alpha` when `tail` locks `beta`.

pub fn forward(s: &S) {
    let a = s.alpha.lock();
    let b = s.beta.lock();
    consume(a, b);
}

pub fn backward(s: &S) {
    let b = s.beta.lock();
    let a = s.alpha.lock(); // fftlint:allow(lock-order): fixture demonstrates suppression
    consume(a, b);
}

pub fn outer(s: &S) {
    let a = s.alpha.lock();
    tail(s);
    consume_one(a);
}

pub fn tail(s: &S) {
    let b = s.beta.lock();
    consume_one(b);
}
