// Fixture: `no-alloc-in-hot-path`. The marked driver takes from the pool
// (exempt), then reaches an allocation two hops down the call graph; the
// sibling `cold` path allocates freely because nothing hot reaches it.

// fftlint:hot
pub fn driver(pool: &mut Pool, n: usize) {
    let buf = pool.take_buffer(n);
    stage(buf, n);
}

pub fn stage(buf: &mut [u8], n: usize) {
    deep(buf, n);
}

pub fn deep(buf: &mut [u8], n: usize) {
    let spill = vec![0u8; n];
    let sentinel: Vec<u8> = Vec::new(); // fftlint:allow(no-alloc-in-hot-path): capacity-0 sentinel, no heap
    consume(buf, spill, sentinel);
}

pub fn cold(n: usize) {
    let scratch = vec![0u8; n];
    consume(&mut [], scratch, Vec::new());
}
