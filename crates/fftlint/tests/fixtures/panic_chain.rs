// Fixture: the callee half of the cross-crate panic chain (see
// `exec_seed.rs`). `deep` panics two hops below the executor entry;
// `indexed` shows the per-fn index summary; `justified` shows that a
// written `no-panic-in-lib` invariant also discharges reachability.

pub fn kern_entry(p: &P) -> usize {
    deep(p) + indexed(p) + justified(p)
}

fn deep(p: &P) -> usize {
    p.value.unwrap()
}

fn indexed(p: &P) -> usize {
    p.table[0] + p.table[1]
}

fn justified(p: &P) -> usize {
    // fftlint:allow(no-panic-in-lib): fixture: the invariant note covers reachability too
    p.checked.unwrap()
}
