// Fixture: `env-read-outside-fftobs`. Both accessor shapes fire; the
// second carries the inline justification. The same source linted as
// `crates/obs/src/env.rs` is exempt (the sanctioned implementation file).

pub fn knob() -> Option<String> {
    std::env::var("FFT_KNOB").ok()
}

pub fn gate() -> bool {
    std::env::var_os("FFT_GATE").is_some() // fftlint:allow(env-read-outside-fftobs): fixture demonstrates suppression
}
