// Fixture: no-wallclock violations (linted as a simulated-time crate).
fn bad_instant() -> u64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos() as u64
}

fn bad_system_time() -> u64 {
    let t = std::time::SystemTime::now();
    t.elapsed().map(|d| d.as_nanos() as u64).unwrap_or(0)
}

fn allowed_instant() -> u64 {
    // fftlint:allow(no-wallclock): fixture proving the escape hatch works
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos() as u64
}
