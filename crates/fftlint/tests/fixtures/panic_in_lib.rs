// Fixture: no-panic-in-lib violations.
fn bad_unwrap(x: Option<u64>) -> u64 {
    x.unwrap()
}

fn bad_expect(x: Option<u64>) -> u64 {
    x.expect("fixture")
}

fn fine_fallbacks(x: Option<u64>) -> u64 {
    x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default()
}

fn allowed_unwrap(x: Option<u64>) -> u64 {
    // fftlint:allow(no-panic-in-lib): fixture proving the escape hatch works
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        assert_eq!(Some(3).unwrap(), 3);
    }
}
