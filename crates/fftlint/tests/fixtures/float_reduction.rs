// Fixture: float-reduction-order violations.
fn bad_parallel_sum(v: &[f64]) -> f64 {
    v.par_iter().map(|a| a * 2.0).sum::<f64>()
}

fn fine_integer_parallel(v: &[u64]) -> u64 {
    v.par_iter().map(|a| a * 2).sum::<u64>()
}

fn fine_serial_float(v: &[f64]) -> f64 {
    v.iter().map(|a| a * 2.0).sum::<f64>()
}

fn fine_sorted_merge(v: &[f64]) -> f64 {
    let mut parts: Vec<(usize, f64)> = v.par_iter().enumerate().collect();
    parts.sort_by_key(|(i, _)| *i);
    parts.iter().map(|(_, x)| x).sum::<f64>()
}

fn allowed_parallel_sum(v: &[f64]) -> f64 {
    // fftlint:allow(float-reduction-order): fixture proving the escape hatch works
    v.par_iter().map(|a| a * 2.0).sum::<f64>()
}
