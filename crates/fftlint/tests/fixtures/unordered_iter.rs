// Fixture: no-unordered-iter violations.
use std::collections::HashMap;

fn bad_iteration() -> Vec<(u64, u64)> {
    let m: HashMap<u64, u64> = (0..8).map(|i| (i, i * i)).collect();
    m.into_iter().collect()
}

fn allowed_lookup() -> usize {
    let s: std::collections::HashSet<u64> = (0..8).collect(); // fftlint:allow(no-unordered-iter): membership checks only, never iterated
    s.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_use_hash_containers() {
        let m: std::collections::HashMap<u8, u8> = Default::default();
        assert!(m.is_empty());
    }
}
