//! SARIF 2.1.0 export.
//!
//! One run, one `tool.driver` carrying the full rule registry, one
//! `result` per finding with a `physicalLocation` region and — when the
//! run was classified against a baseline — a `baselineState` of `"new"`
//! or `"unchanged"`, so SARIF viewers and code-scanning uploads can show
//! pinned findings without them gating the run.
//!
//! The emitter is hand-written (fftlint stays dependency-free); ci.sh
//! validates the output with `trace_check --sarif`, whose independent
//! JSON parser (`fftobs::json`) cross-checks this writer.

use crate::json::escape;
use crate::rules::{self, Finding, ALL_RULES};

/// Baseline classification attached to a SARIF result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineState {
    /// Not pinned in the baseline: fails the run.
    New,
    /// Pinned in the baseline: reported but suppressed.
    Unchanged,
}

/// Renders findings (optionally baseline-classified) as a SARIF 2.1.0
/// document, newline-terminated.
pub fn render(findings: &[(Finding, Option<BaselineState>)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"fftlint\",\n");
    out.push_str("          \"version\": \"2.0.0\",\n");
    out.push_str("          \"informationUri\": \"https://example.invalid/fftlint\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, rule) in ALL_RULES.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{}\n",
            escape(rule),
            escape(rules::summary(rule)),
            if i + 1 < ALL_RULES.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, (f, state)) in findings.iter().enumerate() {
        let rule_index = ALL_RULES
            .iter()
            .position(|r| *r == f.rule)
            .unwrap_or(ALL_RULES.len());
        out.push_str("        {\n");
        out.push_str(&format!("          \"ruleId\": \"{}\",\n", escape(f.rule)));
        out.push_str(&format!("          \"ruleIndex\": {rule_index},\n"));
        out.push_str("          \"level\": \"error\",\n");
        if let Some(state) = state {
            let s = match state {
                BaselineState::New => "new",
                BaselineState::Unchanged => "unchanged",
            };
            out.push_str(&format!("          \"baselineState\": \"{s}\",\n"));
        }
        out.push_str(&format!(
            "          \"message\": {{\"text\": \"{}\"}},\n",
            escape(&f.msg)
        ));
        out.push_str("          \"locations\": [\n            {\n");
        out.push_str("              \"physicalLocation\": {\n");
        out.push_str(&format!(
            "                \"artifactLocation\": {{\"uri\": \"{}\", \"uriBaseId\": \"SRCROOT\"}},\n",
            escape(&f.path)
        ));
        out.push_str(&format!(
            "                \"region\": {{\"startLine\": {}, \"startColumn\": {}}}\n",
            f.line, f.col
        ));
        out.push_str("              }\n            }\n          ]\n");
        out.push_str(&format!(
            "        }}{}\n",
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Value};

    #[test]
    fn sarif_parses_and_carries_all_fields() {
        let findings = vec![
            (
                Finding {
                    rule: rules::NO_ALLOC_IN_HOT_PATH,
                    path: "crates/fftkern/src/stockham.rs".to_string(),
                    line: 10,
                    col: 5,
                    msg: "vec![] allocates (\"chain\" -> deep)".to_string(),
                },
                Some(BaselineState::New),
            ),
            (
                Finding {
                    rule: rules::LOCK_ORDER,
                    path: "crates/obs/src/metrics.rs".to_string(),
                    line: 2,
                    col: 3,
                    msg: "reverse order".to_string(),
                },
                Some(BaselineState::Unchanged),
            ),
        ];
        let doc = json::parse(&render(&findings)).expect("SARIF must be valid JSON");
        assert_eq!(doc.get("version").and_then(Value::as_str), Some("2.1.0"));
        let runs = doc.get("runs").and_then(Value::as_arr).expect("runs");
        let run = &runs[0];
        let rules_arr = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Value::as_arr)
            .expect("rules");
        assert_eq!(rules_arr.len(), ALL_RULES.len());
        let results = run.get("results").and_then(Value::as_arr).expect("results");
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("baselineState").and_then(Value::as_str),
            Some("new")
        );
        assert_eq!(
            results[1].get("ruleId").and_then(Value::as_str),
            Some("lock-order")
        );
        let region = results[0]
            .get("locations")
            .and_then(Value::as_arr)
            .and_then(|l| l.first())
            .and_then(|l| l.get("physicalLocation"))
            .and_then(|p| p.get("region"))
            .expect("region");
        assert_eq!(region.get("startLine").and_then(Value::as_num), Some(10.0));
    }

    #[test]
    fn empty_findings_still_render_valid_sarif() {
        let doc = json::parse(&render(&[])).expect("valid");
        let results = doc
            .get("runs")
            .and_then(Value::as_arr)
            .and_then(|r| r.first())
            .and_then(|r| r.get("results"))
            .and_then(Value::as_arr)
            .expect("results");
        assert!(results.is_empty());
    }
}
