//! Minimal JSON reader/writer, keeping fftlint dependency-free.
//!
//! The reader is a strict recursive-descent parser over the whole JSON
//! grammar (objects, arrays, strings with escapes, numbers, booleans,
//! null); the writer is just [`escape`]. It backs the committed baseline
//! ([`crate::baseline`]) and the SARIF round-trip tests — the CI-side
//! SARIF *validation* deliberately uses the independent parser in
//! `fftobs::json` so the two implementations cross-check each other.

use std::collections::BTreeMap;

/// A parsed JSON value. Object keys are sorted (`BTreeMap`) so traversal
/// is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as f64 (integers round-trip exactly to 2^53).
    Num(f64),
    /// String (escapes decoded).
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Value, String> {
    let b: Vec<char> = text.chars().collect();
    let mut p = Parser { b: &b, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing characters at offset {}", p.i));
    }
    Ok(v)
}

/// Escapes `s` for embedding in a JSON string literal (no surrounding
/// quotes added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    b: &'a [char],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, ' ' | '\t' | '\n' | '\r'))
        {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{c}' at offset {}", self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        for c in word.chars() {
            self.eat(c)?;
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some('t') => self.lit("true", Value::Bool(true)),
            Some('f') => self.lit("false", Value::Bool(false)),
            Some('n') => self.lit("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at offset {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat('{')?;
        let mut m = BTreeMap::new();
        self.ws();
        if self.peek() == Some('}') {
            self.i += 1;
            return Ok(Value::Obj(m));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(':')?;
            self.ws();
            let v = self.value()?;
            m.insert(k, v);
            self.ws();
            match self.peek() {
                Some(',') => self.i += 1,
                Some('}') => {
                    self.i += 1;
                    return Ok(Value::Obj(m));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat('[')?;
        let mut v = Vec::new();
        self.ws();
        if self.peek() == Some(']') {
            self.i += 1;
            return Ok(Value::Arr(v));
        }
        loop {
            self.ws();
            v.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(',') => self.i += 1,
                Some(']') => {
                    self.i += 1;
                    return Ok(Value::Arr(v));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.i += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let Some(e) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.i += 1;
                    match e {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{0008}'),
                        'f' => out.push('\u{000c}'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let Some(h) = self.peek().and_then(|c| c.to_digit(16)) else {
                                    return Err("bad \\u escape".to_string());
                                };
                                code = code * 16 + h;
                                self.i += 1;
                            }
                            // Surrogate pairs are not reassembled; the
                            // writer never emits them for this repo's
                            // ASCII-leaning paths/messages.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape '\\{e}'")),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == Some('-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.i += 1;
        }
        let text: String = self.b[start..self.i].iter().collect();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true, "e": null}}"#)
            .expect("parse");
        assert_eq!(
            v.get("a").and_then(Value::as_arr).map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Value::as_str),
            Some("x\ny")
        );
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_escapes() {
        assert!(parse("{} x").is_err());
        assert!(parse(r#""\q""#).is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "a \"quoted\" \\ path\nwith\tcontrol \u{0001} chars";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(
            parse(&doc).ok().as_ref().and_then(|x| x.as_str()),
            Some(original)
        );
    }
}
