//! Pass 1 of the workspace analyzer: the per-file item tree.
//!
//! [`build`] turns one scanned file into a [`FileTree`]: every `fn` item
//! with its body token span, enclosing `impl` type, `fftlint:hot` / test
//! markers, and the sites the interprocedural rules in [`crate::graph`]
//! consume — call sites (with qualifier for resolution), allocation
//! expressions, `.unwrap()`/`.expect()` sites, possibly-panicking index
//! expressions, and lock acquisitions with a best-effort receiver identity.
//!
//! Like the lexer this is a *surface* parse: brace matching plus short
//! token patterns, no grammar. The known approximations are listed on each
//! extractor; they are all chosen to over-report (a human-reviewed allow or
//! baseline entry absorbs a false positive) rather than silently miss.

use crate::lex::{Scanned, Tok, Token};

/// Rust keywords that never name a call target or an indexed value.
const KEYWORDS: [&str; 36] = [
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "static", "struct", "super", "trait", "type", "unsafe", "use",
    "where", "while",
];

/// True when `s` is a Rust keyword (see [`KEYWORDS`]).
pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Method names the lock-receiver walk treats as transparent: they forward
/// the same underlying lock object (`TABLES.get_or_init(..).lock()` locks
/// `TABLES`, not the `get_or_init` temporary).
const LOCK_PASSTHROUGH: [&str; 9] = [
    "get_or_init",
    "get_or_try_init",
    "as_ref",
    "as_mut",
    "unwrap",
    "expect",
    "borrow",
    "borrow_mut",
    "deref",
];

/// A flagged token position inside a function body.
#[derive(Debug, Clone)]
pub struct Site {
    /// What was matched (e.g. `"Vec::new"`, `".clone()"`, `"var"`).
    pub what: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name (last path segment / method name).
    pub name: String,
    /// Path qualifier directly before `::name(`, when present
    /// (`Vec` in `Vec::new()`, `simd` in `simd::run_stage()`).
    pub qual: Option<String>,
    /// True for `.name(...)` method syntax.
    pub method: bool,
    /// Token index of the callee name (orders calls against lock sites).
    pub tok: usize,
    /// 1-based line of the callee name.
    pub line: u32,
    /// 1-based column of the callee name.
    pub col: u32,
}

/// A `.lock()` / RwLock `.read()` / `.write()` acquisition.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Best-effort receiver identity: the nearest field, variable, static,
    /// or producing-function name (`plans1d`, `TABLES`, `warned`).
    pub recv: String,
    /// Token index of the receiver's `.` (orders locks against calls).
    pub tok: usize,
    /// 1-based line of the lock method name.
    pub line: u32,
    /// 1-based column of the lock method name.
    pub col: u32,
}

/// One `fn` item with a body.
#[derive(Debug)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Display/resolution qualifier: `Type::name` inside an `impl Type`
    /// block, otherwise just `name`.
    pub qual: String,
    /// Enclosing `impl` self-type, when any (resolves `Self::` calls).
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Token index of the `fn` keyword.
    pub decl_tok: usize,
    /// Token indices of the body `{` and its matching `}`.
    pub body: (usize, usize),
    /// Marked `// fftlint:hot` (hot-path allocation root).
    pub hot: bool,
    /// Test code: inside a `#[cfg(test)]` module or under a `#[test]` /
    /// `#[cfg(test)]` attribute. Test fns never join the call graph.
    pub test: bool,
    /// Call sites, in token order.
    pub calls: Vec<Call>,
    /// Allocation expressions (`Vec::new`, `vec![]`, `.clone()`, …).
    pub allocs: Vec<Site>,
    /// `.unwrap()` / `.expect(` sites.
    pub panics: Vec<Site>,
    /// Possibly-panicking index expressions (`x[i]`, including slicing).
    pub indexes: Vec<Site>,
    /// Lock acquisitions, in token order.
    pub locks: Vec<LockSite>,
}

/// The item tree of one file.
#[derive(Debug, Default)]
pub struct FileTree {
    /// Every `fn` item with a body, in source order.
    pub fns: Vec<FnItem>,
    /// `std::env::var` / `var_os` call sites anywhere in the file
    /// (including test modules — env discipline applies to tests too).
    pub env_reads: Vec<Site>,
}

/// Builds the item tree for one scanned file.
pub fn build(scan: &Scanned) -> FileTree {
    let t = &scan.tokens;
    let mask = scan.test_mask();
    let close = match_braces(t);
    let impls = impl_spans(t, &close);
    let mut fns = discover_fns(t, &mask, &impls, &close);
    assign_hot(&scan.hots, &mut fns);
    let owner = owner_map(t.len(), &fns);
    let mut env_reads = Vec::new();
    collect_sites(t, &owner, &mut fns, &mut env_reads);
    FileTree { fns, env_reads }
}

fn ident(t: &[Token], i: usize) -> Option<&str> {
    match &t.get(i)?.tok {
        Tok::Ident(s) => Some(s),
        _ => None,
    }
}

fn punct(t: &[Token], i: usize, c: char) -> bool {
    matches!(t.get(i).map(|x| &x.tok), Some(Tok::Punct(p)) if *p == c)
}

/// For every `{` token index, the index of its matching `}` (end of stream
/// when unbalanced).
fn match_braces(t: &[Token]) -> Vec<usize> {
    let end = t.len().saturating_sub(1);
    let mut close = vec![end; t.len()];
    let mut stack: Vec<usize> = Vec::new();
    for (i, tok) in t.iter().enumerate() {
        match tok.tok {
            Tok::Punct('{') => stack.push(i),
            Tok::Punct('}') => {
                if let Some(open) = stack.pop() {
                    close[open] = i;
                }
            }
            _ => {}
        }
    }
    close
}

/// Skips a `<...>` generic group starting at the `<` at `j`; returns the
/// index after the matching `>`. `->` arrows inside (Fn-trait sugar) do
/// not count as closers.
fn skip_angles(t: &[Token], j: usize) -> usize {
    let mut depth = 1usize;
    let mut k = j + 1;
    while k < t.len() && depth > 0 {
        match t[k].tok {
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') if !punct(t, k - 1, '-') && !punct(t, k - 1, '=') => depth -= 1,
            _ => {}
        }
        k += 1;
    }
    k
}

/// Skips a `(...)` group starting at the `(` at `j`; returns the index
/// after the matching `)`.
fn skip_parens(t: &[Token], j: usize) -> usize {
    let mut depth = 1usize;
    let mut k = j + 1;
    while k < t.len() && depth > 0 {
        match t[k].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => depth -= 1,
            _ => {}
        }
        k += 1;
    }
    k
}

/// Collects `impl` block spans as `(self_type, body_open, body_close)`.
///
/// Only *item-position* `impl` counts: the previous token must be an item
/// boundary (`{`, `}`, `;`, an attribute's `]`, `unsafe`, or start of
/// file), which excludes `-> impl Trait` and `arg: impl Trait` uses.
fn impl_spans(t: &[Token], close: &[usize]) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < t.len() {
        if ident(t, i) != Some("impl") {
            i += 1;
            continue;
        }
        let item_position = i == 0
            || matches!(
                t[i - 1].tok,
                Tok::Punct('{') | Tok::Punct('}') | Tok::Punct(';') | Tok::Punct(']')
            )
            || ident(t, i - 1) == Some("unsafe");
        if !item_position {
            i += 1;
            continue;
        }
        // Parse the header: generics, `Trait for`, then the self type; the
        // last path segment before the body brace names the type.
        let mut j = i + 1;
        let mut name: Option<String> = None;
        while j < t.len() {
            match &t[j].tok {
                Tok::Punct('<') => j = skip_angles(t, j),
                Tok::Punct('(') => j = skip_parens(t, j),
                Tok::Punct('{') => break,
                Tok::Ident(x) if x == "for" => {
                    name = None; // what follows `for` is the real self type
                    j += 1;
                }
                Tok::Ident(x) if x == "where" => {
                    while j < t.len() && !matches!(t[j].tok, Tok::Punct('{')) {
                        j = match t[j].tok {
                            Tok::Punct('<') => skip_angles(t, j),
                            Tok::Punct('(') => skip_parens(t, j),
                            _ => j + 1,
                        };
                    }
                    break;
                }
                Tok::Ident(x) if !is_keyword(x) => {
                    name = Some(x.clone());
                    j += 1;
                }
                _ => j += 1,
            }
        }
        if j < t.len() && matches!(t[j].tok, Tok::Punct('{')) {
            if let Some(n) = name {
                out.push((n, j, close[j]));
            }
        }
        i = j + 1;
    }
    out
}

/// Finds every `fn` item with a body and its enclosing impl type.
fn discover_fns(
    t: &[Token],
    mask: &[bool],
    impls: &[(String, usize, usize)],
    close: &[usize],
) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut pending_test = false;
    let mut i = 0usize;
    while i < t.len() {
        // `#[test]` or `#[cfg(.. test ..)]` directly on an item marks the
        // next fn as test code even outside a `#[cfg(test)]` module.
        if punct(t, i, '#') && punct(t, i + 1, '[') {
            match ident(t, i + 2) {
                Some("test") if punct(t, i + 3, ']') => pending_test = true,
                Some("cfg") if punct(t, i + 3, '(') => {
                    let end = skip_parens(t, i + 3);
                    if t[i + 4..end.min(t.len())]
                        .iter()
                        .any(|x| matches!(&x.tok, Tok::Ident(s) if s == "test"))
                    {
                        pending_test = true;
                    }
                }
                _ => {}
            }
            i += 2;
            continue;
        }
        // A statement/item boundary clears a pending `#[test]` that did
        // not land on a fn (e.g. `#[cfg(test)] use …;`).
        if punct(t, i, ';') {
            pending_test = false;
        }
        if ident(t, i) != Some("fn") {
            i += 1;
            continue;
        }
        let Some(name) = ident(t, i + 1) else {
            i += 1; // `fn(..)` pointer type, not an item
            continue;
        };
        // Scan the signature for the body `{` (or `;` for a bodyless
        // trait-method declaration) at zero paren/bracket depth.
        let mut pdepth = 0i32;
        let mut bdepth = 0i32;
        let mut k = i + 2;
        let mut body_open = None;
        while k < t.len() {
            match t[k].tok {
                Tok::Punct('(') => pdepth += 1,
                Tok::Punct(')') => pdepth -= 1,
                Tok::Punct('[') => bdepth += 1,
                Tok::Punct(']') => bdepth -= 1,
                Tok::Punct('{') if pdepth == 0 && bdepth == 0 => {
                    body_open = Some(k);
                    break;
                }
                Tok::Punct(';') if pdepth == 0 && bdepth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        let Some(open) = body_open else {
            pending_test = false;
            i = k + 1;
            continue;
        };
        let impl_type = impls
            .iter()
            .filter(|(_, o, c)| *o < i && i < *c)
            .min_by_key(|(_, o, c)| c - o)
            .map(|(n, _, _)| n.clone());
        let qual = match &impl_type {
            Some(ty) => format!("{ty}::{name}"),
            None => name.to_string(),
        };
        out.push(FnItem {
            name: name.to_string(),
            qual,
            impl_type,
            line: t[i].line,
            col: t[i].col,
            decl_tok: i,
            body: (open, close[open]),
            hot: false,
            test: pending_test || mask[i],
            calls: Vec::new(),
            allocs: Vec::new(),
            panics: Vec::new(),
            indexes: Vec::new(),
            locks: Vec::new(),
        });
        pending_test = false;
        i = open + 1; // descend: nested fns are separate items
    }
    out
}

/// Attaches each `fftlint:hot` marker to the first fn item at or below
/// its line (attributes between the marker and the `fn` are fine).
fn assign_hot(hots: &[u32], fns: &mut [FnItem]) {
    for &h in hots {
        if let Some(f) = fns
            .iter_mut()
            .filter(|f| f.line >= h)
            .min_by_key(|f| f.line)
        {
            f.hot = true;
        }
    }
}

/// Maps each token index to the innermost enclosing fn item, if any.
fn owner_map(len: usize, fns: &[FnItem]) -> Vec<usize> {
    let mut owner = vec![usize::MAX; len];
    for (fid, f) in fns.iter().enumerate() {
        // Items are discovered outside-in, so nested fns overwrite their
        // parent's claim over the inner range.
        for o in owner
            .iter_mut()
            .take(f.body.1.saturating_add(1).min(len))
            .skip(f.decl_tok)
        {
            *o = fid;
        }
    }
    owner
}

/// One linear pass extracting call/alloc/panic/index/lock/env sites and
/// attributing them to the owning fn.
fn collect_sites(t: &[Token], owner: &[usize], fns: &mut [FnItem], env_reads: &mut Vec<Site>) {
    let has_rwlock = t
        .iter()
        .any(|x| matches!(&x.tok, Tok::Ident(s) if s == "RwLock"));
    for i in 0..t.len() {
        let own = owner.get(i).copied().unwrap_or(usize::MAX);
        // std::env::var / var_os call (module-qualified, so `positive_var`
        // and friends in fftobs::env never match).
        if ident(t, i) == Some("env") && punct(t, i + 1, ':') && punct(t, i + 2, ':') {
            if let Some(what @ ("var" | "var_os")) = ident(t, i + 3) {
                if punct(t, i + 4, '(') {
                    let s = &t[i];
                    env_reads.push(Site {
                        what: if what == "var" { "var" } else { "var_os" },
                        line: s.line,
                        col: s.col,
                    });
                }
            }
        }
        // Everything below is attributed to a fn body.
        let Some(f) = fns.get_mut(own) else { continue };
        match &t[i].tok {
            Tok::Punct('.') => {
                let Some(m) = ident(t, i + 1) else { continue };
                match m {
                    "lock" | "read" | "write"
                        if punct(t, i + 2, '(')
                            && punct(t, i + 3, ')')
                            && (m == "lock" || has_rwlock) =>
                    {
                        f.locks.push(LockSite {
                            recv: receiver(t, i),
                            tok: i,
                            line: t[i + 1].line,
                            col: t[i + 1].col,
                        });
                    }
                    "unwrap" | "expect" if punct(t, i + 2, '(') => {
                        f.panics.push(Site {
                            what: if m == "unwrap" { "unwrap" } else { "expect" },
                            line: t[i + 1].line,
                            col: t[i + 1].col,
                        });
                    }
                    _ => {}
                }
                // Allocating method calls (turbofish allowed).
                let what = match m {
                    "to_vec" => Some(".to_vec()"),
                    "to_owned" => Some(".to_owned()"),
                    "clone" => Some(".clone()"),
                    "collect" => Some(".collect()"),
                    _ => None,
                };
                if let Some(what) = what {
                    let mut k = i + 2;
                    if punct(t, k, ':') && punct(t, k + 1, ':') && punct(t, k + 2, '<') {
                        k = skip_angles(t, k + 2);
                    }
                    if punct(t, k, '(') {
                        f.allocs.push(Site {
                            what,
                            line: t[i + 1].line,
                            col: t[i + 1].col,
                        });
                    }
                }
            }
            Tok::Punct('[') if i > 0 => {
                let indexing = match &t[i - 1].tok {
                    Tok::Ident(s) => !is_keyword(s),
                    Tok::Punct(')') | Tok::Punct(']') => true,
                    _ => false,
                };
                if indexing {
                    f.indexes.push(Site {
                        what: "index",
                        line: t[i].line,
                        col: t[i].col,
                    });
                }
            }
            Tok::Ident(name) if !is_keyword(name) => {
                // `vec![…]` macro.
                if name == "vec" && punct(t, i + 1, '!') {
                    f.allocs.push(Site {
                        what: "vec![]",
                        line: t[i].line,
                        col: t[i].col,
                    });
                    continue;
                }
                // `Vec::new` / `Vec::with_capacity` / `Box::new`.
                if (name == "Vec" || name == "Box") && punct(t, i + 1, ':') && punct(t, i + 2, ':')
                {
                    let what = match (name.as_str(), ident(t, i + 3)) {
                        ("Vec", Some("new")) => Some("Vec::new"),
                        ("Vec", Some("with_capacity")) => Some("Vec::with_capacity"),
                        ("Box", Some("new")) => Some("Box::new"),
                        _ => None,
                    };
                    if let Some(what) = what {
                        if punct(t, i + 4, '(') {
                            f.allocs.push(Site {
                                what,
                                line: t[i].line,
                                col: t[i].col,
                            });
                        }
                    }
                }
                // Call site: `name(` or `name::<…>(`, free or method.
                if ident(t, i.wrapping_sub(1)) == Some("fn") {
                    continue; // the declaration itself
                }
                let mut k = i + 1;
                if punct(t, k, ':') && punct(t, k + 1, ':') && punct(t, k + 2, '<') {
                    k = skip_angles(t, k + 2);
                }
                if !punct(t, k, '(') {
                    continue;
                }
                let method = i > 0 && punct(t, i - 1, '.');
                let qual = if !method && i >= 3 && punct(t, i - 1, ':') && punct(t, i - 2, ':') {
                    ident(t, i - 3).map(str::to_string)
                } else {
                    None
                };
                f.calls.push(Call {
                    name: name.clone(),
                    qual,
                    method,
                    tok: i,
                    line: t[i].line,
                    col: t[i].col,
                });
            }
            _ => {}
        }
    }
}

/// Walks back from the `.` before a lock method to the receiver identity.
fn receiver(t: &[Token], dot: usize) -> String {
    let mut k = dot;
    loop {
        if k == 0 {
            return "<expr>".to_string();
        }
        match &t[k - 1].tok {
            Tok::Ident(x) => return x.clone(),
            Tok::Punct(')') => {
                // Skip the call's argument group backward.
                let mut depth = 1usize;
                let mut m = k - 1;
                while m > 0 && depth > 0 {
                    m -= 1;
                    match t[m].tok {
                        Tok::Punct(')') => depth += 1,
                        Tok::Punct('(') => depth -= 1,
                        _ => {}
                    }
                }
                if m == 0 {
                    return "<expr>".to_string();
                }
                match &t[m - 1].tok {
                    Tok::Ident(f) => {
                        if LOCK_PASSTHROUGH.contains(&f.as_str()) && m >= 2 && punct(t, m - 2, '.')
                        {
                            k = m - 2; // look through: inspect what `f` was called on
                        } else {
                            return f.clone(); // producing fn names the lock
                        }
                    }
                    _ => return "<expr>".to_string(),
                }
            }
            Tok::Punct(']') => {
                // Index expression: skip back to `[` and keep walking.
                let mut depth = 1usize;
                let mut m = k - 1;
                while m > 0 && depth > 0 {
                    m -= 1;
                    match t[m].tok {
                        Tok::Punct(']') => depth += 1,
                        Tok::Punct('[') => depth -= 1,
                        _ => {}
                    }
                }
                if m == 0 {
                    return "<expr>".to_string();
                }
                k = m;
            }
            _ => return "<expr>".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::scan;

    fn tree_of(src: &str) -> FileTree {
        build(&scan(src))
    }

    #[test]
    fn fn_items_capture_impl_qualifiers() {
        let src = "\
impl Plan { pub fn run(&self) { helper(); } }
impl Display for Plan { fn fmt(&self) {} }
fn helper() {}
fn sig() -> impl Iterator<Item = u8> { std::iter::empty() }
";
        let t = tree_of(src);
        let quals: Vec<&str> = t.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, vec!["Plan::run", "Plan::fmt", "helper", "sig"]);
        assert_eq!(t.fns[0].calls.len(), 1);
        assert_eq!(t.fns[0].calls[0].name, "helper");
    }

    #[test]
    fn hot_marker_attaches_to_next_fn() {
        let src = "\
// fftlint:hot
#[inline]
fn butterfly() {}
fn cold() {}
fn trailing() {} // fftlint:hot
";
        let t = tree_of(src);
        let hot: Vec<(&str, bool)> = t.fns.iter().map(|f| (f.name.as_str(), f.hot)).collect();
        assert_eq!(
            hot,
            vec![("butterfly", true), ("cold", false), ("trailing", true)]
        );
    }

    #[test]
    fn sites_are_attributed_to_the_owning_fn() {
        let src = "\
fn outer() {
    let v = Vec::new();
    let b = vec![0u8; 4];
    let c = b.clone();
    let x = b[0];
    let u = c.first().unwrap();
    fn inner() { let w = Box::new(1); }
}
";
        let t = tree_of(src);
        assert_eq!(t.fns.len(), 2);
        let outer = &t.fns[0];
        let inner = &t.fns[1];
        let what: Vec<&str> = outer.allocs.iter().map(|s| s.what).collect();
        assert_eq!(what, vec!["Vec::new", "vec![]", ".clone()"]);
        assert_eq!(outer.panics.len(), 1);
        assert_eq!(outer.indexes.len(), 1);
        assert_eq!(
            inner.allocs.iter().map(|s| s.what).collect::<Vec<_>>(),
            vec!["Box::new"]
        );
    }

    #[test]
    fn lock_receivers_walk_through_passthroughs() {
        let src = "\
fn a(s: &S) { s.plans1d.lock(); }
fn b() { TABLES.get_or_init(make).lock(); }
fn c() { warned().lock(); }
";
        let t = tree_of(src);
        let recvs: Vec<&str> = t
            .fns
            .iter()
            .flat_map(|f| f.locks.iter().map(|l| l.recv.as_str()))
            .collect();
        assert_eq!(recvs, vec!["plans1d", "TABLES", "warned"]);
    }

    #[test]
    fn env_reads_found_everywhere_including_tests() {
        let src = "\
fn f() { let v = std::env::var(\"FFT_X\"); }
#[cfg(test)]
mod tests { fn t() { let v = std::env::var_os(\"FFT_Y\"); } }
";
        let t = tree_of(src);
        let whats: Vec<&str> = t.env_reads.iter().map(|s| s.what).collect();
        assert_eq!(whats, vec!["var", "var_os"]);
    }

    #[test]
    fn test_fns_are_marked() {
        let src = "\
#[test]
fn unit() { x.unwrap(); }
#[cfg(test)]
mod tests { fn helper() {} }
fn real() {}
";
        let t = tree_of(src);
        let marks: Vec<(&str, bool)> = t.fns.iter().map(|f| (f.name.as_str(), f.test)).collect();
        assert_eq!(
            marks,
            vec![("unit", true), ("helper", true), ("real", false)]
        );
    }

    #[test]
    fn qualified_and_method_calls_carry_resolution_hints() {
        let src = "fn f(p: &P) { simd::run_stage(1); p.execute(2); plain(); Vec::new(); }";
        let t = tree_of(src);
        let calls: Vec<(&str, Option<&str>, bool)> = t.fns[0]
            .calls
            .iter()
            .map(|c| (c.name.as_str(), c.qual.as_deref(), c.method))
            .collect();
        assert_eq!(
            calls,
            vec![
                ("run_stage", Some("simd"), false),
                ("execute", None, true),
                ("plain", None, false),
                ("new", Some("Vec"), false),
            ]
        );
    }
}
