//! `fftlint` — workspace determinism linter.
//!
//! A dependency-free static analyzer (hand-written lexer, no syn/proc-macro)
//! that enforces the project's simulated-time contract at build time:
//! simulated durations, trace events, and figure stdout must be bit-identical
//! across executor thread counts, scheduler memoization modes, and reruns,
//! and the executor's steady state must stay allocation-free (the paper's
//! plan-once/execute contract). Analysis runs in two passes: [`lex`] +
//! [`tree`] parse each file into an item tree, then [`graph`] builds a
//! workspace-wide call graph for the interprocedural rules. The rules (see
//! [`rules`]) are deny-by-default; the escape hatches are an inline
//! `// fftlint:allow(<rule-id>): <justification>` comment and, for the
//! reviewed pre-existing stock, the committed [`baseline`]. Findings can
//! also be exported as SARIF 2.1.0 ([`sarif`]).
//!
//! The companion *runtime* half of the contract lives behind
//! `--features sanitize` in `mpisim`/`distfft` (replay digests, pool leak
//! detection, schedule-permutation stress); this crate is the static half.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod graph;
pub mod json;
pub mod lex;
pub mod rules;
pub mod sarif;
pub mod tree;

pub use graph::Analysis;
pub use rules::{FileCtx, FileKind, Finding, ALL_RULES};

use std::path::{Path, PathBuf};

/// Directory prefixes excluded from `--workspace` walks: vendored stand-in
/// crates (not project code) and fftlint's own violation fixtures.
const EXCLUDED_PREFIXES: [&str; 2] = ["vendor/", "crates/fftlint/tests/fixtures/"];

/// Classifies a workspace-relative path (forward slashes) into the crate it
/// belongs to and its build role.
pub fn classify(rel: &str) -> (String, FileKind) {
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
        .to_string();
    let kind = if rel.contains("/tests/") || rel.starts_with("tests/") {
        FileKind::Test
    } else if rel.contains("/benches/") || rel.starts_with("benches/") {
        FileKind::Bench
    } else if rel.contains("/src/bin/") || rel.ends_with("src/main.rs") {
        FileKind::Bin
    } else {
        FileKind::Lib
    };
    (crate_name, kind)
}

/// Runs the full two-pass analysis (per-file rules + call-graph rules)
/// over `(relative_path, source)` inputs.
pub fn analyze(inputs: &[(String, String)]) -> Vec<Finding> {
    Analysis::build(inputs).findings()
}

/// Lints one source string as the given workspace-relative path. The call
/// graph covers just this file — interprocedural rules still run, seeing
/// only intra-file edges.
pub fn lint_source(rel: &str, src: &str) -> Vec<Finding> {
    analyze(&[(rel.to_string(), src.to_string())])
}

/// Workspace-relative display path for `file` under `root` (forward
/// slashes; files outside `root` keep their full path).
pub fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Reads every file and runs the full workspace analysis. IO errors name
/// the offending file.
pub fn analyze_files(root: &Path, files: &[PathBuf]) -> std::io::Result<Vec<Finding>> {
    let mut inputs = Vec::with_capacity(files.len());
    for file in files {
        let src = std::fs::read_to_string(file)
            .map_err(|e| std::io::Error::new(e.kind(), format!("{}: {e}", file.display())))?;
        inputs.push((rel_path(root, file), src));
    }
    Ok(analyze(&inputs))
}

/// Collects every lintable `.rs` file under `root`, sorted for
/// deterministic output, honoring [`EXCLUDED_PREFIXES`].
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for top in ["src", "tests", "benches", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut out)?;
        }
    }
    out.retain(|p| {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(p)
            .to_string_lossy()
            .replace('\\', "/");
        !EXCLUDED_PREFIXES.iter().any(|x| rel.starts_with(x))
    });
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_covers_the_workspace_shapes() {
        assert_eq!(
            classify("crates/mpisim/src/comm.rs"),
            ("mpisim".into(), FileKind::Lib)
        );
        assert_eq!(
            classify("crates/bench/src/bin/fig2.rs"),
            ("bench".into(), FileKind::Bin)
        );
        assert_eq!(
            classify("crates/mpisim/tests/sanitize.rs"),
            ("mpisim".into(), FileKind::Test)
        );
        assert_eq!(
            classify("crates/bench/benches/bench_snapshot.rs"),
            ("bench".into(), FileKind::Bench)
        );
        assert_eq!(classify("src/lib.rs"), (String::new(), FileKind::Lib));
        assert_eq!(
            classify("tests/parallel_exec.rs"),
            (String::new(), FileKind::Test)
        );
        assert_eq!(
            classify("crates/fftlint/src/main.rs"),
            ("fftlint".into(), FileKind::Bin)
        );
    }

    #[test]
    fn lint_source_end_to_end() {
        let f = lint_source(
            "crates/mpisim/src/x.rs",
            "fn f() { let t = Instant::now(); }",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, rules::NO_WALLCLOCK);
        assert_eq!(f[0].path, "crates/mpisim/src/x.rs");
    }

    #[test]
    fn workspace_walk_includes_fftlint_itself() {
        // fftlint self-lints: its own sources must be in the walk, while
        // vendored stand-ins and violation fixtures must not.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = workspace_files(&root).expect("workspace walk");
        let rels: Vec<String> = files.iter().map(|p| rel_path(&root, p)).collect();
        for own in [
            "crates/fftlint/src/lib.rs",
            "crates/fftlint/src/graph.rs",
            "crates/fftlint/src/main.rs",
        ] {
            assert!(rels.iter().any(|r| r == own), "{own} missing from walk");
        }
        assert!(rels.iter().all(|r| !r.starts_with("vendor/")));
        assert!(rels
            .iter()
            .all(|r| !r.starts_with("crates/fftlint/tests/fixtures/")));
    }
}
