//! Hand-written Rust surface lexer.
//!
//! The linter does not need a real parser: every rule in [`crate::rules`]
//! matches short token sequences (`Instant :: now`, `. unwrap (`, an
//! identifier `HashMap`). What it *does* need is for those sequences never
//! to fire inside string literals, comments, char literals or doc text —
//! which is exactly what a lexer provides and a regex sweep does not.
//!
//! The lexer also carries the two pieces of non-token information the rules
//! consume: `// fftlint:allow(<rule>, …)` escape directives (recognized in
//! both line and block comments) and a per-token "inside a `#[cfg(test)]`
//! module" mask computed by brace matching.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character (`.`, `:`, `<`, `{`, …).
    Punct(char),
    /// Literal: number (text kept for float detection), string, char.
    /// String/char literal text is dropped — rules must never match it.
    Lit(String),
}

/// A token plus its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token payload.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

/// An `fftlint:allow(...)` escape parsed out of a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Line the directive's comment starts on.
    pub line: u32,
    /// Rule id being allowed (one `Allow` per id for multi-id directives).
    pub rule: String,
}

/// Result of scanning one source file.
#[derive(Debug, Default)]
pub struct Scanned {
    /// Token stream, in source order.
    pub tokens: Vec<Token>,
    /// Every allow directive found in comments.
    pub allows: Vec<Allow>,
    /// Lines carrying a `// fftlint:hot` marker. A marker designates the
    /// next `fn` item at or below its line as a hot-path root for the
    /// `no-alloc-in-hot-path` rule (see [`crate::tree`]).
    pub hots: Vec<u32>,
}

impl Scanned {
    /// True when `rule` is allowed at `line`: a directive on the same line
    /// (trailing comment) or on the line directly above (annotation
    /// comment) suppresses the finding.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
    }

    /// Marks, for every token, whether it sits inside a `#[cfg(test)] mod`
    /// body. Returns a mask parallel to `self.tokens`.
    pub fn test_mask(&self) -> Vec<bool> {
        let t = &self.tokens;
        let mut mask = vec![false; t.len()];
        let mut i = 0;
        while i < t.len() {
            if let Some(body_open) = self.cfg_test_mod_at(i) {
                // Mark from the attribute through the matching close brace.
                let mut depth = 0usize;
                let mut j = body_open;
                while j < t.len() {
                    match t[j].tok {
                        Tok::Punct('{') => depth += 1,
                        Tok::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let end = j.min(t.len().saturating_sub(1));
                for m in mask.iter_mut().take(end + 1).skip(i) {
                    *m = true;
                }
                i = end + 1;
            } else {
                i += 1;
            }
        }
        mask
    }

    /// If a `#[cfg(test)]`-attributed `mod` starts at token `i`, returns
    /// the index of the module body's opening `{`.
    fn cfg_test_mod_at(&self, i: usize) -> Option<usize> {
        let t = &self.tokens;
        let ident =
            |k: usize, s: &str| matches!(&t.get(k)?.tok, Tok::Ident(x) if x == s).then_some(());
        let punct =
            |k: usize, c: char| matches!(&t.get(k)?.tok, Tok::Punct(x) if *x == c).then_some(());
        punct(i, '#')?;
        punct(i + 1, '[')?;
        ident(i + 2, "cfg")?;
        punct(i + 3, '(')?;
        // Accept `test` anywhere inside the cfg predicate (covers
        // `cfg(test)` and `cfg(all(test, …))`).
        let mut k = i + 4;
        let mut saw_test = false;
        let mut depth = 1usize;
        while k < t.len() && depth > 0 {
            match &t[k].tok {
                Tok::Punct('(') => depth += 1,
                Tok::Punct(')') => depth -= 1,
                Tok::Ident(x) if x == "test" => saw_test = true,
                _ => {}
            }
            k += 1;
        }
        if !saw_test {
            return None;
        }
        punct(k, ']')?;
        k += 1;
        // Skip further attributes between the cfg and the item.
        while matches!(t.get(k).map(|x| &x.tok), Some(Tok::Punct('#'))) {
            punct(k + 1, '[')?;
            let mut d = 1usize;
            let mut m = k + 2;
            while m < t.len() && d > 0 {
                match t[m].tok {
                    Tok::Punct('[') => d += 1,
                    Tok::Punct(']') => d -= 1,
                    _ => {}
                }
                m += 1;
            }
            k = m;
        }
        // `pub`/`pub(crate)` visibility, then `mod name {`.
        if matches!(t.get(k).map(|x| &x.tok), Some(Tok::Ident(x)) if x == "pub") {
            k += 1;
            if matches!(t.get(k).map(|x| &x.tok), Some(Tok::Punct('('))) {
                while k < t.len() && !matches!(t[k].tok, Tok::Punct(')')) {
                    k += 1;
                }
                k += 1;
            }
        }
        ident(k, "mod")?;
        k += 2; // mod + name
        matches!(t.get(k).map(|x| &x.tok), Some(Tok::Punct('{'))).then_some(k)
    }
}

/// Lexes `src` into tokens plus allow directives.
pub fn scan(src: &str) -> Scanned {
    let b: Vec<char> = src.chars().collect();
    let mut out = Scanned::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        () => {{
            if b[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < b.len() {
        let c = b[i];
        let (tline, tcol) = (line, col);
        match c {
            // Line comment (covers `///` and `//!` doc comments too).
            '/' if b.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < b.len() && b[i] != '\n' {
                    bump!();
                }
                let text: String = b[start..i].iter().collect();
                parse_allow(&text, tline, &mut out.allows);
                parse_hot(&text, tline, &mut out.hots);
            }
            // Block comment, nested.
            '/' if b.get(i + 1) == Some(&'*') => {
                let start = i;
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        bump!();
                        bump!();
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        bump!();
                        bump!();
                        if depth == 0 {
                            break;
                        }
                    } else {
                        bump!();
                    }
                }
                let text: String = b[start..i.min(b.len())].iter().collect();
                parse_allow(&text, tline, &mut out.allows);
                parse_hot(&text, tline, &mut out.hots);
            }
            // String literals: plain, byte, raw (any hash count).
            '"' => {
                bump!();
                while i < b.len() {
                    if b[i] == '\\' {
                        bump!();
                        if i < b.len() {
                            bump!();
                        }
                    } else if b[i] == '"' {
                        bump!();
                        break;
                    } else {
                        bump!();
                    }
                }
                out.tokens.push(Token {
                    tok: Tok::Lit(String::new()),
                    line: tline,
                    col: tcol,
                });
            }
            'r' | 'b' if raw_string_start(&b, i) => {
                // Skip prefix (r, br, b) up to the quote, counting hashes.
                while i < b.len() && (b[i] == 'r' || b[i] == 'b') {
                    bump!();
                }
                let mut hashes = 0usize;
                while i < b.len() && b[i] == '#' {
                    hashes += 1;
                    bump!();
                }
                if i < b.len() && b[i] == '"' {
                    bump!();
                    'outer: while i < b.len() {
                        if b[i] == '"' {
                            bump!();
                            let mut h = 0usize;
                            while h < hashes && i < b.len() && b[i] == '#' {
                                h += 1;
                                bump!();
                            }
                            if h == hashes {
                                break 'outer;
                            }
                        } else {
                            bump!();
                        }
                    }
                }
                out.tokens.push(Token {
                    tok: Tok::Lit(String::new()),
                    line: tline,
                    col: tcol,
                });
            }
            // Char literal vs lifetime.
            '\'' => {
                if char_literal_start(&b, i) {
                    bump!(); // opening quote
                    if i < b.len() && b[i] == '\\' {
                        bump!();
                        if i < b.len() {
                            bump!();
                        }
                        // Escapes like \u{1F600} span to the closing quote.
                        while i < b.len() && b[i] != '\'' {
                            bump!();
                        }
                    } else if i < b.len() {
                        bump!();
                    }
                    if i < b.len() && b[i] == '\'' {
                        bump!();
                    }
                    out.tokens.push(Token {
                        tok: Tok::Lit(String::new()),
                        line: tline,
                        col: tcol,
                    });
                } else {
                    // Lifetime: skip the quote; the name lexes as an ident.
                    bump!();
                }
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    bump!();
                }
                // Fractional part — only when followed by a digit, so
                // `1.max(2)` stays an int plus a method call.
                if i < b.len() && b[i] == '.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                    bump!();
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                        bump!();
                    }
                }
                out.tokens.push(Token {
                    tok: Tok::Lit(b[start..i].iter().collect()),
                    line: tline,
                    col: tcol,
                });
            }
            _ if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    bump!();
                }
                out.tokens.push(Token {
                    tok: Tok::Ident(b[start..i].iter().collect()),
                    line: tline,
                    col: tcol,
                });
            }
            _ if c.is_whitespace() => {
                bump!();
            }
            _ => {
                bump!();
                out.tokens.push(Token {
                    tok: Tok::Punct(c),
                    line: tline,
                    col: tcol,
                });
            }
        }
    }
    out
}

/// True when position `i` starts a raw/byte string (`r"`, `r#"`, `b"`,
/// `br#"`, …) rather than an identifier beginning with `r`/`b`.
fn raw_string_start(b: &[char], i: usize) -> bool {
    let mut j = i;
    // Up to two prefix letters (b, r or br/rb).
    let mut letters = 0;
    while j < b.len() && (b[j] == 'r' || b[j] == 'b') && letters < 2 {
        j += 1;
        letters += 1;
    }
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    j < b.len() && b[j] == '"' && {
        // Reject identifiers like `rb_tree` — the prefix must be followed
        // directly by the (hash-prefixed) quote, which the scan above
        // guarantees; additionally the char before `i` must not be part of
        // a larger identifier (handled by the caller's tokenizer order).
        true
    }
}

/// True when the `'` at `i` opens a char literal (vs a lifetime).
fn char_literal_start(b: &[char], i: usize) -> bool {
    match b.get(i + 1) {
        Some('\\') => true,
        Some(c) if *c != '\'' => {
            // 'x' is a char literal iff a closing quote follows the single
            // char; otherwise it's a lifetime like 'static or 'w.
            b.get(i + 2) == Some(&'\'')
        }
        _ => false,
    }
}

/// Extracts `fftlint:allow(id, id2, …)` directives from comment text.
fn parse_allow(comment: &str, line: u32, out: &mut Vec<Allow>) {
    let mut rest = comment;
    while let Some(pos) = rest.find("fftlint:allow(") {
        let after = &rest[pos + "fftlint:allow(".len()..];
        let Some(close) = after.find(')') else { return };
        for id in after[..close].split(',') {
            let id = id.trim();
            if !id.is_empty() {
                out.push(Allow {
                    line,
                    rule: id.to_string(),
                });
            }
        }
        rest = &after[close + 1..];
    }
}

/// Detects a `fftlint:hot` marker in comment text. The marker must stand
/// alone (not be the prefix of `fftlint:hot-something`), so a following
/// alphanumeric or `-`/`_` character disqualifies the match.
fn parse_hot(comment: &str, line: u32, out: &mut Vec<u32>) {
    let mut rest = comment;
    while let Some(pos) = rest.find("fftlint:hot") {
        let after = &rest[pos + "fftlint:hot".len()..];
        let standalone = after
            .chars()
            .next()
            .is_none_or(|c| !(c.is_alphanumeric() || c == '-' || c == '_'));
        if standalone && !out.contains(&line) {
            out.push(line);
        }
        rest = after;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(s: &str) -> Vec<String> {
        scan(s)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(i) => Some(i),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_produce_no_idents() {
        let src = r##"
            // HashMap in a comment
            /* Instant::now() in a block /* nested */ comment */
            let s = "HashMap::new()";
            let r = r#"SystemTime"#;
            let c = 'u';
        "##;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "let", "r", "let", "c"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(ids.contains(&"a".to_string()));
        assert!(ids.contains(&"str".to_string()));
    }

    #[test]
    fn float_literals_keep_their_text() {
        let s = scan("let x = 0.5 + 1f64 + 2;");
        let lits: Vec<String> = s
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Lit(l) if !l.is_empty() => Some(l),
                _ => None,
            })
            .collect();
        assert_eq!(lits, vec!["0.5", "1f64", "2"]);
    }

    #[test]
    fn allow_directives_parse_with_positions() {
        let s = scan("let m = x; // fftlint:allow(no-unordered-iter, no-wallclock): why\n");
        assert!(s.allowed("no-unordered-iter", 1));
        assert!(s.allowed("no-wallclock", 1));
        assert!(s.allowed("no-unordered-iter", 2)); // next line covered
        assert!(!s.allowed("no-unordered-iter", 3));
        assert!(!s.allowed("no-unsafe", 1));
    }

    #[test]
    fn hot_markers_record_their_line() {
        let s = scan("// fftlint:hot — butterfly driver\nfn f() {}\nfn g() {} // fftlint:hot\n// fftlint:hotel has no marker\n");
        assert_eq!(s.hots, vec![1, 3]);
    }

    #[test]
    fn cfg_test_mask_covers_test_module_only() {
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn t() { y.unwrap(); }\n}\nfn tail() {}\n";
        let s = scan(src);
        let mask = s.test_mask();
        for (t, m) in s.tokens.iter().zip(&mask) {
            if let Tok::Ident(id) = &t.tok {
                match id.as_str() {
                    "lib" | "tail" => assert!(!m, "{id} wrongly masked"),
                    "t" | "y" => assert!(m, "{id} not masked"),
                    _ => {}
                }
            }
        }
    }
}
