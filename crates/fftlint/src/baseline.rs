//! The committed findings baseline.
//!
//! `fftlint-baseline.json` pins the reviewed pre-existing findings (mostly
//! `panic-reachable-from-exec` sites carried from before the rule existed).
//! A baseline run classifies every current finding against the pinned set:
//!
//! * **new** — produced now, not pinned → fail (the contract regressed);
//! * **unchanged** — produced now and pinned → suppressed;
//! * **stale** — pinned but no longer produced → *also fail*: the finding
//!   was fixed (or drifted to a different span) and the baseline must be
//!   refreshed with `--write-baseline`, so the pin never outlives the code
//!   it describes.
//!
//! Matching is exact on (rule, path, line, col, msg) — msg included so a
//! finding whose call chain changed re-surfaces for review.

use std::collections::BTreeMap;

use crate::json::{self, Value};
use crate::rules::{Finding, ALL_RULES};

/// Schema tag written into (and required from) every baseline file.
pub const SCHEMA: &str = "fftlint-baseline-v1";

/// Result of classifying current findings against a baseline.
#[derive(Debug, Default)]
pub struct Applied {
    /// Findings not in the baseline — these fail the run.
    pub new: Vec<Finding>,
    /// Findings suppressed by a baseline pin.
    pub unchanged: Vec<Finding>,
    /// Baseline entries no longer produced — these fail the run too.
    pub stale: Vec<Finding>,
}

fn key(f: &Finding) -> (String, String, u32, u32, String) {
    (
        f.rule.to_string(),
        f.path.clone(),
        f.line,
        f.col,
        f.msg.clone(),
    )
}

/// Classifies `findings` against parsed baseline `entries` (multiset
/// matching, so duplicate spans pin one-for-one).
pub fn apply(findings: &[Finding], entries: &[Finding]) -> Applied {
    let mut pinned: BTreeMap<(String, String, u32, u32, String), u32> = BTreeMap::new();
    for e in entries {
        *pinned.entry(key(e)).or_insert(0) += 1;
    }
    let mut out = Applied::default();
    for f in findings {
        match pinned.get_mut(&key(f)) {
            Some(n) if *n > 0 => {
                *n -= 1;
                out.unchanged.push(f.clone());
            }
            _ => out.new.push(f.clone()),
        }
    }
    for e in entries {
        if let Some(n) = pinned.get_mut(&key(e)) {
            if *n > 0 {
                *n -= 1;
                out.stale.push(e.clone());
            }
        }
    }
    out
}

/// Serializes findings as a pretty-printed, sorted, newline-terminated
/// baseline document (stable bytes for reviewable diffs).
pub fn render(findings: &[Finding]) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort_by_key(|f| key(f));
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str("  \"findings\": [");
    for (i, f) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \"msg\": \"{}\"}}",
            json::escape(f.rule),
            json::escape(&f.path),
            f.line,
            f.col,
            json::escape(&f.msg)
        ));
    }
    if !sorted.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Parses a baseline document. Unknown rule ids, a wrong schema tag, or
/// malformed members are hard errors — a corrupt baseline must never be
/// silently treated as empty.
pub fn parse(text: &str) -> Result<Vec<Finding>, String> {
    let doc = json::parse(text)?;
    match doc.get("schema").and_then(Value::as_str) {
        Some(s) if s == SCHEMA => {}
        other => return Err(format!("bad baseline schema {other:?}, want \"{SCHEMA}\"")),
    }
    let Some(items) = doc.get("findings").and_then(Value::as_arr) else {
        return Err("baseline missing \"findings\" array".to_string());
    };
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let field = |k: &str| -> Result<&Value, String> {
            item.get(k)
                .ok_or_else(|| format!("baseline finding #{i} missing \"{k}\""))
        };
        let rule_name = field("rule")?
            .as_str()
            .ok_or_else(|| format!("baseline finding #{i}: \"rule\" not a string"))?;
        let Some(rule) = ALL_RULES.iter().find(|r| **r == rule_name) else {
            return Err(format!(
                "baseline finding #{i}: unknown rule \"{rule_name}\""
            ));
        };
        let s = |k: &str| -> Result<String, String> {
            field(k)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("baseline finding #{i}: \"{k}\" not a string"))
        };
        let n = |k: &str| -> Result<u32, String> {
            field(k)?
                .as_num()
                .filter(|x| *x >= 0.0 && x.fract() == 0.0)
                .map(|x| x as u32)
                .ok_or_else(|| format!("baseline finding #{i}: \"{k}\" not a u32"))
        };
        out.push(Finding {
            rule,
            path: s("path")?,
            line: n("line")?,
            col: n("col")?,
            msg: s("msg")?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules;

    fn finding(rule: &'static str, path: &str, line: u32, col: u32, msg: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            col,
            msg: msg.to_string(),
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let fs = vec![
            finding(
                rules::NO_UNSAFE,
                "crates/a/src/x.rs",
                3,
                7,
                "msg \"quoted\"",
            ),
            finding(
                rules::LOCK_ORDER,
                "crates/b/src/y.rs",
                1,
                2,
                "chain -> deep",
            ),
        ];
        let text = render(&fs);
        let back = parse(&text).expect("round trip");
        assert_eq!(back.len(), 2);
        // Sorted by key: lock-order < no-unsafe.
        assert_eq!(back[0].rule, rules::LOCK_ORDER);
        assert_eq!(back[1].msg, "msg \"quoted\"");
    }

    #[test]
    fn apply_classifies_new_unchanged_stale() {
        let pinned = vec![
            finding(rules::NO_UNSAFE, "a.rs", 1, 1, "m"),
            finding(rules::NO_UNSAFE, "b.rs", 2, 2, "gone"),
        ];
        let current = vec![
            finding(rules::NO_UNSAFE, "a.rs", 1, 1, "m"),
            finding(rules::NO_UNSAFE, "c.rs", 3, 3, "fresh"),
        ];
        let r = apply(&current, &pinned);
        assert_eq!(r.unchanged.len(), 1);
        assert_eq!(r.new.len(), 1);
        assert_eq!(r.new[0].path, "c.rs");
        assert_eq!(r.stale.len(), 1);
        assert_eq!(r.stale[0].path, "b.rs");
    }

    #[test]
    fn parse_rejects_corrupt_documents() {
        assert!(parse("{}").is_err());
        assert!(parse(&format!(
            "{{\"schema\": \"{SCHEMA}\", \"findings\": [{{\"rule\": \"nope\", \"path\": \"p\", \"line\": 1, \"col\": 1, \"msg\": \"m\"}}]}}"
        ))
        .is_err());
        assert!(parse(&format!("{{\"schema\": \"{SCHEMA}\"}}")).is_err());
    }
}
