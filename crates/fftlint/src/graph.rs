//! Pass 2 of the workspace analyzer: the call graph and the four
//! interprocedural rules.
//!
//! [`Analysis::build`] scans every input file (pass 1, [`crate::tree`]),
//! then resolves each call site to candidate fn items workspace-wide.
//! Resolution is name-based with three precision levers: a `Type::name`
//! qualifier must match an `impl Type` fn exactly (with `Self::` mapped to
//! the enclosing impl), bare/module-qualified names prefer same-crate
//! matches before falling back workspace-wide, and ubiquitous std method
//! names (`.len()`, `.map()`, …) never form edges. Test fns and non-`Lib`
//! files never join the graph. The result over-approximates reachability —
//! exactly what deny-by-default rules want — while the noise list keeps
//! the false-edge rate low enough that findings stay reviewable.
//!
//! Rules (ids registered in [`crate::rules`]):
//!
//! * `no-alloc-in-hot-path` — allocations inside `// fftlint:hot` fns and
//!   everything they transitively call within [`HOT_CRATES`]; the pooled
//!   acquisition APIs in [`HOT_EXEMPT_CALLEES`] are not descended into.
//! * `env-read-outside-fftobs` — `std::env::var`/`var_os` anywhere (all
//!   file kinds, tests included) except `crates/obs/src/env.rs`.
//! * `lock-order` — a fn that can hold lock A while acquiring lock B
//!   (lexically later in the same body, or via a callee whose transitive
//!   lockset contains B) is flagged when the pair is seen in the reverse
//!   order anywhere else in the workspace.
//! * `panic-reachable-from-exec` — `.unwrap()`/`.expect()` and indexing
//!   sites in any fn transitively reachable from the executor entry file
//!   (`crates/distfft/src/exec.rs`). Index sites are summarized as one
//!   finding per fn at the first site to keep volume reviewable.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lex;
use crate::rules::{self, FileCtx, FileKind, Finding};
use crate::tree::{self, FileTree, FnItem};

/// Crates whose steady-state paths must not allocate: the kernel, the
/// distributed executor, and the simulated wire between ranks.
pub const HOT_CRATES: [&str; 3] = ["fftkern", "distfft", "mpisim"];

/// Callee names the hot-path rule treats as sanctioned acquisition APIs:
/// pooled scratch take/deposit and memoized plan/twiddle lookups. They may
/// allocate on a cold miss by design (plan once, execute allocation-free),
/// so the rule neither flags them nor descends into them.
pub const HOT_EXEMPT_CALLEES: [&str; 14] = [
    "take_empty",
    "take_zeroed",
    "take_buffer",
    "recycle",
    "give",
    "kernel_for",
    "plan1d",
    "plan1d_engine",
    "plan1d_contiguous",
    "with_engine",
    "plan2d",
    "plan3d",
    "forward_table",
    "stockham_tables",
];

/// The only file allowed to touch the process environment.
pub const ENV_ALLOWED_FILES: [&str; 1] = ["crates/obs/src/env.rs"];

/// Executor entry file: every Lib fn here seeds `panic-reachable-from-exec`.
pub const EXEC_ENTRY_FILE: &str = "crates/distfft/src/exec.rs";

/// Ubiquitous std method names that never resolve to workspace fns. Only
/// consulted for `.name(...)` method syntax and bare unqualified calls —
/// a `Type::name` qualified call always resolves exactly.
const NOISE_NAMES: [&str; 83] = [
    "abs",
    "and_then",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "borrow",
    "borrow_mut",
    "ceil",
    "chunks",
    "chunks_exact",
    "chunks_mut",
    "clamp",
    "clear",
    "clone",
    "clone_from_slice",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copy_from_slice",
    "cos",
    "count",
    "drop",
    "entry",
    "eq",
    "err",
    "exp",
    "extend",
    "fill",
    "filter",
    "flat_map",
    "floor",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "len",
    "ln",
    "load",
    "lock",
    "map",
    "map_err",
    "max",
    "min",
    "next",
    "ok",
    "parse",
    "pop",
    "powf",
    "powi",
    "push",
    "read",
    "remove",
    "replace",
    "resize",
    "round",
    "sin",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by_key",
    "split_at",
    "split_at_mut",
    "sqrt",
    "store",
    "sum",
    "swap",
    "take",
    "to_string",
    "truncate",
    "windows",
];

/// One analyzed file: classification plus both passes' artifacts.
pub struct AFile {
    /// Workspace-relative path (forward slashes).
    pub rel: String,
    /// Crate directory name (`""` for root sources).
    pub crate_name: String,
    /// Build role, from [`crate::classify`].
    pub kind: FileKind,
    /// Token stream and directives.
    pub scan: lex::Scanned,
    /// Item tree.
    pub tree: FileTree,
}

/// The workspace-wide analysis: files, flattened fn items, and resolved
/// call edges.
pub struct Analysis {
    /// Analyzed files, in input order.
    pub files: Vec<AFile>,
    /// Global fn id → (file index, local fn index).
    fns: Vec<(usize, usize)>,
    /// Global fn id → per-call resolved target fn ids.
    resolved: Vec<Vec<Vec<usize>>>,
}

/// Reachability result: fn id → (BFS parent, seed id).
type ReachMap = BTreeMap<usize, (Option<usize>, usize)>;

impl Analysis {
    /// Scans and tree-builds every `(relative_path, source)` input, then
    /// resolves the call graph.
    pub fn build(inputs: &[(String, String)]) -> Analysis {
        let mut files = Vec::with_capacity(inputs.len());
        for (rel, src) in inputs {
            let (crate_name, kind) = crate::classify(rel);
            let scan = lex::scan(src);
            let tree = tree::build(&scan);
            files.push(AFile {
                rel: rel.clone(),
                crate_name,
                kind,
                scan,
                tree,
            });
        }
        let mut fns = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            for li in 0..f.tree.fns.len() {
                fns.push((fi, li));
            }
        }
        let mut a = Analysis {
            files,
            fns,
            resolved: Vec::new(),
        };
        a.resolve_all();
        a
    }

    fn item(&self, id: usize) -> &FnItem {
        let (fi, li) = self.fns[id];
        &self.files[fi].tree.fns[li]
    }

    fn file_of(&self, id: usize) -> &AFile {
        &self.files[self.fns[id].0]
    }

    /// Graph-eligible: library code outside tests. Bins, benches, and
    /// integration tests sit at the process boundary and neither seed nor
    /// extend interprocedural reachability.
    fn eligible(&self, id: usize) -> bool {
        self.file_of(id).kind == FileKind::Lib && !self.item(id).test
    }

    fn resolve_all(&mut self) {
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_qual: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for id in 0..self.fns.len() {
            if !self.eligible(id) {
                continue;
            }
            let f = self.item(id);
            by_name.entry(f.name.as_str()).or_default().push(id);
            if f.impl_type.is_some() {
                by_qual.entry(f.qual.clone()).or_default().push(id);
            }
        }
        let prefer_same_crate = |hits: &[usize], caller_crate: &str| -> Vec<usize> {
            let same: Vec<usize> = hits
                .iter()
                .copied()
                .filter(|&h| self.file_of(h).crate_name == caller_crate)
                .collect();
            if same.is_empty() {
                hits.to_vec()
            } else {
                same
            }
        };
        let mut resolved = Vec::with_capacity(self.fns.len());
        for id in 0..self.fns.len() {
            let caller = self.item(id);
            let caller_crate = self.file_of(id).crate_name.clone();
            let mut per_call = Vec::with_capacity(caller.calls.len());
            for call in &caller.calls {
                let mut qual = call.qual.clone();
                if qual.as_deref() == Some("Self") {
                    qual = caller.impl_type.clone();
                }
                let targets = match &qual {
                    Some(q) if q.starts_with(|c: char| c.is_uppercase()) => {
                        // `Type::name`: exact impl match or nothing — a miss
                        // means a std/vendored type, never a name fallback.
                        match by_qual.get(&format!("{q}::{}", call.name)) {
                            Some(hits) => prefer_same_crate(hits, &caller_crate),
                            None => Vec::new(),
                        }
                    }
                    _ => {
                        // Method or bare/module-qualified free call.
                        let noisy = (call.method || qual.is_none())
                            && NOISE_NAMES.contains(&call.name.as_str());
                        if noisy {
                            Vec::new()
                        } else {
                            match by_name.get(call.name.as_str()) {
                                Some(hits) => prefer_same_crate(hits, &caller_crate),
                                None => Vec::new(),
                            }
                        }
                    }
                };
                per_call.push(targets);
            }
            resolved.push(per_call);
        }
        self.resolved = resolved;
    }

    /// BFS over resolved edges from `seeds`, restricted to fns passing
    /// `keep`, never descending through callee names in `skip`. Seeds are
    /// visited in the given order; edges in token order — deterministic
    /// shortest chains.
    fn reach(&self, seeds: &[usize], skip: &[&str], keep: impl Fn(usize) -> bool) -> ReachMap {
        let mut map: ReachMap = BTreeMap::new();
        let mut queue = VecDeque::new();
        for &s in seeds {
            if keep(s) && !map.contains_key(&s) {
                map.insert(s, (None, s));
                queue.push_back(s);
            }
        }
        while let Some(cur) = queue.pop_front() {
            let seed = match map.get(&cur) {
                Some(&(_, s)) => s,
                None => continue,
            };
            let item = self.item(cur);
            for (ci, call) in item.calls.iter().enumerate() {
                if skip.contains(&call.name.as_str()) {
                    continue;
                }
                for &tgt in &self.resolved[cur][ci] {
                    if keep(tgt) && !map.contains_key(&tgt) {
                        map.insert(tgt, (Some(cur), seed));
                        queue.push_back(tgt);
                    }
                }
            }
        }
        map
    }

    /// Renders the seed→…→`id` qualifier chain recorded in a [`ReachMap`].
    fn chain(&self, map: &ReachMap, id: usize) -> String {
        let mut parts = Vec::new();
        let mut cur = id;
        loop {
            parts.push(self.item(cur).qual.clone());
            match map.get(&cur) {
                Some(&(Some(parent), _)) => cur = parent,
                _ => break,
            }
        }
        parts.reverse();
        parts.join(" -> ")
    }

    fn emit(
        &self,
        out: &mut Vec<Finding>,
        fi: usize,
        rule: &'static str,
        line: u32,
        col: u32,
        msg: String,
    ) {
        let f = &self.files[fi];
        if f.scan.allowed(rule, line) {
            return;
        }
        out.push(Finding {
            rule,
            path: f.rel.clone(),
            line,
            col,
            msg,
        });
    }

    /// Runs the per-file rules plus all four graph rules; findings sorted
    /// by (path, line, col, rule).
    pub fn findings(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        for f in &self.files {
            out.extend(rules::lint(
                &f.scan,
                &FileCtx {
                    path: &f.rel,
                    crate_name: &f.crate_name,
                    kind: f.kind,
                },
            ));
        }
        self.no_alloc_in_hot_path(&mut out);
        self.env_read_outside_fftobs(&mut out);
        self.lock_order(&mut out);
        self.panic_reachable_from_exec(&mut out);
        out.sort_by(|a, b| {
            (&a.path, a.line, a.col, a.rule, &a.msg).cmp(&(&b.path, b.line, b.col, b.rule, &b.msg))
        });
        out
    }

    fn no_alloc_in_hot_path(&self, out: &mut Vec<Finding>) {
        let seeds: Vec<usize> = (0..self.fns.len())
            .filter(|&id| {
                self.item(id).hot
                    && self.eligible(id)
                    && HOT_CRATES.contains(&self.file_of(id).crate_name.as_str())
            })
            .collect();
        let map = self.reach(&seeds, &HOT_EXEMPT_CALLEES, |id| {
            self.eligible(id) && HOT_CRATES.contains(&self.file_of(id).crate_name.as_str())
        });
        for (&id, &(_, seed)) in &map {
            let f = self.item(id);
            if f.allocs.is_empty() {
                continue;
            }
            let ctx = if id == seed {
                format!("`{}` is marked fftlint:hot", f.qual)
            } else {
                format!(
                    "reachable from fftlint:hot `{}` via {}",
                    self.item(seed).qual,
                    self.chain(&map, id)
                )
            };
            let fi = self.fns[id].0;
            for site in &f.allocs {
                self.emit(
                    out,
                    fi,
                    rules::NO_ALLOC_IN_HOT_PATH,
                    site.line,
                    site.col,
                    format!(
                        "{} allocates on a hot path ({ctx}); take from the pooled \
                         scratch/plan APIs or justify with fftlint:allow",
                        site.what
                    ),
                );
            }
        }
    }

    fn env_read_outside_fftobs(&self, out: &mut Vec<Finding>) {
        for (fi, f) in self.files.iter().enumerate() {
            if ENV_ALLOWED_FILES.contains(&f.rel.as_str()) {
                continue;
            }
            for site in &f.tree.env_reads {
                self.emit(
                    out,
                    fi,
                    rules::ENV_READ_OUTSIDE_FFTOBS,
                    site.line,
                    site.col,
                    format!(
                        "std::env::{} outside fftobs::env; route FFT_* reads through its \
                         warn-once helpers (parse_var/positive_var/raw_var/is_set)",
                        site.what
                    ),
                );
            }
        }
    }

    fn lock_order(&self, out: &mut Vec<Finding>) {
        let lock_name = |fi: usize, recv: &str| -> String {
            let c = &self.files[fi].crate_name;
            if c.is_empty() {
                recv.to_string()
            } else {
                format!("{c}::{recv}")
            }
        };
        // Transitive lockset per fn, to fixpoint (cycles converge because
        // sets only grow).
        let n = self.fns.len();
        let mut sets: Vec<BTreeSet<String>> = (0..n)
            .map(|id| {
                if !self.eligible(id) {
                    return BTreeSet::new();
                }
                let fi = self.fns[id].0;
                self.item(id)
                    .locks
                    .iter()
                    .map(|l| lock_name(fi, &l.recv))
                    .collect()
            })
            .collect();
        loop {
            let mut changed = false;
            for id in 0..n {
                if !self.eligible(id) {
                    continue;
                }
                for targets in &self.resolved[id] {
                    for &tgt in targets {
                        if tgt == id || sets[tgt].is_empty() {
                            continue;
                        }
                        let add: Vec<String> = sets[tgt]
                            .iter()
                            .filter(|x| !sets[id].contains(*x))
                            .cloned()
                            .collect();
                        if !add.is_empty() {
                            sets[id].extend(add);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Ordered pairs with evidence: (held, acquired) → sites.
        struct Ev {
            fi: usize,
            line: u32,
            col: u32,
            fn_qual: String,
            via: Option<String>,
        }
        let mut pairs: BTreeMap<(String, String), Vec<Ev>> = BTreeMap::new();
        for id in 0..n {
            if !self.eligible(id) {
                continue;
            }
            let fi = self.fns[id].0;
            let f = self.item(id);
            for (li, l) in f.locks.iter().enumerate() {
                let a = lock_name(fi, &l.recv);
                // Later locks in the same body (guard conservatively
                // assumed held to the end of the fn).
                for m in &f.locks[li + 1..] {
                    let b = lock_name(fi, &m.recv);
                    if a != b {
                        pairs.entry((a.clone(), b)).or_default().push(Ev {
                            fi,
                            line: m.line,
                            col: m.col,
                            fn_qual: f.qual.clone(),
                            via: None,
                        });
                    }
                }
                // Later calls whose transitive lockset acquires b.
                for (ci, call) in f.calls.iter().enumerate() {
                    if call.tok < l.tok {
                        continue;
                    }
                    for &tgt in &self.resolved[id][ci] {
                        for b in &sets[tgt] {
                            if *b != a {
                                pairs.entry((a.clone(), b.clone())).or_default().push(Ev {
                                    fi,
                                    line: call.line,
                                    col: call.col,
                                    fn_qual: f.qual.clone(),
                                    via: Some(self.item(tgt).qual.clone()),
                                });
                            }
                        }
                    }
                }
            }
        }
        // Flag every evidence site of a pair whose reverse also occurs.
        let mut seen: BTreeSet<(usize, u32, u32, String, String)> = BTreeSet::new();
        for ((a, b), evs) in &pairs {
            let Some(rev) = pairs.get(&(b.clone(), a.clone())) else {
                continue;
            };
            let Some(r) = rev
                .iter()
                .min_by_key(|e| (&self.files[e.fi].rel, e.line, e.col))
            else {
                continue;
            };
            let rev_at = format!("{}:{}", self.files[r.fi].rel, r.line);
            for ev in evs {
                if !seen.insert((ev.fi, ev.line, ev.col, a.clone(), b.clone())) {
                    continue;
                }
                let via = match &ev.via {
                    Some(v) => format!(" via call to `{v}`"),
                    None => String::new(),
                };
                self.emit(
                    out,
                    ev.fi,
                    rules::LOCK_ORDER,
                    ev.line,
                    ev.col,
                    format!(
                        "`{}` can acquire lock `{b}`{via} while `{a}` is held; the reverse \
                         order appears at {rev_at} — pick one global order",
                        ev.fn_qual
                    ),
                );
            }
        }
    }

    fn panic_reachable_from_exec(&self, out: &mut Vec<Finding>) {
        let seeds: Vec<usize> = (0..self.fns.len())
            .filter(|&id| self.eligible(id) && self.file_of(id).rel == EXEC_ENTRY_FILE)
            .collect();
        let map = self.reach(&seeds, &[], |id| self.eligible(id));
        for (&id, &(_, seed)) in &map {
            let f = self.item(id);
            if f.panics.is_empty() && f.indexes.is_empty() {
                continue;
            }
            let ctx = if id == seed {
                format!("`{}` is an executor entry point", f.qual)
            } else {
                format!(
                    "reachable from executor entry `{}` via {}",
                    self.item(seed).qual,
                    self.chain(&map, id)
                )
            };
            let fi = self.fns[id].0;
            for site in &f.panics {
                // An existing no-panic-in-lib justification covers the
                // reachability claim too: the written invariant says the
                // panic cannot fire, wherever it is called from.
                if self.files[fi]
                    .scan
                    .allowed(rules::NO_PANIC_IN_LIB, site.line)
                {
                    continue;
                }
                self.emit(
                    out,
                    fi,
                    rules::PANIC_REACHABLE_FROM_EXEC,
                    site.line,
                    site.col,
                    format!(
                        ".{}() can panic on an executor path ({ctx}); return a typed error \
                         or justify with fftlint:allow",
                        site.what
                    ),
                );
            }
            if let [first, ..] = &f.indexes[..] {
                self.emit(
                    out,
                    fi,
                    rules::PANIC_REACHABLE_FROM_EXEC,
                    first.line,
                    first.col,
                    format!(
                        "{} index expression(s) in `{}` can panic on an executor path \
                         ({ctx}); first flagged here — prove the bounds or justify with \
                         fftlint:allow",
                        f.indexes.len(),
                        f.qual
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(files: &[(&str, &str)]) -> Vec<Finding> {
        let inputs: Vec<(String, String)> = files
            .iter()
            .map(|(r, s)| (r.to_string(), s.to_string()))
            .collect();
        Analysis::build(&inputs).findings()
    }

    fn rule_spans(f: &[Finding], rule: &str) -> Vec<(String, u32, u32)> {
        f.iter()
            .filter(|x| x.rule == rule)
            .map(|x| (x.path.clone(), x.line, x.col))
            .collect()
    }

    #[test]
    fn hot_alloc_two_hop_chain() {
        let a = "\
// fftlint:hot
pub fn driver(n: usize) { mid(n); }
pub fn mid(n: usize) { leaf(n); }
pub fn leaf(n: usize) { let v = vec![0u8; n]; }
pub fn cold(n: usize) { let v = vec![0u8; n]; }
";
        let f = analyze(&[("crates/fftkern/src/k.rs", a)]);
        let spans = rule_spans(&f, rules::NO_ALLOC_IN_HOT_PATH);
        assert_eq!(spans, vec![("crates/fftkern/src/k.rs".to_string(), 4, 33)]);
        let msg = &f
            .iter()
            .find(|x| x.rule == rules::NO_ALLOC_IN_HOT_PATH)
            .map(|x| x.msg.clone())
            .unwrap_or_default();
        assert!(msg.contains("driver -> mid -> leaf"), "{msg}");
    }

    #[test]
    fn hot_alloc_exempts_pool_apis_and_non_hot_crates() {
        let a = "\
// fftlint:hot
pub fn driver(ctx: &mut C) { let b = ctx.take_buffer(4); helper(); }
pub fn helper() {}
";
        let f = analyze(&[("crates/distfft/src/k.rs", a)]);
        assert!(rule_spans(&f, rules::NO_ALLOC_IN_HOT_PATH).is_empty());
        // Same source in a non-hot crate: marker is inert.
        let b = "\
// fftlint:hot
pub fn driver(n: usize) { let v = vec![0u8; n]; }
";
        let f = analyze(&[("crates/fftprof/src/k.rs", b)]);
        assert!(rule_spans(&f, rules::NO_ALLOC_IN_HOT_PATH).is_empty());
    }

    #[test]
    fn lock_order_reversed_pair_across_fns() {
        let a = "\
pub fn ab(s: &S) { s.alpha.lock(); s.beta.lock(); }
pub fn ba(s: &S) { s.beta.lock(); s.alpha.lock(); }
pub fn single(s: &S) { s.alpha.lock(); }
";
        let f = analyze(&[("crates/fftkern/src/l.rs", a)]);
        let spans = rule_spans(&f, rules::LOCK_ORDER);
        assert_eq!(
            spans,
            vec![
                ("crates/fftkern/src/l.rs".to_string(), 1, 43),
                ("crates/fftkern/src/l.rs".to_string(), 2, 43),
            ]
        );
    }

    #[test]
    fn lock_order_interprocedural_hold_and_call() {
        let a = "\
pub fn outer(s: &S) { s.alpha.lock(); inner(s); }
pub fn inner(s: &S) { s.beta.lock(); }
pub fn reversed(s: &S) { s.beta.lock(); s.alpha.lock(); }
";
        let f = analyze(&[("crates/fftkern/src/l.rs", a)]);
        let spans = rule_spans(&f, rules::LOCK_ORDER);
        // outer's call site + reversed's second lock both flagged.
        assert_eq!(spans.len(), 2, "{f:?}");
        assert!(f
            .iter()
            .any(|x| x.rule == rules::LOCK_ORDER && x.msg.contains("via call to `inner`")));
    }

    #[test]
    fn panic_reachable_cross_crate_chain() {
        let exec = "\
pub fn execute(p: &P) { fftkern_entry(p); }
";
        let kern = "\
pub fn fftkern_entry(p: &P) { deep(p); }
pub fn deep(p: &P) { p.x.unwrap(); }
";
        let f = analyze(&[
            ("crates/distfft/src/exec.rs", exec),
            ("crates/fftkern/src/k.rs", kern),
        ]);
        let spans = rule_spans(&f, rules::PANIC_REACHABLE_FROM_EXEC);
        assert_eq!(spans, vec![("crates/fftkern/src/k.rs".to_string(), 2, 26)]);
    }

    #[test]
    fn env_rule_fires_everywhere_but_fftobs_env() {
        let src = "pub fn f() { let v = std::env::var(\"FFT_X\"); }";
        let f = analyze(&[("crates/bench/src/lib.rs", src)]);
        assert_eq!(
            rule_spans(&f, rules::ENV_READ_OUTSIDE_FFTOBS),
            vec![("crates/bench/src/lib.rs".to_string(), 1, 27)]
        );
        let f = analyze(&[("crates/obs/src/env.rs", src)]);
        assert!(rule_spans(&f, rules::ENV_READ_OUTSIDE_FFTOBS).is_empty());
    }

    #[test]
    fn allows_suppress_graph_rules() {
        let a = "\
// fftlint:hot
pub fn driver(n: usize) {
    let v = vec![0u8; n]; // fftlint:allow(no-alloc-in-hot-path): startup only
}
";
        let f = analyze(&[("crates/fftkern/src/k.rs", a)]);
        assert!(rule_spans(&f, rules::NO_ALLOC_IN_HOT_PATH).is_empty());
    }
}
