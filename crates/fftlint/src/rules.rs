//! The per-file determinism rules and the shared rule registry.
//!
//! Each per-file rule walks the token stream from [`crate::lex::scan`] and
//! emits [`Finding`]s. All rules are deny-by-default; the only escape is an
//! inline `// fftlint:allow(<rule-id>): <justification>` comment on the
//! offending line or the line directly above it (interprocedural findings
//! can also be pinned in the committed baseline, see [`crate::baseline`]).
//!
//! | id | contract enforced |
//! |---|---|
//! | `no-wallclock` | simulated-time crates never read the host clock |
//! | `no-unordered-iter` | no `HashMap`/`HashSet` in runtime code paths |
//! | `no-unsafe` | the workspace stays `unsafe`-free |
//! | `no-panic-in-lib` | `unwrap`/`expect` only in tests, bins, benches |
//! | `float-reduction-order` | parallel f64 reductions merge in index order |
//!
//! The four interprocedural rules (`no-alloc-in-hot-path`,
//! `env-read-outside-fftobs`, `lock-order`, `panic-reachable-from-exec`)
//! live in [`crate::graph`]; their ids are registered here so every
//! consumer (CLI, SARIF, baseline) sees one list.

use crate::lex::{Scanned, Tok};

/// Rule id: wall-clock reads in simulated-time crates.
pub const NO_WALLCLOCK: &str = "no-wallclock";
/// Rule id: unordered-container usage in runtime code.
pub const NO_UNORDERED_ITER: &str = "no-unordered-iter";
/// Rule id: `unsafe` anywhere in the workspace.
pub const NO_UNSAFE: &str = "no-unsafe";
/// Rule id: `unwrap`/`expect` in library (non-test, non-bin) code.
pub const NO_PANIC_IN_LIB: &str = "no-panic-in-lib";
/// Rule id: parallel float reductions without an index-ordered merge.
pub const FLOAT_REDUCTION_ORDER: &str = "float-reduction-order";
/// Rule id: allocation inside (or transitively below) a `fftlint:hot` fn.
pub const NO_ALLOC_IN_HOT_PATH: &str = "no-alloc-in-hot-path";
/// Rule id: `std::env::var`/`var_os` anywhere but `fftobs::env`.
pub const ENV_READ_OUTSIDE_FFTOBS: &str = "env-read-outside-fftobs";
/// Rule id: two locks acquirable in an order seen reversed elsewhere.
pub const LOCK_ORDER: &str = "lock-order";
/// Rule id: panic site transitively reachable from executor entry points.
pub const PANIC_REACHABLE_FROM_EXEC: &str = "panic-reachable-from-exec";

/// Every rule id, for `--list-rules`, SARIF metadata, and fixture tests.
/// The first five are per-file token rules (this module); the last four
/// are the interprocedural call-graph rules in [`crate::graph`].
pub const ALL_RULES: [&str; 9] = [
    NO_WALLCLOCK,
    NO_UNORDERED_ITER,
    NO_UNSAFE,
    NO_PANIC_IN_LIB,
    FLOAT_REDUCTION_ORDER,
    NO_ALLOC_IN_HOT_PATH,
    ENV_READ_OUTSIDE_FFTOBS,
    LOCK_ORDER,
    PANIC_REACHABLE_FROM_EXEC,
];

/// One-line summary per rule id, for SARIF `rules` metadata and
/// `--list-rules` consumers.
pub fn summary(rule: &str) -> &'static str {
    match rule {
        _ if rule == NO_WALLCLOCK => "host-clock read in a simulated-time crate",
        _ if rule == NO_UNORDERED_ITER => "HashMap/HashSet iteration order is nondeterministic",
        _ if rule == NO_UNSAFE => "unsafe code is forbidden across the workspace",
        _ if rule == NO_PANIC_IN_LIB => "unwrap/expect in library code",
        _ if rule == FLOAT_REDUCTION_ORDER => {
            "parallel f64 reduction without an index-ordered merge"
        }
        _ if rule == NO_ALLOC_IN_HOT_PATH => {
            "allocation inside or transitively below a fftlint:hot function"
        }
        _ if rule == ENV_READ_OUTSIDE_FFTOBS => "process environment read outside fftobs::env",
        _ if rule == LOCK_ORDER => "locks acquired in an order seen reversed elsewhere",
        _ if rule == PANIC_REACHABLE_FROM_EXEC => {
            "panic site transitively reachable from an executor entry point"
        }
        _ => "unknown rule",
    }
}

/// Crates whose timelines are simulated: a host-clock read there can leak
/// wall time into simulated results, the exact failure class the replay
/// digest sanitizer catches at runtime. (`crates/bench` is excluded — its
/// harnesses legitimately measure host wall-clock for throughput numbers.)
/// `fftledger` is listed even though it records history: record timestamps
/// come from the caller, so the ledger itself stays clock-free and
/// replayable.
pub const SIM_CRATES: [&str; 6] = [
    "mpisim",
    "simgrid",
    "distfft",
    "fftmodels",
    "fftprof",
    "fftledger",
];

/// Module allowlist for `no-wallclock`: files whose *purpose* is wall-clock
/// measurement may read the host clock (none exist today; the mechanism is
/// the point — adding one is a reviewed, named decision, not an accident).
pub const WALLCLOCK_MODULES: [&str; 1] = ["wallclock.rs"];

/// How a file participates in the build — decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source (`src/` excluding `src/bin/`).
    Lib,
    /// Binary source (`src/bin/`, `src/main.rs`).
    Bin,
    /// Integration test (`tests/`).
    Test,
    /// Benchmark (`benches/`).
    Bench,
}

/// Per-file lint context.
pub struct FileCtx<'a> {
    /// Display path (used in findings).
    pub path: &'a str,
    /// Crate directory name (`mpisim`, `bench`, … — `""` for the root).
    pub crate_name: &'a str,
    /// File role.
    pub kind: FileKind,
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// File path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.path, self.line, self.col, self.rule, self.msg
        )
    }
}

/// Runs every applicable rule over one scanned file.
pub fn lint(scan: &Scanned, ctx: &FileCtx) -> Vec<Finding> {
    let mask = scan.test_mask();
    let mut out = Vec::new();
    no_wallclock(scan, ctx, &mut out);
    no_unordered_iter(scan, ctx, &mask, &mut out);
    no_unsafe(scan, ctx, &mut out);
    no_panic_in_lib(scan, ctx, &mask, &mut out);
    float_reduction_order(scan, ctx, &mask, &mut out);
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

fn ident_at(scan: &Scanned, i: usize) -> Option<&str> {
    match &scan.tokens.get(i)?.tok {
        Tok::Ident(s) => Some(s),
        _ => None,
    }
}

fn punct_at(scan: &Scanned, i: usize, c: char) -> bool {
    matches!(scan.tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

fn push(
    out: &mut Vec<Finding>,
    scan: &Scanned,
    ctx: &FileCtx,
    rule: &'static str,
    i: usize,
    msg: String,
) {
    let t = &scan.tokens[i];
    if scan.allowed(rule, t.line) {
        return;
    }
    out.push(Finding {
        rule,
        path: ctx.path.to_string(),
        line: t.line,
        col: t.col,
        msg,
    });
}

/// `no-wallclock`: `Instant::now` / `SystemTime` in simulated-time crates.
/// Applies to every file of those crates — tests included, since test
/// assertions over simulated results must not depend on the host clock
/// either — except the named wall-clock module allowlist.
fn no_wallclock(scan: &Scanned, ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !SIM_CRATES.contains(&ctx.crate_name) {
        return;
    }
    if WALLCLOCK_MODULES.iter().any(|m| ctx.path.ends_with(m)) {
        return;
    }
    for i in 0..scan.tokens.len() {
        match ident_at(scan, i) {
            Some("SystemTime") => push(
                out,
                scan,
                ctx,
                NO_WALLCLOCK,
                i,
                "SystemTime read in a simulated-time crate; all timing must come from \
                 simgrid::SimClock"
                    .to_string(),
            ),
            Some("Instant")
                if punct_at(scan, i + 1, ':')
                    && punct_at(scan, i + 2, ':')
                    && ident_at(scan, i + 3) == Some("now") =>
            {
                push(
                    out,
                    scan,
                    ctx,
                    NO_WALLCLOCK,
                    i,
                    "Instant::now() in a simulated-time crate; wall-clock durations must \
                     never feed simulated results"
                        .to_string(),
                )
            }
            _ => {}
        }
    }
}

/// `no-unordered-iter`: `HashMap`/`HashSet` in runtime code (Lib + Bin).
/// Iteration order of the std hash containers varies run to run whenever
/// the key set's insertion history differs, and a single leaked iteration
/// silently perturbs schedules, traces, or figure text. Deny-by-default:
/// even lookup-only maps must either switch to `BTreeMap`/`BTreeSet` or
/// carry an allow with a written justification that they are never
/// iterated.
fn no_unordered_iter(scan: &Scanned, ctx: &FileCtx, mask: &[bool], out: &mut Vec<Finding>) {
    if !matches!(ctx.kind, FileKind::Lib | FileKind::Bin) {
        return;
    }
    for (i, masked) in mask.iter().copied().enumerate() {
        if masked {
            continue;
        }
        if let Some(id @ ("HashMap" | "HashSet")) = ident_at(scan, i) {
            push(
                out,
                scan,
                ctx,
                NO_UNORDERED_ITER,
                i,
                format!(
                    "{id} has nondeterministic iteration order; use BTreeMap/BTreeSet or a \
                     sorted snapshot, or justify with fftlint:allow that it is never iterated"
                ),
            );
        }
    }
}

/// `no-unsafe`: the workspace is unsafe-free (also locked in per-crate by
/// `#![forbid(unsafe_code)]` / `#![deny(unsafe_code)]`; the lint catches
/// the attribute being dropped together with an `unsafe` introduction)
/// with one sanctioned perimeter: the SIMD kernels in
/// `fftkern/src/simd.rs`, where every site carries an individually
/// justified `fftlint:allow(no-unsafe)`. There is no path-based carve-out
/// — unannotated `unsafe` fires there like anywhere else.
fn no_unsafe(scan: &Scanned, ctx: &FileCtx, out: &mut Vec<Finding>) {
    for i in 0..scan.tokens.len() {
        if ident_at(scan, i) == Some("unsafe") {
            push(
                out,
                scan,
                ctx,
                NO_UNSAFE,
                i,
                "unsafe code is forbidden across the workspace".to_string(),
            );
        }
    }
}

/// `no-panic-in-lib`: `.unwrap()` / `.expect(` in library code outside
/// `#[cfg(test)]` modules. Panics in bins/tests/benches are fine (they are
/// the process boundary); a panic in a library path is an availability bug
/// in anything embedding it, so each one needs a written invariant
/// justification.
fn no_panic_in_lib(scan: &Scanned, ctx: &FileCtx, mask: &[bool], out: &mut Vec<Finding>) {
    if ctx.kind != FileKind::Lib {
        return;
    }
    for (i, masked) in mask.iter().copied().enumerate() {
        if masked || !punct_at(scan, i, '.') {
            continue;
        }
        if let Some(id @ ("unwrap" | "expect")) = ident_at(scan, i + 1) {
            if punct_at(scan, i + 2, '(') {
                push(
                    out,
                    scan,
                    ctx,
                    NO_PANIC_IN_LIB,
                    i + 1,
                    format!(
                        ".{id}() in library code; return a Result, handle the None, or \
                         justify the invariant with fftlint:allow"
                    ),
                );
            }
        }
    }
}

/// Rayon-style parallel-iteration entry points. The repo deliberately has
/// no rayon dependency, so any of these appearing means either a vendored
/// stand-in grew one or someone hand-rolled an unordered fan-out.
const PAR_TOKENS: [&str; 6] = [
    "par_iter",
    "into_par_iter",
    "par_iter_mut",
    "par_chunks",
    "par_chunks_mut",
    "par_bridge",
];
/// Reduction combinators whose result depends on evaluation order for
/// non-associative element types (f64 addition/multiplication).
const REDUCE_TOKENS: [&str; 4] = ["sum", "product", "reduce", "fold"];
/// Markers that restore a deterministic merge order before reducing.
const ORDER_TOKENS: [&str; 6] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// `float-reduction-order`: a parallel iterator chain that reduces `f64`s
/// without an index-ordered merge. Float addition is not associative, so
/// `par_iter().sum::<f64>()` produces run-to-run different bits depending
/// on which worker finishes first. The blessed primitives
/// (`mpisim::par::par_parts`, `fftmodels::par::par_map`) merge in input
/// order before any caller-side reduction and are not flagged.
///
/// Detection is statement-scoped: from a parallel entry token to the next
/// `;` at brace depth zero relative to the match.
fn float_reduction_order(scan: &Scanned, ctx: &FileCtx, mask: &[bool], out: &mut Vec<Finding>) {
    if !matches!(ctx.kind, FileKind::Lib | FileKind::Bin) {
        return;
    }
    let t = &scan.tokens;
    for (i, masked) in mask.iter().copied().enumerate() {
        if masked {
            continue;
        }
        let Some(id) = ident_at(scan, i) else {
            continue;
        };
        if !PAR_TOKENS.contains(&id) {
            continue;
        }
        // Statement window: scan to the terminating `;` (depth-matched).
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut reduced_float = false;
        let mut ordered = false;
        while j < t.len() {
            match &t[j].tok {
                Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') => {
                    depth -= 1;
                    // Closing the enclosing block ends the expression
                    // (tail-expression statements have no `;`).
                    if depth < 0 {
                        break;
                    }
                }
                Tok::Punct(';') if depth <= 0 => break,
                Tok::Ident(s)
                    if REDUCE_TOKENS.contains(&s.as_str()) && window_mentions_float(scan, i, j) =>
                {
                    reduced_float = true;
                }
                Tok::Ident(s) if ORDER_TOKENS.contains(&s.as_str()) => ordered = true,
                _ => {}
            }
            j += 1;
        }
        if reduced_float && !ordered {
            push(
                out,
                scan,
                ctx,
                FLOAT_REDUCTION_ORDER,
                i,
                "parallel f64 reduction without an index-ordered merge; collect in input \
                 order (par_parts/par_map) and reduce serially, or sort before reducing"
                    .to_string(),
            );
        }
    }
}

/// True when tokens `[from, to+4]` mention an f64/f32 type or float
/// literal — the reduction's element type marker.
fn window_mentions_float(scan: &Scanned, from: usize, to: usize) -> bool {
    let hi = (to + 5).min(scan.tokens.len());
    scan.tokens[from..hi].iter().any(|tok| match &tok.tok {
        Tok::Ident(s) => s == "f64" || s == "f32",
        Tok::Lit(l) => {
            !l.is_empty()
                && l.starts_with(|c: char| c.is_ascii_digit())
                && (l.contains('.') || l.ends_with("f64") || l.ends_with("f32"))
        }
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::scan;

    fn ctx<'a>(kind: FileKind, crate_name: &'a str) -> FileCtx<'a> {
        FileCtx {
            path: "test.rs",
            crate_name,
            kind,
        }
    }

    fn rules_of(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn wallclock_fires_only_in_sim_crates() {
        let src = "fn f() { let t = Instant::now(); let s = SystemTime::now(); }";
        let s = scan(src);
        let f = lint(&s, &ctx(FileKind::Lib, "mpisim"));
        assert_eq!(rules_of(&f), vec![NO_WALLCLOCK, NO_WALLCLOCK]);
        assert!(lint(&s, &ctx(FileKind::Lib, "bench")).is_empty());
    }

    #[test]
    fn unordered_iter_skips_tests_and_test_mods() {
        let src = "use std::collections::HashMap;\n#[cfg(test)]\nmod tests { fn t() { let m: HashMap<u8, u8> = HashMap::new(); } }\n";
        let s = scan(src);
        let f = lint(&s, &ctx(FileKind::Lib, "distfft"));
        assert_eq!(rules_of(&f), vec![NO_UNORDERED_ITER]); // the use line only
        assert_eq!(f[0].line, 1);
        assert!(lint(&s, &ctx(FileKind::Test, "distfft")).is_empty());
    }

    #[test]
    fn panic_in_lib_spares_bins_and_expect_variants() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); z.unwrap_or_else(|| 0); w.unwrap_or(1); }";
        let s = scan(src);
        let f = lint(&s, &ctx(FileKind::Lib, "fftkern"));
        assert_eq!(rules_of(&f), vec![NO_PANIC_IN_LIB, NO_PANIC_IN_LIB]);
        assert!(lint(&s, &ctx(FileKind::Bin, "fftkern")).is_empty());
    }

    #[test]
    fn float_reduction_needs_parallel_and_float() {
        let bad = "fn f() { let x = v.par_iter().map(|a| a * 2.0).sum::<f64>(); }";
        let s = scan(bad);
        assert_eq!(
            rules_of(&lint(&s, &ctx(FileKind::Lib, "fftmodels"))),
            vec![FLOAT_REDUCTION_ORDER]
        );
        // Integer reduction in parallel: order-independent, no finding.
        let ok_int = "fn f() { let x = v.par_iter().map(|a| a * 2).sum::<u64>(); }";
        assert!(lint(&scan(ok_int), &ctx(FileKind::Lib, "fftmodels")).is_empty());
        // Serial float reduction: fine.
        let ok_serial = "fn f() { let x = v.iter().map(|a| a * 2.0).sum::<f64>(); }";
        assert!(lint(&scan(ok_serial), &ctx(FileKind::Lib, "fftmodels")).is_empty());
        // Sorted before reducing: fine.
        let ok_sorted =
            "fn f() { let mut x: Vec<f64> = v.par_iter().collect(); x.sort_by(cmp); let s = x.iter().sum::<f64>(); }";
        assert!(lint(&scan(ok_sorted), &ctx(FileKind::Lib, "fftmodels")).is_empty());
    }

    #[test]
    fn allow_suppresses_same_line_and_next_line() {
        let same =
            "fn f() { let m = HashMap::new(); } // fftlint:allow(no-unordered-iter): lookup only";
        assert!(lint(&scan(same), &ctx(FileKind::Lib, "mpisim")).is_empty());
        let above =
            "// fftlint:allow(no-panic-in-lib): invariant\nfn f() { x.unwrap(); }\nfn g() { y.unwrap(); }";
        let f = lint(&scan(above), &ctx(FileKind::Lib, "mpisim"));
        assert_eq!(rules_of(&f), vec![NO_PANIC_IN_LIB]);
        assert_eq!(f[0].line, 3, "only the un-annotated line fires");
    }

    #[test]
    fn unsafe_fires_everywhere() {
        let src = "fn f() { unsafe { std::hint::unreachable_unchecked() } }";
        for kind in [
            FileKind::Lib,
            FileKind::Bin,
            FileKind::Test,
            FileKind::Bench,
        ] {
            let f = lint(&scan(src), &ctx(kind, "bench"));
            assert!(rules_of(&f).contains(&NO_UNSAFE), "{kind:?}");
        }
    }
}
