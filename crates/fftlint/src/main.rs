//! `fftlint` CLI.
//!
//! ```text
//! fftlint --workspace                     lint every project source under the cwd
//! fftlint <file.rs>...                    lint specific files
//! fftlint --workspace --baseline B        suppress findings pinned in B; stale pins fail
//! fftlint --workspace --write-baseline B  regenerate the baseline from current findings
//! fftlint --workspace --sarif OUT         also export SARIF 2.1.0 to OUT
//! fftlint --workspace --diff REF          report only files changed vs git REF
//! fftlint --list-rules                    print rule ids and one-line summaries
//! ```
//!
//! `--diff` narrows *reporting*, not analysis: the call graph is always
//! built workspace-wide so interprocedural findings in changed files stay
//! sound, and stale-baseline failures are skipped (unchanged files may
//! legitimately hold the pins).
//!
//! Exit status: 0 clean, 1 findings (new or stale), 2 usage/IO error.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

use fftlint::sarif::BaselineState;
use fftlint::Finding;

struct Opts {
    workspace: bool,
    explicit: Vec<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    sarif: Option<PathBuf>,
    diff: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        workspace: false,
        explicit: Vec::new(),
        baseline: None,
        write_baseline: None,
        sarif: None,
        diff: None,
    };
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a {
            "--workspace" => o.workspace = true,
            "--baseline" => o.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--write-baseline" => {
                o.write_baseline = Some(PathBuf::from(value("--write-baseline")?))
            }
            "--sarif" => o.sarif = Some(PathBuf::from(value("--sarif")?)),
            "--diff" => o.diff = Some(value("--diff")?),
            _ if a.starts_with("--") => return Err(format!("unknown flag {a}")),
            _ => o.explicit.push(PathBuf::from(a)),
        }
        i += 1;
    }
    if !o.workspace && o.explicit.is_empty() {
        return Err("nothing to lint: pass --workspace or files".to_string());
    }
    Ok(o)
}

/// Files changed vs `git_ref` (diff + untracked), workspace-relative.
fn changed_files(root: &std::path::Path, git_ref: &str) -> Result<BTreeSet<String>, String> {
    let mut out = BTreeSet::new();
    for args in [
        vec!["diff", "--name-only", git_ref, "--"],
        vec!["ls-files", "--others", "--exclude-standard"],
    ] {
        let r = std::process::Command::new("git")
            .args(&args)
            .current_dir(root)
            .output()
            .map_err(|e| format!("running git: {e}"))?;
        if !r.status.success() {
            return Err(format!(
                "git {} failed: {}",
                args.join(" "),
                String::from_utf8_lossy(&r.stderr).trim()
            ));
        }
        for line in String::from_utf8_lossy(&r.stdout).lines() {
            let line = line.trim();
            if !line.is_empty() {
                out.insert(line.replace('\\', "/"));
            }
        }
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list-rules") {
        for rule in fftlint::ALL_RULES {
            println!("{rule}");
        }
        return ExitCode::SUCCESS;
    }
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fftlint: {e}\n");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let root = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let files = if opts.workspace {
        match fftlint::workspace_files(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("fftlint: walking {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        opts.explicit.clone()
    };

    let all = match fftlint::analyze_files(&root, &files) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("fftlint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &opts.write_baseline {
        let text = fftlint::baseline::render(&all);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("fftlint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "fftlint: wrote {} finding(s) to {}",
            all.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    // Classify against the baseline (everything is "new" without one).
    let (mut new, unchanged, mut stale) = match &opts.baseline {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("fftlint: reading {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match fftlint::baseline::parse(&text) {
                Ok(entries) => {
                    let r = fftlint::baseline::apply(&all, &entries);
                    (r.new, r.unchanged, r.stale)
                }
                Err(e) => {
                    eprintln!("fftlint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        None => (all.clone(), Vec::new(), Vec::new()),
    };

    // --diff narrows reporting to changed files; stale pins are skipped
    // because the unchanged remainder of the workspace may hold them.
    if let Some(git_ref) = &opts.diff {
        let changed = match changed_files(&root, git_ref) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("fftlint: {e}");
                return ExitCode::from(2);
            }
        };
        new.retain(|f| changed.contains(&f.path));
        stale.clear();
    }

    if let Some(path) = &opts.sarif {
        let mut results: Vec<(Finding, Option<BaselineState>)> = Vec::new();
        let classify = opts.baseline.is_some();
        for f in &new {
            results.push((f.clone(), classify.then_some(BaselineState::New)));
        }
        for f in &unchanged {
            results.push((f.clone(), classify.then_some(BaselineState::Unchanged)));
        }
        results.sort_by(|a, b| {
            (&a.0.path, a.0.line, a.0.col, a.0.rule).cmp(&(&b.0.path, b.0.line, b.0.col, b.0.rule))
        });
        if let Err(e) = std::fs::write(path, fftlint::sarif::render(&results)) {
            eprintln!("fftlint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    for f in &new {
        println!("{f}");
    }
    for s in &stale {
        println!("stale baseline entry (finding no longer produced — refresh with --write-baseline): {s}");
    }
    let suppressed = if unchanged.is_empty() {
        String::new()
    } else {
        format!(", {} baseline-suppressed", unchanged.len())
    };
    if !new.is_empty() || !stale.is_empty() {
        eprintln!(
            "fftlint: {} finding(s), {} stale baseline entr(ies){suppressed} in {} file(s) checked",
            new.len(),
            stale.len(),
            files.len()
        );
        return ExitCode::from(1);
    }
    eprintln!("fftlint: clean ({} files checked{suppressed})", files.len());
    ExitCode::SUCCESS
}

const USAGE: &str = "\
fftlint — workspace determinism linter (two-pass: item trees + call graph)

USAGE:
    fftlint --workspace                     lint all project sources under the cwd
    fftlint <file.rs>...                    lint specific files
    fftlint --workspace --baseline B        suppress findings pinned in B; stale pins fail
    fftlint --workspace --write-baseline B  regenerate the baseline from current findings
    fftlint --workspace --sarif OUT         also export SARIF 2.1.0 to OUT
    fftlint --workspace --diff REF          report only files changed vs git REF
    fftlint --list-rules                    print the rule ids

Findings print as `path:line:col: rule-id: message`; suppress one with an
inline `// fftlint:allow(rule-id): reason` on the same or previous line, or
pin reviewed pre-existing findings in the committed baseline. Mark hot-path
roots with `// fftlint:hot` above the fn. Exit status: 0 clean, 1 findings
(new or stale), 2 usage/IO error.
";
