//! `fftlint` CLI.
//!
//! ```text
//! fftlint --workspace           lint every project source under the cwd
//! fftlint <file.rs>...          lint specific files
//! fftlint --list-rules          print rule ids and one-line summaries
//! ```
//!
//! Exit status: 0 clean, 1 findings, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list-rules") {
        for rule in fftlint::ALL_RULES {
            println!("{rule}");
        }
        return ExitCode::SUCCESS;
    }
    let workspace = args.iter().any(|a| a == "--workspace");
    let explicit: Vec<PathBuf> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(PathBuf::from)
        .collect();
    if !workspace && explicit.is_empty() {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }

    let root = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let files = if workspace {
        match fftlint::workspace_files(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("fftlint: walking {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        explicit
    };

    let mut findings = 0usize;
    let mut io_errors = 0usize;
    for file in &files {
        match fftlint::lint_file(&root, file) {
            Ok(fs) => {
                findings += fs.len();
                for f in fs {
                    println!("{f}");
                }
            }
            Err(e) => {
                eprintln!("fftlint: {}: {e}", file.display());
                io_errors += 1;
            }
        }
    }

    if io_errors > 0 {
        return ExitCode::from(2);
    }
    if findings > 0 {
        eprintln!(
            "fftlint: {findings} finding(s) in {} file(s) checked",
            files.len()
        );
        return ExitCode::from(1);
    }
    eprintln!("fftlint: clean ({} files checked)", files.len());
    ExitCode::SUCCESS
}

const USAGE: &str = "\
fftlint — workspace determinism linter

USAGE:
    fftlint --workspace           lint all project sources under the cwd
    fftlint <file.rs>...          lint specific files
    fftlint --list-rules          print the rule ids

Findings print as `path:line:col: rule-id: message`; suppress one with an
inline `// fftlint:allow(rule-id): reason` on the same or previous line.
Exit status: 0 clean, 1 findings, 2 usage/IO error.
";
