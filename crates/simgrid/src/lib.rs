#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # simgrid — simulated multi-GPU cluster
//!
//! The paper's experiments ran on Summit (4 608 nodes × 2 POWER9 + 6 V100,
//! dual-rail EDR InfiniBand at ≈23.5 GB/s practical) and Spock (36 nodes ×
//! 4 MI100). This crate is the stand-in for that hardware: a deterministic
//! analytic model of nodes, GPUs, intra-node links (NVLink / Infinity
//! Fabric), NICs and the inter-node fabric, together with simulated clocks
//! and device/host memory spaces.
//!
//! Everything above this crate (the MPI layer, the distributed FFT, the
//! benchmark harness) obtains *all* of its timing from the functions here —
//! never from wall-clock — so simulated experiments are reproducible to the
//! nanosecond.
//!
//! Calibration constants come straight from the paper (§II-A):
//!
//! * NVLink: 25 GB/s per direction per link, two links per V100–P9 pair ⇒
//!   50 GB/s per direction;
//! * inter-node: dual-rail EDR InfiniBand, "practical bandwidth of about
//!   23.5 GB/s" per node;
//! * latency: 1 µs inter-node (the value the paper plugs into its model,
//!   §IV-A);
//! * 6 GPUs/node on Summit, 4 GPUs/node on Spock, 1 MPI rank per GPU.

pub mod device;
pub mod link;
pub mod machine;
pub mod noise;
pub mod time;

pub use device::{DeviceBuffer, MemSpace};
pub use link::{LinkPath, TransferCtx};
pub use machine::MachineSpec;
pub use noise::Noise;
pub use time::{SimClock, SimTime};
