//! Simulated device/host memory spaces.
//!
//! Functional-mode rank programs keep their arrays in [`DeviceBuffer`]s so
//! that the *location* of data is explicit, exactly like a CUDA program. The
//! data itself lives in ordinary host memory (this is a simulation); what the
//! buffer adds is (a) a tagged memory space and (b) modeled transfer times
//! when data crosses the PCIe/NVLink boundary — the `device → host → host →
//! device` path of the paper's non-GPU-aware experiments.

use crate::machine::MachineSpec;
use crate::time::{SimClock, SimTime};

/// Where a buffer currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// GPU (HBM) memory.
    Device,
    /// Host (DDR) memory.
    Host,
}

/// A typed buffer tagged with its memory space.
#[derive(Debug, Clone)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    space: MemSpace,
}

impl<T: Clone + Default> DeviceBuffer<T> {
    /// Allocates a zero-initialized buffer of `len` elements in `space`.
    pub fn zeroed(len: usize, space: MemSpace) -> DeviceBuffer<T> {
        DeviceBuffer {
            data: vec![T::default(); len],
            space,
        }
    }
}

impl<T> DeviceBuffer<T> {
    /// Wraps an existing vector as a buffer in `space`.
    pub fn from_vec(data: Vec<T>, space: MemSpace) -> DeviceBuffer<T> {
        DeviceBuffer { data, space }
    }

    /// Current memory space.
    pub fn space(&self) -> MemSpace {
        self.space
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes.
    pub fn bytes(&self) -> usize {
        std::mem::size_of_val(self.data.as_slice())
    }

    /// Read access to the elements.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Write access to the elements.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the buffer, returning the underlying vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Moves the buffer to `target`, advancing `clock` by the modeled
    /// host-link transfer time (a no-op if it is already there).
    pub fn migrate(&mut self, target: MemSpace, spec: &MachineSpec, clock: &mut SimClock) {
        if self.space == target {
            return;
        }
        let ns = host_transfer_ns(spec, self.bytes());
        clock.advance(SimTime::from_ns(ns));
        self.space = target;
    }
}

/// Time (ns) to move `bytes` across the GPU↔host link (one direction).
pub fn host_transfer_ns(spec: &MachineSpec, bytes: usize) -> u64 {
    if bytes == 0 {
        return 0;
    }
    spec.staging_latency_ns + (bytes as f64 / spec.host_link_gbs).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_basics() {
        let b: DeviceBuffer<f64> = DeviceBuffer::zeroed(8, MemSpace::Device);
        assert_eq!(b.len(), 8);
        assert!(!b.is_empty());
        assert_eq!(b.bytes(), 64);
        assert_eq!(b.space(), MemSpace::Device);
    }

    #[test]
    fn migrate_advances_clock_once() {
        let spec = MachineSpec::summit();
        let mut clock = SimClock::new();
        let mut b: DeviceBuffer<u8> = DeviceBuffer::zeroed(50 << 20, MemSpace::Device);

        b.migrate(MemSpace::Host, &spec, &mut clock);
        let t1 = clock.now();
        assert!(t1 > SimTime::ZERO);
        // 50 MiB at 50 GB/s ≈ 1.05 ms.
        assert!((t1.as_ms() - 1.05).abs() < 0.1, "t1 = {t1}");

        // Already on host: free.
        b.migrate(MemSpace::Host, &spec, &mut clock);
        assert_eq!(clock.now(), t1);

        b.migrate(MemSpace::Device, &spec, &mut clock);
        assert!(clock.now() > t1);
    }

    #[test]
    fn zero_byte_transfer_is_free() {
        assert_eq!(host_transfer_ns(&MachineSpec::summit(), 0), 0);
    }

    #[test]
    fn from_vec_into_vec_roundtrip() {
        let v = vec![1u32, 2, 3];
        let b = DeviceBuffer::from_vec(v.clone(), MemSpace::Host);
        assert_eq!(b.into_vec(), v);
    }
}
