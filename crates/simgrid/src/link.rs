//! Point-to-point transfer cost model.
//!
//! Every byte moved in the simulation is priced here. The model distinguishes
//! the three paths a message can take on a Summit-like machine:
//!
//! * **self copy** — both endpoints are the same rank (the diagonal of an
//!   all-to-all): a device-local `memcpy`;
//! * **intra-node** — over NVLink/Infinity Fabric, never touching the NIC;
//! * **inter-node** — through the node's NIC onto the fabric, where the NIC
//!   is *shared* by every rank on the node with off-node traffic in flight,
//!   and the fabric itself saturates slowly with scale (Fig. 4).
//!
//! The GPU-aware toggle (§IV-C) selects between direct device transfers and
//! the staged `device → host → host → device` path the paper describes for
//! `--no-gpu-aware`.

use crate::machine::MachineSpec;

/// Which physical path a (src, dst) pair uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkPath {
    /// Same rank: device-local copy.
    SelfCopy,
    /// Same node, different GPU: NVLink / Infinity Fabric.
    IntraNode,
    /// Different nodes: NIC + fabric.
    InterNode,
}

/// Context of the communication phase a message belongs to, needed to price
/// NIC sharing and fabric saturation.
#[derive(Debug, Clone, Copy)]
pub struct TransferCtx {
    /// Whether MPI may read/write GPU memory directly (GPU-aware). When
    /// false, messages stage through host memory on both ends.
    pub gpu_aware: bool,
    /// Off-node flows concurrently leaving each NIC during this phase
    /// (≥1). For an all-to-all over Π ranks with g per node this is
    /// typically `g` (every local rank is sending off-node at once).
    pub offnode_flows_per_nic: usize,
    /// Number of nodes participating in the phase (fabric saturation).
    pub nodes_involved: usize,
}

impl TransferCtx {
    /// A quiet network: single flow, GPU-aware.
    pub fn quiet() -> TransferCtx {
        TransferCtx {
            gpu_aware: true,
            offnode_flows_per_nic: 1,
            nodes_involved: 2,
        }
    }
}

/// Classifies the path between two ranks.
pub fn path(spec: &MachineSpec, src: usize, dst: usize) -> LinkPath {
    if src == dst {
        LinkPath::SelfCopy
    } else if spec.same_node(src, dst) {
        LinkPath::IntraNode
    } else {
        LinkPath::InterNode
    }
}

/// GB/s ≡ bytes/ns, so `bytes / gbs` is directly a duration in ns.
#[inline]
fn ns_for(bytes: usize, gbs: f64) -> f64 {
    bytes as f64 / gbs
}

/// Effective per-flow inter-node bandwidth (GB/s) under NIC sharing and
/// fabric saturation.
pub fn effective_internode_gbs(spec: &MachineSpec, ctx: &TransferCtx) -> f64 {
    let flows = ctx.offnode_flows_per_nic.max(1) as f64;
    (spec.nic_gbs / flows) * spec.fabric.efficiency(ctx.nodes_involved.max(2))
}

/// Time (ns) to move `bytes` from rank `src` to rank `dst` under `ctx`.
///
/// This is pure transport: per-message *protocol* overheads (e.g. GPU-aware
/// P2P registration) are added by the MPI layer, not here.
pub fn message_time_ns(
    spec: &MachineSpec,
    bytes: usize,
    src: usize,
    dst: usize,
    ctx: &TransferCtx,
) -> u64 {
    let link = path(spec, src, dst);
    if fftobs::enabled() {
        let (msgs, byte_cnt) = match link {
            LinkPath::SelfCopy => ("simgrid.msgs.self_copy", "simgrid.bytes.self_copy"),
            LinkPath::IntraNode => ("simgrid.msgs.intra_node", "simgrid.bytes.intra_node"),
            LinkPath::InterNode => ("simgrid.msgs.inter_node", "simgrid.bytes.inter_node"),
        };
        fftobs::count(msgs, 1);
        fftobs::count(byte_cnt, bytes as u64);
    }
    priced_time_ns(spec, bytes, link, ctx)
}

/// [`message_time_ns`] without the `simgrid.msgs.*` counter bumps: for
/// *model probes* (e.g. the reshape auto-chunking argmin) that price a
/// hypothetical message without simulating one — the observability
/// counters must keep counting only traffic that actually moved.
pub fn message_time_est_ns(
    spec: &MachineSpec,
    bytes: usize,
    src: usize,
    dst: usize,
    ctx: &TransferCtx,
) -> u64 {
    priced_time_ns(spec, bytes, path(spec, src, dst), ctx)
}

fn priced_time_ns(spec: &MachineSpec, bytes: usize, link: LinkPath, ctx: &TransferCtx) -> u64 {
    match link {
        LinkPath::SelfCopy => {
            // Device-local copy: read + write at HBM bandwidth.
            let gbs = spec.gpu.mem_bw_gbs / 2.0;
            (ns_for(bytes, gbs)).ceil() as u64
        }
        LinkPath::IntraNode => {
            let proto = if bytes > 0 {
                ns_for(spec.proto_ramp_intra_bytes, spec.intra_link_gbs).ceil() as u64
            } else {
                0
            };
            if ctx.gpu_aware {
                spec.intra_latency_ns + proto + ns_for(bytes, spec.intra_link_gbs).ceil() as u64
            } else {
                // device → host and host → device, each at ~40% of the
                // host-link bandwidth (pageable staging buffers, CPU copy),
                // plus the extra staging latency.
                let hop = ns_for(bytes, spec.host_link_gbs / 2.5);
                spec.intra_latency_ns + spec.staging_latency_ns + proto + (2.0 * hop).ceil() as u64
            }
        }
        LinkPath::InterNode => {
            // Per-message protocol cost at the raw NIC rate: mid-size
            // messages do not reach peak bandwidth (rendezvous handshake,
            // pipeline fill) — amortized away by batched/coalesced sends.
            let proto = if bytes > 0 {
                ns_for(spec.proto_ramp_inter_bytes, spec.nic_gbs).ceil() as u64
            } else {
                0
            };
            let wire = ns_for(bytes, effective_internode_gbs(spec, ctx));
            if ctx.gpu_aware {
                spec.inter_latency_ns + proto + wire.ceil() as u64
            } else {
                let hop = ns_for(bytes, spec.host_link_gbs / 2.5);
                spec.inter_latency_ns
                    + spec.staging_latency_ns
                    + proto
                    + (wire + 2.0 * hop).ceil() as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summit() -> MachineSpec {
        MachineSpec::summit()
    }

    #[test]
    fn path_classification() {
        let s = summit();
        assert_eq!(path(&s, 3, 3), LinkPath::SelfCopy);
        assert_eq!(path(&s, 0, 5), LinkPath::IntraNode);
        assert_eq!(path(&s, 0, 6), LinkPath::InterNode);
    }

    #[test]
    fn intra_node_is_faster_than_inter_node() {
        let s = summit();
        let ctx = TransferCtx::quiet();
        let b = 1 << 20;
        let intra = message_time_ns(&s, b, 0, 1, &ctx);
        let inter = message_time_ns(&s, b, 0, 6, &ctx);
        assert!(intra < inter, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn bandwidth_term_dominates_large_messages() {
        let s = summit();
        let ctx = TransferCtx::quiet();
        // 1 GiB over NVLink at 50 GB/s ≈ 21.5 ms.
        let t = message_time_ns(&s, 1 << 30, 0, 1, &ctx);
        let expect = (1u64 << 30) as f64 / 50.0;
        assert!((t as f64 - expect).abs() / expect < 0.01);
    }

    #[test]
    fn latency_and_protocol_dominate_tiny_messages() {
        let s = summit();
        let ctx = TransferCtx::quiet();
        let t = message_time_ns(&s, 8, 0, 6, &ctx);
        // A tiny message pays latency + the per-message protocol ramp, with
        // a negligible wire term.
        let proto = (s.proto_ramp_inter_bytes as f64 / s.nic_gbs).ceil() as u64;
        assert!(t >= s.inter_latency_ns + proto);
        assert!(t < s.inter_latency_ns + proto + 100);
        // Zero-byte probes are pure latency (used to split cost into
        // injection and latency parts).
        assert_eq!(message_time_ns(&s, 0, 0, 6, &ctx), s.inter_latency_ns);
    }

    #[test]
    fn nic_sharing_divides_bandwidth() {
        let s = summit();
        let quiet = TransferCtx::quiet();
        let busy = TransferCtx {
            offnode_flows_per_nic: 6,
            ..TransferCtx::quiet()
        };
        let b = 64 << 20;
        let t_quiet = message_time_ns(&s, b, 0, 6, &quiet);
        let t_busy = message_time_ns(&s, b, 0, 6, &busy);
        assert!(
            t_busy as f64 > 5.0 * t_quiet as f64,
            "6-way NIC sharing should cut bandwidth ~6x: {t_quiet} vs {t_busy}"
        );
    }

    #[test]
    fn staging_penalty_is_about_30_percent_at_scale() {
        // Fig. 11: disabling GPU-awareness increases communication cost by
        // ≈30 % at 16 nodes (message sizes in the MB range, 6 flows/NIC).
        let s = summit();
        let aware = TransferCtx {
            gpu_aware: true,
            offnode_flows_per_nic: 6,
            nodes_involved: 16,
        };
        let staged = TransferCtx {
            gpu_aware: false,
            ..aware
        };
        let b = 4 << 20;
        let t_aware = message_time_ns(&s, b, 0, 6, &aware);
        let t_staged = message_time_ns(&s, b, 0, 6, &staged);
        let ratio = t_staged as f64 / t_aware as f64;
        assert!(
            (1.15..1.55).contains(&ratio),
            "staged/aware ratio {ratio:.2} out of the paper's ~1.3 band"
        );
    }

    #[test]
    fn fabric_saturation_reduces_effective_bandwidth() {
        let s = summit();
        let small = TransferCtx {
            gpu_aware: true,
            offnode_flows_per_nic: 6,
            nodes_involved: 2,
        };
        let large = TransferCtx {
            nodes_involved: 128,
            ..small
        };
        assert!(effective_internode_gbs(&s, &large) < effective_internode_gbs(&s, &small));
    }

    #[test]
    fn self_copy_has_no_latency_floor() {
        let s = summit();
        let ctx = TransferCtx::quiet();
        let t = message_time_ns(&s, 16, 2, 2, &ctx);
        assert!(t < 10, "self-copy of 16 bytes should be ~free, got {t}");
    }
}
