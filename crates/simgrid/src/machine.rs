//! Machine descriptions: node layout, link speeds, fabric behaviour.

use fftkern::kernel_model::{GpuModel, KernelTimeModel};

/// Behavioural parameters of the inter-node fabric.
///
/// Summit's fat tree is *non-blocking* in theory; in practice per-flow
/// efficiency degrades slowly as more nodes participate (adaptive-routing
/// collisions, rail imbalance). The paper observes exactly this: "network
/// saturation causes an exponential decrease in the average bandwidth
/// achieved by each process" (§III, Fig. 4).
#[derive(Debug, Clone, PartialEq)]
pub struct FabricModel {
    /// Per-flow efficiency loss per doubling of participating nodes
    /// (0.0 = ideal non-blocking fabric).
    pub saturation_per_doubling: f64,
    /// Floor on fabric efficiency, whatever the scale.
    pub min_efficiency: f64,
}

impl FabricModel {
    /// Efficiency multiplier (≤1) for an exchange spanning `nodes` nodes.
    pub fn efficiency(&self, nodes: usize) -> f64 {
        if nodes <= 1 {
            return 1.0;
        }
        let doublings = (nodes as f64).log2();
        (1.0 - self.saturation_per_doubling * doublings).max(self.min_efficiency)
    }
}

/// Full description of a simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Machine name ("Summit", "Spock", …).
    pub name: &'static str,
    /// GPUs (= MPI ranks, 1 rank per GPU) per node.
    pub gpus_per_node: usize,
    /// Accelerator model installed in every node.
    pub gpu: GpuModel,
    /// GPU↔GPU bandwidth within a node, GB/s per direction
    /// (NVLink on Summit: 50 GB/s).
    pub intra_link_gbs: f64,
    /// GPU↔host bandwidth, GB/s per direction (V100↔P9 NVLink: 50 GB/s).
    pub host_link_gbs: f64,
    /// Practical per-node injection bandwidth of the NIC, GB/s
    /// (Summit dual-rail EDR: ≈23.5 GB/s).
    pub nic_gbs: f64,
    /// Point-to-point latency between GPUs on the same node, ns.
    pub intra_latency_ns: u64,
    /// Point-to-point latency between nodes, ns (paper uses 1 µs).
    pub inter_latency_ns: u64,
    /// Extra one-way latency added when a message must be staged through
    /// host memory (non-GPU-aware path), ns.
    pub staging_latency_ns: u64,
    /// Fabric saturation behaviour.
    pub fabric: FabricModel,
    /// Per-message bookkeeping cost of a GPU-aware point-to-point transfer
    /// (GPUDirect registration/rendezvous), ns. Grows with peer count —
    /// see [`MachineSpec::p2p_gpu_aware_overhead_ns`]; this is why GPU-aware
    /// P2P stops scaling in Fig. 9.
    pub p2p_gpu_aware_base_ns: u64,
    /// Number of simultaneously-active GPU-aware P2P peers a rank can
    /// sustain before per-message overhead starts growing quadratically.
    pub p2p_gpu_aware_peer_knee: usize,
    /// Quadratic growth coefficient of the past-knee GPU-aware P2P
    /// overhead (per excess peer squared, in units of the base cost).
    pub p2p_gpu_aware_quad: f64,
    /// Protocol ramp for inter-node messages, bytes: per-message protocol
    /// cost of `ramp / nic_gbs`, modeling that mid-size messages do not
    /// reach peak link bandwidth (rendezvous handshakes, pipelining). This
    /// is the physics behind the paper's batching speedups (Fig. 13):
    /// coalescing a batch's small messages amortizes it.
    pub proto_ramp_inter_bytes: usize,
    /// Protocol ramp for intra-node (NVLink/xGMI) messages, bytes.
    pub proto_ramp_intra_bytes: usize,
    /// Per-MPI-call device synchronization overhead on GPU buffers, ns
    /// (stream sync, buffer-handle lookup, progress-engine entry). Paid
    /// once per collective/exchange call, so batched transforms that
    /// coalesce a whole batch into one exchange amortize it — a key part of
    /// the Fig. 13 batching speedups.
    pub gpu_call_sync_ns: u64,
}

impl MachineSpec {
    /// Summit: 2 × POWER9 + 6 × V100 per node, NVLink 50 GB/s per direction,
    /// dual-rail EDR InfiniBand ≈ 23.5 GB/s practical per node, non-blocking
    /// fat tree (paper §II-A).
    pub fn summit() -> MachineSpec {
        MachineSpec {
            name: "Summit",
            gpus_per_node: 6,
            gpu: GpuModel::v100(),
            intra_link_gbs: 50.0,
            host_link_gbs: 50.0,
            nic_gbs: 23.5,
            intra_latency_ns: 500,
            inter_latency_ns: 1_000,
            staging_latency_ns: 1_500,
            fabric: FabricModel {
                saturation_per_doubling: 0.055,
                min_efficiency: 0.35,
            },
            p2p_gpu_aware_base_ns: 800,
            p2p_gpu_aware_peer_knee: 16,
            p2p_gpu_aware_quad: 3.0,
            proto_ramp_inter_bytes: 64 << 10,
            proto_ramp_intra_bytes: 16 << 10,
            gpu_call_sync_ns: 60_000,
        }
    }

    /// Spock (Frontier precursor): 4 × MI100 per node, Infinity Fabric
    /// intra-node, Slingshot-class NIC (paper §II-A).
    pub fn spock() -> MachineSpec {
        MachineSpec {
            name: "Spock",
            gpus_per_node: 4,
            gpu: GpuModel::mi100(),
            intra_link_gbs: 46.0,
            host_link_gbs: 32.0,
            nic_gbs: 12.5,
            intra_latency_ns: 600,
            inter_latency_ns: 1_100,
            staging_latency_ns: 1_800,
            fabric: FabricModel {
                saturation_per_doubling: 0.05,
                min_efficiency: 0.4,
            },
            p2p_gpu_aware_base_ns: 1_000,
            p2p_gpu_aware_peer_knee: 12,
            p2p_gpu_aware_quad: 3.0,
            proto_ramp_inter_bytes: 64 << 10,
            proto_ramp_intra_bytes: 16 << 10,
            gpu_call_sync_ns: 60_000,
        }
    }

    /// A Frontier-class projection (the paper's §II-A: "Spock is a precursor
    /// of the upcoming Frontier machine, expected to have exascale
    /// performance"): 8 effective GPUs per node (4 dual-die MI250X), faster
    /// Infinity Fabric, Slingshot-11 NICs. Used by the exascale-projection
    /// harness; numbers are public-spec estimates, not measurements.
    pub fn frontier_projection() -> MachineSpec {
        MachineSpec {
            name: "Frontier(projection)",
            gpus_per_node: 8,
            gpu: GpuModel {
                name: "MI250X-die",
                fp64_tflops: 24.0,
                mem_bw_gbs: 1600.0,
                launch_ns: 4_000,
                fft_flop_efficiency: 0.45,
                strided_bw_factor: 0.16,
                plan_setup_ns: 150_000,
            },
            intra_link_gbs: 100.0,
            host_link_gbs: 36.0,
            nic_gbs: 4.0 * 25.0, // 4x Slingshot-11 per node
            intra_latency_ns: 500,
            inter_latency_ns: 900,
            staging_latency_ns: 1_500,
            fabric: FabricModel {
                saturation_per_doubling: 0.05,
                min_efficiency: 0.35,
            },
            p2p_gpu_aware_base_ns: 700,
            p2p_gpu_aware_peer_knee: 24,
            p2p_gpu_aware_quad: 3.0,
            proto_ramp_inter_bytes: 64 << 10,
            proto_ramp_intra_bytes: 16 << 10,
            gpu_call_sync_ns: 50_000,
        }
    }

    /// A small CPU-only test machine: fast to simulate functionally, useful
    /// for unit tests that don't care about GPU numbers.
    pub fn testbox(gpus_per_node: usize) -> MachineSpec {
        MachineSpec {
            name: "testbox",
            gpus_per_node,
            gpu: GpuModel::host_cpu(),
            intra_link_gbs: 10.0,
            host_link_gbs: 10.0,
            nic_gbs: 5.0,
            intra_latency_ns: 200,
            inter_latency_ns: 1_000,
            staging_latency_ns: 500,
            fabric: FabricModel {
                saturation_per_doubling: 0.05,
                min_efficiency: 0.5,
            },
            p2p_gpu_aware_base_ns: 500,
            p2p_gpu_aware_peer_knee: 32,
            p2p_gpu_aware_quad: 2.0,
            proto_ramp_inter_bytes: 32 << 10,
            proto_ramp_intra_bytes: 8 << 10,
            gpu_call_sync_ns: 5_000,
        }
    }

    /// Node index hosting `rank` (ranks are packed node by node, 1 per GPU).
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.gpus_per_node
    }

    /// True when two ranks share a node (their traffic stays on NVLink).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Number of nodes needed for `ranks` ranks.
    pub fn nodes_for(&self, ranks: usize) -> usize {
        ranks.div_ceil(self.gpus_per_node)
    }

    /// Kernel-time model for this machine's GPU.
    pub fn kernel_model(&self) -> KernelTimeModel {
        KernelTimeModel::new(self.gpu.clone())
    }

    /// Per-message overhead (ns) of a GPU-aware P2P transfer when a rank is
    /// exchanging with `peers` distinct peers in one phase.
    ///
    /// Below the knee this is a small constant; above it, GPUDirect
    /// registration caches thrash and the cost grows with the square of the
    /// excess — reproducing the Fig. 9 observation that "Point-to-Point
    /// approaches fail when using GPU-aware MPI" at large scale while the
    /// staged (non-GPU-aware) path keeps scaling.
    pub fn p2p_gpu_aware_overhead_ns(&self, peers: usize) -> u64 {
        let base = self.p2p_gpu_aware_base_ns;
        if peers <= self.p2p_gpu_aware_peer_knee {
            return base;
        }
        let excess = (peers - self.p2p_gpu_aware_peer_knee) as f64;
        base + (base as f64 * self.p2p_gpu_aware_quad * excess * excess).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summit_matches_paper_constants() {
        let s = MachineSpec::summit();
        assert_eq!(s.gpus_per_node, 6);
        assert_eq!(s.intra_link_gbs, 50.0);
        assert_eq!(s.nic_gbs, 23.5);
        assert_eq!(s.inter_latency_ns, 1_000);
        assert_eq!(s.gpu.name, "V100");
    }

    #[test]
    fn spock_matches_paper_constants() {
        let s = MachineSpec::spock();
        assert_eq!(s.gpus_per_node, 4);
        assert_eq!(s.gpu.name, "MI100");
    }

    #[test]
    fn frontier_projection_outclasses_summit() {
        let f = MachineSpec::frontier_projection();
        let s = MachineSpec::summit();
        assert!(f.gpu.fp64_tflops > s.gpu.fp64_tflops);
        assert!(f.nic_gbs > s.nic_gbs);
        assert_eq!(f.gpus_per_node, 8);
    }

    #[test]
    fn node_mapping() {
        let s = MachineSpec::summit();
        assert_eq!(s.node_of(0), 0);
        assert_eq!(s.node_of(5), 0);
        assert_eq!(s.node_of(6), 1);
        assert!(s.same_node(0, 5));
        assert!(!s.same_node(5, 6));
        assert_eq!(s.nodes_for(768), 128);
        assert_eq!(s.nodes_for(7), 2);
        assert_eq!(s.nodes_for(6), 1);
    }

    #[test]
    fn fabric_efficiency_decays_but_floors() {
        let f = MachineSpec::summit().fabric;
        assert_eq!(f.efficiency(1), 1.0);
        assert!(f.efficiency(2) < 1.0);
        assert!(f.efficiency(128) < f.efficiency(16));
        assert!(f.efficiency(1 << 20) >= 0.35);
    }

    #[test]
    fn gpu_aware_p2p_overhead_explodes_past_knee() {
        let s = MachineSpec::summit();
        let small = s.p2p_gpu_aware_overhead_ns(8);
        let at_knee = s.p2p_gpu_aware_overhead_ns(16);
        let past = s.p2p_gpu_aware_overhead_ns(48);
        assert_eq!(small, at_knee);
        assert!(
            past > 20 * at_knee,
            "past-knee overhead {past} should dwarf {at_knee}"
        );
    }
}
