//! Deterministic timing noise.
//!
//! Real per-call MPI timings (Figs. 2, 3, 10 of the paper) show run-to-run
//! variability on top of the structural differences. The simulator adds a
//! small multiplicative jitter from a seeded xorshift generator so traces
//! *look* like measured data while remaining bit-for-bit reproducible.

/// A tiny seeded PRNG (xorshift64*) for timing jitter.
///
/// Deliberately not `rand`-based: this sits in the innermost simulation loop
/// and must be trivially cloneable and endian/platform stable.
#[derive(Debug, Clone)]
pub struct Noise {
    state: u64,
    /// Relative jitter amplitude (e.g. 0.03 = ±3 %).
    amplitude: f64,
}

impl Noise {
    /// Creates a generator with the given seed and amplitude.
    pub fn new(seed: u64, amplitude: f64) -> Noise {
        assert!(
            (0.0..1.0).contains(&amplitude),
            "amplitude must be in [0,1)"
        );
        Noise {
            state: seed | 1, // never zero
            amplitude,
        }
    }

    /// A generator that adds no jitter (for exact-arithmetic tests).
    pub fn silent() -> Noise {
        Noise::new(1, 0.0)
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// A uniform sample in `[-1, 1]`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }

    /// Applies multiplicative jitter to a base duration in ns.
    pub fn jitter_ns(&mut self, base_ns: u64) -> u64 {
        if self.amplitude == 0.0 || base_ns == 0 {
            return base_ns;
        }
        let factor = 1.0 + self.amplitude * self.uniform();
        (base_ns as f64 * factor).round().max(0.0) as u64
    }
}

/// Stateless multiplicative jitter keyed by message identity.
///
/// Schedule walkers price the same message from both endpoints and from both
/// the functional engine and the analytic dry-run; a *stateless* hash of
/// `(seed, phase, src, dst)` guarantees every consumer computes the identical
/// factor regardless of evaluation order.
pub fn hash_jitter(seed: u64, phase: u64, src: u64, dst: u64, amplitude: f64) -> f64 {
    if amplitude == 0.0 {
        return 1.0;
    }
    // SplitMix64 over the combined key.
    let mut x = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(phase)
        .wrapping_mul(0xBF58476D1CE4E5B9)
        .wrapping_add(src)
        .wrapping_mul(0x94D049BB133111EB)
        .wrapping_add(dst);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D049BB133111EB);
    x ^= x >> 31;
    let u = (x >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0; // [-1, 1]
    1.0 + amplitude * u
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_jitter_is_stateless_and_bounded() {
        let a = hash_jitter(42, 7, 3, 9, 0.05);
        let b = hash_jitter(42, 7, 3, 9, 0.05);
        assert_eq!(a, b);
        assert!((0.95..=1.05).contains(&a));
        assert_ne!(
            hash_jitter(42, 7, 3, 9, 0.05),
            hash_jitter(42, 8, 3, 9, 0.05)
        );
        assert_eq!(hash_jitter(1, 2, 3, 4, 0.0), 1.0);
    }

    #[test]
    fn silent_noise_is_identity() {
        let mut n = Noise::silent();
        for v in [0u64, 1, 1_000, u32::MAX as u64] {
            assert_eq!(n.jitter_ns(v), v);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Noise::new(42, 0.05);
        let mut b = Noise::new(42, 0.05);
        for _ in 0..100 {
            assert_eq!(a.jitter_ns(1_000_000), b.jitter_ns(1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Noise::new(1, 0.05);
        let mut b = Noise::new(2, 0.05);
        let sa: Vec<u64> = (0..10).map(|_| a.jitter_ns(1_000_000)).collect();
        let sb: Vec<u64> = (0..10).map(|_| b.jitter_ns(1_000_000)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn jitter_stays_within_amplitude() {
        let mut n = Noise::new(7, 0.03);
        for _ in 0..1_000 {
            let v = n.jitter_ns(1_000_000);
            assert!((970_000..=1_030_000).contains(&v), "v = {v}");
        }
    }

    #[test]
    fn uniform_covers_both_signs() {
        let mut n = Noise::new(3, 0.5);
        let samples: Vec<f64> = (0..1_000).map(|_| n.uniform()).collect();
        assert!(samples.iter().any(|&x| x > 0.5));
        assert!(samples.iter().any(|&x| x < -0.5));
        assert!(samples.iter().all(|&x| (-1.0..=1.0).contains(&x)));
    }
}
