//! Simulated time: integer nanoseconds, never wall-clock.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or duration of) simulated time, in nanoseconds.
///
/// Integer nanoseconds keep the simulation exactly reproducible: no float
/// accumulation, no platform-dependent rounding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Zero time.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from nanoseconds.
    pub const fn from_ns(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Constructs from microseconds.
    pub const fn from_us(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub const fn from_ms(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// Constructs from (possibly fractional) seconds, rounding to ns.
    pub fn from_secs_f64(s: f64) -> SimTime {
        assert!(s >= 0.0 && s.is_finite(), "invalid duration: {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// Value in nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Value in microseconds (fractional).
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Value in milliseconds (fractional).
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in seconds (fractional).
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Later of two instants.
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.max(rhs.0))
    }

    /// Earlier of two instants.
    pub fn min(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.min(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                // fftlint:allow(no-panic-in-lib): underflow means simulator-clock corruption
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 10_000 {
            write!(f, "{ns} ns")
        } else if ns < 10_000_000 {
            write!(f, "{:.2} µs", self.as_us())
        } else if ns < 10_000_000_000 {
            write!(f, "{:.3} ms", self.as_ms())
        } else {
            write!(f, "{:.4} s", self.as_secs())
        }
    }
}

/// A per-rank simulated clock.
///
/// Ranks advance their clock by modeled kernel/transfer durations; message
/// receipt synchronizes a clock forward to the message's arrival time
/// (`sync_to`), exactly like a happened-before relation.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> SimClock {
        SimClock { now: SimTime::ZERO }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances by a duration and returns the new time.
    pub fn advance(&mut self, dur: SimTime) -> SimTime {
        self.now += dur;
        self.now
    }

    /// Advances by nanoseconds and returns the new time.
    pub fn advance_ns(&mut self, ns: u64) -> SimTime {
        self.advance(SimTime::from_ns(ns))
    }

    /// Moves the clock forward to `t` if `t` is later (never backwards).
    pub fn sync_to(&mut self, t: SimTime) -> SimTime {
        self.now = self.now.max(t);
        self.now
    }

    /// Resets to zero (between repeated experiments).
    pub fn reset(&mut self) {
        self.now = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_us(3).as_ns(), 3_000);
        assert_eq!(SimTime::from_ms(2).as_ns(), 2_000_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_ns(), 1_500_000_000);
        assert!((SimTime::from_ns(2_500).as_us() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimTime::from_ns(500)), "500 ns");
        assert_eq!(format!("{}", SimTime::from_us(150)), "150.00 µs");
        assert_eq!(format!("{}", SimTime::from_ms(90)), "90.000 ms");
        assert_eq!(format!("{}", SimTime::from_secs_f64(12.0)), "12.0000 s");
    }

    #[test]
    fn clock_advances_and_syncs() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance_ns(100);
        c.advance(SimTime::from_ns(50));
        assert_eq!(c.now().as_ns(), 150);
        // Sync forward only.
        c.sync_to(SimTime::from_ns(120));
        assert_eq!(c.now().as_ns(), 150);
        c.sync_to(SimTime::from_ns(300));
        assert_eq!(c.now().as_ns(), 300);
        c.reset();
        assert_eq!(c.now(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::from_ns(1) - SimTime::from_ns(2);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(
            SimTime::from_ns(1).saturating_sub(SimTime::from_ns(5)),
            SimTime::ZERO
        );
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = (1..=4).map(SimTime::from_ns).sum();
        assert_eq!(total.as_ns(), 10);
    }
}
