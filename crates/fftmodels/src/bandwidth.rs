//! Equations (2)–(5) of the paper: communication-cost and average-bandwidth
//! models for slab and pencil decompositions.
//!
//! All quantities use SI units: seconds, bytes, bytes/second. The constant
//! 16 is the double-complex element size.

/// Bytes per complex element (double-complex).
pub const ELEM_BYTES: f64 = 16.0;

/// Network parameters of the model: the paper plugs in `L = 1 µs` and
/// `B = 23.5 GB/s` for Summit (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelParams {
    /// Message latency, seconds.
    pub latency_s: f64,
    /// Average link bandwidth, bytes/second.
    pub bandwidth_bps: f64,
}

impl ModelParams {
    /// The paper's Summit parameters: 1 µs latency, 23.5 GB/s.
    pub fn summit() -> ModelParams {
        ModelParams {
            latency_s: 1e-6,
            bandwidth_bps: 23.5e9,
        }
    }
}

/// Equation (2): slab-decomposition communication time for a transform of
/// `n` total elements over `pi` processes.
///
/// `T_slabs = (Π−1)·(L + 16N/(B·Π²))`
///
/// ```
/// use fftmodels::bandwidth::{t_slabs, t_pencils, ModelParams};
/// // The paper's §IV-A prediction: at 32 Summit nodes (192 ranks) slabs
/// // beat pencils for a 512³ transform...
/// let n = 512.0 * 512.0 * 512.0;
/// let p = ModelParams::summit();
/// assert!(t_slabs(n, 192, &p) < t_pencils(n, 12, 16, &p));
/// // ...and at 64 nodes (384 ranks) pencils take over.
/// assert!(t_pencils(n, 16, 24, &p) < t_slabs(n, 384, &p));
/// ```
pub fn t_slabs(n: f64, pi: usize, p: &ModelParams) -> f64 {
    let pi_f = pi as f64;
    (pi_f - 1.0) * (p.latency_s + ELEM_BYTES * n / (p.bandwidth_bps * pi_f * pi_f))
}

/// Equation (3): pencil-decomposition communication time with a `P × Q`
/// grid (`Π = P·Q`).
///
/// `T_pencils = (P−1)(L + 16N/(B·P·Π)) + (Q−1)(L + 16N/(B·Q·Π))`
pub fn t_pencils(n: f64, pgrid: usize, qgrid: usize, p: &ModelParams) -> f64 {
    let pi = (pgrid * qgrid) as f64;
    let pf = pgrid as f64;
    let qf = qgrid as f64;
    (pf - 1.0) * (p.latency_s + ELEM_BYTES * n / (p.bandwidth_bps * pf * pi))
        + (qf - 1.0) * (p.latency_s + ELEM_BYTES * n / (p.bandwidth_bps * qf * pi))
}

/// Equation (4): average per-process bandwidth (bytes/s) inferred from a
/// measured slab communication time.
///
/// `B_slabs = 16N / (Π²·(T/(Π−1) − L))`
pub fn b_slabs(n: f64, pi: usize, t_measured: f64, latency_s: f64) -> f64 {
    let pi_f = pi as f64;
    let per_step = t_measured / (pi_f - 1.0) - latency_s;
    ELEM_BYTES * n / (pi_f * pi_f * per_step)
}

/// Equation (5): average per-process bandwidth inferred from a measured
/// pencil communication time.
///
/// `B_pencils = 16N·((P−1)/P + (Q−1)/Q) / (Π·(T − L·(P+Q−2)))`
pub fn b_pencils(n: f64, pgrid: usize, qgrid: usize, t_measured: f64, latency_s: f64) -> f64 {
    let pi = (pgrid * qgrid) as f64;
    let pf = pgrid as f64;
    let qf = qgrid as f64;
    let num = ELEM_BYTES * n * ((pf - 1.0) / pf + (qf - 1.0) / qf);
    let den = pi * (t_measured - latency_s * (pf + qf - 2.0));
    num / den
}

/// Pipelined reshape estimate: a strict pack → exchange → unpack chain
/// split into `k` per-peer chunks (DESIGN.md §14). With each chunk's
/// stages overlapping its neighbours', the chain costs one pass through
/// the pipeline at `1/k` scale plus `k − 1` periods of the bottleneck
/// stage:
///
/// `T_pipe(k) = (T_pack + T_comm + T_unpack)/k + ((k−1)/k)·max(T_pack, T_comm, T_unpack)`
///
/// `k = 1` recovers the strict-phase sum; as `k → ∞` the cost tends to
/// the bottleneck stage alone (the other stages' fill/drain vanishes as
/// `1/k`). This is the idealized ceiling the simulator's partitioned
/// schedule walker is measured against — the walker additionally pays
/// per-chunk message overheads, so real chunk counts have an interior
/// optimum rather than a monotone win.
pub fn t_pipelined(t_pack: f64, t_comm: f64, t_unpack: f64, k: usize) -> f64 {
    let k_f = k.max(1) as f64;
    let sum = t_pack + t_comm + t_unpack;
    let bottleneck = t_pack.max(t_comm).max(t_unpack);
    sum / k_f + (k_f - 1.0) / k_f * bottleneck
}

/// Transform-ahead pipelined reshape estimate (DESIGN.md §16): extends
/// [`t_pipelined`] with the two effects that give the chunk count a real
/// interior optimum and make auto-selection possible.
///
/// * **Per-chunk latency** `lat`: each extra chunk pays one more round of
///   message/posting overheads, adding `(k−1)·lat`. This is what keeps
///   `k → ∞` from looking free.
/// * **Compute overlap ceiling** `t_fft`: with transform-ahead, the next
///   axis transform of lines completed by early chunks runs while late
///   chunks are still on the wire. The first chunk's lines are not
///   available until it lands, so at most `(k−1)/k` of the transform can
///   hide — and it can never hide more than the wire time it hides under:
///
/// `T(k) = T_pipe(k) + (k−1)·lat + T_fft − min(T_fft, T_comm)·(k−1)/k`
///
/// `k = 1` recovers the strict chain `T_pack + T_comm + T_unpack + T_fft`.
/// `FFT_RESHAPE_CHUNKS=auto` picks `argmin_k T(k)`; the executor's
/// duplicate of this formula (`distfft::exec::auto_chunks_from_stages`,
/// pinned equal by a property test here) keeps the crate graph acyclic.
pub fn t_pipelined_ext(
    t_pack: f64,
    t_comm: f64,
    t_unpack: f64,
    t_fft: f64,
    lat: f64,
    k: usize,
) -> f64 {
    let k_f = k.max(1) as f64;
    let overlap = t_fft.min(t_comm) * (k_f - 1.0) / k_f;
    t_pipelined(t_pack, t_comm, t_unpack, k) + (k_f - 1.0) * lat + t_fft - overlap
}

#[cfg(test)]
mod tests {
    use super::*;

    const N512: f64 = 512.0 * 512.0 * 512.0;

    #[test]
    fn pipelined_k1_is_the_strict_sum() {
        let (p, c, u) = (2e-3, 5e-3, 1.5e-3);
        assert!((t_pipelined(p, c, u, 1) - (p + c + u)).abs() < 1e-15);
    }

    #[test]
    fn pipelined_decreases_toward_the_bottleneck_stage() {
        let (p, c, u) = (2e-3, 5e-3, 1.5e-3);
        let mut prev = t_pipelined(p, c, u, 1);
        for k in 2..=64 {
            let t = t_pipelined(p, c, u, k);
            assert!(t <= prev, "k={k}: {t} > {prev}");
            assert!(t >= c, "k={k}: below the bottleneck stage");
            prev = t;
        }
        // Large k approaches the bottleneck (comm) alone.
        assert!((t_pipelined(p, c, u, 1 << 20) - c) / c < 1e-3);
    }

    #[test]
    fn pipelined_ext_k1_is_the_strict_chain_plus_fft() {
        let (p, c, u, f, l) = (2e-3, 5e-3, 1.5e-3, 3e-3, 1e-4);
        assert!((t_pipelined_ext(p, c, u, f, l, 1) - (p + c + u + f)).abs() < 1e-15);
    }

    #[test]
    fn pipelined_ext_has_an_interior_optimum() {
        // With a meaningful per-chunk latency the cost must fall from k=1
        // (overlap wins) and rise again for huge k (latency dominates) —
        // the interior optimum auto-selection exists to find.
        let (p, c, u, f, l) = (2e-3, 5e-3, 1.5e-3, 3e-3, 4e-4);
        let t1 = t_pipelined_ext(p, c, u, f, l, 1);
        let best = (1..=64)
            .map(|k| t_pipelined_ext(p, c, u, f, l, k))
            .fold(f64::INFINITY, f64::min);
        let t64 = t_pipelined_ext(p, c, u, f, l, 64);
        assert!(best < t1, "chunking should beat the strict chain");
        assert!(t64 > best, "unbounded k should pay for its latency");
    }

    #[test]
    fn pipelined_ext_overlap_never_exceeds_wire_or_fft() {
        let (p, c, u, l) = (2e-3, 5e-3, 1.5e-3, 0.0);
        for k in 1..=32 {
            // Overlap is capped by the transform itself...
            let tiny_fft = 1e-6;
            assert!(t_pipelined_ext(p, c, u, tiny_fft, l, k) >= t_pipelined(p, c, u, k));
            // ...and by the wire time it hides under.
            let huge_fft = 50e-3;
            assert!(
                t_pipelined_ext(p, c, u, huge_fft, l, k) >= t_pipelined(p, c, u, k) + huge_fft - c
            );
        }
    }

    #[test]
    fn auto_k_is_the_argmin_of_the_extended_pipeline_model() {
        // The executor keeps an integer-nanosecond duplicate of the §16
        // argmin (`distfft::exec::auto_chunks_from_stages`) because this
        // crate depends on `distfft`, not the other way around. Property:
        // over a deterministic ladder of stage mixes — wire-bound,
        // kernel-bound, fft-heavy, latency-heavy, and degenerate zero
        // stages — the executor's pick equals argmin_k `t_pipelined_ext`
        // evaluated on the same (ns-valued) inputs, ties to the smallest k.
        let mut state = 0x2545_F491_4F6C_DD1D_u64;
        let mut next = move |lo: u64, hi: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            lo + state % (hi - lo + 1)
        };
        let mut cases: Vec<(u64, u64, u64, u64, u64)> = vec![
            (0, 0, 0, 0, 0),
            (1_000, 0, 1_000, 0, 500),
            (1_000, 100_000, 1_000, 0, 0),
            (40_000, 120_000, 40_000, 60_000, 9_000),
            (0, 50_000, 0, 200_000, 1),
        ];
        for _ in 0..400 {
            cases.push((
                next(0, 200_000),
                next(0, 500_000),
                next(0, 200_000),
                next(0, 400_000),
                next(0, 20_000),
            ));
        }
        for (pack, comm, unpack, fft, lat) in cases {
            for max_k in [1usize, 2, 7, 16] {
                let got =
                    distfft::exec::auto_chunks_from_stages(pack, comm, unpack, fft, lat, max_k);
                let mut want = 1usize;
                let mut best = f64::INFINITY;
                for k in 1..=max_k {
                    let t = t_pipelined_ext(
                        pack as f64,
                        comm as f64,
                        unpack as f64,
                        fft as f64,
                        lat as f64,
                        k,
                    );
                    if t < best {
                        best = t;
                        want = k;
                    }
                }
                assert_eq!(
                    got, want,
                    "argmin diverged: stages=({pack},{comm},{unpack},{fft},{lat}) max_k={max_k}"
                );
            }
        }
    }

    #[test]
    fn eq2_eq4_are_inverses() {
        let p = ModelParams::summit();
        for pi in [6usize, 24, 96, 384] {
            let t = t_slabs(N512, pi, &p);
            let b = b_slabs(N512, pi, t, p.latency_s);
            assert!(
                (b - p.bandwidth_bps).abs() / p.bandwidth_bps < 1e-9,
                "Π={pi}: recovered B = {b}"
            );
        }
    }

    #[test]
    fn eq3_eq5_are_inverses() {
        let p = ModelParams::summit();
        for (pg, qg) in [(2, 3), (4, 6), (8, 12), (24, 32)] {
            let t = t_pencils(N512, pg, qg, &p);
            let b = b_pencils(N512, pg, qg, t, p.latency_s);
            assert!(
                (b - p.bandwidth_bps).abs() / p.bandwidth_bps < 1e-9,
                "({pg},{qg}): recovered B = {b}"
            );
        }
    }

    #[test]
    fn slab_time_has_latency_and_bandwidth_regimes() {
        let p = ModelParams::summit();
        // Tiny transform: latency-dominated, T ≈ (Π−1)·L.
        let t_small = t_slabs(64.0, 100, &p);
        assert!((t_small - 99.0 * p.latency_s).abs() / t_small < 0.01);
        // Huge transform at small Π: bandwidth-dominated.
        let t_big = t_slabs(N512 * 64.0, 2, &p);
        let bw_term = ELEM_BYTES * N512 * 64.0 / (p.bandwidth_bps * 4.0);
        assert!((t_big - bw_term).abs() / t_big < 0.01);
    }

    #[test]
    fn paper_prediction_slabs_beat_pencils_below_64_nodes() {
        // §IV-A: with B = 23.5 GB/s and L = 1 µs, slabs should win below 64
        // Summit nodes (Π = 384) and pencils at 64 nodes and beyond, for a
        // 512³ transform. Check the model reproduces the crossover.
        let p = ModelParams::summit();
        let grids = [
            (6usize, 2usize, 3usize), // 1 node
            (12, 3, 4),
            (24, 4, 6),
            (48, 6, 8),
            (96, 8, 12),
            (192, 12, 16), // 32 nodes
            (384, 16, 24), // 64 nodes
        ];
        for (pi, pg, qg) in grids {
            let slab = t_slabs(N512, pi, &p);
            let pencil = t_pencils(N512, pg, qg, &p);
            let nodes = pi / 6;
            if nodes < 64 {
                assert!(
                    slab < pencil,
                    "at {nodes} nodes slabs ({slab:.2e}) should beat pencils ({pencil:.2e})"
                );
            } else {
                assert!(
                    pencil < slab,
                    "at {nodes} nodes pencils ({pencil:.2e}) should beat slabs ({slab:.2e})"
                );
            }
        }
    }

    #[test]
    fn pencil_time_decreases_then_latency_floors() {
        let p = ModelParams::summit();
        let t24 = t_pencils(N512, 4, 6, &p);
        let t384 = t_pencils(N512, 16, 24, &p);
        assert!(t384 < t24, "strong scaling should reduce comm time");
    }
}
