//! Phase diagram: the model-predicted fastest decomposition per
//! (transform size, node count) — the paper's §IV-A methodology.

use distfft::procgrid::closest_factor_pair;
use distfft::Decomp;

use crate::bandwidth::{t_pencils, t_slabs, ModelParams};

/// One point of the phase diagram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhasePoint {
    /// Number of ranks (1 per GPU).
    pub ranks: usize,
    /// Model-predicted slab communication time (None if infeasible).
    pub t_slabs: Option<f64>,
    /// Model-predicted pencil communication time.
    pub t_pencils: f64,
    /// Predicted winner.
    pub best: Decomp,
}

/// Predicts the fastest decomposition for an `n[0]×n[1]×n[2]` transform over
/// `ranks` ranks using equations (2)/(3). Slabs are infeasible past the
/// paper's `N₂`-process limit.
pub fn predict_decomp(n: [usize; 3], ranks: usize, params: &ModelParams) -> PhasePoint {
    let n_total = (n[0] * n[1] * n[2]) as f64;
    let (p, q) = closest_factor_pair(ranks);
    let tp = t_pencils(n_total, p, q, params);
    let ts = if ranks <= n[1] && ranks <= n[0] && ranks > 1 {
        Some(t_slabs(n_total, ranks, params))
    } else if ranks == 1 {
        Some(0.0)
    } else {
        None
    };
    let best = match ts {
        Some(t) if t <= tp => Decomp::Slabs,
        _ => Decomp::Pencils,
    };
    PhasePoint {
        ranks,
        t_slabs: ts,
        t_pencils: tp,
        best,
    }
}

/// Builds a phase diagram over a sweep of rank counts. Points are evaluated
/// in parallel (each is independent) and returned in input order, identical
/// to a serial evaluation.
pub fn phase_diagram(
    n: [usize; 3],
    rank_counts: &[usize],
    params: &ModelParams,
) -> Vec<PhasePoint> {
    crate::par::par_map(rank_counts, |&r| predict_decomp(n, r, params))
}

/// The smallest rank count in `rank_counts` at which pencils overtake slabs
/// (the crossover of Fig. 5), if any.
pub fn crossover_ranks(
    n: [usize; 3],
    rank_counts: &[usize],
    params: &ModelParams,
) -> Option<usize> {
    phase_diagram(n, rank_counts, params)
        .iter()
        .find(|pt| pt.best == Decomp::Pencils)
        .map(|pt| pt.ranks)
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: [usize; 3] = [512, 512, 512];

    fn summit_counts() -> Vec<usize> {
        // 1..=512 Summit nodes, 6 GPUs each (Table III plus two more rows).
        vec![6, 12, 24, 48, 96, 192, 384, 768, 1536, 3072]
    }

    #[test]
    fn crossover_is_at_64_nodes_for_512_cubed() {
        // §IV-A: "the slabs decomposition should be faster than the pencil
        // approach when using less than 64 nodes" (64 nodes = 384 ranks).
        let cross = crossover_ranks(N, &summit_counts(), &ModelParams::summit());
        assert_eq!(cross, Some(384));
    }

    #[test]
    fn slabs_infeasible_past_n2_limit() {
        let pt = predict_decomp(N, 768, &ModelParams::summit());
        assert!(pt.t_slabs.is_none());
        assert_eq!(pt.best, Decomp::Pencils);
    }

    #[test]
    fn single_rank_trivially_slab() {
        let pt = predict_decomp(N, 1, &ModelParams::summit());
        assert_eq!(pt.best, Decomp::Slabs);
        assert_eq!(pt.t_slabs, Some(0.0));
    }

    #[test]
    fn smaller_transforms_cross_over_earlier() {
        // For a small 64³ transform latency dominates sooner: slabs pay
        // (Π−1) latency terms vs (P+Q−2) for pencils, so pencils take over
        // at 24 ranks already (hand-checked against equations (2)/(3)),
        // far earlier than the 384-rank crossover of 512³.
        let params = ModelParams::summit();
        let counts = summit_counts();
        let cross_big = crossover_ranks(N, &counts, &params);
        let cross_small = crossover_ranks([64, 64, 64], &counts, &params);
        assert_eq!(cross_small, Some(24));
        assert!(cross_small.unwrap() < cross_big.unwrap());
    }

    #[test]
    fn diagram_covers_all_requested_points() {
        let d = phase_diagram(N, &summit_counts(), &ModelParams::summit());
        assert_eq!(d.len(), 10);
        assert!(d.iter().all(|p| p.t_pencils > 0.0));
    }
}
