//! Deterministic parallel sweeps.
//!
//! The analytic harnesses (phase diagrams, the tuner grid, the figure
//! sweeps) evaluate hundreds of independent dry-run configurations. Each
//! evaluation is pure — the dry runner never touches shared mutable state —
//! so they fan out over scoped worker threads. Results are reassembled in
//! input order, making the parallel sweep *byte-identical* to the serial
//! one: parallelism changes wall-clock time only, never output.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker count for sweeps: the `FFT_SWEEP_THREADS` environment variable if
/// set (and ≥ 1), otherwise the machine's available parallelism.
pub fn sweep_threads() -> usize {
    fftobs::env::positive_var("FFT_SWEEP_THREADS", "the machine's available parallelism")
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Maps `f` over `items` on up to [`sweep_threads`] scoped threads,
/// returning results in input order (deterministic regardless of how the
/// work interleaves).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(sweep_threads(), items, f)
}

/// [`par_map`] with an explicit worker count (1 runs inline, serially).
pub fn par_map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }

    // Work-stealing by atomic cursor: each worker claims the next index and
    // records (index, result); the merge below restores input order.
    let next = AtomicUsize::new(0);
    let f = &f;
    let per_worker: Vec<Vec<(usize, R)>> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let next = &next;
                s.builder()
                    .name(format!("sweep-{w}"))
                    .spawn(move |_| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            local.push((i, f(&items[i])));
                        }
                        local
                    })
                    // fftlint:allow(no-panic-in-lib): thread spawn failure is unrecoverable
                    .expect("failed to spawn sweep worker")
            })
            .collect();
        handles
            .into_iter()
            // fftlint:allow(no-panic-in-lib): propagating a worker panic is the contract
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
    // fftlint:allow(no-panic-in-lib): propagating a worker panic is the contract
    .expect("sweep scope panicked");

    let mut indexed: Vec<(usize, R)> = per_worker.into_iter().flatten().collect();
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Statically-partitioned parallel map with per-worker mutable state.
///
/// Unlike [`par_map_with`], which lets workers *steal* items through an
/// atomic cursor (deterministic output, nondeterministic worker→item
/// assignment), `par_parts` pins item `i` to worker `i % states.len()`
/// forever — per-worker side effects become a pure function of the
/// workload. The implementation is shared with the distributed executor;
/// see [`mpisim::par::par_parts`] for the full contract.
pub use mpisim::par::par_parts;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..97).collect();
        let out = par_map_with(4, &items, |&x| x * x);
        let expect: Vec<usize> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn parallel_identical_to_serial() {
        let items: Vec<u64> = (0..200).collect();
        let f = |&x: &u64| x.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17);
        let serial = par_map_with(1, &items, f);
        for threads in [2, 3, 8] {
            assert_eq!(par_map_with(threads, &items, f), serial);
        }
    }

    #[test]
    fn empty_and_single_item() {
        let empty: Vec<i32> = Vec::new();
        assert!(par_map_with(8, &empty, |x| *x).is_empty());
        assert_eq!(par_map_with(8, &[41], |x| x + 1), vec![42]);
    }

    #[test]
    fn sweep_threads_is_at_least_one() {
        assert!(sweep_threads() >= 1);
    }

    #[test]
    fn par_parts_output_matches_serial_for_all_worker_counts() {
        let items: Vec<u64> = (0..123).collect();
        let serial: Vec<u64> = {
            let mut st = [0u64];
            par_parts(&mut st, items.clone(), |i, acc, x| {
                *acc += x;
                x.wrapping_mul(31).rotate_left((i % 7) as u32)
            })
        };
        for w in [2usize, 3, 5, 8] {
            let mut states = vec![0u64; w];
            let out = par_parts(&mut states, items.clone(), |i, acc, x| {
                *acc += x;
                x.wrapping_mul(31).rotate_left((i % 7) as u32)
            });
            assert_eq!(out, serial, "w={w}");
            // Static round-robin assignment ⇒ per-worker accumulators are a
            // pure function of the workload.
            let expect: Vec<u64> = (0..w)
                .map(|wi| items.iter().filter(|&&x| x as usize % w == wi).sum())
                .collect();
            assert_eq!(states, expect, "w={w}");
        }
    }

    #[test]
    fn par_parts_deterministic_states_across_runs() {
        let items: Vec<usize> = (0..64).collect();
        let run = || {
            let mut states = vec![Vec::<usize>::new(); 4];
            let _ = par_parts(&mut states, items.clone(), |i, seen, x| {
                seen.push(i);
                x * 2
            });
            states
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        // Worker 0 sees exactly the indices ≡ 0 (mod 4), in order.
        assert_eq!(a[0], (0..64).step_by(4).collect::<Vec<_>>());
    }

    #[test]
    fn par_parts_single_item_runs_inline() {
        let mut states = vec![0u32; 8];
        let out = par_parts(&mut states, vec![7u32], |_, s, x| {
            *s += 1;
            x + 1
        });
        assert_eq!(out, vec![8]);
        assert_eq!(states[0], 1);
        assert!(states[1..].iter().all(|&s| s == 0));
    }
}
