//! End-to-end tuning: dry-run every candidate configuration on the
//! simulated machine and pick the fastest — the paper's §IV methodology
//! ("a careful tuning of the algorithm yields to linear scalability"),
//! seeded by the closed-form phase diagram.

use distfft::dryrun::{DryRunOpts, DryRunner};
use distfft::plan::{CommBackend, FftOptions, FftPlan, IoLayout};
use distfft::Decomp;
use simgrid::{MachineSpec, SimTime};

use crate::bandwidth::ModelParams;
use crate::phase::predict_decomp;

/// A tuned configuration with its predicted per-transform time.
#[derive(Debug, Clone)]
pub struct TunedChoice {
    /// Winning options.
    pub opts: FftOptions,
    /// GPU-aware MPI on/off in the winning configuration.
    pub gpu_aware: bool,
    /// Predicted average time per transform.
    pub time: SimTime,
    /// Every evaluated candidate, best first.
    pub candidates: Vec<(FftOptions, bool, SimTime)>,
}

/// Candidate backends the tuner tries (Alltoallw is never competitive on
/// GPU arrays — §II — but is included so the data shows it).
fn backends() -> [CommBackend; 4] {
    [
        CommBackend::AllToAll,
        CommBackend::AllToAllV,
        CommBackend::P2p,
        CommBackend::P2pBlocking,
    ]
}

/// Evaluates one configuration with the paper's measurement protocol
/// (2 warm-ups, then 4 forward+backward pairs).
pub fn evaluate(
    machine: &MachineSpec,
    n: [usize; 3],
    nranks: usize,
    opts: FftOptions,
    gpu_aware: bool,
) -> SimTime {
    let plan = FftPlan::build(n, nranks, opts);
    let mut runner = DryRunner::new(
        &plan,
        machine,
        DryRunOpts {
            gpu_aware,
            ..DryRunOpts::default()
        },
    );
    runner.timed_average(2, 4)
}

/// Tunes (decomposition, backend, GPU-awareness) for a transform of size `n`
/// over `nranks` ranks of `machine`, with brick-shaped I/O.
///
/// The closed-form phase diagram (equations (2)/(3) with the machine's
/// advertised NIC bandwidth and latency) preselects the decompositions worth
/// trying; the dry run then measures each candidate end to end.
pub fn tune(machine: &MachineSpec, n: [usize; 3], nranks: usize) -> TunedChoice {
    let params = ModelParams {
        latency_s: machine.inter_latency_ns as f64 * 1e-9,
        bandwidth_bps: machine.nic_gbs * 1e9,
    };
    let hint = predict_decomp(n, nranks, &params);

    // Try the hinted decomposition plus the alternative when feasible.
    let mut decomps = vec![hint.best];
    let alt = match hint.best {
        Decomp::Slabs => Decomp::Pencils,
        _ => Decomp::Slabs,
    };
    let slabs_feasible = nranks <= n[1] && nranks <= n[0];
    if alt != Decomp::Slabs || slabs_feasible {
        decomps.push(alt);
    }

    // Enumerate the candidate grid, then dry-run every cell in parallel.
    // The grid order is preserved, so the stable sort below breaks ties
    // exactly as a serial sweep would.
    let grid: Vec<(Decomp, CommBackend, bool)> = decomps
        .iter()
        .flat_map(|&decomp| {
            backends()
                .into_iter()
                .flat_map(move |backend| [true, false].map(|aware| (decomp, backend, aware)))
        })
        .collect();
    let mut candidates = crate::par::par_map(&grid, |&(decomp, backend, gpu_aware)| {
        let opts = FftOptions {
            decomp,
            backend,
            io: IoLayout::Brick,
            ..FftOptions::default()
        };
        let t = evaluate(machine, n, nranks, opts.clone(), gpu_aware);
        (opts, gpu_aware, t)
    });
    candidates.sort_by_key(|(_, _, t)| *t);
    let (opts, gpu_aware, time) = candidates[0].clone();
    TunedChoice {
        opts,
        gpu_aware,
        time,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuner_returns_sorted_candidates() {
        let machine = MachineSpec::summit();
        let choice = tune(&machine, [64, 64, 64], 12);
        assert!(!choice.candidates.is_empty());
        for w in choice.candidates.windows(2) {
            assert!(w[0].2 <= w[1].2, "candidates not sorted");
        }
        assert_eq!(choice.time, choice.candidates[0].2);
    }

    #[test]
    fn tuned_beats_worst_candidate_clearly() {
        let machine = MachineSpec::summit();
        let choice = tune(&machine, [64, 64, 64], 24);
        let worst = choice.candidates.last().unwrap().2;
        assert!(
            choice.time.as_ns() * 11 < worst.as_ns() * 10,
            "tuning should yield at least ~10%: best {} vs worst {}",
            choice.time,
            worst
        );
    }

    #[test]
    fn evaluate_is_deterministic() {
        let machine = MachineSpec::summit();
        let t1 = evaluate(&machine, [32, 32, 32], 12, FftOptions::default(), true);
        let t2 = evaluate(&machine, [32, 32, 32], 12, FftOptions::default(), true);
        assert_eq!(t1, t2);
    }

    #[test]
    fn gpu_aware_wins_at_scale_for_alltoall() {
        // Fig. 8/11: GPU-aware All-to-All is faster at multi-node scale.
        let machine = MachineSpec::summit();
        let opts = FftOptions {
            backend: CommBackend::AllToAllV,
            ..FftOptions::default()
        };
        let aware = evaluate(&machine, [128, 128, 128], 96, opts.clone(), true);
        let staged = evaluate(&machine, [128, 128, 128], 96, opts, false);
        assert!(
            aware < staged,
            "GPU-aware {aware} should beat staged {staged} at 16 nodes"
        );
    }
}
