#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # fftmodels — communication-cost models and tuning
//!
//! Section III of the paper builds a simple bandwidth model for slab and
//! pencil decompositions (equations (2)–(5)), uses it to *predict* the
//! fastest decomposition per node count (§IV-A: slabs below 64 Summit nodes
//! for a 512³ transform, pencils beyond), and surveys three literature
//! models. This crate implements all of them, plus the end-to-end tuning
//! methodology: a phase diagram from the closed-form model and a refinement
//! pass that dry-runs candidate configurations on the simulated machine.

pub mod bandwidth;
pub mod literature;
pub mod par;
pub mod phase;
pub mod tuner;
pub mod wisdom;

pub use bandwidth::ModelParams;
pub use par::{par_map, sweep_threads};
pub use phase::{phase_diagram, predict_decomp, PhasePoint};
pub use tuner::{tune, TunedChoice};
pub use wisdom::{Wisdom, WisdomEntry};
