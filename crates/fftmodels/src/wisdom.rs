//! Persistent tuning cache ("wisdom", after FFTW's term).
//!
//! Tuning dry-runs every candidate configuration (§IV), which is cheap on
//! the simulator but — like real autotuning — worth caching across runs.
//! [`Wisdom`] memoizes [`tune`](crate::tuner::tune) results keyed by
//! (machine, transform size, rank count) and round-trips through a plain
//! text format (one entry per line), so no serialization dependency is
//! needed.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use distfft::plan::{CommBackend, FftOptions, IoLayout};
use distfft::Decomp;
use simgrid::{MachineSpec, SimTime};

use crate::tuner::{tune, TunedChoice};

/// Cache key: machine name + transform extents + rank count.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct WisdomKey {
    /// Machine preset name ("Summit", "Spock", …).
    pub machine: String,
    /// Transform extents.
    pub n: [usize; 3],
    /// World size.
    pub ranks: usize,
}

/// One remembered tuning outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct WisdomEntry {
    /// Winning decomposition.
    pub decomp: Decomp,
    /// Winning exchange backend.
    pub backend: CommBackend,
    /// Winning GPU-awareness setting.
    pub gpu_aware: bool,
    /// Predicted per-transform time at tuning time.
    pub time: SimTime,
}

/// The full configuration a wisdom entry stands for: the plan options
/// *plus* the GPU-awareness setting, which lives outside [`FftOptions`]
/// (it is a world/MPI property, not a plan property).
#[derive(Debug, Clone, PartialEq)]
pub struct TunedOptions {
    /// Plan options (decomposition, backend, brick IO).
    pub fft: FftOptions,
    /// Whether MPI should run GPU-aware.
    pub gpu_aware: bool,
}

impl WisdomEntry {
    /// Reconstructs the complete tuned configuration this entry stands for.
    ///
    /// Returns both halves of the choice: the [`FftOptions`] to build the
    /// plan with and the `gpu_aware` flag to run it under. An earlier
    /// version returned only the `FftOptions`, silently discarding the
    /// stored GPU-awareness winner — replaying such wisdom reproduced the
    /// wrong configuration whenever the tuner had picked `gpu_aware =
    /// false` (e.g. SpectrumMPI + Alltoallw cases, §IV-C).
    pub fn options(&self) -> TunedOptions {
        TunedOptions {
            fft: FftOptions {
                decomp: self.decomp,
                backend: self.backend,
                io: IoLayout::Brick,
                ..FftOptions::default()
            },
            gpu_aware: self.gpu_aware,
        }
    }
}

/// The cache.
#[derive(Debug, Clone, Default)]
pub struct Wisdom {
    entries: BTreeMap<WisdomKey, WisdomEntry>,
}

fn decomp_tag(d: Decomp) -> &'static str {
    match d {
        Decomp::Slabs => "slabs",
        Decomp::Pencils => "pencils",
        Decomp::Bricks => "bricks",
    }
}

fn decomp_from(tag: &str) -> Option<Decomp> {
    Some(match tag {
        "slabs" => Decomp::Slabs,
        "pencils" => Decomp::Pencils,
        "bricks" => Decomp::Bricks,
        _ => return None,
    })
}

fn backend_tag(b: CommBackend) -> &'static str {
    match b {
        CommBackend::AllToAll => "a2a",
        CommBackend::AllToAllV => "a2av",
        CommBackend::AllToAllW => "a2aw",
        CommBackend::P2p => "p2p",
        CommBackend::P2pBlocking => "p2pb",
    }
}

fn backend_from(tag: &str) -> Option<CommBackend> {
    Some(match tag {
        "a2a" => CommBackend::AllToAll,
        "a2av" => CommBackend::AllToAllV,
        "a2aw" => CommBackend::AllToAllW,
        "p2p" => CommBackend::P2p,
        "p2pb" => CommBackend::P2pBlocking,
        _ => return None,
    })
}

impl Wisdom {
    /// An empty cache.
    pub fn new() -> Wisdom {
        Wisdom::default()
    }

    /// Number of remembered entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been learned yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a remembered outcome.
    pub fn lookup(
        &self,
        machine: &MachineSpec,
        n: [usize; 3],
        ranks: usize,
    ) -> Option<&WisdomEntry> {
        self.entries.get(&WisdomKey {
            machine: machine.name.to_string(),
            n,
            ranks,
        })
    }

    /// Records an outcome. Machine names must be whitespace-free (the text
    /// format is space-separated); all built-in presets are.
    pub fn insert(&mut self, machine: &MachineSpec, n: [usize; 3], ranks: usize, e: WisdomEntry) {
        assert!(
            !machine.name.contains(char::is_whitespace),
            "machine name '{}' would corrupt the wisdom text format",
            machine.name
        );
        self.entries.insert(
            WisdomKey {
                machine: machine.name.to_string(),
                n,
                ranks,
            },
            e,
        );
    }

    /// Returns the cached choice or runs the tuner and remembers the result.
    pub fn tune_cached(
        &mut self,
        machine: &MachineSpec,
        n: [usize; 3],
        ranks: usize,
    ) -> WisdomEntry {
        if let Some(e) = self.lookup(machine, n, ranks) {
            return e.clone();
        }
        let TunedChoice {
            opts,
            gpu_aware,
            time,
            ..
        } = tune(machine, n, ranks);
        let entry = WisdomEntry {
            decomp: opts.decomp,
            backend: opts.backend,
            gpu_aware,
            time,
        };
        self.insert(machine, n, ranks, entry.clone());
        entry
    }

    /// Serializes to the line format:
    /// `machine n0 n1 n2 ranks decomp backend aware time_ns`.
    pub fn to_text(&self) -> String {
        let mut lines: Vec<String> = self
            .entries
            .iter()
            .map(|(k, e)| {
                let mut s = String::new();
                let _ = write!(
                    s,
                    "{} {} {} {} {} {} {} {} {}",
                    k.machine,
                    k.n[0],
                    k.n[1],
                    k.n[2],
                    k.ranks,
                    decomp_tag(e.decomp),
                    backend_tag(e.backend),
                    u8::from(e.gpu_aware),
                    e.time.as_ns()
                );
                s
            })
            .collect();
        lines.sort_unstable();
        let mut out = String::from("# fft wisdom v1\n");
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }

    /// Parses one data line (already comment/blank-filtered and trimmed).
    fn parse_line(line: &str) -> Result<(WisdomKey, WisdomEntry), WisdomLineError> {
        let f: Vec<&str> = line.split_whitespace().collect();
        if f.len() != 9 {
            return Err(WisdomLineError::FieldCount { got: f.len() });
        }
        let num = |field: &'static str, token: &str| -> Result<u64, WisdomLineError> {
            token
                .parse::<u64>()
                .map_err(|_| WisdomLineError::BadNumber {
                    field,
                    token: token.to_string(),
                })
        };
        let n0 = num("n0", f[1])? as usize;
        let n1 = num("n1", f[2])? as usize;
        let n2 = num("n2", f[3])? as usize;
        let ranks = num("ranks", f[4])? as usize;
        let decomp =
            decomp_from(f[5]).ok_or_else(|| WisdomLineError::UnknownDecomp(f[5].to_string()))?;
        let backend =
            backend_from(f[6]).ok_or_else(|| WisdomLineError::UnknownBackend(f[6].to_string()))?;
        let gpu_aware = match f[7] {
            "0" => false,
            "1" => true,
            other => return Err(WisdomLineError::BadFlag(other.to_string())),
        };
        let ns = num("time_ns", f[8])?;
        Ok((
            WisdomKey {
                machine: f[0].to_string(),
                n: [n0, n1, n2],
                ranks,
            },
            WisdomEntry {
                decomp,
                backend,
                gpu_aware,
                time: SimTime::from_ns(ns),
            },
        ))
    }

    /// Parses the line format, ignoring comments and malformed lines
    /// (forward-compatible, like FFTW wisdom).
    pub fn from_text(text: &str) -> Wisdom {
        Self::from_text_counting(text).0
    }

    /// Lenient parse that also reports how many malformed lines were
    /// skipped, so callers can warn instead of silently dropping entries.
    pub fn from_text_counting(text: &str) -> (Wisdom, usize) {
        let mut w = Wisdom::new();
        let mut skipped = 0;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match Self::parse_line(line) {
                Ok((k, e)) => {
                    w.entries.insert(k, e);
                }
                Err(_) => skipped += 1,
            }
        }
        (w, skipped)
    }

    /// Strict parse: the first malformed or truncated line aborts with a
    /// typed error naming the line number and what was wrong with it.
    pub fn from_text_strict(text: &str) -> Result<Wisdom, WisdomParseError> {
        let mut w = Wisdom::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match Self::parse_line(line) {
                Ok((k, e)) => {
                    w.entries.insert(k, e);
                }
                Err(kind) => return Err(WisdomParseError { line: i + 1, kind }),
            }
        }
        Ok(w)
    }

    /// Writes the cache to a file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Loads a cache from a file (lenient: malformed lines are skipped).
    pub fn load(path: &Path) -> std::io::Result<Wisdom> {
        Ok(Wisdom::from_text(&std::fs::read_to_string(path)?))
    }

    /// Loads a cache from a file, rejecting malformed content with a typed
    /// error instead of silently dropping lines.
    pub fn load_strict(path: &Path) -> Result<Wisdom, WisdomLoadError> {
        let text = std::fs::read_to_string(path).map_err(WisdomLoadError::Io)?;
        Wisdom::from_text_strict(&text).map_err(WisdomLoadError::Parse)
    }
}

/// What was wrong with one wisdom line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WisdomLineError {
    /// Wrong number of space-separated fields (expected 9).
    FieldCount {
        /// Fields actually present.
        got: usize,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// Which field.
        field: &'static str,
        /// The offending token.
        token: String,
    },
    /// Unrecognized decomposition tag.
    UnknownDecomp(String),
    /// Unrecognized backend tag.
    UnknownBackend(String),
    /// The GPU-aware flag was not literally `0` or `1`.
    BadFlag(String),
}

impl std::fmt::Display for WisdomLineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WisdomLineError::FieldCount { got } => {
                write!(f, "expected 9 fields, got {got}")
            }
            WisdomLineError::BadNumber { field, token } => {
                write!(f, "field '{field}' is not a number: '{token}'")
            }
            WisdomLineError::UnknownDecomp(t) => write!(f, "unknown decomposition '{t}'"),
            WisdomLineError::UnknownBackend(t) => write!(f, "unknown backend '{t}'"),
            WisdomLineError::BadFlag(t) => write!(f, "gpu-aware flag must be 0 or 1, got '{t}'"),
        }
    }
}

/// A strict-parse failure: 1-based line number plus the line's defect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WisdomParseError {
    /// 1-based line number in the input text.
    pub line: usize,
    /// What was wrong.
    pub kind: WisdomLineError,
}

impl std::fmt::Display for WisdomParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wisdom line {}: {}", self.line, self.kind)
    }
}

impl std::error::Error for WisdomParseError {}

/// A strict-load failure: I/O or parse.
#[derive(Debug)]
pub enum WisdomLoadError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The file content was malformed.
    Parse(WisdomParseError),
}

impl std::fmt::Display for WisdomLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WisdomLoadError::Io(e) => write!(f, "wisdom load: {e}"),
            WisdomLoadError::Parse(e) => write!(f, "wisdom load: {e}"),
        }
    }
}

impl std::error::Error for WisdomLoadError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> WisdomEntry {
        WisdomEntry {
            decomp: Decomp::Slabs,
            backend: CommBackend::AllToAllV,
            gpu_aware: true,
            time: SimTime::from_us(123),
        }
    }

    #[test]
    fn text_roundtrip() {
        let summit = MachineSpec::summit();
        let spock = MachineSpec::spock();
        let mut w = Wisdom::new();
        w.insert(&summit, [512, 512, 512], 192, entry());
        w.insert(
            &spock,
            [64, 64, 64],
            16,
            WisdomEntry {
                decomp: Decomp::Pencils,
                backend: CommBackend::P2p,
                gpu_aware: false,
                time: SimTime::from_ns(999),
            },
        );
        let text = w.to_text();
        let back = Wisdom::from_text(&text);
        assert_eq!(back.len(), 2);
        assert_eq!(
            back.lookup(&summit, [512, 512, 512], 192),
            w.lookup(&summit, [512, 512, 512], 192)
        );
        assert_eq!(
            back.lookup(&spock, [64, 64, 64], 16),
            w.lookup(&spock, [64, 64, 64], 16)
        );
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let w = Wisdom::from_text(
            "# comment\n\nSummit 512 512 512 192 slabs a2av 1 123000\nBROKEN LINE\nSummit x y z 1 slabs a2av 1 5\n",
        );
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn tune_cached_hits_cache() {
        let summit = MachineSpec::summit();
        let mut w = Wisdom::new();
        // Pre-seed a sentinel entry that the real tuner would never produce
        // (Alltoallw is never competitive): a hit proves the cache is used.
        let sentinel = WisdomEntry {
            decomp: Decomp::Bricks,
            backend: CommBackend::AllToAllW,
            gpu_aware: false,
            time: SimTime::from_ns(1),
        };
        w.insert(&summit, [32, 32, 32], 12, sentinel.clone());
        assert_eq!(w.tune_cached(&summit, [32, 32, 32], 12), sentinel);

        // A genuine miss runs the tuner and remembers it.
        let fresh = w.tune_cached(&summit, [16, 16, 16], 6);
        assert_ne!(fresh.backend, CommBackend::AllToAllW);
        assert_eq!(w.len(), 2);
        assert_eq!(w.tune_cached(&summit, [16, 16, 16], 6), fresh);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("fft_wisdom_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("wisdom.txt");
        let summit = MachineSpec::summit();
        let mut w = Wisdom::new();
        w.insert(&summit, [128, 128, 128], 24, entry());
        w.save(&path).expect("save");
        let back = Wisdom::load(&path).expect("load");
        assert_eq!(back.lookup(&summit, [128, 128, 128], 24), Some(&entry()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn entry_reconstructs_options() {
        let o = entry().options();
        assert_eq!(o.fft.decomp, Decomp::Slabs);
        assert_eq!(o.fft.backend, CommBackend::AllToAllV);
        assert!(o.gpu_aware);
    }

    #[test]
    fn options_preserve_the_gpu_aware_winner() {
        // Both polarities must survive the WisdomEntry -> options() hop;
        // the old options() signature could not represent the flag at all.
        for aware in [true, false] {
            let e = WisdomEntry {
                gpu_aware: aware,
                ..entry()
            };
            assert_eq!(e.options().gpu_aware, aware, "flag dropped for {aware}");
        }
    }

    #[test]
    fn gpu_aware_survives_tune_insert_save_load_rebuild() {
        // End-to-end round trip: tune -> insert (via tune_cached) -> text ->
        // parse -> lookup -> options(). The reconstructed configuration must
        // price identically to the stored winner, and flipping the restored
        // flag must change the prediction — proving the flag is live, not
        // defaulted.
        let summit = MachineSpec::summit();
        let n = [16, 16, 16];
        let ranks = 6;
        let mut w = Wisdom::new();
        let tuned = w.tune_cached(&summit, n, ranks);

        let back = Wisdom::from_text(&w.to_text());
        let restored = back.lookup(&summit, n, ranks).expect("entry survives text");
        assert_eq!(restored.gpu_aware, tuned.gpu_aware, "flag lost in text");

        let o = restored.options();
        assert_eq!(o.gpu_aware, tuned.gpu_aware, "flag lost in options()");
        let replay = crate::tuner::evaluate(&summit, n, ranks, o.fft.clone(), o.gpu_aware);
        assert_eq!(
            replay, tuned.time,
            "replaying restored wisdom must reproduce the tuned time"
        );
        let flipped = crate::tuner::evaluate(&summit, n, ranks, o.fft, !o.gpu_aware);
        assert_ne!(
            flipped, tuned.time,
            "the gpu_aware flag must actually change the prediction"
        );
    }

    #[test]
    fn strict_parse_reports_typed_errors_with_line_numbers() {
        let good = "Summit 512 512 512 192 slabs a2av 1 123000";
        assert_eq!(Wisdom::from_text_strict(good).unwrap().len(), 1);

        let cases: &[(&str, WisdomLineError)] = &[
            (
                "Summit 512 512 512 192 slabs a2av 1", // truncated
                WisdomLineError::FieldCount { got: 8 },
            ),
            (
                "Summit 512 512 512 192 slabs a2av 1 123000 extra",
                WisdomLineError::FieldCount { got: 10 },
            ),
            (
                "Summit x 512 512 192 slabs a2av 1 123000",
                WisdomLineError::BadNumber {
                    field: "n0",
                    token: "x".to_string(),
                },
            ),
            (
                "Summit 512 512 512 192 cubes a2av 1 123000",
                WisdomLineError::UnknownDecomp("cubes".to_string()),
            ),
            (
                "Summit 512 512 512 192 slabs nccl 1 123000",
                WisdomLineError::UnknownBackend("nccl".to_string()),
            ),
            (
                "Summit 512 512 512 192 slabs a2av yes 123000",
                WisdomLineError::BadFlag("yes".to_string()),
            ),
            (
                "Summit 512 512 512 192 slabs a2av 1 -5",
                WisdomLineError::BadNumber {
                    field: "time_ns",
                    token: "-5".to_string(),
                },
            ),
        ];
        for (bad, want) in cases {
            let text = format!("# header\n{good}\n{bad}\n");
            let err = Wisdom::from_text_strict(&text).expect_err(bad);
            assert_eq!(err.line, 3, "wrong line for {bad:?}");
            assert_eq!(&err.kind, want, "wrong kind for {bad:?}");
            // The lenient counting parse keeps the good line and reports
            // exactly one skip — never panics, never corrupts.
            let (w, skipped) = Wisdom::from_text_counting(&text);
            assert_eq!(w.len(), 1, "good entry lost for {bad:?}");
            assert_eq!(skipped, 1, "wrong skip count for {bad:?}");
        }
    }

    #[test]
    fn counting_parse_reports_every_skip() {
        let (w, skipped) = Wisdom::from_text_counting(
            "# c\nSummit 8 8 8 2 slabs a2a 0 10\njunk\nmore junk here\n\n",
        );
        assert_eq!(w.len(), 1);
        assert_eq!(skipped, 2);
        assert!(
            !w.lookup(&MachineSpec::summit(), [8, 8, 8], 2)
                .unwrap()
                .gpu_aware
        );
    }

    #[test]
    fn load_strict_distinguishes_io_and_parse_errors() {
        let dir = std::env::temp_dir().join("fft_wisdom_strict_test");
        let _ = std::fs::create_dir_all(&dir);
        let missing = dir.join("does_not_exist.txt");
        let _ = std::fs::remove_file(&missing);
        assert!(matches!(
            Wisdom::load_strict(&missing),
            Err(WisdomLoadError::Io(_))
        ));
        let bad = dir.join("bad.txt");
        std::fs::write(&bad, "garbage line\n").unwrap();
        match Wisdom::load_strict(&bad) {
            Err(WisdomLoadError::Parse(e)) => {
                assert_eq!(e.line, 1);
                assert_eq!(e.kind, WisdomLineError::FieldCount { got: 2 });
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        let _ = std::fs::remove_file(&bad);
    }
}
