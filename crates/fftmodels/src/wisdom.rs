//! Persistent tuning cache ("wisdom", after FFTW's term).
//!
//! Tuning dry-runs every candidate configuration (§IV), which is cheap on
//! the simulator but — like real autotuning — worth caching across runs.
//! [`Wisdom`] memoizes [`tune`](crate::tuner::tune) results keyed by
//! (machine, transform size, rank count) and round-trips through a plain
//! text format (one entry per line), so no serialization dependency is
//! needed.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;

use distfft::plan::{CommBackend, FftOptions, IoLayout};
use distfft::Decomp;
use simgrid::{MachineSpec, SimTime};

use crate::tuner::{tune, TunedChoice};

/// Cache key: machine name + transform extents + rank count.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WisdomKey {
    /// Machine preset name ("Summit", "Spock", …).
    pub machine: String,
    /// Transform extents.
    pub n: [usize; 3],
    /// World size.
    pub ranks: usize,
}

/// One remembered tuning outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct WisdomEntry {
    /// Winning decomposition.
    pub decomp: Decomp,
    /// Winning exchange backend.
    pub backend: CommBackend,
    /// Winning GPU-awareness setting.
    pub gpu_aware: bool,
    /// Predicted per-transform time at tuning time.
    pub time: SimTime,
}

impl WisdomEntry {
    /// Reconstructs the plan options this entry stands for.
    pub fn options(&self) -> FftOptions {
        FftOptions {
            decomp: self.decomp,
            backend: self.backend,
            io: IoLayout::Brick,
            ..FftOptions::default()
        }
    }
}

/// The cache.
#[derive(Debug, Clone, Default)]
pub struct Wisdom {
    entries: HashMap<WisdomKey, WisdomEntry>,
}

fn decomp_tag(d: Decomp) -> &'static str {
    match d {
        Decomp::Slabs => "slabs",
        Decomp::Pencils => "pencils",
        Decomp::Bricks => "bricks",
    }
}

fn decomp_from(tag: &str) -> Option<Decomp> {
    Some(match tag {
        "slabs" => Decomp::Slabs,
        "pencils" => Decomp::Pencils,
        "bricks" => Decomp::Bricks,
        _ => return None,
    })
}

fn backend_tag(b: CommBackend) -> &'static str {
    match b {
        CommBackend::AllToAll => "a2a",
        CommBackend::AllToAllV => "a2av",
        CommBackend::AllToAllW => "a2aw",
        CommBackend::P2p => "p2p",
        CommBackend::P2pBlocking => "p2pb",
    }
}

fn backend_from(tag: &str) -> Option<CommBackend> {
    Some(match tag {
        "a2a" => CommBackend::AllToAll,
        "a2av" => CommBackend::AllToAllV,
        "a2aw" => CommBackend::AllToAllW,
        "p2p" => CommBackend::P2p,
        "p2pb" => CommBackend::P2pBlocking,
        _ => return None,
    })
}

impl Wisdom {
    /// An empty cache.
    pub fn new() -> Wisdom {
        Wisdom::default()
    }

    /// Number of remembered entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been learned yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a remembered outcome.
    pub fn lookup(
        &self,
        machine: &MachineSpec,
        n: [usize; 3],
        ranks: usize,
    ) -> Option<&WisdomEntry> {
        self.entries.get(&WisdomKey {
            machine: machine.name.to_string(),
            n,
            ranks,
        })
    }

    /// Records an outcome. Machine names must be whitespace-free (the text
    /// format is space-separated); all built-in presets are.
    pub fn insert(&mut self, machine: &MachineSpec, n: [usize; 3], ranks: usize, e: WisdomEntry) {
        assert!(
            !machine.name.contains(char::is_whitespace),
            "machine name '{}' would corrupt the wisdom text format",
            machine.name
        );
        self.entries.insert(
            WisdomKey {
                machine: machine.name.to_string(),
                n,
                ranks,
            },
            e,
        );
    }

    /// Returns the cached choice or runs the tuner and remembers the result.
    pub fn tune_cached(
        &mut self,
        machine: &MachineSpec,
        n: [usize; 3],
        ranks: usize,
    ) -> WisdomEntry {
        if let Some(e) = self.lookup(machine, n, ranks) {
            return e.clone();
        }
        let TunedChoice {
            opts,
            gpu_aware,
            time,
            ..
        } = tune(machine, n, ranks);
        let entry = WisdomEntry {
            decomp: opts.decomp,
            backend: opts.backend,
            gpu_aware,
            time,
        };
        self.insert(machine, n, ranks, entry.clone());
        entry
    }

    /// Serializes to the line format:
    /// `machine n0 n1 n2 ranks decomp backend aware time_ns`.
    pub fn to_text(&self) -> String {
        let mut lines: Vec<String> = self
            .entries
            .iter()
            .map(|(k, e)| {
                let mut s = String::new();
                let _ = write!(
                    s,
                    "{} {} {} {} {} {} {} {} {}",
                    k.machine,
                    k.n[0],
                    k.n[1],
                    k.n[2],
                    k.ranks,
                    decomp_tag(e.decomp),
                    backend_tag(e.backend),
                    u8::from(e.gpu_aware),
                    e.time.as_ns()
                );
                s
            })
            .collect();
        lines.sort_unstable();
        let mut out = String::from("# fft wisdom v1\n");
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }

    /// Parses the line format, ignoring comments and malformed lines
    /// (forward-compatible, like FFTW wisdom).
    pub fn from_text(text: &str) -> Wisdom {
        let mut w = Wisdom::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let f: Vec<&str> = line.split_whitespace().collect();
            if f.len() != 9 {
                continue;
            }
            let (Ok(n0), Ok(n1), Ok(n2), Ok(ranks), Ok(aware), Ok(ns)) = (
                f[1].parse::<usize>(),
                f[2].parse::<usize>(),
                f[3].parse::<usize>(),
                f[4].parse::<usize>(),
                f[7].parse::<u8>(),
                f[8].parse::<u64>(),
            ) else {
                continue;
            };
            let (Some(decomp), Some(backend)) = (decomp_from(f[5]), backend_from(f[6])) else {
                continue;
            };
            w.entries.insert(
                WisdomKey {
                    machine: f[0].to_string(),
                    n: [n0, n1, n2],
                    ranks,
                },
                WisdomEntry {
                    decomp,
                    backend,
                    gpu_aware: aware != 0,
                    time: SimTime::from_ns(ns),
                },
            );
        }
        w
    }

    /// Writes the cache to a file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Loads a cache from a file.
    pub fn load(path: &Path) -> std::io::Result<Wisdom> {
        Ok(Wisdom::from_text(&std::fs::read_to_string(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> WisdomEntry {
        WisdomEntry {
            decomp: Decomp::Slabs,
            backend: CommBackend::AllToAllV,
            gpu_aware: true,
            time: SimTime::from_us(123),
        }
    }

    #[test]
    fn text_roundtrip() {
        let summit = MachineSpec::summit();
        let spock = MachineSpec::spock();
        let mut w = Wisdom::new();
        w.insert(&summit, [512, 512, 512], 192, entry());
        w.insert(
            &spock,
            [64, 64, 64],
            16,
            WisdomEntry {
                decomp: Decomp::Pencils,
                backend: CommBackend::P2p,
                gpu_aware: false,
                time: SimTime::from_ns(999),
            },
        );
        let text = w.to_text();
        let back = Wisdom::from_text(&text);
        assert_eq!(back.len(), 2);
        assert_eq!(
            back.lookup(&summit, [512, 512, 512], 192),
            w.lookup(&summit, [512, 512, 512], 192)
        );
        assert_eq!(
            back.lookup(&spock, [64, 64, 64], 16),
            w.lookup(&spock, [64, 64, 64], 16)
        );
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let w = Wisdom::from_text(
            "# comment\n\nSummit 512 512 512 192 slabs a2av 1 123000\nBROKEN LINE\nSummit x y z 1 slabs a2av 1 5\n",
        );
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn tune_cached_hits_cache() {
        let summit = MachineSpec::summit();
        let mut w = Wisdom::new();
        // Pre-seed a sentinel entry that the real tuner would never produce
        // (Alltoallw is never competitive): a hit proves the cache is used.
        let sentinel = WisdomEntry {
            decomp: Decomp::Bricks,
            backend: CommBackend::AllToAllW,
            gpu_aware: false,
            time: SimTime::from_ns(1),
        };
        w.insert(&summit, [32, 32, 32], 12, sentinel.clone());
        assert_eq!(w.tune_cached(&summit, [32, 32, 32], 12), sentinel);

        // A genuine miss runs the tuner and remembers it.
        let fresh = w.tune_cached(&summit, [16, 16, 16], 6);
        assert_ne!(fresh.backend, CommBackend::AllToAllW);
        assert_eq!(w.len(), 2);
        assert_eq!(w.tune_cached(&summit, [16, 16, 16], 6), fresh);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("fft_wisdom_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("wisdom.txt");
        let summit = MachineSpec::summit();
        let mut w = Wisdom::new();
        w.insert(&summit, [128, 128, 128], 24, entry());
        w.save(&path).expect("save");
        let back = Wisdom::load(&path).expect("load");
        assert_eq!(back.lookup(&summit, [128, 128, 128], 24), Some(&entry()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn entry_reconstructs_options() {
        let o = entry().options();
        assert_eq!(o.decomp, Decomp::Slabs);
        assert_eq!(o.backend, CommBackend::AllToAllV);
    }
}
