//! The three literature communication models the paper surveys (§III):
//!
//! * Gholami et al. (AccFFT): `T = O(N/σ(P))` with `σ(P)` the bisection
//!   bandwidth of the network;
//! * Chatterjee et al.: regression `T = c·n^{−γ}` fitted on measured
//!   (nodes, time) points (developed on Shaheen II);
//! * Czechowski et al.: exascale lower bound `T = Ω(N/(Π^{5/6}·B))` for a
//!   3-D torus.

/// AccFFT-style estimate: `16·N / σ(P)` seconds, with `bisection_bps` the
/// bisection bandwidth in bytes/s.
pub fn bisection_model(n_elems: f64, bisection_bps: f64) -> f64 {
    16.0 * n_elems / bisection_bps
}

/// Bisection bandwidth of a full-bisection (non-blocking fat tree) cluster:
/// half the nodes can talk to the other half at full NIC rate.
pub fn fat_tree_bisection_bps(nodes: usize, nic_bps: f64) -> f64 {
    (nodes as f64 / 2.0).max(1.0) * nic_bps
}

/// Least-squares fit of `T = c·n^{−γ}` on `(n, t)` samples (log–log linear
/// regression). Returns `(c, gamma)`.
pub fn fit_power_law(samples: &[(f64, f64)]) -> (f64, f64) {
    assert!(samples.len() >= 2, "need at least two samples to fit");
    let m = samples.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(n, t) in samples {
        assert!(n > 0.0 && t > 0.0, "power-law fit needs positive samples");
        let x = n.ln();
        let y = t.ln();
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    let slope = (m * sxy - sx * sy) / (m * sxx - sx * sx);
    let intercept = (sy - slope * sx) / m;
    (intercept.exp(), -slope)
}

/// Evaluates the fitted power law at `n` nodes.
pub fn power_law(c: f64, gamma: f64, n: f64) -> f64 {
    c * n.powf(-gamma)
}

/// Czechowski et al. lower bound: `N/(Π^{5/6}·B)` seconds with `b_bps` the
/// per-link bandwidth in bytes/s (elements counted in bytes via the factor
/// 16).
pub fn torus_lower_bound(n_elems: f64, pi: usize, b_bps: f64) -> f64 {
    16.0 * n_elems / ((pi as f64).powf(5.0 / 6.0) * b_bps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisection_scales_inverse_with_nodes() {
        let n = 512f64.powi(3);
        let t2 = bisection_model(n, fat_tree_bisection_bps(2, 23.5e9));
        let t64 = bisection_model(n, fat_tree_bisection_bps(64, 23.5e9));
        assert!((t2 / t64 - 32.0).abs() < 1e-9);
    }

    #[test]
    fn power_law_fit_recovers_exact_params() {
        let (c0, g0) = (3.5, 0.8);
        let samples: Vec<(f64, f64)> = [1.0, 2.0, 4.0, 8.0, 64.0]
            .iter()
            .map(|&n| (n, power_law(c0, g0, n)))
            .collect();
        let (c, g) = fit_power_law(&samples);
        assert!((c - c0).abs() < 1e-9, "c = {c}");
        assert!((g - g0).abs() < 1e-9, "gamma = {g}");
    }

    #[test]
    fn power_law_fit_handles_noisy_data() {
        let samples = vec![(1.0, 10.0), (2.0, 5.5), (4.0, 2.6), (8.0, 1.4)];
        let (c, g) = fit_power_law(&samples);
        assert!(g > 0.8 && g < 1.2, "gamma = {g}");
        assert!(c > 8.0 && c < 12.0, "c = {c}");
    }

    #[test]
    fn lower_bound_is_below_bisection_estimate() {
        // The Ω bound should undercut practical estimates at scale.
        let n = 512f64.powi(3);
        for pi in [96usize, 768, 3072] {
            let lb = torus_lower_bound(n, pi, 23.5e9);
            let practical = bisection_model(n, fat_tree_bisection_bps(pi / 6, 23.5e9));
            assert!(lb > 0.0);
            assert!(
                lb < practical * 10.0,
                "bound {lb} wildly above practical {practical}"
            );
        }
    }

    #[test]
    fn lower_bound_decreases_with_scale() {
        let n = 512f64.powi(3);
        assert!(torus_lower_bound(n, 3072, 23.5e9) < torus_lower_bound(n, 96, 23.5e9));
    }
}
