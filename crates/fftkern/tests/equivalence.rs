//! Exhaustive engine-equivalence suite (ISSUE 4 satellite).
//!
//! Sweeps every power of two in {2..4096} × batch {1, 3, 16} × layout
//! {contiguous, strided} and checks that the Stockham engine, the legacy
//! radix-2 engine, and (for small sizes) the naive O(N²) DFT all agree, and
//! that forward∘inverse is the identity within `1e-9·log₂(n)` after
//! normalization.

use fftkern::dft::dft_1d;
use fftkern::plan::{Layout, Plan1d};
use fftkern::{Direction, Engine, C64};

/// Deterministic non-trivial signal (distinct per batch line).
fn signal(len: usize) -> Vec<C64> {
    (0..len)
        .map(|i| {
            let t = i as f64;
            C64::new((0.37 * t).sin() + 0.1 * (1.9 * t).cos(), (0.53 * t).cos())
        })
        .collect()
}

fn max_abs_diff(a: &[C64], b: &[C64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = *x - *y;
            d.re.abs().max(d.im.abs())
        })
        .fold(0.0, f64::max)
}

/// Layouts under test for a given (n, batch): packed contiguous rows and the
/// classic transposed access (stride = batch, dist = 1).
fn layouts(n: usize, batch: usize) -> Vec<(Layout, &'static str)> {
    vec![
        (Layout::contiguous(n), "contiguous"),
        (Layout::strided(batch), "strided"),
    ]
}

/// Gathers line `b` of a layout into a contiguous row (test-side oracle).
fn gather(data: &[C64], layout: Layout, n: usize, b: usize) -> Vec<C64> {
    (0..n)
        .map(|j| data[b * layout.dist + j * layout.stride])
        .collect()
}

#[test]
fn stockham_vs_radix2_vs_dft_all_pow2_batches_layouts() {
    // The O(N²) oracle is only run where it stays fast; Stockham-vs-radix2
    // covers every size up to 4096.
    const DFT_ORACLE_MAX: usize = 512;
    for log in 1..=12 {
        let n = 1usize << log;
        for batch in [1usize, 3, 16] {
            for (layout, layout_name) in layouts(n, batch) {
                let len = n * batch; // both layouts are dense in n·batch
                let x = signal(len);
                let auto = Plan1d::with_layout(n, batch, layout, layout);
                let legacy = Plan1d::with_engine(n, batch, layout, layout, Engine::Legacy);
                assert_eq!(auto.algo_name(), "stockham");
                assert_eq!(legacy.algo_name(), "radix2");

                let mut a = x.clone();
                let mut l = x.clone();
                auto.execute_inplace(&mut a, Direction::Forward);
                legacy.execute_inplace(&mut l, Direction::Forward);
                let tol = 1e-9 * (log as f64) * n as f64;
                assert!(
                    max_abs_diff(&a, &l) < tol,
                    "stockham vs radix2 diverge: n={n} batch={batch} {layout_name}"
                );

                if n <= DFT_ORACLE_MAX {
                    for b in 0..batch {
                        let line = gather(&x, layout, n, b);
                        let oracle = dft_1d(&line, Direction::Forward);
                        let got = gather(&a, layout, n, b);
                        assert!(
                            max_abs_diff(&got, &oracle) < 1e-8 * n as f64,
                            "stockham vs DFT diverge: n={n} batch={batch} {layout_name} line={b}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn forward_inverse_identity_all_pow2_batches_layouts() {
    for log in 1..=12 {
        let n = 1usize << log;
        for batch in [1usize, 3, 16] {
            for (layout, layout_name) in layouts(n, batch) {
                let x = signal(n * batch);
                let plan = Plan1d::with_layout(n, batch, layout, layout);
                let mut y = x.clone();
                plan.execute_inplace(&mut y, Direction::Forward);
                plan.execute_inplace(&mut y, Direction::Inverse);
                let inv_n = 1.0 / n as f64;
                for v in y.iter_mut() {
                    *v = v.scale(inv_n);
                }
                // ISSUE 4 acceptance bound: identity within 1e-9·log2(n).
                let tol = 1e-9 * log as f64;
                assert!(
                    max_abs_diff(&y, &x) < tol,
                    "roundtrip drift: n={n} batch={batch} {layout_name}"
                );
            }
        }
    }
}

#[test]
fn out_of_place_matches_inplace_both_engines() {
    for engine in [Engine::Auto, Engine::Legacy] {
        for (n, batch) in [(256usize, 16usize), (64, 3)] {
            for (layout, layout_name) in layouts(n, batch) {
                let x = signal(n * batch);
                let plan = Plan1d::with_engine(n, batch, layout, layout, engine);
                let mut out = vec![C64::ZERO; n * batch];
                plan.execute(&x, &mut out, Direction::Forward);
                let mut inplace = x;
                plan.execute_inplace(&mut inplace, Direction::Forward);
                assert_eq!(
                    out.iter()
                        .map(|c| (c.re.to_bits(), c.im.to_bits()))
                        .collect::<Vec<_>>(),
                    inplace
                        .iter()
                        .map(|c| (c.re.to_bits(), c.im.to_bits()))
                        .collect::<Vec<_>>(),
                    "in/out-of-place differ: {engine:?} n={n} batch={batch} {layout_name}"
                );
            }
        }
    }
}
