//! SIMD × scalar × naive-DFT cross-checks (ISSUE 6 tentpole).
//!
//! The vector kernels in `fftkern::simd` claim **bit-identity** with the
//! scalar Stockham stage bodies — not "close", identical, because every
//! complex element sees the exact scalar operation sequence (lanes are
//! elementwise, the complex multiply differs only by a commutative IEEE
//! addition, rotations are sign flips). This suite holds them to it with
//! `to_bits` comparisons across every tier the host supports, over packed
//! and strided layouts, pow2 / mixed-radix / Bluestein lengths, both
//! directions — and cross-checks the values against the O(N²) DFT oracle
//! so "all tiers agree on garbage" cannot pass.
//!
//! `force_tier` is process-global state. Integration-test files run in
//! their own process, so forcing tiers here cannot perturb other suites,
//! but the `#[test]` fns in *this* file share the process and run on
//! parallel threads — every test serializes on [`TIER_LOCK`] and restores
//! auto dispatch before releasing it.

use fftkern::dft::dft_1d;
use fftkern::plan::{Layout, Plan1d};
use fftkern::simd::{self, SimdTier};
use fftkern::{Direction, Engine, StockhamPlan, C64};
use std::sync::Mutex;

/// Serializes every test in this file around the process-global tier.
static TIER_LOCK: Mutex<()> = Mutex::new(());

/// All tiers this host can actually run, scalar first.
fn available_tiers() -> Vec<SimdTier> {
    [SimdTier::Scalar, SimdTier::Avx2, SimdTier::Avx512]
        .into_iter()
        .filter(|&t| simd::tier_available(t))
        .collect()
}

/// Runs `f` with the dispatcher pinned to `tier`, restoring auto after.
fn with_tier<R>(tier: SimdTier, f: impl FnOnce() -> R) -> R {
    simd::force_tier(Some(tier));
    let r = f();
    simd::force_tier(None);
    r
}

/// Deterministic non-trivial signal (distinct per batch line).
fn signal(len: usize) -> Vec<C64> {
    (0..len)
        .map(|i| {
            let t = i as f64;
            C64::new((0.41 * t).sin() - 0.2 * (2.3 * t).cos(), (0.59 * t).cos())
        })
        .collect()
}

/// Exact bit pattern of a complex buffer.
fn bits(data: &[C64]) -> Vec<(u64, u64)> {
    data.iter()
        .map(|c| (c.re.to_bits(), c.im.to_bits()))
        .collect()
}

fn max_abs_diff(a: &[C64], b: &[C64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = *x - *y;
            d.re.abs().max(d.im.abs())
        })
        .fold(0.0, f64::max)
}

#[test]
fn stockham_bitwise_identical_across_tiers_all_pow2() {
    let _g = TIER_LOCK.lock().unwrap();
    let tiers = available_tiers();
    for log in 1..=13 {
        let n = 1usize << log;
        let plan = StockhamPlan::new(n);
        let x = signal(n);
        for dir in [Direction::Forward, Direction::Inverse] {
            let reference = with_tier(SimdTier::Scalar, || {
                let mut d = x.clone();
                plan.execute(&mut d, dir);
                d
            });
            for &tier in &tiers {
                let got = with_tier(tier, || {
                    let mut d = x.clone();
                    plan.execute(&mut d, dir);
                    d
                });
                assert_eq!(
                    bits(&got),
                    bits(&reference),
                    "tier {} diverges from scalar at n={n} {dir:?}",
                    tier.name()
                );
            }
        }
    }
}

#[test]
fn simd_matches_naive_dft_not_just_itself() {
    // Bit-identity across tiers alone would also pass if every tier were
    // wrong the same way; anchor the values to the O(N²) oracle.
    let _g = TIER_LOCK.lock().unwrap();
    for &tier in &available_tiers() {
        for n in [8usize, 64, 512] {
            let plan = StockhamPlan::new(n);
            let x = signal(n);
            let fast = with_tier(tier, || {
                let mut d = x.clone();
                plan.execute(&mut d, Direction::Forward);
                d
            });
            let slow = dft_1d(&x, Direction::Forward);
            assert!(
                max_abs_diff(&fast, &slow) < 1e-8 * n as f64,
                "tier {} vs DFT at n={n}",
                tier.name()
            );
        }
    }
}

#[test]
fn plan1d_bitwise_identical_across_tiers_layouts_and_algorithms() {
    // End-to-end through Plan1d: pow2 (Stockham direct + cache-blocked
    // strided tiles), mixed-radix smooth sizes, and Bluestein primes (whose
    // pow2 convolution rides the Stockham engine) — packed and strided.
    let _g = TIER_LOCK.lock().unwrap();
    let tiers = available_tiers();
    for n in [16usize, 512, 1024, 60, 360, 499, 97] {
        for batch in [1usize, 3, 16] {
            for layout in [Layout::contiguous(n), Layout::strided(batch)] {
                let plan = Plan1d::with_layout(n, batch, layout, layout);
                let x = signal(plan.required_input_len());
                for dir in [Direction::Forward, Direction::Inverse] {
                    let reference = with_tier(SimdTier::Scalar, || {
                        let mut d = x.clone();
                        plan.execute_inplace(&mut d, dir);
                        d
                    });
                    for &tier in &tiers {
                        let got = with_tier(tier, || {
                            let mut d = x.clone();
                            plan.execute_inplace(&mut d, dir);
                            d
                        });
                        assert_eq!(
                            bits(&got),
                            bits(&reference),
                            "tier {} diverges at n={n} batch={batch} \
                             stride={} {dir:?}",
                            tier.name(),
                            layout.stride
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn legacy_engine_ignores_simd_dispatch() {
    // Engine::Legacy is the scalar radix-2 reference path; forcing a wide
    // tier must not change a single bit of it (dispatch is wired into the
    // Stockham engine only).
    let _g = TIER_LOCK.lock().unwrap();
    let n = 256;
    let plan = Plan1d::with_engine(
        n,
        4,
        Layout::contiguous(n),
        Layout::contiguous(n),
        Engine::Legacy,
    );
    let x = signal(plan.required_input_len());
    let reference = with_tier(SimdTier::Scalar, || {
        let mut d = x.clone();
        plan.execute_inplace(&mut d, Direction::Forward);
        d
    });
    for &tier in &available_tiers() {
        let got = with_tier(tier, || {
            let mut d = x.clone();
            plan.execute_inplace(&mut d, Direction::Forward);
            d
        });
        assert_eq!(bits(&got), bits(&reference), "tier {}", tier.name());
    }
}

#[test]
fn roundtrip_under_each_tier() {
    let _g = TIER_LOCK.lock().unwrap();
    for &tier in &available_tiers() {
        for n in [32usize, 512, 4096] {
            let plan = StockhamPlan::new(n);
            let x = signal(n);
            let y = with_tier(tier, || {
                let mut d = x.clone();
                plan.execute(&mut d, Direction::Forward);
                plan.execute(&mut d, Direction::Inverse);
                d
            });
            let expected: Vec<C64> = x.iter().map(|v| v.scale(n as f64)).collect();
            assert!(
                max_abs_diff(&y, &expected) < 1e-9 * n as f64,
                "tier {} n={n}",
                tier.name()
            );
        }
    }
}
