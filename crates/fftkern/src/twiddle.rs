//! Process-wide twiddle-table cache.
//!
//! Every FFT algorithm in this crate consumes the same family of tables —
//! `w[j] = e^{-2πi·j/n}` — and the seed implementation recomputed them on
//! every plan construction. Since a distributed run builds the same handful
//! of 1-D lengths over and over (once per axis per rank per execution), the
//! tables are interned here: the first request for a length pays the `O(n)`
//! trig cost, every later plan shares the same allocation via `Arc`.
//!
//! The table for length `n` holds all `n` roots. The radix-2 engine only
//! reads the first `n/2` entries; the mixed-radix engine reads all of them.
//! Both index into the same shared table so a `Radix2Plan` and a
//! `MixedPlan` of equal size share storage, as does the power-of-two
//! convolution plan inside every Bluestein plan.

use crate::complex::C64;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

static TABLES: OnceLock<Mutex<HashMap<usize, Arc<[C64]>>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Returns the shared forward twiddle table for length `n`:
/// `w[j] = e^{-2πi·j/n}` for `j < n`.
pub fn forward_table(n: usize) -> Arc<[C64]> {
    assert!(n > 0, "twiddle table requires n >= 1");
    let tables = TABLES.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = tables.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(t) = map.get(&n) {
        HITS.fetch_add(1, Ordering::Relaxed);
        fftobs::count("fftkern.twiddle.hit", 1);
        return Arc::clone(t);
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    fftobs::count("fftkern.twiddle.miss", 1);
    let table: Arc<[C64]> = (0..n)
        .map(|j| C64::expi(-2.0 * std::f64::consts::PI * j as f64 / n as f64))
        .collect();
    map.insert(n, Arc::clone(&table));
    table
}

/// Number of cache hits since process start (for tests and bench reports).
pub fn hits() -> u64 {
    HITS.load(Ordering::Relaxed)
}

/// Number of cache misses (= distinct lengths built) since process start.
pub fn misses() -> u64 {
    MISSES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_values_are_roots_of_unity() {
        let t = forward_table(8);
        assert_eq!(t.len(), 8);
        assert!((t[0].re - 1.0).abs() < 1e-12 && t[0].im.abs() < 1e-12);
        // w[2] = e^{-iπ/2} = -i.
        assert!(t[2].re.abs() < 1e-12 && (t[2].im + 1.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_requests_share_storage() {
        let a = forward_table(24);
        let b = forward_table(24);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
