//! Process-wide twiddle-table cache.
//!
//! Every FFT algorithm in this crate consumes the same family of tables —
//! `w[j] = e^{-2πi·j/n}` — and the seed implementation recomputed them on
//! every plan construction. Since a distributed run builds the same handful
//! of 1-D lengths over and over (once per axis per rank per execution), the
//! tables are interned here: the first request for a length pays the `O(n)`
//! trig cost, every later plan shares the same allocation via `Arc`.
//!
//! The table for length `n` holds all `n` roots. The radix-2 engine only
//! reads the first `n/2` entries; the mixed-radix engine reads all of them.
//! Both index into the same shared table so a `Radix2Plan` and a
//! `MixedPlan` of equal size share storage, as does the power-of-two
//! convolution plan inside every Bluestein plan.

use crate::complex::C64;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

static TABLES: OnceLock<Mutex<BTreeMap<usize, Arc<[C64]>>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

static STAGE_TABLES: OnceLock<Mutex<BTreeMap<usize, Arc<StockhamTables>>>> = OnceLock::new();

/// Returns the shared forward twiddle table for length `n`:
/// `w[j] = e^{-2πi·j/n}` for `j < n`.
pub fn forward_table(n: usize) -> Arc<[C64]> {
    assert!(n > 0, "twiddle table requires n >= 1");
    let tables = TABLES.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut map = tables.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(t) = map.get(&n) {
        HITS.fetch_add(1, Ordering::Relaxed);
        fftobs::count("fftkern.twiddle.hit", 1);
        return Arc::clone(t);
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    fftobs::count("fftkern.twiddle.miss", 1);
    let table: Arc<[C64]> = (0..n)
        .map(|j| C64::expi(-2.0 * std::f64::consts::PI * j as f64 / n as f64))
        .collect();
    map.insert(n, Arc::clone(&table));
    table
}

/// One butterfly stage of a Stockham plan: `radix`-point butterflies over
/// `m` twiddle rows of `s` contiguous elements each (`radix·m·s == n`).
#[derive(Debug, Clone, Copy)]
pub struct StockhamStage {
    /// Butterfly width: 2, 4, or 8.
    pub radix: usize,
    /// Number of distinct twiddle rows in this stage (`n_cur / radix`).
    pub m: usize,
    /// Contiguous run length of the inner loop (product of earlier radices).
    pub s: usize,
    /// Offset of this stage's twiddles in [`StockhamTables::tw`].
    pub tw_off: usize,
}

/// Interned per-stage twiddle tables for a Stockham plan of one size.
///
/// Stage `{radix: r, m, s}` stores `(r-1)` forward twiddles per row `p`:
/// `w^{jp}` for `j = 1..r` where `w = e^{-2πi/(r·m)}`. Every entry is taken
/// verbatim from the length-`n` root table (`w^{jp} = root_n[(j·p·s) % n]`,
/// using `n_cur·s == n`), so Stockham, radix-2, and mixed-radix plans of
/// equal size agree on twiddles to the last bit.
#[derive(Debug)]
pub struct StockhamTables {
    /// Stage descriptors, outermost (s = 1) first.
    pub stages: Vec<StockhamStage>,
    /// Concatenated per-stage forward twiddles; inverse conjugates on read.
    pub tw: Vec<C64>,
}

/// Returns the shared Stockham stage tables for power-of-two length `n`.
///
/// First request per length builds the tables from [`forward_table`] (one
/// shared trig computation); later requests are an intern-map lookup. Hits
/// and misses fold into the same counters as the root tables.
pub fn stockham_tables(n: usize) -> Arc<StockhamTables> {
    assert!(
        n.is_power_of_two(),
        "Stockham tables require a power of two, got {n}"
    );
    let tables = STAGE_TABLES.get_or_init(|| Mutex::new(BTreeMap::new()));
    {
        let map = tables.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(t) = map.get(&n) {
            HITS.fetch_add(1, Ordering::Relaxed);
            fftobs::count("fftkern.twiddle.stage_hit", 1);
            return Arc::clone(t);
        }
    }
    // Build outside the lock: forward_table takes the same mutex family and
    // the trig work should not serialize unrelated lookups.
    MISSES.fetch_add(1, Ordering::Relaxed);
    fftobs::count("fftkern.twiddle.stage_miss", 1);
    let root = forward_table(n);
    let mut stages = Vec::new();
    let mut tw = Vec::new();
    let mut s = 1usize;
    let mut n_cur = n;
    for r in crate::stockham::radix_decomposition(n.trailing_zeros()) {
        let m = n_cur / r;
        stages.push(StockhamStage {
            radix: r,
            m,
            s,
            tw_off: tw.len(),
        });
        for p in 0..m {
            for j in 1..r {
                tw.push(root[(j * p * s) % n]);
            }
        }
        s *= r;
        n_cur = m;
    }
    let built = Arc::new(StockhamTables { stages, tw });
    let mut map = tables.lock().unwrap_or_else(|e| e.into_inner());
    Arc::clone(map.entry(n).or_insert(built))
}

/// Number of cache hits since process start (for tests and bench reports).
pub fn hits() -> u64 {
    HITS.load(Ordering::Relaxed)
}

/// Number of cache misses (= distinct lengths built) since process start.
pub fn misses() -> u64 {
    MISSES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_values_are_roots_of_unity() {
        let t = forward_table(8);
        assert_eq!(t.len(), 8);
        assert!((t[0].re - 1.0).abs() < 1e-12 && t[0].im.abs() < 1e-12);
        // w[2] = e^{-iπ/2} = -i.
        assert!(t[2].re.abs() < 1e-12 && (t[2].im + 1.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_requests_share_storage() {
        let a = forward_table(24);
        let b = forward_table(24);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn stage_tables_are_interned_and_sized() {
        let a = stockham_tables(512);
        let b = stockham_tables(512);
        assert!(Arc::ptr_eq(&a, &b));
        // 512 = 8·8·8: stages (m=64,s=1), (m=8,s=8), (m=1,s=64); each stage
        // stores 7 twiddles per row.
        assert_eq!(a.stages.len(), 3);
        assert_eq!(a.tw.len(), 7 * (64 + 8 + 1));
        for st in &a.stages {
            assert_eq!(st.radix * st.m * st.s, 512);
        }
        // Row p = 0 of every stage is all ones.
        for st in &a.stages {
            for j in 0..st.radix - 1 {
                let w = a.tw[st.tw_off + j];
                assert!((w.re - 1.0).abs() < 1e-15 && w.im.abs() < 1e-15);
            }
        }
    }
}
