//! Mixed-radix Cooley–Tukey transform for smooth sizes (factors 2, 3, 5, 7).
//!
//! Real-world FFT grids are rarely pure powers of two (e.g. LAMMPS PPPM picks
//! grid dimensions with small prime factors), so the local engine handles any
//! `N = 2^a·3^b·5^c·7^d` directly; everything else goes through Bluestein.
//!
//! The implementation is a decimation-in-time recursion: for `N = r·m` the
//! input is split into `r` stride-`r` subsequences, each transformed at size
//! `m`, then combined with `X[k] = Σ_q w_N^{qk}·Y_q[k mod m]`. A single
//! top-size twiddle table serves every level because `w_n = w_N^{N/n}`.

use crate::complex::C64;
use crate::plan::Direction;
use crate::twiddle;
use std::sync::Arc;

/// Factors `n` into the sequence of radices used by the recursion (largest
/// factors first keeps the combine loops short at the deep levels).
pub fn factorize(mut n: usize) -> Vec<usize> {
    assert!(n > 0, "cannot factorize zero");
    let mut factors = Vec::new();
    for p in [7usize, 5, 3, 2] {
        while n.is_multiple_of(p) {
            factors.push(p);
            n /= p;
        }
    }
    assert_eq!(n, 1, "factorize called on a non-smooth size");
    factors
}

/// Precomputed state for a mixed-radix transform of fixed smooth size.
#[derive(Debug, Clone)]
pub struct MixedPlan {
    n: usize,
    factors: Vec<usize>,
    /// Shared table `tw[j] = e^{-2πi·j/n}` for `j < n`.
    twiddles: Arc<[C64]>,
}

impl MixedPlan {
    /// Builds a plan for any smooth `n` (`crate::is_smooth(n)` must hold).
    pub fn new(n: usize) -> Self {
        let factors = factorize(n);
        let twiddles = twiddle::forward_table(n);
        MixedPlan {
            n,
            factors,
            twiddles,
        }
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the degenerate size-1 plan.
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    /// Twiddle lookup: `w_n^{idx}` for forward, its conjugate for inverse.
    #[inline(always)]
    fn tw(&self, idx: usize, inverse: bool) -> C64 {
        let w = self.twiddles[idx % self.n];
        if inverse {
            w.conj()
        } else {
            w
        }
    }

    /// Out-of-place unnormalized transform: reads `input` with the given
    /// stride, writes `n` contiguous outputs. `scratch` must hold at least
    /// `n` elements.
    pub fn execute_strided(
        &self,
        input: &[C64],
        istride: usize,
        output: &mut [C64],
        scratch: &mut [C64],
        dir: Direction,
    ) {
        assert!(scratch.len() >= self.n, "scratch too small");
        assert!(output.len() >= self.n, "output too small");
        let inverse = matches!(dir, Direction::Inverse);
        self.rec(
            input,
            istride,
            &mut output[..self.n],
            scratch,
            self.n,
            0,
            inverse,
        );
    }

    /// In-place convenience wrapper around [`execute_strided`].
    ///
    /// [`execute_strided`]: MixedPlan::execute_strided
    pub fn execute(&self, data: &mut [C64], dir: Direction) {
        assert_eq!(data.len(), self.n);
        let mut out = vec![C64::ZERO; self.n]; // fftlint:allow(no-alloc-in-hot-path): allocating convenience wrapper; executor uses execute_strided
        let mut scratch = vec![C64::ZERO; self.n]; // fftlint:allow(no-alloc-in-hot-path): allocating convenience wrapper; executor uses execute_strided
        self.execute_strided(data, 1, &mut out, &mut scratch, dir);
        data.copy_from_slice(&out);
    }

    /// Recursive DIT step: transform `len` elements of `input` (stride
    /// `istride`) into `output[..len]`. `flevel` indexes into the factor
    /// list; the product of `factors[flevel..]` equals `len`.
    #[allow(clippy::too_many_arguments)] // private recursion carries its full state
    fn rec(
        &self,
        input: &[C64],
        istride: usize,
        output: &mut [C64],
        scratch: &mut [C64],
        len: usize,
        flevel: usize,
        inverse: bool,
    ) {
        if len == 1 {
            output[0] = input[0];
            return;
        }
        let r = self.factors[flevel];
        let m = len / r;

        // Transform the r decimated subsequences into output[q*m..][..m].
        for q in 0..r {
            self.rec(
                &input[q * istride..],
                istride * r,
                &mut output[q * m..(q + 1) * m],
                scratch,
                m,
                flevel + 1,
                inverse,
            );
        }

        // Combine. Y_q currently lives in output[q*m..]; stage it in scratch
        // so output can receive X[k] = Σ_q w_len^{qk} Y_q[k mod m].
        scratch[..len].copy_from_slice(&output[..len]);
        let tw_scale = self.n / len; // w_len^j == w_n^{j·tw_scale}
        #[allow(clippy::needless_range_loop)] // k drives twiddle index math, not just output[k]
        for k in 0..len {
            let k1 = k % m;
            let mut acc = scratch[k1]; // q = 0 term, twiddle 1
            for q in 1..r {
                let idx = (q * k % len) * tw_scale;
                acc += scratch[q * m + k1] * self.tw(idx, inverse);
            }
            output[k] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::max_abs_diff;
    use crate::dft::dft_1d;

    fn signal(n: usize) -> Vec<C64> {
        (0..n)
            .map(|i| C64::new((1.3 * i as f64).sin(), (0.4 * i as f64).cos()))
            .collect()
    }

    #[test]
    fn factorization_is_descending_and_multiplies_back() {
        for n in [1usize, 2, 3, 4, 6, 8, 12, 30, 210, 360, 512, 1000] {
            let f = factorize(n);
            assert_eq!(f.iter().product::<usize>(), n.max(1));
            for w in f.windows(2) {
                assert!(w[0] >= w[1], "factors not descending for {n}: {f:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-smooth")]
    fn factorize_rejects_primes_above_7() {
        let _ = factorize(22);
    }

    #[test]
    fn matches_dft_for_assorted_smooth_sizes() {
        for n in [
            1usize, 2, 3, 5, 7, 6, 10, 12, 15, 21, 35, 36, 60, 105, 120, 210,
        ] {
            let plan = MixedPlan::new(n);
            let x = signal(n);
            let mut fast = x.clone();
            plan.execute(&mut fast, Direction::Forward);
            let slow = dft_1d(&x, Direction::Forward);
            assert!(
                max_abs_diff(&fast, &slow) < 1e-8 * (n as f64).max(1.0),
                "mismatch at n={n}"
            );
        }
    }

    #[test]
    fn inverse_roundtrip() {
        for n in [6usize, 30, 84, 100] {
            let plan = MixedPlan::new(n);
            let x = signal(n);
            let mut y = x.clone();
            plan.execute(&mut y, Direction::Forward);
            plan.execute(&mut y, Direction::Inverse);
            let expected: Vec<C64> = x.iter().map(|v| v.scale(n as f64)).collect();
            assert!(max_abs_diff(&y, &expected) < 1e-8 * n as f64, "n={n}");
        }
    }

    #[test]
    fn strided_read_matches_gathered_input() {
        let n = 12;
        let stride = 3;
        let plan = MixedPlan::new(n);
        let backing = signal(n * stride);
        let gathered: Vec<C64> = (0..n).map(|i| backing[i * stride]).collect();

        let mut out = vec![C64::ZERO; n];
        let mut scratch = vec![C64::ZERO; n];
        plan.execute_strided(&backing, stride, &mut out, &mut scratch, Direction::Forward);

        let reference = dft_1d(&gathered, Direction::Forward);
        assert!(max_abs_diff(&out, &reference) < 1e-9 * n as f64);
    }

    #[test]
    fn pow2_agrees_with_radix2() {
        use crate::radix::Radix2Plan;
        let n = 64;
        let mp = MixedPlan::new(n);
        let rp = Radix2Plan::new(n);
        let x = signal(n);
        let mut a = x.clone();
        let mut b = x;
        mp.execute(&mut a, Direction::Forward);
        rp.execute(&mut b, Direction::Forward);
        assert!(max_abs_diff(&a, &b) < 1e-9 * n as f64);
    }
}
