//! Iterative radix-2 Cooley–Tukey transform for power-of-two sizes.
//!
//! Since the kernel-engine overhaul this is the **legacy reference
//! engine**: the hot path for power-of-two lengths is the Stockham
//! autosort kernel in [`stockham`](crate::stockham) (radix-8/4/2, no
//! bit-reversal pass), which Bluestein's algorithm also uses for its inner
//! convolutions. `Radix2Plan` is kept bit-exact as the seed baseline —
//! selected by `Engine::Legacy` — so equivalence tests and A/B benchmarks
//! compare the overhaul against the real original code, not a synthetic
//! slowdown.

use crate::complex::C64;
use crate::plan::Direction;
use crate::twiddle;
use std::sync::Arc;

/// Precomputed state for power-of-two FFTs of a fixed size.
#[derive(Debug, Clone)]
pub struct Radix2Plan {
    n: usize,
    /// Shared forward twiddles `w[j] = e^{-2πi·j/n}`; the butterfly loops
    /// only read `j < n/2`.
    twiddles: Arc<[C64]>,
    /// Bit-reversal permutation of `0..n`.
    bitrev: Vec<u32>,
}

impl Radix2Plan {
    /// Builds a plan for size `n`, which must be a power of two (and fit the
    /// `u32` permutation table, i.e. `n < 2³²`).
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "Radix2Plan requires a power of two, got {n}"
        );
        assert!(n < (1usize << 32), "size too large for permutation table");
        let twiddles = twiddle::forward_table(n);
        let bits = n.trailing_zeros();
        let bitrev = (0..n as u32)
            .map(|i| {
                if bits == 0 {
                    0
                } else {
                    i.reverse_bits() >> (32 - bits)
                }
            })
            .collect();
        Radix2Plan {
            n,
            twiddles,
            bitrev,
        }
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the degenerate size-1 plan.
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    /// In-place unnormalized transform of `data` (length must equal `n`).
    pub fn execute(&self, data: &mut [C64], dir: Direction) {
        assert_eq!(data.len(), self.n, "buffer length does not match plan size");
        if self.n <= 1 {
            return;
        }

        // Bit-reversal permutation: swap each index with its reversal once.
        for i in 0..self.n {
            let j = self.bitrev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }

        // Butterfly stages. `half` is the butterfly span at the current
        // stage; the twiddle stride through the shared table is n/(2*half).
        let inverse = matches!(dir, Direction::Inverse);
        let mut half = 1usize;
        while half < self.n {
            let step = self.n / (2 * half);
            for start in (0..self.n).step_by(2 * half) {
                let mut tw_idx = 0usize;
                for k in start..start + half {
                    let w = if inverse {
                        self.twiddles[tw_idx].conj()
                    } else {
                        self.twiddles[tw_idx]
                    };
                    let t = data[k + half] * w;
                    let u = data[k];
                    data[k] = u + t;
                    data[k + half] = u - t;
                    tw_idx += step;
                }
            }
            half *= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::max_abs_diff;
    use crate::dft::dft_1d;

    fn ramp(n: usize) -> Vec<C64> {
        (0..n)
            .map(|i| C64::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect()
    }

    #[test]
    fn matches_dft_for_all_pow2_up_to_256() {
        for log in 0..=8 {
            let n = 1usize << log;
            let plan = Radix2Plan::new(n);
            let x = ramp(n);
            let mut fast = x.clone();
            plan.execute(&mut fast, Direction::Forward);
            let slow = dft_1d(&x, Direction::Forward);
            assert!(
                max_abs_diff(&fast, &slow) < 1e-8 * n as f64,
                "mismatch at n={n}"
            );
        }
    }

    #[test]
    fn inverse_matches_dft() {
        let n = 64;
        let plan = Radix2Plan::new(n);
        let x = ramp(n);
        let mut fast = x.clone();
        plan.execute(&mut fast, Direction::Inverse);
        let slow = dft_1d(&x, Direction::Inverse);
        assert!(max_abs_diff(&fast, &slow) < 1e-9 * n as f64);
    }

    #[test]
    fn roundtrip_scales_by_n() {
        let n = 128;
        let plan = Radix2Plan::new(n);
        let x = ramp(n);
        let mut y = x.clone();
        plan.execute(&mut y, Direction::Forward);
        plan.execute(&mut y, Direction::Inverse);
        let expected: Vec<C64> = x.iter().map(|v| v.scale(n as f64)).collect();
        assert!(max_abs_diff(&y, &expected) < 1e-9 * n as f64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2() {
        let _ = Radix2Plan::new(12);
    }

    #[test]
    fn size_one_is_identity() {
        let plan = Radix2Plan::new(1);
        let mut x = vec![C64::new(3.0, -4.0)];
        plan.execute(&mut x, Direction::Forward);
        assert_eq!(x[0], C64::new(3.0, -4.0));
    }
}
