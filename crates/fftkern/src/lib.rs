// `deny`, not `forbid`: the SIMD butterfly kernels in `simd.rs` are the one
// sanctioned `unsafe` perimeter (raw vector loads/stores + feature-gated
// entry), opened with per-site justified allows. fftlint's `no-unsafe` rule
// still fails `unsafe` anywhere else in the crate (DESIGN.md §13).
#![deny(unsafe_code)]
#![warn(missing_docs)]
//! # fftkern — local FFT engine
//!
//! A from-scratch implementation of the single-device FFT libraries the paper
//! relies on (cuFFT, rocFFT, FFTW). Parallel FFT libraries delegate all local
//! 1-D/2-D computation to such a library (paper, §II: "Parallel FFT algorithms
//! rely on single-device libraries for their local 1-D or 2-D computation").
//!
//! Provides:
//!
//! * [`C64`] — double-precision complex numbers (the paper's 16-byte
//!   "double-complex" datatype).
//! * [`Plan1d`] — batched, strided 1-D transforms modeled after
//!   `cufftPlanMany`: arbitrary `batch`, `stride` and `dist` so that both the
//!   *contiguous (transposed)* and *strided* local-FFT modes of the paper
//!   (Figs. 6, 7, 10) are expressible.
//! * [`Plan2d`] / [`Plan3d`] — local multi-dimensional transforms.
//! * [`StockhamPlan`] — the power-of-two workhorse: a Stockham autosort
//!   engine with radix-4/8 butterflies and no bit-reversal pass, selected by
//!   default ([`Engine::Auto`]); the scalar radix-2 path survives as
//!   [`Engine::Legacy`] for reference and A/B benchmarking.
//! * Mixed-radix Cooley–Tukey for smooth sizes and Bluestein's chirp-z
//!   algorithm for arbitrary (including prime) sizes.
//! * [`real`] — real-to-complex / complex-to-real transforms via the
//!   packed-complex trick (the "real transforms" LAMMPS KSPACE uses, §IV-D).
//! * [`dft`] — a naive O(N²) reference DFT used as the correctness oracle.
//! * [`kernel_model`] — an analytic kernel-time model for batched FFT calls on
//!   a GPU profile (V100 / MI100 / host), including the strided-input penalty
//!   the paper observes in Fig. 10.
//!
//! Transforms follow the cuFFT/FFTW convention: both directions are
//! unnormalized, so a forward+inverse round trip scales the data by `N`.

pub mod bluestein;
pub mod cache;
pub mod complex;
pub mod dft;
pub mod kernel_model;
pub mod mixed;
pub mod nd;
pub mod plan;
pub mod radix;
pub mod real;
pub mod simd;
pub mod stockham;
pub mod twiddle;

pub use cache::{plan_cache, PlanCache};
pub use complex::C64;
pub use kernel_model::{GpuModel, KernelTimeModel, LayoutKind};
pub use plan::{Direction, Engine, Plan1d, Plan2d, Plan3d};
pub use simd::SimdTier;
pub use stockham::StockhamPlan;

/// Returns true if `n` factors entirely into 2, 3, 5 and 7 — the sizes the
/// mixed-radix path handles without Bluestein.
pub fn is_smooth(mut n: usize) -> bool {
    if n == 0 {
        return false;
    }
    for p in [2usize, 3, 5, 7] {
        while n.is_multiple_of(p) {
            n /= p;
        }
    }
    n == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoothness() {
        assert!(is_smooth(1));
        assert!(is_smooth(2));
        assert!(is_smooth(8));
        assert!(is_smooth(6));
        assert!(is_smooth(360));
        assert!(is_smooth(2 * 3 * 5 * 7));
        assert!(!is_smooth(11));
        assert!(!is_smooth(13 * 2));
        assert!(!is_smooth(0));
    }
}
