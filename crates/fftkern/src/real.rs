//! Real-to-complex and complex-to-real transforms.
//!
//! The applications the paper targets use real transforms too ("LAMMPS uses
//! 3-D real and complex transforms for its KSPACE package", §IV-D). An
//! even-length real transform is computed with the classic packing trick:
//! fold the `n` reals into an `n/2` complex signal, run one complex FFT,
//! and untangle the two interleaved half-spectra — half the work of the
//! naive embed-into-complex approach.
//!
//! `r2c_1d` returns the non-redundant half spectrum (`n/2 + 1` bins);
//! `c2r_1d` inverts it (unnormalized, like every other direction in this
//! crate: `c2r(r2c(x)) == n·x`).

use crate::complex::C64;
use crate::plan::{Direction, Plan1d};

/// Forward real-to-complex transform: `n` reals → `n/2 + 1` complex bins
/// (the remaining bins are the conjugate mirror). `n` must be even and ≥ 2.
pub fn r2c_1d(input: &[f64]) -> Vec<C64> {
    let n = input.len();
    assert!(
        n >= 2 && n.is_multiple_of(2),
        "r2c requires even n >= 2, got {n}"
    );
    let h = n / 2;

    // Pack pairs (x[2j], x[2j+1]) as complex values and transform at n/2.
    let packed: Vec<C64> = (0..h)
        .map(|j| C64::new(input[2 * j], input[2 * j + 1]))
        .collect();
    let mut z = packed;
    Plan1d::contiguous(h, 1).execute_inplace(&mut z, Direction::Forward);
    untangle_half(&z, n)
}

/// Untangles a packed half-size spectrum `Z = FFT_{n/2}(x[2j] + i·x[2j+1])`
/// into the `n/2 + 1` half-spectrum bins of the length-`n` real transform:
/// `X[k] = E[k] + e^{-2πik/n}·O[k]`, with E/O recovered from Z by symmetry.
/// The row-local kernel of every r2c transform, including the distributed
/// 3-D one.
pub fn untangle_half(z: &[C64], n: usize) -> Vec<C64> {
    let mut out = Vec::with_capacity(n / 2 + 1);
    untangle_half_into(z, n, &mut out);
    out
}

/// Appending form of [`untangle_half`] for callers that untangle many rows
/// into one buffer (the distributed r2c pipeline) — no per-row allocation.
pub fn untangle_half_into(z: &[C64], n: usize, out: &mut Vec<C64>) {
    let h = n / 2;
    assert_eq!(z.len(), h, "packed spectrum must have n/2 bins");
    out.reserve(h + 1);
    for k in 0..=h {
        let zk = if k == h { z[0] } else { z[k] };
        let zmk = z[(h - k % h) % h].conj();
        let e = (zk + zmk).scale(0.5);
        let o = (zk - zmk).scale(0.5) * C64::new(0.0, -1.0);
        let w = C64::expi(-2.0 * std::f64::consts::PI * k as f64 / n as f64);
        out.push(e + w * o);
    }
}

/// Inverse of [`untangle_half`]: rebuilds the packed half-size spectrum from
/// the `n/2 + 1` half bins, ready for an inverse FFT of length `n/2`.
pub fn retangle_half(spectrum: &[C64], n: usize) -> Vec<C64> {
    let mut z = Vec::with_capacity(n / 2);
    retangle_half_into(spectrum, n, &mut z);
    z
}

/// Appending form of [`retangle_half`] — see [`untangle_half_into`].
pub fn retangle_half_into(spectrum: &[C64], n: usize, z: &mut Vec<C64>) {
    let h = n / 2;
    assert_eq!(spectrum.len(), h + 1, "half spectrum must have n/2+1 bins");
    z.reserve(h);
    for k in 0..h {
        let xk = spectrum[k];
        let xmk = spectrum[h - k].conj();
        let e = (xk + xmk).scale(0.5);
        // O[k] = (X[k] − conj(X[h−k]))/2 · w^{−k}, with w = e^{−2πi/n}.
        let w_inv = C64::expi(2.0 * std::f64::consts::PI * k as f64 / n as f64);
        let o = (xk - xmk).scale(0.5) * w_inv;
        z.push(e + o * C64::I);
    }
}

/// Inverse complex-to-real transform: `n/2 + 1` half-spectrum bins →
/// `n` reals, unnormalized (scaled by `n` relative to the original signal).
pub fn c2r_1d(spectrum: &[C64], n: usize) -> Vec<f64> {
    assert!(
        n >= 2 && n.is_multiple_of(2),
        "c2r requires even n >= 2, got {n}"
    );
    assert_eq!(
        spectrum.len(),
        n / 2 + 1,
        "half spectrum must have n/2+1 bins"
    );
    let h = n / 2;

    let mut z = retangle_half(spectrum, n);
    Plan1d::contiguous(h, 1).execute_inplace(&mut z, Direction::Inverse);

    // Unpack: the inverse of the forward packing, times 2 because the
    // half-size transform carries half the normalization.
    let mut out = Vec::with_capacity(n);
    for v in z {
        out.push(v.re * 2.0);
        out.push(v.im * 2.0);
    }
    out
}

/// Full real spectrum via Hermitian extension — handy for verification.
pub fn extend_hermitian(half: &[C64], n: usize) -> Vec<C64> {
    assert_eq!(half.len(), n / 2 + 1);
    let mut full = half.to_vec();
    for k in (n / 2 + 1)..n {
        full.push(half[n - k].conj());
    }
    full
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::max_abs_diff;
    use crate::dft::dft_1d;

    fn real_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (0.13 * i as f64).sin() + 0.5 * (0.71 * i as f64).cos())
            .collect()
    }

    #[test]
    fn r2c_matches_complex_dft() {
        for n in [2usize, 4, 8, 12, 30, 64, 100] {
            let x = real_signal(n);
            let half = r2c_1d(&x);
            assert_eq!(half.len(), n / 2 + 1);
            let embedded: Vec<C64> = x.iter().map(|&v| C64::real(v)).collect();
            let full = dft_1d(&embedded, Direction::Forward);
            assert!(
                max_abs_diff(&half, &full[..n / 2 + 1]) < 1e-8 * n as f64,
                "mismatch at n={n}"
            );
        }
    }

    #[test]
    fn hermitian_extension_matches_full_dft() {
        let n = 16;
        let x = real_signal(n);
        let full = extend_hermitian(&r2c_1d(&x), n);
        let embedded: Vec<C64> = x.iter().map(|&v| C64::real(v)).collect();
        let reference = dft_1d(&embedded, Direction::Forward);
        assert!(max_abs_diff(&full, &reference) < 1e-9 * n as f64);
    }

    #[test]
    fn r2c_c2r_roundtrip_scales_by_n() {
        for n in [4usize, 10, 32, 64] {
            let x = real_signal(n);
            let back = c2r_1d(&r2c_1d(&x), n);
            for (got, want) in back.iter().zip(&x) {
                assert!(
                    (got - want * n as f64).abs() < 1e-8 * n as f64,
                    "n={n}: {got} vs {}",
                    want * n as f64
                );
            }
        }
    }

    #[test]
    fn dc_and_nyquist_bins_are_real() {
        let n = 32;
        let half = r2c_1d(&real_signal(n));
        assert!(half[0].im.abs() < 1e-10, "DC bin must be real");
        assert!(half[n / 2].im.abs() < 1e-10, "Nyquist bin must be real");
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_length_rejected() {
        let _ = r2c_1d(&[1.0, 2.0, 3.0]);
    }
}
