//! Analytic kernel-time model for GPU FFT and data-movement kernels.
//!
//! The reproduction runs on a simulated cluster, so GPU kernel runtimes come
//! from this model rather than real devices. It is calibrated against the
//! paper's observations:
//!
//! * a batched 1-D cuFFT call of size 512 inside a 3-D FFT costs ≈15 µs with
//!   contiguous input (§IV-B / Fig. 10);
//! * the same call on *strided* input shows a large spike — "the difference
//!   is considerable … this also happens when using FFTW and rocFFT"
//!   (Fig. 10);
//! * pack/unpack account for <10 % of runtime on GPU systems (§II, citing
//!   refs. \[15\], \[18\]);
//! * one Summit node (6 × V100) peaks at ≈40 TFLOP/s FP64 (§II-A).
//!
//! Batched FFTs on GPUs are memory-bandwidth bound at these sizes, so the
//! model takes `max(flop_time, memory_time)` plus a fixed launch overhead.

/// Data-access pattern of a kernel, the knob behind Fig. 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutKind {
    /// Unit-stride rows (the "transposed approach" — data packed first).
    Contiguous,
    /// Strided access straight out of the distributed layout.
    Strided,
}

/// Raw performance parameters of one accelerator (or host CPU) model.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuModel {
    /// Human-readable device name.
    pub name: &'static str,
    /// Peak FP64 throughput in TFLOP/s.
    pub fp64_tflops: f64,
    /// Achievable HBM/DRAM bandwidth in GB/s.
    pub mem_bw_gbs: f64,
    /// Fixed kernel-launch overhead in nanoseconds.
    pub launch_ns: u64,
    /// Fraction of peak FLOP/s an FFT kernel sustains.
    pub fft_flop_efficiency: f64,
    /// Effective-bandwidth multiplier for strided access (<1; the Fig. 10
    /// spike comes from here).
    pub strided_bw_factor: f64,
    /// One-time plan-setup cost charged to the first strided call after a
    /// layout change (the tall first-call spikes of Fig. 10).
    pub plan_setup_ns: u64,
}

impl GpuModel {
    /// NVIDIA V100 (Summit): 7.8 TFLOP/s FP64 (×6 ≈ 47 ≈ the paper's
    /// "approximately 40 TFLOP/s" per node), ~900 GB/s HBM2.
    pub fn v100() -> GpuModel {
        GpuModel {
            name: "V100",
            fp64_tflops: 7.8,
            mem_bw_gbs: 830.0,
            launch_ns: 4_000,
            fft_flop_efficiency: 0.5,
            strided_bw_factor: 0.18,
            plan_setup_ns: 120_000,
        }
    }

    /// AMD MI100 (Spock): 11.5 TFLOP/s FP64, ~1.2 TB/s HBM2.
    pub fn mi100() -> GpuModel {
        GpuModel {
            name: "MI100",
            fp64_tflops: 11.5,
            mem_bw_gbs: 1100.0,
            launch_ns: 5_000,
            fft_flop_efficiency: 0.45,
            strided_bw_factor: 0.16,
            plan_setup_ns: 150_000,
        }
    }

    /// A POWER9-class host socket, for the non-GPU-aware staging path and
    /// CPU-only baselines (FFTW-like).
    pub fn host_cpu() -> GpuModel {
        GpuModel {
            name: "POWER9",
            fp64_tflops: 0.5,
            mem_bw_gbs: 135.0,
            launch_ns: 200,
            fft_flop_efficiency: 0.35,
            strided_bw_factor: 0.35,
            plan_setup_ns: 30_000,
        }
    }
}

/// Kernel-time calculator for one device.
#[derive(Debug, Clone)]
pub struct KernelTimeModel {
    gpu: GpuModel,
}

/// Bytes per complex element (double-complex).
const ELEM_BYTES: f64 = 16.0;

impl KernelTimeModel {
    /// Wraps a device model.
    pub fn new(gpu: GpuModel) -> KernelTimeModel {
        KernelTimeModel { gpu }
    }

    /// The underlying device parameters.
    pub fn gpu(&self) -> &GpuModel {
        &self.gpu
    }

    /// Time (ns) for one batched 1-D FFT kernel call: `batch` transforms of
    /// length `n`, input/output in the given layout. `first_call` charges the
    /// plan-setup spike (Fig. 10's tall first strided call).
    pub fn batched_fft_1d_ns(
        &self,
        n: usize,
        batch: usize,
        layout: LayoutKind,
        first_call: bool,
    ) -> u64 {
        if n == 0 || batch == 0 {
            return self.gpu.launch_ns;
        }
        let n_f = n as f64;
        let b_f = batch as f64;
        // Standard FFT operation count: 5·n·log2(n) per transform.
        let flops = 5.0 * n_f * n_f.log2().max(1.0) * b_f;
        let flop_time_ns =
            flops / (self.gpu.fp64_tflops * 1e12 * self.gpu.fft_flop_efficiency) * 1e9;
        // One read + one write pass over the batch.
        let bytes = 2.0 * ELEM_BYTES * n_f * b_f;
        let bw_factor = match layout {
            LayoutKind::Contiguous => 1.0,
            LayoutKind::Strided => self.gpu.strided_bw_factor,
        };
        let mem_time_ns = bytes / (self.gpu.mem_bw_gbs * bw_factor); // GB/s == B/ns
        let setup = if first_call && layout == LayoutKind::Strided {
            self.gpu.plan_setup_ns
        } else {
            0
        };
        self.gpu.launch_ns + setup + flop_time_ns.max(mem_time_ns).ceil() as u64
    }

    /// Time (ns) for a full local 3-D FFT of `n0 × n1 × n2` (three batched
    /// passes, the middle and slow axes strided unless packed).
    pub fn local_fft_3d_ns(&self, n0: usize, n1: usize, n2: usize, layout: LayoutKind) -> u64 {
        let t2 = self.batched_fft_1d_ns(n2, n0 * n1, LayoutKind::Contiguous, false);
        let t1 = self.batched_fft_1d_ns(n1, n0 * n2, layout, false);
        let t0 = self.batched_fft_1d_ns(n0, n1 * n2, layout, false);
        t2 + t1 + t0
    }

    /// Time (ns) to pack `bytes` of scattered box data into a contiguous
    /// send buffer (one gather-read + one write).
    pub fn pack_ns(&self, bytes: usize) -> u64 {
        if bytes == 0 {
            return 0;
        }
        // Gather reads are strided but pack kernels coalesce well; charge the
        // read at half peak bandwidth and the write at full bandwidth.
        let read_ns = bytes as f64 / (self.gpu.mem_bw_gbs * self.gpu.strided_bw_factor.max(0.5));
        let write_ns = bytes as f64 / self.gpu.mem_bw_gbs;
        self.gpu.launch_ns + (read_ns + write_ns).ceil() as u64
    }

    /// Time (ns) to unpack a contiguous receive buffer into scattered box
    /// data (mirror of [`pack_ns`]).
    ///
    /// [`pack_ns`]: KernelTimeModel::pack_ns
    pub fn unpack_ns(&self, bytes: usize) -> u64 {
        self.pack_ns(bytes)
    }

    /// Time (ns) for an element-wise kernel over `elems` complex values with
    /// `flops_per_elem` floating-point operations each (k-space scaling,
    /// Green's-function multiply, dealiasing masks, …).
    pub fn pointwise_ns(&self, elems: usize, flops_per_elem: f64) -> u64 {
        if elems == 0 {
            return 0;
        }
        let bytes = 2.0 * ELEM_BYTES * elems as f64;
        let mem = bytes / self.gpu.mem_bw_gbs;
        let flop = elems as f64 * flops_per_elem
            / (self.gpu.fp64_tflops * 1e12 * self.gpu.fft_flop_efficiency)
            * 1e9;
        self.gpu.launch_ns + mem.max(flop).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_512_batch_is_about_15_us() {
        // Calibration check for Fig. 10: a 512-point batch sized like the
        // per-call chunks of the 24-GPU 512³ run (~512 rows per call) should
        // land near the paper's ≈15 µs.
        let m = KernelTimeModel::new(GpuModel::v100());
        let t = m.batched_fft_1d_ns(512, 512, LayoutKind::Contiguous, false);
        let us = t as f64 / 1000.0;
        assert!(
            (8.0..30.0).contains(&us),
            "contiguous 512×512 call = {us:.1} µs, expected ≈15 µs"
        );
    }

    #[test]
    fn strided_call_is_considerably_slower() {
        let m = KernelTimeModel::new(GpuModel::v100());
        let c = m.batched_fft_1d_ns(512, 512, LayoutKind::Contiguous, false);
        let s = m.batched_fft_1d_ns(512, 512, LayoutKind::Strided, false);
        assert!(
            s as f64 > 2.5 * c as f64,
            "strided ({s} ns) should be considerably slower than contiguous ({c} ns)"
        );
    }

    #[test]
    fn first_strided_call_has_setup_spike() {
        let m = KernelTimeModel::new(GpuModel::v100());
        let warm = m.batched_fft_1d_ns(512, 512, LayoutKind::Strided, false);
        let cold = m.batched_fft_1d_ns(512, 512, LayoutKind::Strided, true);
        assert!(cold > warm);
        assert_eq!(cold - warm, GpuModel::v100().plan_setup_ns);
    }

    #[test]
    fn times_scale_with_batch() {
        let m = KernelTimeModel::new(GpuModel::v100());
        let t1 = m.batched_fft_1d_ns(512, 100, LayoutKind::Contiguous, false);
        let t2 = m.batched_fft_1d_ns(512, 1000, LayoutKind::Contiguous, false);
        assert!(t2 > t1);
        // Linear within launch-overhead slack.
        let ratio = (t2 - m.gpu().launch_ns) as f64 / (t1 - m.gpu().launch_ns) as f64;
        assert!((ratio - 10.0).abs() < 1.0, "ratio = {ratio}");
    }

    #[test]
    fn pack_is_small_fraction_of_fft() {
        // §II: packing/unpacking accounts for <10 % of runtime; at the
        // kernel level a pack of the same bytes must not dwarf the FFT pass.
        let m = KernelTimeModel::new(GpuModel::v100());
        let elems = 512 * 512;
        let fft = m.batched_fft_1d_ns(512, 512, LayoutKind::Contiguous, false);
        let pack = m.pack_ns(elems * 16);
        assert!(pack < 2 * fft, "pack {pack} ns vs fft {fft} ns");
    }

    #[test]
    fn empty_kernels_cost_only_launch() {
        let m = KernelTimeModel::new(GpuModel::mi100());
        assert_eq!(
            m.batched_fft_1d_ns(0, 10, LayoutKind::Contiguous, false),
            GpuModel::mi100().launch_ns
        );
        assert_eq!(m.pack_ns(0), 0);
        assert_eq!(m.pointwise_ns(0, 8.0), 0);
    }

    #[test]
    fn local_3d_sums_three_passes() {
        let m = KernelTimeModel::new(GpuModel::v100());
        let t = m.local_fft_3d_ns(64, 64, 64, LayoutKind::Contiguous);
        let per_axis = m.batched_fft_1d_ns(64, 64 * 64, LayoutKind::Contiguous, false);
        assert_eq!(t, 3 * per_axis);
    }

    #[test]
    fn summit_node_peak_matches_paper() {
        // 6 × V100 ≈ 40+ TFLOP/s FP64 (paper §II-A says "approximately 40").
        let node = 6.0 * GpuModel::v100().fp64_tflops;
        assert!((38.0..50.0).contains(&node));
    }
}
