//! Convenience entry points and spectral utilities over whole arrays.
//!
//! The one-shot helpers route through the process-wide [`plan_cache`]: the
//! first call for a shape builds (and interns) the plan, every later call
//! for the same shape is a map lookup. Repeated ad-hoc transforms — test
//! oracles, spectral post-processing loops — get warm-path cost without
//! threading a plan handle around.

use crate::cache::plan_cache;
use crate::complex::C64;
use crate::plan::Direction;

/// One-shot in-place 1-D transform (plan served by the global cache).
pub fn fft_1d(data: &mut [C64], dir: Direction) {
    let plan = plan_cache().plan1d_contiguous(data.len(), 1);
    plan.execute_inplace(data, dir);
}

/// One-shot in-place 2-D transform of a row-major `n0 × n1` array.
pub fn fft_2d(data: &mut [C64], n0: usize, n1: usize, dir: Direction) {
    plan_cache().plan2d(n0, n1).execute(data, dir);
}

/// One-shot in-place 3-D transform of a row-major `n0 × n1 × n2` array.
pub fn fft_3d(data: &mut [C64], n0: usize, n1: usize, n2: usize, dir: Direction) {
    plan_cache().plan3d(n0, n1, n2).execute(data, dir);
}

/// Applies the `1/N` normalization that turns the unnormalized inverse into a
/// true inverse.
pub fn normalize(data: &mut [C64], total_size: usize) {
    let s = 1.0 / total_size as f64;
    for v in data.iter_mut() {
        *v = v.scale(s);
    }
}

/// Sum of squared magnitudes — the "energy" side of Parseval's theorem:
/// `Σ|x[n]|² = (1/N)·Σ|X[k]|²` for an unnormalized forward transform.
pub fn energy(data: &[C64]) -> f64 {
    data.iter().map(|v| v.norm_sqr()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::max_abs_diff;

    fn signal(n: usize) -> Vec<C64> {
        (0..n)
            .map(|i| C64::new((0.11 * i as f64).sin(), (0.07 * i as f64).cos()))
            .collect()
    }

    #[test]
    fn normalized_roundtrip_is_identity() {
        let mut x = signal(60);
        let orig = x.clone();
        fft_1d(&mut x, Direction::Forward);
        fft_1d(&mut x, Direction::Inverse);
        normalize(&mut x, 60);
        assert!(max_abs_diff(&x, &orig) < 1e-10 * 60.0);
    }

    #[test]
    fn parseval_holds_1d() {
        let x = signal(128);
        let time_energy = energy(&x);
        let mut spec = x;
        fft_1d(&mut spec, Direction::Forward);
        let freq_energy = energy(&spec) / 128.0;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy.max(1.0));
    }

    #[test]
    fn parseval_holds_3d() {
        let (a, b, c) = (4usize, 5usize, 8usize);
        let x = signal(a * b * c);
        let time_energy = energy(&x);
        let mut spec = x;
        fft_3d(&mut spec, a, b, c, Direction::Forward);
        let freq_energy = energy(&spec) / (a * b * c) as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy.max(1.0));
    }

    #[test]
    fn fft_2d_roundtrip() {
        let (a, b) = (6usize, 10usize);
        let x = signal(a * b);
        let mut y = x.clone();
        fft_2d(&mut y, a, b, Direction::Forward);
        fft_2d(&mut y, a, b, Direction::Inverse);
        normalize(&mut y, a * b);
        assert!(max_abs_diff(&y, &x) < 1e-9 * (a * b) as f64);
    }

    #[test]
    fn linearity_of_fft() {
        let n = 48;
        let x = signal(n);
        let y: Vec<C64> = (0..n).map(|i| C64::new(i as f64, -(i as f64))).collect();
        let alpha = C64::new(2.0, -0.5);

        let mut combo: Vec<C64> = x.iter().zip(&y).map(|(a, b)| *a * alpha + *b).collect();
        fft_1d(&mut combo, Direction::Forward);

        let mut fx = x;
        fft_1d(&mut fx, Direction::Forward);
        let mut fy = y;
        fft_1d(&mut fy, Direction::Forward);
        let expect: Vec<C64> = fx.iter().zip(&fy).map(|(a, b)| *a * alpha + *b).collect();
        assert!(max_abs_diff(&combo, &expect) < 1e-8 * n as f64);
    }
}
